//! # aelite — a flit-synchronous network on chip with composable and
//! # predictable services
//!
//! Umbrella crate of the reproduction of Hansson, Subburaman & Goossens,
//! *"aelite: A Flit-Synchronous Network on Chip with Composable and
//! Predictable Services"*, DATE 2009. It re-exports the full stack and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`).
//!
//! Start with [`aelite_core::AeliteSystem`]; see the
//! repository `README.md` for the architecture overview and
//! `EXPERIMENTS.md` for the reproduced evaluation.

#![warn(missing_docs)]

pub use aelite_alloc as alloc;
pub use aelite_analysis as analysis;
pub use aelite_baseline as baseline;
pub use aelite_core as core;
pub use aelite_dataflow as dataflow;
pub use aelite_dse as dse;
pub use aelite_noc as noc;
pub use aelite_online as online;
pub use aelite_sim as sim;
pub use aelite_spec as spec;
pub use aelite_synth as synth;
