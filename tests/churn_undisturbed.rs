//! Undisturbed service across online reconfiguration, validated at the
//! cycle level.
//!
//! The paper's reconfiguration model promises that setting up and
//! tearing down connections never disturbs anyone else's service. The
//! [`ChurnEngine`] enforces that structurally (grants are never moved);
//! this test proves it **behaviourally**: the full delivery log of every
//! connection that persists across a use-case switch — conn, tag,
//! destination cycle *and* absolute time of every flit — is bit-for-bit
//! identical before the switch, after the switch, and in a run where the
//! reconfiguration never happened. The logs come from the turbo
//! simulator, which is itself pinned bit-for-bit against the
//! event-driven cycle-accurate engine by `tests/turbo_golden.rs`, so the
//! equivalence transitively covers the reference simulator too.

use aelite_alloc::allocate;
use aelite_noc::network::NetworkKind;
use aelite_noc::ni::FlitDelivery;
use aelite_noc::turbo::build_turbo;
use aelite_online::{AdmissionRequest, ChurnEngine, ShardConfig, ShardedAllocation, ShardedEngine};
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, regional_workload};
use aelite_spec::ids::{AppId, ConnId};

const HORIZON_CYCLES: u64 = 20_000;

/// Runs `spec` under `alloc` for the common horizon and returns the
/// delivery logs of `conns`, in the given order.
fn delivery_logs(
    spec: &SystemSpec,
    alloc: &aelite_alloc::Allocation,
    conns: &[ConnId],
) -> Vec<Vec<FlitDelivery>> {
    let mut net = build_turbo(spec, alloc, NetworkKind::Synchronous, true);
    net.run_cycles(HORIZON_CYCLES);
    conns.iter().map(|&c| net.log(c).borrow().clone()).collect()
}

#[test]
fn persisting_connections_are_bitwise_undisturbed_across_a_switch() {
    // Use case 1 = apps {0, 1, 2}; use case 2 = apps {0, 1, 3}.
    // Apps 0 and 1 persist across the switch.
    let spec = paper_workload(42);
    let uc1 = spec.restricted_to(&[AppId::new(0), AppId::new(1), AppId::new(2)]);
    let uc2 = spec.restricted_to(&[AppId::new(0), AppId::new(1), AppId::new(3)]);
    let persisting: Vec<ConnId> = spec
        .connections()
        .iter()
        .filter(|c| c.app == AppId::new(0) || c.app == AppId::new(1))
        .map(|c| c.id)
        .collect();
    assert_eq!(persisting.len(), 100, "half the paper workload persists");

    // Before: batch-allocate use case 1 and record the persisting logs.
    let mut alloc = allocate(&uc1).expect("use case 1 allocates");
    let persisting_grants: Vec<_> = persisting
        .iter()
        .map(|&c| alloc.grant(c).unwrap().clone())
        .collect();
    let before = delivery_logs(&uc1, &alloc, &persisting);

    // The switch: app 2 out, app 3 in, applied online as one delta.
    let mut engine = ChurnEngine::new(&spec);
    let close: Vec<ConnId> = spec.app_connections(AppId::new(2)).map(|c| c.id).collect();
    let open: Vec<ConnId> = spec.app_connections(AppId::new(3)).map(|c| c.id).collect();
    engine
        .switch(&spec, &mut alloc, &close, &open)
        .expect("the freed resources carry app 3");

    // Structural check first: the persisting grants are bit-identical.
    for g in &persisting_grants {
        assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
    }

    // Behavioural check: delivery logs after the switch are bit-for-bit
    // the logs from before — conn, tag, cycle and absolute time.
    let after = delivery_logs(&uc2, &alloc, &persisting);
    assert_eq!(before, after, "a persisting connection's service changed");

    // And tearing the incoming app down again (back to just the
    // persisting applications) still changes nothing.
    for &c in &open {
        assert!(engine.close(&mut alloc, c));
    }
    let uc_persist = spec.restricted_to(&[AppId::new(0), AppId::new(1)]);
    let alone = delivery_logs(&uc_persist, &alloc, &persisting);
    assert_eq!(before, alone, "service depends on who else is running");

    // The logs carry real traffic — this test never compares silence.
    let flits: usize = before.iter().map(Vec::len).sum();
    assert!(
        flits > 10_000,
        "only {flits} flits in {HORIZON_CYCLES} cycles"
    );
}

#[test]
fn served_burst_leaves_untouched_connections_bit_identical() {
    // A batched admission round (the serving layer's unit of work) must
    // be as undisturbed as the per-op path: every connection not named
    // in the burst keeps a bit-identical delivery log across the round.
    let spec = paper_workload(13);
    let mut alloc = allocate(&spec).expect("paper workload allocates");
    let mut engine = ChurnEngine::new(&spec);

    // Pre-state: every 7th connection is closed (they become the
    // burst's opens); every 5th (not multiple of 7) stays open and gets
    // closed by the burst; the rest persist untouched.
    let all: Vec<ConnId> = spec.connections().iter().map(|c| c.id).collect();
    let to_open: Vec<ConnId> = all.iter().copied().filter(|c| c.index() % 7 == 2).collect();
    let to_close: Vec<ConnId> = all
        .iter()
        .copied()
        .filter(|c| c.index() % 7 != 2 && c.index() % 5 == 1)
        .collect();
    let persisting: Vec<ConnId> = all
        .iter()
        .copied()
        .filter(|c| c.index() % 7 != 2 && c.index() % 5 != 1)
        .collect();
    assert!(!to_open.is_empty() && !to_close.is_empty());
    assert!(persisting.len() > all.len() / 2);
    for &c in &to_open {
        assert!(engine.close(&mut alloc, c));
    }

    let open_now: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
    let view_before = spec.restricted_to_connections(&open_now);
    let before = delivery_logs(&view_before, &alloc, &persisting);
    let persisting_grants: Vec<_> = persisting
        .iter()
        .map(|&c| alloc.grant(c).unwrap().clone())
        .collect();

    // The served burst: independent requests (each connection named
    // once), applied as one batched admission round.
    let requests: Vec<AdmissionRequest> = to_open
        .iter()
        .map(|&c| AdmissionRequest::Open(c))
        .chain(to_close.iter().map(|&c| AdmissionRequest::Close(c)))
        .collect();
    let mut verdicts = Vec::new();
    engine.submit_batch(&spec, &mut alloc, &requests, &mut verdicts);
    let admitted = verdicts.iter().filter(|v| v.is_ok()).count();
    assert!(
        admitted >= requests.len() - 2,
        "burst mostly admits ({admitted}/{})",
        requests.len()
    );

    // Structural: untouched grants are bit-identical.
    for g in &persisting_grants {
        assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
    }

    // Behavioural: delivery logs of the untouched connections are
    // bit-for-bit the pre-burst logs.
    let open_after: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
    let view_after = spec.restricted_to_connections(&open_after);
    let after = delivery_logs(&view_after, &alloc, &persisting);
    assert_eq!(before, after, "a served burst disturbed a bystander");

    let flits: usize = before.iter().map(Vec::len).sum();
    assert!(
        flits > 5_000,
        "only {flits} flits in {HORIZON_CYCLES} cycles"
    );
}

#[test]
fn sharded_burst_leaves_untouched_connections_bit_identical() {
    // The sharded engine admits a burst across four shard threads; the
    // bystanders — every connection the burst never names — must keep a
    // bit-for-bit identical delivery log, exactly as on the serial path.
    let spec = regional_workload(4, 4, 2, 120, 21, 2, 2);
    let cfg = ShardConfig {
        max_paths: 2,
        ..ShardConfig::tiled(2, 2)
    };
    let mut engine = ShardedEngine::new(&spec, cfg);
    let mut alloc = ShardedAllocation::empty_for(&spec, engine.map());

    // Build the pre-state through the engine itself: one wide parallel
    // burst opening every connection (refusals are fine — the admitted
    // set is what we protect).
    let opens: Vec<AdmissionRequest> = spec
        .connections()
        .iter()
        .map(|c| AdmissionRequest::Open(c.id))
        .collect();
    let mut verdicts = Vec::new();
    engine.submit_batch(&spec, &mut alloc, &opens, &mut verdicts, 4);
    let admitted: Vec<ConnId> = spec
        .connections()
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| v.is_ok())
        .map(|(c, _)| c.id)
        .collect();
    assert!(admitted.len() > 60, "only {} admitted", admitted.len());

    // The burst churns every 5th admitted connection; the rest persist.
    let (churned, persisting): (Vec<ConnId>, Vec<ConnId>) =
        admitted.iter().partition(|c| c.index() % 5 == 1);
    assert!(!churned.is_empty() && persisting.len() > admitted.len() / 2);

    let collapsed = alloc.collapse(engine.map());
    let view_before = spec.restricted_to_connections(&admitted);
    let before = delivery_logs(&view_before, &collapsed, &persisting);
    let persisting_grants: Vec<_> = persisting
        .iter()
        .map(|&c| alloc.grant(c).unwrap().clone())
        .collect();

    // The sharded burst: close the churn set in one parallel round,
    // then re-admit it in another.
    let closes: Vec<AdmissionRequest> = churned
        .iter()
        .map(|&c| AdmissionRequest::Close(c))
        .collect();
    engine.submit_batch(&spec, &mut alloc, &closes, &mut verdicts, 4);
    assert!(verdicts.iter().all(|v| v.is_ok()), "closes cannot refuse");

    let open_mid: Vec<ConnId> = alloc
        .collapse(engine.map())
        .grants()
        .map(|g| g.conn)
        .collect();
    let view_mid = spec.restricted_to_connections(&open_mid);
    let mid = delivery_logs(&view_mid, &alloc.collapse(engine.map()), &persisting);
    assert_eq!(before, mid, "a sharded close burst disturbed a bystander");

    let reopens: Vec<AdmissionRequest> =
        churned.iter().map(|&c| AdmissionRequest::Open(c)).collect();
    engine.submit_batch(&spec, &mut alloc, &reopens, &mut verdicts, 4);

    // Structural: untouched grants are bit-identical through both rounds.
    for g in &persisting_grants {
        assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
    }

    // Behavioural: bystander delivery logs bit-for-bit unchanged.
    let collapsed_after = alloc.collapse(engine.map());
    let open_after: Vec<ConnId> = collapsed_after.grants().map(|g| g.conn).collect();
    let view_after = spec.restricted_to_connections(&open_after);
    let after = delivery_logs(&view_after, &collapsed_after, &persisting);
    assert_eq!(before, after, "a sharded burst disturbed a bystander");

    let flits: usize = before.iter().map(Vec::len).sum();
    assert!(
        flits > 5_000,
        "only {flits} flits in {HORIZON_CYCLES} cycles"
    );
}

#[test]
fn repeated_open_close_cycles_leave_service_bit_identical() {
    // A connection that is closed and re-admitted may land on different
    // slots — but everyone *else* must not see any difference, through
    // an arbitrary number of reconfigurations.
    let spec = paper_workload(7);
    let mut alloc = allocate(&spec).expect("paper workload allocates");
    let all: Vec<ConnId> = spec.connections().iter().map(|c| c.id).collect();
    let (churned, stable): (Vec<ConnId>, Vec<ConnId>) =
        all.iter().partition(|c| c.index() % 10 == 3);
    let before = delivery_logs(&spec, &alloc, &stable);

    let mut engine = ChurnEngine::new(&spec);
    for round in 0..5 {
        for &c in &churned {
            assert!(engine.close(&mut alloc, c), "round {round}: {c} open");
        }
        for &c in &churned {
            engine
                .open(&spec, &mut alloc, c)
                .unwrap_or_else(|e| panic!("round {round}: {c} rejected: {e}"));
        }
    }
    assert_eq!(engine.stats().ops(), churned.len() as u64 * 10);

    let after = delivery_logs(&spec, &alloc, &stable);
    assert_eq!(before, after, "a stable connection's service changed");
}
