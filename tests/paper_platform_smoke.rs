//! Fast tier-1 pin of the Section VII experiment platform: workload
//! generation must keep producing exactly the paper's system, whatever
//! happens to the generator internals or the RNG backend.

use aelite_spec::generate::paper_workload;

#[test]
fn paper_workload_matches_section_vii_platform() {
    let spec = paper_workload(42);
    assert_eq!(
        spec.topology().router_count(),
        12,
        "paper platform is a 4x3 mesh"
    );
    assert_eq!(
        spec.topology().ni_count(),
        48,
        "paper platform has 4 NIs per router"
    );
    assert_eq!(spec.ip_count(), 70, "paper platform maps 70 IPs");
    assert_eq!(
        spec.connections().len(),
        200,
        "paper workload draws 200 connections"
    );
    assert_eq!(
        spec.apps().len(),
        4,
        "paper workload divides connections across 4 applications"
    );
}
