//! Property-based tests of the core invariants (`DESIGN.md` section 5),
//! exercised over randomly generated workloads, slot sets, routes and
//! clock phases.

use aelite_alloc::mask::SlotMask;
use aelite_alloc::table::{gaps, worst_window, SlotTable};
use aelite_alloc::{allocate, validate_allocation};
use aelite_core::AeliteSystem;
use aelite_noc::codec::{pack_header, route_capacity_hops, unpack_header};
use aelite_noc::flitsim::{FlitSim, FlitSimConfig};
use aelite_noc::phit::{Header, RouteBits};
use aelite_sim::bisync::BisyncFifo;
use aelite_sim::time::{SimDuration, SimTime};
use aelite_spec::generate::{random_workload, WorkloadParams};
use aelite_spec::ids::{ConnId, Port};
use aelite_spec::topology::Topology;
use aelite_spec::NocConfig;
use proptest::prelude::*;

/// Strategy: a sorted, deduplicated, non-empty slot set within a table.
fn slot_sets() -> impl Strategy<Value = (Vec<u32>, u32)> {
    (4u32..=64).prop_flat_map(|size| {
        proptest::collection::btree_set(0..size, 1..=(size as usize).min(16))
            .prop_map(move |set| (set.into_iter().collect(), size))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gaps always sum to exactly one table revolution.
    #[test]
    fn gaps_sum_to_table_size((slots, size) in slot_sets()) {
        let g = gaps(&slots, size);
        prop_assert_eq!(g.iter().sum::<u32>(), size);
        prop_assert_eq!(g.len(), slots.len());
    }

    /// `worst_window` matches a brute-force computation over all starting
    /// positions and window lengths.
    #[test]
    fn worst_window_matches_brute_force((slots, size) in slot_sets(), m in 1u32..6) {
        let fast = worst_window(&slots, size, m);
        // Brute force: for each reserved slot, sum m consecutive gaps.
        let g = gaps(&slots, size);
        let n = g.len();
        let mut brute = 0u32;
        for start in 0..n {
            let mut acc = 0;
            for k in 0..(m as usize) {
                acc += g[(start + k) % n];
            }
            brute = brute.max(acc);
        }
        prop_assert_eq!(fast, brute);
    }

    /// worst_window is monotone in the number of flits.
    #[test]
    fn worst_window_monotone_in_flits((slots, size) in slot_sets(), m in 1u32..5) {
        prop_assert!(worst_window(&slots, size, m) <= worst_window(&slots, size, m + 1));
    }

    /// Adding a slot never worsens the single-flit worst window.
    #[test]
    fn extra_slot_never_hurts((slots, size) in slot_sets()) {
        if (slots.len() as u32) < size {
            let free = (0..size).find(|s| !slots.contains(s)).expect("space left");
            let mut more = slots.clone();
            more.push(free);
            more.sort_unstable();
            prop_assert!(worst_window(&more, size, 1) <= worst_window(&slots, size, 1));
        }
    }

    /// Header wire-format round-trips for every representable route.
    #[test]
    fn codec_roundtrip(
        ports in proptest::collection::vec(0u8..8, 0..=8),
        conn in 0u32..256,
        width in prop_oneof![Just(32u32), Just(64), Just(128), Just(256)],
    ) {
        prop_assume!(ports.len() <= route_capacity_hops(width));
        let route: Vec<Port> = ports.iter().map(|&p| Port(p)).collect();
        let header = Header {
            route: RouteBits::from_ports(&route),
            conn: ConnId::new(conn),
        };
        let bits = pack_header(&header, width).expect("fits");
        let back = unpack_header(bits, width, route.len()).expect("unpacks");
        prop_assert_eq!(back, header);
    }

    /// The bi-synchronous FIFO preserves order and never loses or
    /// duplicates words, for any monotone push/pop schedule.
    #[test]
    fn bisync_fifo_preserves_order(
        delay_ps in 0u64..5_000,
        // Push gaps (ps) and pop gaps (ps), interleaved by timestamp.
        push_gaps in proptest::collection::vec(1u64..3_000, 1..20),
        pop_extra in 0u64..10_000,
    ) {
        let mut fifo = BisyncFifo::new("prop", push_gaps.len(), SimDuration::from_ps(delay_ps));
        let mut t = 0;
        for (i, gap) in push_gaps.iter().enumerate() {
            t += gap;
            fifo.push(SimTime::from_ps(t), i as u32);
        }
        // Pop everything after the last word is surely visible.
        let drain = SimTime::from_ps(t + delay_ps + pop_extra);
        let mut out = Vec::new();
        while let Some(v) = fifo.pop_visible(drain) {
            out.push(v);
        }
        let expect: Vec<u32> = (0..push_gaps.len() as u32).collect();
        prop_assert_eq!(out, expect);
    }
}

/// One mutation of a slot table, drawn by the mask-consistency property.
#[derive(Debug, Clone, Copy)]
enum TableOp {
    Reserve(u32, u32),
    Release(u32),
    ReleaseAll(u32),
}

/// Strategy: an arbitrary sequence of reserve/release/release_all ops.
fn table_ops() -> impl Strategy<Value = (u32, Vec<TableOp>)> {
    (1u32..=150).prop_flat_map(|size| {
        let op = prop_oneof![
            (0..size * 2, 0u32..6).prop_map(|(s, c)| TableOp::Reserve(s, c)),
            (0..size * 2).prop_map(TableOp::Release),
            (0u32..6).prop_map(TableOp::ReleaseAll),
        ];
        (Just(size), proptest::collection::vec(op, 1..120))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SlotTable`'s free-slot bitset stays consistent with its owner
    /// vector under arbitrary reserve/release/release_all sequences.
    #[test]
    fn slot_table_free_mask_stays_consistent((size, ops) in table_ops()) {
        let mut t = SlotTable::new(size);
        for op in ops {
            match op {
                TableOp::Reserve(slot, conn) => {
                    let _ = t.reserve(slot, ConnId::new(conn));
                }
                TableOp::Release(slot) => {
                    let _ = t.release(slot);
                }
                TableOp::ReleaseAll(conn) => {
                    let _ = t.release_all(ConnId::new(conn));
                }
            }
            // The mask, the owner vector, and the derived counters must
            // agree after every single mutation.
            let mut reserved = 0;
            for s in 0..size {
                let owner_free = t.owner(s).is_none();
                prop_assert_eq!(t.free_mask().get(s), owner_free, "slot {}", s);
                prop_assert_eq!(t.is_free(s), owner_free, "slot {}", s);
                if !owner_free {
                    reserved += 1;
                }
            }
            prop_assert_eq!(t.reserved_count(), reserved);
            prop_assert_eq!(t.free_mask().count(), size - reserved);
        }
    }

    /// The rotate-and-AND kernel matches the per-slot definition: bit `s`
    /// survives iff `a` has `s` and `b` has `(s + shift) % size`.
    #[test]
    fn and_rotated_matches_per_slot_definition(
        size in 1u32..200,
        bits_a in proptest::collection::vec((0u32..2).prop_map(|b| b == 1), 200),
        bits_b in proptest::collection::vec((0u32..2).prop_map(|b| b == 1), 200),
        shift in 0u32..400,
    ) {
        let mut a = SlotMask::new_empty(size);
        let mut b = SlotMask::new_empty(size);
        for s in 0..size {
            if bits_a[s as usize] {
                a.set(s);
            }
            if bits_b[s as usize] {
                b.set(s);
            }
        }
        let mut out = a.clone();
        out.and_rotated(&b, shift);
        for s in 0..size {
            prop_assert_eq!(
                out.get(s),
                a.get(s) && b.get((s + shift) % size),
                "size {} shift {} slot {}",
                size, shift, s
            );
        }
    }

    /// Word-level bit scans agree with naive linear scans.
    #[test]
    fn mask_scans_match_naive(
        size in 1u32..150,
        bits in proptest::collection::vec((0u32..2).prop_map(|b| b == 1), 150),
        pos in 0u32..150,
    ) {
        prop_assume!(pos < size);
        let slots: Vec<u32> = (0..size).filter(|&s| bits[s as usize]).collect();
        let m = SlotMask::from_slots(size, &slots);
        let next = (0..size)
            .map(|d| (pos + d) % size)
            .find(|&s| m.get(s));
        prop_assert_eq!(m.next_one_circular(pos), next);
        let prev = (0..size)
            .map(|d| (pos + size - d) % size)
            .find(|&s| m.get(s));
        prop_assert_eq!(m.prev_one_circular(pos), prev);
        let nearest = slots.iter().copied().min_by_key(|&s| {
            let d = s.abs_diff(pos);
            d.min(size - d)
        });
        prop_assert_eq!(m.nearest_one(pos), nearest);
    }
}

/// Strategy: a small random workload spec that the generator accepts.
fn small_workloads() -> impl Strategy<Value = (u64, u32, u32, u32)> {
    // (seed, cols, rows, connections)
    (0u64..1_000, 2u32..=4, 1u32..=3, 4u32..=24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every workload the generator accepts is allocatable, the
    /// allocation passes independent validation, and simulation honours
    /// every contract and analytical bound.
    #[test]
    fn random_workloads_allocate_validate_and_simulate(
        (seed, cols, rows, conns) in small_workloads()
    ) {
        let topo = Topology::mesh(cols, rows, 2);
        let ips = (topo.ni_count() as u32).max(4);
        let params = WorkloadParams {
            apps: 2,
            connections: conns,
            ips,
            bw_min_mb: 5,
            bw_max_mb: 150,
            lat_min_ns: 60,
            lat_max_ns: 900,
            message_bytes: 16,
            ni_load_cap: 0.5,
        };
        let spec = random_workload(topo, NocConfig::paper_default(), params, seed);
        let alloc = allocate(&spec).expect("generator guarantees allocatability headroom");
        validate_allocation(&spec, &alloc).expect("allocation must validate");

        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 20_000,
            ..FlitSimConfig::default()
        });
        let cycle_ns = spec.config().cycle_ns();
        for c in spec.connections() {
            let stats = report.conn(c.id);
            prop_assert!(stats.flits > 0, "{} never delivered", c.id);
            let bound = alloc.worst_case_latency_cycles(&spec, c.id);
            prop_assert!(
                stats.max_latency <= bound,
                "{}: measured {} > bound {}",
                c.id, stats.max_latency, bound
            );
            let max_ns = stats.max_latency as f64 * cycle_ns;
            prop_assert!(max_ns <= c.max_latency_ns as f64);
        }
    }

    /// Composability holds for arbitrary generated systems, not just the
    /// paper workload.
    #[test]
    fn random_workloads_are_composable((seed, cols, rows, conns) in small_workloads()) {
        let topo = Topology::mesh(cols, rows, 2);
        let params = WorkloadParams {
            apps: 2,
            connections: conns,
            ips: (2 * cols * rows).max(4),
            bw_min_mb: 5,
            bw_max_mb: 100,
            lat_min_ns: 80,
            lat_max_ns: 900,
            message_bytes: 16,
            ni_load_cap: 0.5,
        };
        let spec = random_workload(topo, NocConfig::paper_default(), params, seed);
        let system = AeliteSystem::design(spec).expect("designs");
        let result = system.verify_composability(aelite_core::SimOptions {
            duration_cycles: 10_000,
            ..aelite_core::SimOptions::default()
        });
        prop_assert!(result.is_composable(), "{}", result);
    }
}
