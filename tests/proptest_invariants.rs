//! Property-based tests of the core invariants (`DESIGN.md` section 5),
//! exercised over randomly generated workloads, slot sets, routes and
//! clock phases.

use aelite_alloc::table::{gaps, worst_window};
use aelite_alloc::{allocate, validate_allocation};
use aelite_core::AeliteSystem;
use aelite_noc::codec::{pack_header, route_capacity_hops, unpack_header};
use aelite_noc::flitsim::{FlitSim, FlitSimConfig};
use aelite_noc::phit::{Header, RouteBits};
use aelite_sim::bisync::BisyncFifo;
use aelite_sim::time::{SimDuration, SimTime};
use aelite_spec::generate::{random_workload, WorkloadParams};
use aelite_spec::ids::{ConnId, Port};
use aelite_spec::topology::Topology;
use aelite_spec::NocConfig;
use proptest::prelude::*;

/// Strategy: a sorted, deduplicated, non-empty slot set within a table.
fn slot_sets() -> impl Strategy<Value = (Vec<u32>, u32)> {
    (4u32..=64).prop_flat_map(|size| {
        proptest::collection::btree_set(0..size, 1..=(size as usize).min(16))
            .prop_map(move |set| (set.into_iter().collect(), size))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gaps always sum to exactly one table revolution.
    #[test]
    fn gaps_sum_to_table_size((slots, size) in slot_sets()) {
        let g = gaps(&slots, size);
        prop_assert_eq!(g.iter().sum::<u32>(), size);
        prop_assert_eq!(g.len(), slots.len());
    }

    /// `worst_window` matches a brute-force computation over all starting
    /// positions and window lengths.
    #[test]
    fn worst_window_matches_brute_force((slots, size) in slot_sets(), m in 1u32..6) {
        let fast = worst_window(&slots, size, m);
        // Brute force: for each reserved slot, sum m consecutive gaps.
        let g = gaps(&slots, size);
        let n = g.len();
        let mut brute = 0u32;
        for start in 0..n {
            let mut acc = 0;
            for k in 0..(m as usize) {
                acc += g[(start + k) % n];
            }
            brute = brute.max(acc);
        }
        prop_assert_eq!(fast, brute);
    }

    /// worst_window is monotone in the number of flits.
    #[test]
    fn worst_window_monotone_in_flits((slots, size) in slot_sets(), m in 1u32..5) {
        prop_assert!(worst_window(&slots, size, m) <= worst_window(&slots, size, m + 1));
    }

    /// Adding a slot never worsens the single-flit worst window.
    #[test]
    fn extra_slot_never_hurts((slots, size) in slot_sets()) {
        if (slots.len() as u32) < size {
            let free = (0..size).find(|s| !slots.contains(s)).expect("space left");
            let mut more = slots.clone();
            more.push(free);
            more.sort_unstable();
            prop_assert!(worst_window(&more, size, 1) <= worst_window(&slots, size, 1));
        }
    }

    /// Header wire-format round-trips for every representable route.
    #[test]
    fn codec_roundtrip(
        ports in proptest::collection::vec(0u8..8, 0..=8),
        conn in 0u32..256,
        width in prop_oneof![Just(32u32), Just(64), Just(128), Just(256)],
    ) {
        prop_assume!(ports.len() <= route_capacity_hops(width));
        let route: Vec<Port> = ports.iter().map(|&p| Port(p)).collect();
        let header = Header {
            route: RouteBits::from_ports(&route),
            conn: ConnId::new(conn),
        };
        let bits = pack_header(&header, width).expect("fits");
        let back = unpack_header(bits, width, route.len()).expect("unpacks");
        prop_assert_eq!(back, header);
    }

    /// The bi-synchronous FIFO preserves order and never loses or
    /// duplicates words, for any monotone push/pop schedule.
    #[test]
    fn bisync_fifo_preserves_order(
        delay_ps in 0u64..5_000,
        // Push gaps (ps) and pop gaps (ps), interleaved by timestamp.
        push_gaps in proptest::collection::vec(1u64..3_000, 1..20),
        pop_extra in 0u64..10_000,
    ) {
        let mut fifo = BisyncFifo::new("prop", push_gaps.len(), SimDuration::from_ps(delay_ps));
        let mut t = 0;
        for (i, gap) in push_gaps.iter().enumerate() {
            t += gap;
            fifo.push(SimTime::from_ps(t), i as u32);
        }
        // Pop everything after the last word is surely visible.
        let drain = SimTime::from_ps(t + delay_ps + pop_extra);
        let mut out = Vec::new();
        while let Some(v) = fifo.pop_visible(drain) {
            out.push(v);
        }
        let expect: Vec<u32> = (0..push_gaps.len() as u32).collect();
        prop_assert_eq!(out, expect);
    }
}

/// Strategy: a small random workload spec that the generator accepts.
fn small_workloads() -> impl Strategy<Value = (u64, u32, u32, u32)> {
    // (seed, cols, rows, connections)
    (0u64..1_000, 2u32..=4, 1u32..=3, 4u32..=24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every workload the generator accepts is allocatable, the
    /// allocation passes independent validation, and simulation honours
    /// every contract and analytical bound.
    #[test]
    fn random_workloads_allocate_validate_and_simulate(
        (seed, cols, rows, conns) in small_workloads()
    ) {
        let topo = Topology::mesh(cols, rows, 2);
        let ips = (topo.ni_count() as u32).max(4);
        let params = WorkloadParams {
            apps: 2,
            connections: conns,
            ips,
            bw_min_mb: 5,
            bw_max_mb: 150,
            lat_min_ns: 60,
            lat_max_ns: 900,
            message_bytes: 16,
            ni_load_cap: 0.5,
        };
        let spec = random_workload(topo, NocConfig::paper_default(), params, seed);
        let alloc = allocate(&spec).expect("generator guarantees allocatability headroom");
        validate_allocation(&spec, &alloc).expect("allocation must validate");

        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 20_000,
            ..FlitSimConfig::default()
        });
        let cycle_ns = spec.config().cycle_ns();
        for c in spec.connections() {
            let stats = report.conn(c.id);
            prop_assert!(stats.flits > 0, "{} never delivered", c.id);
            let bound = alloc.worst_case_latency_cycles(&spec, c.id);
            prop_assert!(
                stats.max_latency <= bound,
                "{}: measured {} > bound {}",
                c.id, stats.max_latency, bound
            );
            let max_ns = stats.max_latency as f64 * cycle_ns;
            prop_assert!(max_ns <= c.max_latency_ns as f64);
        }
    }

    /// Composability holds for arbitrary generated systems, not just the
    /// paper workload.
    #[test]
    fn random_workloads_are_composable((seed, cols, rows, conns) in small_workloads()) {
        let topo = Topology::mesh(cols, rows, 2);
        let params = WorkloadParams {
            apps: 2,
            connections: conns,
            ips: (2 * cols * rows).max(4),
            bw_min_mb: 5,
            bw_max_mb: 100,
            lat_min_ns: 80,
            lat_max_ns: 900,
            message_bytes: 16,
            ni_load_cap: 0.5,
        };
        let spec = random_workload(topo, NocConfig::paper_default(), params, seed);
        let system = AeliteSystem::design(spec).expect("designs");
        let result = system.verify_composability(aelite_core::SimOptions {
            duration_cycles: 10_000,
            ..aelite_core::SimOptions::default()
        });
        prop_assert!(result.is_composable(), "{}", result);
    }
}
