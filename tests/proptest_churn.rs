//! Property-based tests of the online churn engine: arbitrary
//! interleavings of open/close/use-case-switch operations keep every
//! link's owner array and free mask in lock-step, never double-book a
//! slot, and leave an end state that is a valid allocation of exactly
//! the surviving connection set (which a fresh batch allocation of that
//! set also admits).

use aelite_alloc::{allocate, validate_allocation, Allocation};
use aelite_online::ChurnEngine;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{random_workload, WorkloadParams};
use aelite_spec::ids::{AppId, ConnId, LinkId};
use aelite_spec::topology::Topology;
use aelite_spec::NocConfig;
use proptest::prelude::*;

/// A small but genuinely shared platform: 2×2 mesh, 2 NIs per router,
/// 3 applications, 14 connections.
fn small_spec(seed: u64) -> SystemSpec {
    let params = WorkloadParams {
        apps: 3,
        connections: 14,
        ips: 8,
        bw_min_mb: 10,
        bw_max_mb: 80,
        lat_min_ns: 200,
        lat_max_ns: 2_000,
        message_bytes: 32,
        ni_load_cap: 0.5,
    };
    random_workload(
        Topology::mesh(2, 2, 2),
        NocConfig::paper_default(),
        params,
        seed,
    )
}

/// Every link table's free mask agrees with its owner array, every
/// reserved slot belongs to a *currently granted* connection, and every
/// grant's reservations are exactly where the grant says they are
/// (shift-consistent, no double-booking by construction of ownership).
fn assert_tables_consistent(spec: &SystemSpec, alloc: &Allocation) {
    let shift = spec.config().slots_per_hop();
    let granted: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
    for li in 0..spec.topology().link_count() {
        let table = alloc.link_table(LinkId::new(li as u32));
        for s in 0..table.size() {
            // Lock-step: the mask and the owner vector never disagree.
            assert_eq!(
                table.is_free(s),
                table.owner(s).is_none(),
                "link {li} slot {s}: free mask out of lock-step"
            );
            if let Some(owner) = table.owner(s) {
                assert!(
                    granted.contains(&owner),
                    "link {li} slot {s}: owned by closed {owner}"
                );
            }
        }
    }
    for g in alloc.grants() {
        for (i, &l) in g.links.iter().enumerate() {
            for &s in &g.inject_slots {
                assert_eq!(
                    alloc.link_table(l).owner(s + i as u32 * shift),
                    Some(g.conn),
                    "grant of {} not present on link {i}",
                    g.conn
                );
            }
        }
    }
}

/// One scripted churn step, decoded from two proptest draws.
fn apply_step(
    spec: &SystemSpec,
    engine: &mut ChurnEngine,
    alloc: &mut Allocation,
    open: &mut [bool],
    kind: u8,
    pick: u16,
) {
    let n = spec.connections().len();
    match kind % 8 {
        // Toggle a pseudo-random connection (the common single-op churn).
        0..=5 => {
            let pos = pick as usize % n;
            let id = spec.connections()[pos].id;
            if open[pos] {
                assert!(engine.close(alloc, id));
                open[pos] = false;
            } else if engine.open(spec, alloc, id).is_ok() {
                open[pos] = true;
            }
        }
        // Use-case switch: one app's open set out, another's closed set
        // in. Rejected switches roll back — both sides stay closed.
        _ => {
            let apps = spec.apps().len();
            let victim = AppId::new(pick as u32 % apps as u32);
            let incoming = AppId::new((pick as u32 + 1) % apps as u32);
            let close: Vec<ConnId> = spec
                .connections()
                .iter()
                .enumerate()
                .filter(|(pos, c)| c.app == victim && open[*pos])
                .map(|(_, c)| c.id)
                .collect();
            let adds: Vec<ConnId> = spec
                .connections()
                .iter()
                .enumerate()
                .filter(|(pos, c)| c.app == incoming && !open[*pos])
                .map(|(_, c)| c.id)
                .collect();
            let ok = engine.switch(spec, alloc, &close, &adds).is_ok();
            for (pos, c) in spec.connections().iter().enumerate() {
                if close.contains(&c.id) {
                    open[pos] = false;
                }
                if adds.contains(&c.id) {
                    open[pos] = ok;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine invariants hold after *every* operation of an
    /// arbitrary interleaving, and the end state is a valid allocation
    /// of exactly the surviving set.
    #[test]
    fn interleaved_churn_preserves_invariants(
        seed in 0u64..4,
        script in proptest::collection::vec((0u8..8, 0u16..1024), 1..40),
    ) {
        let spec = small_spec(seed);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = ChurnEngine::new(&spec);
        let mut open = vec![false; spec.connections().len()];

        for &(kind, pick) in &script {
            apply_step(&spec, &mut engine, &mut alloc, &mut open, kind, pick);
            // Lock-step and ownership invariants after every single op.
            assert_tables_consistent(&spec, &alloc);
            // The engine's view and the shadow state agree.
            for (pos, c) in spec.connections().iter().enumerate() {
                prop_assert_eq!(alloc.grant(c.id).is_some(), open[pos], "{} state", c.id);
            }
        }

        // End state: a valid allocation of exactly the surviving set...
        let surviving: Vec<ConnId> = spec
            .connections()
            .iter()
            .enumerate()
            .filter(|(pos, _)| open[*pos])
            .map(|(_, c)| c.id)
            .collect();
        let view = spec.restricted_to_connections(&surviving);
        validate_allocation(&view, &alloc)
            .unwrap_or_else(|v| panic!("end state invalid: {v:?}"));
        // ... and the surviving set is batch-allocatable from scratch
        // (slot placements may differ; validity is the contract).
        if !surviving.is_empty() {
            let fresh = allocate(&view).expect("surviving set batch-allocates");
            validate_allocation(&view, &fresh).expect("fresh allocation valid");
            for &c in &surviving {
                prop_assert!(fresh.grant(c).is_some());
            }
        }
    }

    /// Closing every open connection returns every link table to fully
    /// free — no leaked reservations, mask and owners in lock-step.
    #[test]
    fn draining_the_system_frees_every_slot(
        seed in 0u64..4,
        script in proptest::collection::vec((0u8..8, 0u16..1024), 1..30),
    ) {
        let spec = small_spec(seed);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = ChurnEngine::new(&spec);
        let mut open = vec![false; spec.connections().len()];
        for &(kind, pick) in &script {
            apply_step(&spec, &mut engine, &mut alloc, &mut open, kind, pick);
        }
        for (pos, c) in spec.connections().iter().enumerate() {
            if open[pos] {
                prop_assert!(engine.close(&mut alloc, c.id));
            }
        }
        for li in 0..spec.topology().link_count() {
            let table = alloc.link_table(LinkId::new(li as u32));
            prop_assert_eq!(table.reserved_count(), 0, "link {} not drained", li);
            for s in 0..table.size() {
                prop_assert!(table.is_free(s) && table.owner(s).is_none());
            }
        }
    }
}
