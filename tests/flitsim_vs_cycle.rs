//! Cross-validation of the three simulators: the fast flit-level
//! simulator must predict *exactly* the delivery cycles the
//! cycle-accurate network produces — and the compiled turbo kernel must
//! reproduce the event-driven build bit for bit — for both the
//! synchronous and the mesochronous organisation, from the 2×2 mesh up
//! to the 4×4/8×8 `scaled_workload` platforms.
//!
//! This is the test that justifies running the 200-connection experiment
//! at flit level (see `aelite-noc::flitsim` docs and `DESIGN.md`), and
//! that cross-pins analytical flitsim, event-driven simulation and the
//! turbo engine on the same scenarios.

use aelite_alloc::allocate;
use aelite_core::timelines;
use aelite_noc::flitsim::{FlitSim, FlitSimConfig};
use aelite_noc::network::{build_network, NetworkKind};
use aelite_noc::turbo::build_turbo;
use aelite_spec::app::{SystemSpec, SystemSpecBuilder};
use aelite_spec::config::NocConfig;
use aelite_spec::generate::scaled_workload;
use aelite_spec::ids::NiId;
use aelite_spec::topology::Topology;
use aelite_spec::traffic::{Bandwidth, TrafficPattern};

/// A 2x2 spec whose CBR intervals are exact integers (message 16 B at
/// 125 MB/s and 500 MHz -> one message per 64 cycles), so both simulators
/// generate identical arrival schedules.
fn spec(stages: u32) -> SystemSpec {
    let topo = Topology::mesh(2, 2, 1);
    let mut cfg = NocConfig::paper_default();
    cfg.link_pipeline_stages = stages;
    let mut b = SystemSpecBuilder::new(topo, cfg);
    let app = b.add_app("a");
    let ips: Vec<_> = (0..4).map(|i| b.add_ip_at(NiId::new(i))).collect();
    b.add_connection(
        app,
        ips[0],
        ips[3],
        Bandwidth::from_mbytes_per_sec(125),
        900,
    );
    b.add_connection(
        app,
        ips[1],
        ips[2],
        Bandwidth::from_mbytes_per_sec(125),
        900,
    );
    b.add_connection(
        app,
        ips[3],
        ips[0],
        Bandwidth::from_mbytes_per_sec(125),
        900,
    );
    b.build()
}

fn flit_level_timelines(spec: &SystemSpec, duration: u64) -> Vec<(u32, Vec<u64>)> {
    let alloc = allocate(spec).expect("allocatable");
    let report = FlitSim::new(spec, &alloc).run(FlitSimConfig {
        duration_cycles: duration,
        record_timestamps: true,
        ..FlitSimConfig::default()
    });
    timelines(&report)
        .into_iter()
        .map(|t| (t.conn.index() as u32, t.deliveries))
        .collect()
}

fn cycle_level_timelines(
    spec: &SystemSpec,
    kind: NetworkKind,
    duration: u64,
) -> Vec<(u32, Vec<u64>)> {
    let alloc = allocate(spec).expect("allocatable");
    let mut net = build_network(spec, &alloc, kind, true);
    net.run_cycles(duration);
    spec.connections()
        .iter()
        .map(|c| (c.id.index() as u32, net.delivery_cycles(c.id)))
        .collect()
}

fn assert_equivalent(flit: &[(u32, Vec<u64>)], cycle: &[(u32, Vec<u64>)]) {
    for ((fc, fts), (cc, cts)) in flit.iter().zip(cycle) {
        assert_eq!(fc, cc);
        // The flit simulator truncates flits landing after its window;
        // the cycle run may have a few extra at the tail.
        assert!(
            cts.len() >= fts.len(),
            "c{fc}: cycle run delivered fewer flits ({} vs {})",
            cts.len(),
            fts.len()
        );
        assert_eq!(
            &cts[..fts.len()],
            fts.as_slice(),
            "c{fc}: delivery cycles diverge"
        );
        assert!(!fts.is_empty(), "c{fc}: no deliveries to compare");
    }
}

fn turbo_level_timelines(
    spec: &SystemSpec,
    kind: NetworkKind,
    duration: u64,
) -> Vec<(u32, Vec<u64>)> {
    let alloc = allocate(spec).expect("allocatable");
    let mut net = build_turbo(spec, &alloc, kind, true);
    net.run_cycles(duration);
    spec.connections()
        .iter()
        .map(|c| (c.id.index() as u32, net.delivery_cycles(c.id)))
        .collect()
}

#[test]
fn synchronous_network_matches_flit_simulator_exactly() {
    let s = spec(0);
    let flit = flit_level_timelines(&s, 6_000);
    let cycle = cycle_level_timelines(&s, NetworkKind::Synchronous, 6_600);
    assert_equivalent(&flit, &cycle);
    // Third leg of the cross-pin: the turbo kernel on the same scenario.
    let turbo = turbo_level_timelines(&s, NetworkKind::Synchronous, 6_600);
    assert_eq!(cycle, turbo, "turbo diverges from the event engine");
}

#[test]
fn mesochronous_network_matches_flit_simulator_exactly() {
    let s = spec(1);
    let flit = flit_level_timelines(&s, 6_000);
    for seed in [5u64, 77] {
        let kind = NetworkKind::Mesochronous { phase_seed: seed };
        let cycle = cycle_level_timelines(&s, kind, 6_600);
        assert_equivalent(&flit, &cycle);
        let turbo = turbo_level_timelines(&s, kind, 6_600);
        assert_eq!(cycle, turbo, "turbo diverges from the event engine");
    }
}

/// Saturating variant of a `scaled_workload` platform: every connection
/// offers unbounded load, so the flit-level simulator's arrival
/// schedule and a pre-filled cycle-accurate queue agree exactly
/// (random CBR intervals would not — the two generators quantise
/// arrivals differently).
fn saturated_scaled(cols: u32, rows: u32, conns: u32, stages: u32) -> SystemSpec {
    let spec = scaled_workload(cols, rows, 4, conns, 1).with_pattern(TrafficPattern::Saturating);
    if stages == 0 {
        spec
    } else {
        // Mesochronous hops cost an extra TDM slot; give the contracts
        // drawn for the synchronous organisation a 2x latency margin.
        spec.with_link_pipeline_stages(stages, 2)
    }
}

/// Cross-pins all three simulators on one saturated scenario: flitsim
/// timestamps must be a prefix of the event-driven delivery cycles, and
/// the turbo kernel must equal the event engine bit for bit.
fn assert_three_way(spec: &SystemSpec, kind: NetworkKind, flit_duration: u64, cycle_duration: u64) {
    let alloc = allocate(spec).expect("allocatable");
    let flit_report = FlitSim::new(spec, &alloc).run(FlitSimConfig {
        duration_cycles: flit_duration,
        record_timestamps: true,
        ..FlitSimConfig::default()
    });

    // Saturate the cycle-level engines by pre-filling every queue with
    // enough single-flit messages to cover every possible slot.
    let payload = spec.config().payload_words_per_flit();
    let messages = cycle_duration / u64::from(spec.config().slot_cycles()) + 1;
    let mut event = build_network(spec, &alloc, kind, false);
    let mut turbo = build_turbo(spec, &alloc, kind, false);
    for c in spec.connections() {
        for seq in 0..messages {
            let m = aelite_noc::ni::Message {
                seq: seq as u32,
                words: payload,
                ready_cycle: 0,
            };
            event.queue(c.id).borrow_mut().push_back(m);
            turbo.queue(c.id).borrow_mut().push_back(m);
        }
    }
    event.run_cycles(cycle_duration);
    turbo.run_cycles(cycle_duration);

    for c in spec.connections() {
        let fts = &flit_report.conn(c.id).timestamps;
        let cts = event.delivery_cycles(c.id);
        assert!(!fts.is_empty(), "{}: no flit-level deliveries", c.id);
        assert!(
            cts.len() >= fts.len(),
            "{}: cycle run delivered fewer flits ({} vs {})",
            c.id,
            cts.len(),
            fts.len()
        );
        assert_eq!(&cts[..fts.len()], fts.as_slice(), "{}: diverge", c.id);
        assert_eq!(
            *event.log(c.id).borrow(),
            *turbo.log(c.id).borrow(),
            "{}: turbo diverges from the event engine",
            c.id
        );
    }
}

#[test]
fn scaled_4x4_synchronous_three_way_cross_pin() {
    let s = saturated_scaled(4, 4, 500, 0);
    assert_three_way(&s, NetworkKind::Synchronous, 2_400, 3_000);
}

#[test]
fn scaled_4x4_mesochronous_three_way_cross_pin() {
    let s = saturated_scaled(4, 4, 500, 1);
    assert_three_way(
        &s,
        NetworkKind::Mesochronous { phase_seed: 13 },
        2_400,
        3_000,
    );
}

#[test]
fn scaled_8x8_synchronous_three_way_cross_pin() {
    let s = saturated_scaled(8, 8, 1000, 0);
    assert_three_way(&s, NetworkKind::Synchronous, 1_800, 2_400);
}

#[test]
fn scaled_8x8_mesochronous_three_way_cross_pin() {
    let s = saturated_scaled(8, 8, 1000, 1);
    assert_three_way(
        &s,
        NetworkKind::Mesochronous { phase_seed: 29 },
        1_800,
        2_400,
    );
}

#[test]
fn equivalence_holds_under_saturating_sources() {
    // Saturating sources exercise the credit path of both simulators.
    let topo = Topology::mesh(2, 1, 1);
    let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
    let app = b.add_app("a");
    let s0 = b.add_ip_at(NiId::new(0));
    let d0 = b.add_ip_at(NiId::new(1));
    b.add_connection_with(
        app,
        s0,
        d0,
        Bandwidth::from_mbytes_per_sec(60),
        2_000,
        aelite_spec::traffic::TrafficPattern::Saturating,
        16,
    );
    let s = b.build();
    let alloc = allocate(&s).expect("allocatable");
    let conn = s.connections()[0].id;

    let flit_report = FlitSim::new(&s, &alloc).run(FlitSimConfig {
        duration_cycles: 6_000,
        record_timestamps: true,
        ..FlitSimConfig::default()
    });

    // The cycle net has no saturating generator; emulate by pre-filling
    // the queue with enough back-to-back messages.
    let mut net = build_network(&s, &alloc, NetworkKind::Synchronous, false);
    for seq in 0..2_000 {
        net.queue(conn)
            .borrow_mut()
            .push_back(aelite_noc::ni::Message {
                seq,
                words: 4,
                ready_cycle: 0,
            });
    }
    net.run_cycles(6_600);
    let cts = net.delivery_cycles(conn);
    let fts = &flit_report.conn(conn).timestamps;
    assert!(cts.len() >= fts.len());
    assert_eq!(&cts[..fts.len()], fts.as_slice());
}
