//! Cross-validation of the two simulators: the fast flit-level simulator
//! must predict *exactly* the delivery cycles the cycle-accurate network
//! produces, for both the synchronous and the mesochronous organisation.
//!
//! This is the test that justifies running the 200-connection experiment
//! at flit level (see `aelite-noc::flitsim` docs and `DESIGN.md`).

use aelite_alloc::allocate;
use aelite_core::timelines;
use aelite_noc::flitsim::{FlitSim, FlitSimConfig};
use aelite_noc::network::{build_network, NetworkKind};
use aelite_spec::app::{SystemSpec, SystemSpecBuilder};
use aelite_spec::config::NocConfig;
use aelite_spec::ids::NiId;
use aelite_spec::topology::Topology;
use aelite_spec::traffic::Bandwidth;

/// A 2x2 spec whose CBR intervals are exact integers (message 16 B at
/// 125 MB/s and 500 MHz -> one message per 64 cycles), so both simulators
/// generate identical arrival schedules.
fn spec(stages: u32) -> SystemSpec {
    let topo = Topology::mesh(2, 2, 1);
    let mut cfg = NocConfig::paper_default();
    cfg.link_pipeline_stages = stages;
    let mut b = SystemSpecBuilder::new(topo, cfg);
    let app = b.add_app("a");
    let ips: Vec<_> = (0..4).map(|i| b.add_ip_at(NiId::new(i))).collect();
    b.add_connection(
        app,
        ips[0],
        ips[3],
        Bandwidth::from_mbytes_per_sec(125),
        900,
    );
    b.add_connection(
        app,
        ips[1],
        ips[2],
        Bandwidth::from_mbytes_per_sec(125),
        900,
    );
    b.add_connection(
        app,
        ips[3],
        ips[0],
        Bandwidth::from_mbytes_per_sec(125),
        900,
    );
    b.build()
}

fn flit_level_timelines(spec: &SystemSpec, duration: u64) -> Vec<(u32, Vec<u64>)> {
    let alloc = allocate(spec).expect("allocatable");
    let report = FlitSim::new(spec, &alloc).run(FlitSimConfig {
        duration_cycles: duration,
        record_timestamps: true,
        ..FlitSimConfig::default()
    });
    timelines(&report)
        .into_iter()
        .map(|t| (t.conn.index() as u32, t.deliveries))
        .collect()
}

fn cycle_level_timelines(
    spec: &SystemSpec,
    kind: NetworkKind,
    duration: u64,
) -> Vec<(u32, Vec<u64>)> {
    let alloc = allocate(spec).expect("allocatable");
    let mut net = build_network(spec, &alloc, kind, true);
    net.run_cycles(duration);
    spec.connections()
        .iter()
        .map(|c| (c.id.index() as u32, net.delivery_cycles(c.id)))
        .collect()
}

fn assert_equivalent(flit: &[(u32, Vec<u64>)], cycle: &[(u32, Vec<u64>)]) {
    for ((fc, fts), (cc, cts)) in flit.iter().zip(cycle) {
        assert_eq!(fc, cc);
        // The flit simulator truncates flits landing after its window;
        // the cycle run may have a few extra at the tail.
        assert!(
            cts.len() >= fts.len(),
            "c{fc}: cycle run delivered fewer flits ({} vs {})",
            cts.len(),
            fts.len()
        );
        assert_eq!(
            &cts[..fts.len()],
            fts.as_slice(),
            "c{fc}: delivery cycles diverge"
        );
        assert!(!fts.is_empty(), "c{fc}: no deliveries to compare");
    }
}

#[test]
fn synchronous_network_matches_flit_simulator_exactly() {
    let s = spec(0);
    let flit = flit_level_timelines(&s, 6_000);
    let cycle = cycle_level_timelines(&s, NetworkKind::Synchronous, 6_600);
    assert_equivalent(&flit, &cycle);
}

#[test]
fn mesochronous_network_matches_flit_simulator_exactly() {
    let s = spec(1);
    let flit = flit_level_timelines(&s, 6_000);
    for seed in [5u64, 77] {
        let cycle =
            cycle_level_timelines(&s, NetworkKind::Mesochronous { phase_seed: seed }, 6_600);
        assert_equivalent(&flit, &cycle);
    }
}

#[test]
fn equivalence_holds_under_saturating_sources() {
    // Saturating sources exercise the credit path of both simulators.
    let topo = Topology::mesh(2, 1, 1);
    let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
    let app = b.add_app("a");
    let s0 = b.add_ip_at(NiId::new(0));
    let d0 = b.add_ip_at(NiId::new(1));
    b.add_connection_with(
        app,
        s0,
        d0,
        Bandwidth::from_mbytes_per_sec(60),
        2_000,
        aelite_spec::traffic::TrafficPattern::Saturating,
        16,
    );
    let s = b.build();
    let alloc = allocate(&s).expect("allocatable");
    let conn = s.connections()[0].id;

    let flit_report = FlitSim::new(&s, &alloc).run(FlitSimConfig {
        duration_cycles: 6_000,
        record_timestamps: true,
        ..FlitSimConfig::default()
    });

    // The cycle net has no saturating generator; emulate by pre-filling
    // the queue with enough back-to-back messages.
    let mut net = build_network(&s, &alloc, NetworkKind::Synchronous, false);
    for seq in 0..2_000 {
        net.queue(conn)
            .borrow_mut()
            .push_back(aelite_noc::ni::Message {
                seq,
                words: 4,
                ready_cycle: 0,
            });
    }
    net.run_cycles(6_600);
    let cts = net.delivery_cycles(conn);
    let fts = &flit_report.conn(conn).timestamps;
    assert!(cts.len() >= fts.len());
    assert_eq!(&cts[..fts.len()], fts.as_slice());
}
