//! Property-based tests of the cycle-accurate hardware models: the
//! mesochronous link stage under arbitrary legal skews and traffic
//! patterns, and wrapped (asynchronous) elements under arbitrary
//! plesiochronous offsets.

use aelite_noc::meso::{meso_fifo, MesoFsm, MesoWriter, MESO_FIFO_WORDS};
use aelite_noc::phit::LinkWord;
use aelite_noc::testbench::{flit, probe_log, Feeder, Probe};
use aelite_noc::wrapper::{token_channel, token_delivery_log, token_queue, AsyncNi, AsyncRouter};
use aelite_sim::clock::ClockSpec;
use aelite_sim::scheduler::Simulator;
use aelite_sim::time::{Frequency, SimDuration, SimTime};
use aelite_spec::ids::Port;
use proptest::prelude::*;

/// A script of flits separated by idle slots (gap in slots per flit).
fn traffic_script(gaps: &[u8]) -> Vec<LinkWord> {
    let mut script = Vec::new();
    for (i, &gap) in gaps.iter().enumerate() {
        for _ in 0..gap {
            script.extend([LinkWord::idle(); 3]);
        }
        script.extend(flit(&[Port(0)], 0, i as u64 * 10));
    }
    script
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any skew below half a period and any flit/idle pattern, the
    /// mesochronous stage delivers every flit, gapless within the flit,
    /// aligned to the receiver's flit cycles, in order, with the FIFO
    /// within its 4-word sizing.
    #[test]
    fn meso_stage_realigns_any_legal_traffic(
        skew_ps in 0u64..1_000,
        gaps in proptest::collection::vec(0u8..4, 1..12),
    ) {
        let f = Frequency::from_mhz(500); // 2000 ps period
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let tx = sim.add_domain(ClockSpec::new(f));
        let rx = sim.add_domain(ClockSpec::new(f).with_phase(SimDuration::from_ps(skew_ps)));
        let pre = sim.add_wire("pre");
        let post = sim.add_wire("post");
        let fifo = meso_fifo("stage", f.period());
        sim.add_module(tx, Feeder::new(pre, traffic_script(&gaps)));
        sim.add_module(tx, MesoWriter::new("wr", pre, fifo.clone()));
        sim.add_module(rx, MesoFsm::new("fsm", fifo.clone(), post, 3));
        let log = probe_log();
        sim.add_module(rx, Probe::new(post, std::rc::Rc::clone(&log)));
        sim.run_until(SimTime::from_ns(2_000));

        let log = log.borrow();
        prop_assert_eq!(log.len(), gaps.len() * 3, "every word arrives");
        for chunk in log.chunks(3) {
            // Words of one flit on consecutive cycles, starting at the
            // cycle after a flit-cycle boundary (probe offset +1).
            prop_assert_eq!(chunk[0].0 % 3, 1, "unaligned flit at {:?}", chunk);
            prop_assert_eq!(chunk[1].0, chunk[0].0 + 1);
            prop_assert_eq!(chunk[2].0, chunk[0].0 + 2);
            prop_assert!(chunk[0].1.is_head());
            prop_assert!(chunk[2].1.eop);
        }
        // In order: tags increase across flits.
        let tags: Vec<u64> = log
            .chunks(3)
            .map(|c| match c[1].1.payload {
                aelite_noc::phit::Payload::Data(t) => t,
                ref other => panic!("expected data, got {other:?}"),
            })
            .collect();
        prop_assert!(tags.windows(2).all(|w| w[0] < w[1]), "{:?}", tags);
        prop_assert!(fifo.with(|f| f.max_occupancy()) <= MESO_FIFO_WORDS);
    }

    /// A wrapped NI -> router -> NI chain delivers all offered flits in
    /// order for any plesiochronous ppm offsets within +-3%.
    #[test]
    fn wrapper_chain_delivers_for_any_plesiochronous_offsets(
        ppm in proptest::collection::vec(-30_000i64..30_000, 3),
        n_flits in 1u32..12,
    ) {
        let f = Frequency::from_mhz(500);
        let lat = SimDuration::from_ps(500);
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let d_ni0 = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[0]));
        let d_r = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[1]));
        let d_ni1 = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[2]));
        let ni0_r = token_channel("ni0->r", 2, lat, 1);
        let r_ni0 = token_channel("r->ni0", 2, lat, 1);
        let ni1_r = token_channel("ni1->r", 2, lat, 1);
        let r_ni1 = token_channel("r->ni1", 2, lat, 1);
        let q = token_queue();
        for i in 0..n_flits {
            let words = flit(&[Port(1)], 0, u64::from(i) * 10);
            q.borrow_mut().push_back([words[0], words[1], words[2]]);
        }
        let log = token_delivery_log();
        sim.add_module(
            d_ni0,
            AsyncNi::new("ni0", ni0_r.clone(), r_ni0.clone(), 3, 2, &[vec![0]],
                vec![std::rc::Rc::clone(&q)], token_delivery_log()),
        );
        sim.add_module(
            d_ni1,
            AsyncNi::new("ni1", ni1_r.clone(), r_ni1.clone(), 3, 2, &[vec![]],
                vec![token_queue()], std::rc::Rc::clone(&log)),
        );
        sim.add_module(d_r, AsyncRouter::new("r", vec![ni0_r, ni1_r], vec![r_ni0, r_ni1], 3));
        sim.run_until(SimTime::from_us(4));
        let log = log.borrow();
        prop_assert_eq!(log.len(), n_flits as usize, "every token arrives");
        prop_assert!(log.windows(2).all(|w| w[0].time < w[1].time));
    }
}

#[test]
fn wrapped_2x2_grid_with_crossing_traffic() {
    // Four wrapped NIs around a wrapped 2x2 router fabric: two crossing
    // connections with disjoint TDM slots, all six elements on different
    // plesiochronous clocks — everything arrives, nothing contends.
    let f = Frequency::from_mhz(500);
    let lat = SimDuration::from_ps(500);
    let mut sim: Simulator<LinkWord> = Simulator::new();
    let ppm = [-9_000i64, 4_000, -2_000, 7_000, 1_000, -5_000];
    let domains: Vec<_> = ppm
        .iter()
        .map(|&p| sim.add_domain(ClockSpec::new(f).with_ppm(p)))
        .collect();

    // Routers r0 (ports: ni0, ni1, r1) and r1 (ports: ni2, ni3, r0).
    let ch = |name: &str| token_channel(name, 2, lat, 1);
    let ni0_r0 = ch("ni0->r0");
    let r0_ni0 = ch("r0->ni0");
    let ni1_r0 = ch("ni1->r0");
    let r0_ni1 = ch("r0->ni1");
    let ni2_r1 = ch("ni2->r1");
    let r1_ni2 = ch("r1->ni2");
    let ni3_r1 = ch("ni3->r1");
    let r1_ni3 = ch("r1->ni3");
    let r0_r1 = ch("r0->r1");
    let r1_r0 = ch("r1->r0");

    // Connection X: ni0 -> (r0 port 2) -> (r1 port 0) -> ni2, slot 0.
    // Connection Y: ni1 -> (r0 port 2) -> (r1 port 1) -> ni3, slot 1.
    let qx = token_queue();
    let qy = token_queue();
    for i in 0..10u64 {
        let wx = flit(&[Port(2), Port(0)], 0, i);
        qx.borrow_mut().push_back([wx[0], wx[1], wx[2]]);
        let wy = flit(&[Port(2), Port(1)], 1, 100 + i);
        qy.borrow_mut().push_back([wy[0], wy[1], wy[2]]);
    }
    let log2 = token_delivery_log();
    let log3 = token_delivery_log();
    sim.add_module(
        domains[0],
        AsyncNi::new(
            "ni0",
            ni0_r0.clone(),
            r0_ni0.clone(),
            3,
            2,
            &[vec![0]],
            vec![qx],
            token_delivery_log(),
        ),
    );
    sim.add_module(
        domains[1],
        AsyncNi::new(
            "ni1",
            ni1_r0.clone(),
            r0_ni1.clone(),
            3,
            2,
            &[vec![1]],
            vec![qy],
            token_delivery_log(),
        ),
    );
    sim.add_module(
        domains[2],
        AsyncNi::new(
            "ni2",
            ni2_r1.clone(),
            r1_ni2.clone(),
            3,
            2,
            &[vec![]],
            vec![token_queue()],
            std::rc::Rc::clone(&log2),
        ),
    );
    sim.add_module(
        domains[3],
        AsyncNi::new(
            "ni3",
            ni3_r1.clone(),
            r1_ni3.clone(),
            3,
            2,
            &[vec![]],
            vec![token_queue()],
            std::rc::Rc::clone(&log3),
        ),
    );
    sim.add_module(
        domains[4],
        AsyncRouter::new(
            "r0",
            vec![ni0_r0, ni1_r0, r1_r0.clone()],
            vec![r0_ni0, r0_ni1, r0_r1.clone()],
            3,
        ),
    );
    sim.add_module(
        domains[5],
        AsyncRouter::new(
            "r1",
            vec![ni2_r1, ni3_r1, r0_r1],
            vec![r1_ni2, r1_ni3, r1_r0],
            3,
        ),
    );
    sim.run_until(SimTime::from_us(10));
    assert_eq!(log2.borrow().len(), 10, "connection X complete");
    assert_eq!(log3.borrow().len(), 10, "connection Y complete");
}
