//! Property-based tests of the fault-recovery engine: arbitrary
//! interleavings of churn (open/close/switch), fault
//! (link/router down/up), transient glitch and clock-advance operations
//! never leave a granted route over an *enforced* down link, keep every
//! slot table in lock-step with its owners, keep the displaced ledger
//! exact (grantless connections only), and — after repairing every link
//! and closing every survivor — leave the platform fully free. Two
//! dedicated properties pin the transient-fault contract: a
//! sub-threshold glitch leaves every slot table bit-for-bit unchanged
//! (before and after it expires), and a threshold-crossing glitch
//! displaces exactly what a permanent `LinkDown` would.

use aelite_alloc::Allocation;
use aelite_online::{FaultEngine, RepairPolicy, DEFAULT_PERSISTENCE_NS};
use aelite_spec::app::SystemSpec;
use aelite_spec::fault::{FaultOp, ScenarioOp};
use aelite_spec::generate::{random_workload, WorkloadParams};
use aelite_spec::ids::{AppId, ConnId, LinkId, RouterId};
use aelite_spec::{ChurnOp, NocConfig, Topology};
use proptest::prelude::*;

/// A small but genuinely shared platform: 2×2 mesh, 2 NIs per router,
/// 3 applications, 14 connections (as `tests/proptest_churn.rs`).
fn small_spec(seed: u64) -> SystemSpec {
    let params = WorkloadParams {
        apps: 3,
        connections: 14,
        ips: 8,
        bw_min_mb: 10,
        bw_max_mb: 80,
        lat_min_ns: 200,
        lat_max_ns: 2_000,
        message_bytes: 32,
        ni_load_cap: 0.5,
    };
    random_workload(
        Topology::mesh(2, 2, 2),
        NocConfig::paper_default(),
        params,
        seed,
    )
}

/// The engine-wide invariants that must hold after *every* operation.
fn assert_fault_invariants(spec: &SystemSpec, engine: &FaultEngine, alloc: &Allocation) {
    // The core contract: no granted route traverses an *enforced* down
    // link — through serial opens, switches, re-routes and re-homing
    // alike. (Grants may ride out sub-threshold glitches, which mask
    // admission without displacing anyone: masked ⊇ enforced.)
    for g in alloc.grants() {
        for &l in &g.links {
            assert!(
                !engine.enforced().is_down(l),
                "{} granted over down link {l}",
                g.conn
            );
        }
    }
    for li in 0..spec.topology().link_count() {
        let l = LinkId::new(li as u32);
        if engine.enforced().is_down(l) {
            assert!(engine.mask().is_down(l), "{l} enforced but not masked");
        }
    }
    // The displaced ledger holds only grantless connections, each once.
    for (i, &c) in engine.displaced().iter().enumerate() {
        assert!(alloc.grant(c).is_none(), "displaced {c} holds a grant");
        assert!(!engine.displaced()[..i].contains(&c), "{c} displaced twice");
    }
    // Slot tables in lock-step: the free mask and owner array agree,
    // and every reserved slot belongs to a live grant.
    let granted: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
    for li in 0..spec.topology().link_count() {
        let table = alloc.link_table(LinkId::new(li as u32));
        for s in 0..table.size() {
            assert_eq!(
                table.is_free(s),
                table.owner(s).is_none(),
                "link {li} slot {s}: free mask out of lock-step"
            );
            if let Some(owner) = table.owner(s) {
                assert!(
                    granted.contains(&owner),
                    "link {li} slot {s}: owned by closed {owner}"
                );
            }
        }
    }
    // Recovery accounting closes: every affected grant either survived
    // (re-routed) or was dropped.
    let s = engine.stats();
    assert_eq!(s.survived() + s.dropped, s.affected);
}

/// One scripted operation, decoded from two proptest draws: mostly
/// churn (as `tests/proptest_churn.rs`), with fault, repair, transient
/// glitch and clock-advance events interleaved.
fn apply_step(
    spec: &SystemSpec,
    engine: &mut FaultEngine,
    alloc: &mut Allocation,
    kind: u8,
    pick: u16,
) {
    let topo = spec.topology();
    match kind % 14 {
        // Toggle a pseudo-random connection (the common single-op churn).
        0..=6 => {
            let conns = spec.connections();
            let id = conns[pick as usize % conns.len()].id;
            let op = if alloc.grant(id).is_some() {
                ChurnOp::Close(id)
            } else {
                ChurnOp::Open(id)
            };
            engine.apply(spec, alloc, &ScenarioOp::Churn(op));
        }
        // Use-case switch: one app's granted set out, another's
        // grantless set in (refusals roll back — that's the engine's
        // contract, re-checked by the invariants).
        7 => {
            let apps = spec.apps().len() as u32;
            let victim = AppId::new(u32::from(pick) % apps);
            let incoming = AppId::new((u32::from(pick) + 1) % apps);
            let close: Vec<ConnId> = spec
                .app_connections(victim)
                .filter(|c| alloc.grant(c.id).is_some())
                .map(|c| c.id)
                .collect();
            let open: Vec<ConnId> = spec
                .app_connections(incoming)
                .filter(|c| alloc.grant(c.id).is_none())
                .map(|c| c.id)
                .collect();
            engine.apply(
                spec,
                alloc,
                &ScenarioOp::Churn(ChurnOp::Switch { close, open }),
            );
        }
        // Fault and repair events on pseudo-random links and routers.
        8 | 9 => {
            let link = LinkId::new(u32::from(pick) % topo.link_count() as u32);
            let op = if kind % 14 == 8 {
                FaultOp::LinkDown(link)
            } else {
                FaultOp::LinkUp(link)
            };
            engine.apply(spec, alloc, &ScenarioOp::Fault(op));
        }
        10 | 11 => {
            let router = RouterId::new(u32::from(pick) % topo.router_count() as u32);
            let op = if kind % 14 == 10 {
                FaultOp::RouterDown(router)
            } else {
                FaultOp::RouterUp(router)
            };
            engine.apply(spec, alloc, &ScenarioOp::Fault(op));
        }
        // A transient glitch whose duration straddles the persistence
        // threshold (sub-threshold glitches mask admission only;
        // escalated ones displace like a LinkDown and self-repair).
        12 => {
            let link = LinkId::new(u32::from(pick) % topo.link_count() as u32);
            let duration_ns = (u64::from(pick) * 37) % (2 * DEFAULT_PERSISTENCE_NS) + 1;
            engine.apply(
                spec,
                alloc,
                &ScenarioOp::Fault(FaultOp::LinkGlitch { link, duration_ns }),
            );
        }
        // Advance the scenario clock: pending glitches expire (and any
        // queued deferred repairs drain first).
        _ => {
            let t = engine.now_ns() + 1 + u64::from(pick) * 50;
            engine.advance_to(spec, alloc, t);
        }
    }
}

/// Semantic snapshot of every slot table: `(is_free, owner)` per slot.
/// (The table types have no `PartialEq`; the semantic content is what
/// the bit-for-bit contracts are about.)
fn table_snapshot(spec: &SystemSpec, alloc: &Allocation) -> Vec<Vec<(bool, Option<ConnId>)>> {
    (0..spec.topology().link_count())
        .map(|li| {
            let t = alloc.link_table(LinkId::new(li as u32));
            (0..t.size()).map(|s| (t.is_free(s), t.owner(s))).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault invariants hold after *every* operation of an
    /// arbitrary churn/fault/glitch interleaving, under both repair
    /// policies.
    #[test]
    fn interleaved_faults_never_grant_over_a_down_link(
        seed in 0u64..4,
        deferred in 0u8..2,
        script in proptest::collection::vec((0u8..14, 0u16..1024), 1..40),
    ) {
        let spec = small_spec(seed);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = FaultEngine::new(&spec);
        if deferred == 1 {
            engine.set_repair_policy(RepairPolicy::Deferred);
        }
        for &(kind, pick) in &script {
            apply_step(&spec, &mut engine, &mut alloc, kind, pick);
            assert_fault_invariants(&spec, &engine, &alloc);
        }
    }

    /// Repairing every link and closing every survivor (and settling
    /// every displaced connection) returns the platform to fully free:
    /// empty mask, empty ledger, no leaked reservation anywhere.
    #[test]
    fn repairing_and_draining_frees_every_slot(
        seed in 0u64..4,
        deferred in 0u8..2,
        script in proptest::collection::vec((0u8..14, 0u16..1024), 1..30),
    ) {
        let spec = small_spec(seed);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = FaultEngine::new(&spec);
        if deferred == 1 {
            engine.set_repair_policy(RepairPolicy::Deferred);
        }
        for &(kind, pick) in &script {
            apply_step(&spec, &mut engine, &mut alloc, kind, pick);
        }

        // Repair the world: every down link comes back up (cancelling
        // any pending glitch on it), and queued deferred re-homes drain
        // as one batched round.
        for li in 0..spec.topology().link_count() {
            engine.link_up(&spec, &mut alloc, LinkId::new(li as u32));
        }
        engine.drain_repairs(&spec, &mut alloc);
        prop_assert!(engine.mask().is_empty());

        // Drain: close every grant; a close of a displaced connection
        // settles it out of the ledger.
        let open: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
        let parked: Vec<ConnId> = engine.displaced().to_vec();
        for c in open.into_iter().chain(parked) {
            engine.apply(&spec, &mut alloc, &ScenarioOp::Churn(ChurnOp::Close(c)));
        }
        prop_assert!(engine.displaced().is_empty(), "ledger not settled");

        for li in 0..spec.topology().link_count() {
            let table = alloc.link_table(LinkId::new(li as u32));
            prop_assert_eq!(table.reserved_count(), 0, "link {} not drained", li);
            for s in 0..table.size() {
                prop_assert!(table.is_free(s) && table.owner(s).is_none());
            }
        }
    }

    /// A sub-threshold glitch is invisible to the slot tables: whatever
    /// state an arbitrary interleaving left behind, the glitch (and its
    /// later expiry) changes not one slot, displaces nobody, and leaves
    /// the displaced ledger untouched.
    #[test]
    fn sub_threshold_glitch_leaves_every_table_bit_for_bit(
        seed in 0u64..4,
        script in proptest::collection::vec((0u8..14, 0u16..1024), 1..30),
        pick in 0u16..1024,
    ) {
        let spec = small_spec(seed);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = FaultEngine::new(&spec);
        for &(kind, p) in &script {
            apply_step(&spec, &mut engine, &mut alloc, kind, p);
        }
        // Settle every pending glitch so the snapshot is quiescent.
        let settle = engine.now_ns() + 10 * DEFAULT_PERSISTENCE_NS;
        engine.advance_to(&spec, &mut alloc, settle);

        let tables = table_snapshot(&spec, &alloc);
        let ledger = engine.displaced().to_vec();
        let affected = engine.stats().affected;

        let link = LinkId::new(u32::from(pick) % spec.topology().link_count() as u32);
        let duration_ns = 1 + u64::from(pick) % (DEFAULT_PERSISTENCE_NS - 1);
        engine.link_glitch(&spec, &mut alloc, link, duration_ns);
        prop_assert_eq!(&table_snapshot(&spec, &alloc), &tables, "glitch moved a slot");
        prop_assert_eq!(engine.displaced(), &ledger[..], "glitch touched the ledger");
        prop_assert_eq!(engine.stats().affected, affected, "glitch displaced a grant");

        engine.advance_to(&spec, &mut alloc, settle + 2 * DEFAULT_PERSISTENCE_NS);
        prop_assert_eq!(&table_snapshot(&spec, &alloc), &tables, "expiry moved a slot");
        prop_assert_eq!(engine.displaced(), &ledger[..]);
        prop_assert!(!engine.mask().is_down(link) || engine.enforced().is_down(link));
    }

    /// A threshold-crossing glitch displaces exactly what a permanent
    /// `LinkDown` would: same survivor grants, same ledger, same tables
    /// — the only difference is that the glitch self-repairs when the
    /// clock passes its expiry.
    #[test]
    fn escalated_glitch_behaves_like_a_permanent_link_down(
        seed in 0u64..4,
        script in proptest::collection::vec((0u8..14, 0u16..1024), 1..30),
        pick in 0u16..1024,
    ) {
        let spec = small_spec(seed);
        let mut alloc_a = Allocation::empty_for(&spec);
        let mut engine_a = FaultEngine::new(&spec);
        let mut alloc_b = Allocation::empty_for(&spec);
        let mut engine_b = FaultEngine::new(&spec);
        for &(kind, p) in &script {
            apply_step(&spec, &mut engine_a, &mut alloc_a, kind, p);
            apply_step(&spec, &mut engine_b, &mut alloc_b, kind, p);
        }
        let settle = engine_a.now_ns().max(engine_b.now_ns()) + 10 * DEFAULT_PERSISTENCE_NS;
        engine_a.advance_to(&spec, &mut alloc_a, settle);
        engine_b.advance_to(&spec, &mut alloc_b, settle);

        let link = LinkId::new(u32::from(pick) % spec.topology().link_count() as u32);
        // A glitch on an already-failed link is a no-op in both engines;
        // the self-repair contrast below only applies to a fresh glitch.
        let was_down = engine_a.enforced().is_down(link);
        let duration_ns = DEFAULT_PERSISTENCE_NS + u64::from(pick);
        engine_a.link_glitch(&spec, &mut alloc_a, link, duration_ns);
        engine_b.link_down(&spec, &mut alloc_b, link);

        prop_assert_eq!(table_snapshot(&spec, &alloc_a), table_snapshot(&spec, &alloc_b));
        prop_assert_eq!(engine_a.displaced(), engine_b.displaced());
        prop_assert_eq!(engine_a.stats().affected, engine_b.stats().affected);
        prop_assert_eq!(engine_a.stats().dropped, engine_b.stats().dropped);
        prop_assert!(engine_a.enforced().is_down(link) == engine_b.enforced().is_down(link));

        // Only the glitch self-repairs.
        engine_a.advance_to(&spec, &mut alloc_a, settle + duration_ns + 1);
        if !was_down {
            prop_assert!(!engine_a.mask().is_down(link));
        }
        prop_assert!(engine_b.mask().is_down(link));
    }
}
