//! Property-based tests of the fault-recovery engine: arbitrary
//! interleavings of churn (open/close/switch) and fault
//! (link/router down/up) operations never leave a granted route over a
//! down link, keep every slot table in lock-step with its owners, keep
//! the displaced ledger exact (grantless connections only), and — after
//! repairing every link and closing every survivor — leave the platform
//! fully free.

use aelite_alloc::Allocation;
use aelite_online::FaultEngine;
use aelite_spec::app::SystemSpec;
use aelite_spec::fault::{FaultOp, ScenarioOp};
use aelite_spec::generate::{random_workload, WorkloadParams};
use aelite_spec::ids::{AppId, ConnId, LinkId, RouterId};
use aelite_spec::{ChurnOp, NocConfig, Topology};
use proptest::prelude::*;

/// A small but genuinely shared platform: 2×2 mesh, 2 NIs per router,
/// 3 applications, 14 connections (as `tests/proptest_churn.rs`).
fn small_spec(seed: u64) -> SystemSpec {
    let params = WorkloadParams {
        apps: 3,
        connections: 14,
        ips: 8,
        bw_min_mb: 10,
        bw_max_mb: 80,
        lat_min_ns: 200,
        lat_max_ns: 2_000,
        message_bytes: 32,
        ni_load_cap: 0.5,
    };
    random_workload(
        Topology::mesh(2, 2, 2),
        NocConfig::paper_default(),
        params,
        seed,
    )
}

/// The engine-wide invariants that must hold after *every* operation.
fn assert_fault_invariants(spec: &SystemSpec, engine: &FaultEngine, alloc: &Allocation) {
    // The core contract: no granted route traverses a down link —
    // through serial opens, switches, re-routes and re-homing alike.
    for g in alloc.grants() {
        for &l in &g.links {
            assert!(
                !engine.mask().is_down(l),
                "{} granted over down link {l}",
                g.conn
            );
        }
    }
    // The displaced ledger holds only grantless connections, each once.
    for (i, &c) in engine.displaced().iter().enumerate() {
        assert!(alloc.grant(c).is_none(), "displaced {c} holds a grant");
        assert!(!engine.displaced()[..i].contains(&c), "{c} displaced twice");
    }
    // Slot tables in lock-step: the free mask and owner array agree,
    // and every reserved slot belongs to a live grant.
    let granted: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
    for li in 0..spec.topology().link_count() {
        let table = alloc.link_table(LinkId::new(li as u32));
        for s in 0..table.size() {
            assert_eq!(
                table.is_free(s),
                table.owner(s).is_none(),
                "link {li} slot {s}: free mask out of lock-step"
            );
            if let Some(owner) = table.owner(s) {
                assert!(
                    granted.contains(&owner),
                    "link {li} slot {s}: owned by closed {owner}"
                );
            }
        }
    }
    // Recovery accounting closes: every affected grant either survived
    // (re-routed) or was dropped.
    let s = engine.stats();
    assert_eq!(s.survived() + s.dropped, s.affected);
}

/// One scripted operation, decoded from two proptest draws: mostly
/// churn (as `tests/proptest_churn.rs`), with fault and repair events
/// interleaved.
fn apply_step(
    spec: &SystemSpec,
    engine: &mut FaultEngine,
    alloc: &mut Allocation,
    kind: u8,
    pick: u16,
) {
    let topo = spec.topology();
    match kind % 12 {
        // Toggle a pseudo-random connection (the common single-op churn).
        0..=6 => {
            let conns = spec.connections();
            let id = conns[pick as usize % conns.len()].id;
            let op = if alloc.grant(id).is_some() {
                ChurnOp::Close(id)
            } else {
                ChurnOp::Open(id)
            };
            engine.apply(spec, alloc, &ScenarioOp::Churn(op));
        }
        // Use-case switch: one app's granted set out, another's
        // grantless set in (refusals roll back — that's the engine's
        // contract, re-checked by the invariants).
        7 => {
            let apps = spec.apps().len() as u32;
            let victim = AppId::new(u32::from(pick) % apps);
            let incoming = AppId::new((u32::from(pick) + 1) % apps);
            let close: Vec<ConnId> = spec
                .app_connections(victim)
                .filter(|c| alloc.grant(c.id).is_some())
                .map(|c| c.id)
                .collect();
            let open: Vec<ConnId> = spec
                .app_connections(incoming)
                .filter(|c| alloc.grant(c.id).is_none())
                .map(|c| c.id)
                .collect();
            engine.apply(
                spec,
                alloc,
                &ScenarioOp::Churn(ChurnOp::Switch { close, open }),
            );
        }
        // Fault and repair events on pseudo-random links and routers.
        8 | 9 => {
            let link = LinkId::new(u32::from(pick) % topo.link_count() as u32);
            let op = if kind % 12 == 8 {
                FaultOp::LinkDown(link)
            } else {
                FaultOp::LinkUp(link)
            };
            engine.apply(spec, alloc, &ScenarioOp::Fault(op));
        }
        _ => {
            let router = RouterId::new(u32::from(pick) % topo.router_count() as u32);
            let op = if kind % 12 == 10 {
                FaultOp::RouterDown(router)
            } else {
                FaultOp::RouterUp(router)
            };
            engine.apply(spec, alloc, &ScenarioOp::Fault(op));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fault invariants hold after *every* operation of an
    /// arbitrary churn/fault interleaving.
    #[test]
    fn interleaved_faults_never_grant_over_a_down_link(
        seed in 0u64..4,
        script in proptest::collection::vec((0u8..12, 0u16..1024), 1..40),
    ) {
        let spec = small_spec(seed);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = FaultEngine::new(&spec);
        for &(kind, pick) in &script {
            apply_step(&spec, &mut engine, &mut alloc, kind, pick);
            assert_fault_invariants(&spec, &engine, &alloc);
        }
    }

    /// Repairing every link and closing every survivor (and settling
    /// every displaced connection) returns the platform to fully free:
    /// empty mask, empty ledger, no leaked reservation anywhere.
    #[test]
    fn repairing_and_draining_frees_every_slot(
        seed in 0u64..4,
        script in proptest::collection::vec((0u8..12, 0u16..1024), 1..30),
    ) {
        let spec = small_spec(seed);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = FaultEngine::new(&spec);
        for &(kind, pick) in &script {
            apply_step(&spec, &mut engine, &mut alloc, kind, pick);
        }

        // Repair the world: every down link comes back up.
        for li in 0..spec.topology().link_count() {
            engine.link_up(&spec, &mut alloc, LinkId::new(li as u32));
        }
        prop_assert!(engine.mask().is_empty());

        // Drain: close every grant; a close of a displaced connection
        // settles it out of the ledger.
        let open: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
        let parked: Vec<ConnId> = engine.displaced().to_vec();
        for c in open.into_iter().chain(parked) {
            engine.apply(&spec, &mut alloc, &ScenarioOp::Churn(ChurnOp::Close(c)));
        }
        prop_assert!(engine.displaced().is_empty(), "ledger not settled");

        for li in 0..spec.topology().link_count() {
            let table = alloc.link_table(LinkId::new(li as u32));
            prop_assert_eq!(table.reserved_count(), 0, "link {} not drained", li);
            for s in 0..table.size() {
                prop_assert!(table.is_free(s) && table.owner(s).is_none());
            }
        }
    }
}
