//! Property: the sparse and dense `SlotTable` owner representations are
//! observationally identical. Any interleaving of `reserve`, `release`
//! and `release_all` applied to a pinned-sparse, a pinned-dense and an
//! adaptive (self-promoting) table must return the same results op by
//! op and leave all three tables logically equal — same owners, same
//! free mask, same `slots_of` — which is what licenses selecting the
//! representation per table without ever affecting allocator decisions.

use aelite_alloc::table::SlotTable;
use aelite_spec::ids::ConnId;
use proptest::prelude::*;

/// One table operation, decoded from raw draws so the strategy stays a
/// plain tuple vector.
#[derive(Debug, Clone, Copy)]
enum Op {
    Reserve(u32, ConnId),
    Release(u32),
    ReleaseAll(ConnId),
}

fn decode(size: u32, raw: &[(u32, u8, u8)]) -> Vec<Op> {
    raw.iter()
        .map(|&(slot, conn, kind)| {
            let slot = slot % size;
            let conn = ConnId::new(u32::from(conn % 8));
            match kind % 4 {
                // Bias towards reserve so tables actually fill up and
                // the adaptive table crosses its promotion threshold.
                0 | 1 => Op::Reserve(slot, conn),
                2 => Op::Release(slot),
                _ => Op::ReleaseAll(conn),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sparse_dense_and_adaptive_tables_stay_lock_step(
        size in 8u32..=130,
        raw in proptest::collection::vec((0u32..1_000_000, 0u8..=255, 0u8..=255), 0..120),
    ) {
        let ops = decode(size, &raw);
        let mut dense = SlotTable::new_dense(size);
        let mut sparse = SlotTable::new_sparse(size);
        let mut adaptive = SlotTable::new(size);

        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Reserve(slot, conn) => {
                    let d = dense.reserve(slot, conn);
                    prop_assert_eq!(d, sparse.reserve(slot, conn), "op {} diverged", i);
                    prop_assert_eq!(d, adaptive.reserve(slot, conn), "op {} diverged", i);
                }
                Op::Release(slot) => {
                    let d = dense.release(slot);
                    prop_assert_eq!(d, sparse.release(slot), "op {} diverged", i);
                    prop_assert_eq!(d, adaptive.release(slot), "op {} diverged", i);
                }
                Op::ReleaseAll(conn) => {
                    let d = dense.release_all(conn);
                    prop_assert_eq!(d, sparse.release_all(conn), "op {} diverged", i);
                    prop_assert_eq!(d, adaptive.release_all(conn), "op {} diverged", i);
                }
            }
            // Logical equality across representations after every op.
            prop_assert_eq!(&dense, &sparse, "after op {}", i);
            prop_assert_eq!(&dense, &adaptive, "after op {}", i);
        }

        // Final probes agree slot by slot and connection by connection.
        prop_assert_eq!(dense.free_mask(), sparse.free_mask());
        prop_assert_eq!(dense.reserved_count(), sparse.reserved_count());
        for s in 0..size {
            prop_assert_eq!(dense.owner(s), sparse.owner(s), "slot {}", s);
            prop_assert_eq!(dense.owner(s), adaptive.owner(s), "slot {}", s);
            prop_assert_eq!(dense.is_free(s), sparse.is_free(s), "slot {}", s);
        }
        for c in 0..8 {
            let conn = ConnId::new(c);
            prop_assert_eq!(dense.slots_of(conn), sparse.slots_of(conn));
            prop_assert_eq!(dense.slots_of(conn), adaptive.slots_of(conn));
        }
        // The pinned tables really are in different representations
        // whenever anything is resident (otherwise the property is
        // vacuous for the interesting cases).
        prop_assert!(sparse.is_sparse());
        prop_assert!(!dense.is_sparse());
    }
}
