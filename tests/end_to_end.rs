//! End-to-end integration: the complete paper workflow on the Section VII
//! platform, crossing every crate of the workspace.

use aelite_analysis::service::verify_service;
use aelite_baseline::{BeConfig, BeSim};
use aelite_core::{measured_services_be, AeliteSystem, SimOptions};
use aelite_spec::generate::{paper_workload, random_workload, WorkloadParams};
use aelite_spec::ids::AppId;
use aelite_spec::topology::Topology;
use aelite_spec::NocConfig;

const DURATION: u64 = 60_000;

fn quick() -> SimOptions {
    SimOptions {
        duration_cycles: DURATION,
        ..SimOptions::default()
    }
}

#[test]
fn paper_headline_gs_meets_all_contracts() {
    let system = AeliteSystem::design(paper_workload(42)).expect("designs");
    let outcome = system.simulate(quick());
    assert!(outcome.service.all_ok());
    assert_eq!(outcome.service.verdicts.len(), 200);
    // Every measured max stays within the analytical bound too.
    for v in &outcome.service.verdicts {
        assert!(v.within_bound, "{v}");
    }
}

#[test]
fn paper_headline_composability_end_to_end() {
    let system = AeliteSystem::design(paper_workload(7)).expect("designs");
    let result = system.verify_composability(SimOptions {
        duration_cycles: 30_000,
        ..SimOptions::default()
    });
    assert!(result.is_composable(), "{result}");
}

#[test]
fn paper_headline_be_interferes_and_violates() {
    let spec = paper_workload(42);
    let report = BeSim::new(&spec).run(BeConfig {
        duration_cycles: DURATION,
        ..BeConfig::default()
    });
    let service = verify_service(&spec, None, &measured_services_be(&report), DURATION, 0.05);
    assert!(
        !service.all_ok(),
        "best effort should violate tight contracts at 500 MHz"
    );
}

#[test]
fn multiple_seeds_design_and_verify() {
    for seed in [1u64, 13, 99] {
        let system = AeliteSystem::design(paper_workload(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let outcome = system.simulate(SimOptions {
            duration_cycles: 30_000,
            ..SimOptions::default()
        });
        assert!(outcome.service.all_ok(), "seed {seed}");
    }
}

#[test]
fn app_developed_in_isolation_then_integrated() {
    // The functional-scalability story: verify app 3 alone, integrate,
    // verify the full system — app 3's verdicts are unchanged.
    let system = AeliteSystem::design(paper_workload(21)).expect("designs");
    let alone = system.simulate_apps(&[AppId::new(3)], quick());
    assert!(alone.service.all_ok());
    let full = system.simulate(quick());
    for v in &alone.service.verdicts {
        let integrated = full.service.verdict(v.conn);
        assert_eq!(
            v.max_latency_ns, integrated.max_latency_ns,
            "{}: integration changed the measured worst case",
            v.conn
        );
    }
}

#[test]
fn smaller_platform_full_flow() {
    // The whole flow also works on a non-paper platform.
    let topo = Topology::mesh(3, 3, 2);
    let params = WorkloadParams {
        apps: 3,
        connections: 40,
        ips: 18,
        bw_min_mb: 5,
        bw_max_mb: 200,
        lat_min_ns: 60,
        lat_max_ns: 800,
        message_bytes: 32,
        ni_load_cap: 0.5,
    };
    let spec = random_workload(topo, NocConfig::paper_default(), params, 5);
    let system = AeliteSystem::design(spec).expect("designs");
    let outcome = system.simulate(quick());
    assert!(outcome.service.all_ok());
    let comp = system.verify_composability(SimOptions {
        duration_cycles: 20_000,
        ..SimOptions::default()
    });
    assert!(comp.is_composable());
}

#[test]
fn ring_topology_full_flow() {
    // aelite on a non-mesh interconnect: BFS routing, allocation,
    // simulation and composability all work without mesh coordinates.
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::traffic::Bandwidth;

    let topo = Topology::ring(6, 1);
    let nis: Vec<_> = topo.nis().collect();
    let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
    let a0 = b.add_app("even");
    let a1 = b.add_app("odd");
    let ips: Vec<_> = nis.iter().map(|&ni| b.add_ip_at(ni)).collect();
    for i in 0..6usize {
        let app = if i % 2 == 0 { a0 } else { a1 };
        b.add_connection(
            app,
            ips[i],
            ips[(i + 2) % 6],
            Bandwidth::from_mbytes_per_sec(40),
            800,
        );
    }
    let system = AeliteSystem::design(b.build()).expect("ring allocates");
    let outcome = system.simulate(quick());
    assert!(outcome.service.all_ok());
    let comp = system.verify_composability(SimOptions {
        duration_cycles: 20_000,
        ..SimOptions::default()
    });
    assert!(comp.is_composable());
}

#[test]
fn buffer_sizing_analysis_predicts_throughput_stalls() {
    // The analytical buffer requirement (credits must cover the round
    // trip) is validated empirically: an undersized buffer throttles a
    // saturating connection below its reservation; the computed size
    // restores the full rate.
    use aelite_alloc::allocate;
    use aelite_analysis::buffer::required_buffer_words;
    use aelite_noc::flitsim::{FlitSim, FlitSimConfig};
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::ids::NiId;
    use aelite_spec::traffic::{Bandwidth, TrafficPattern};

    let build = |buffer_words: u32| {
        let topo = Topology::mesh(2, 1, 1);
        let mut cfg = NocConfig::paper_default();
        cfg.ni_buffer_words = buffer_words;
        let mut b = SystemSpecBuilder::new(topo, cfg);
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        b.add_connection_with(
            app,
            s,
            d,
            Bandwidth::from_mbytes_per_sec(300), // ~15 slots: credit-hungry
            2_000,
            TrafficPattern::Saturating,
            16,
        );
        b.build()
    };
    let run = |buffer_words: u32| -> (f64, f64, u32) {
        let spec = build(buffer_words);
        let alloc = allocate(&spec).expect("allocates");
        let conn = spec.connections()[0].id;
        let need = required_buffer_words(&spec, &alloc, conn, 24);
        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 192_000,
            ..FlitSimConfig::default()
        });
        let achieved = report.per_conn[0].throughput_bytes_per_sec(500, 192_000);
        let allocated = alloc.allocated_bandwidth(&spec, conn).bytes_per_sec() as f64;
        (achieved, allocated, need)
    };

    // Tiny buffer: stalls.
    let (starved, allocated, need) = run(4);
    assert!(
        starved < allocated * 0.9,
        "4-word buffer should stall: {starved} vs {allocated}"
    );
    assert!(
        need > 4,
        "analysis must flag the 4-word buffer (needs {need})"
    );
    // Analytically-required buffer: full rate.
    let (full, allocated, _) = run(need);
    assert!(
        full >= allocated * 0.98,
        "sized buffer should sustain the reservation: {full} vs {allocated}"
    );
}

#[test]
fn frequency_scaling_changes_feasibility() {
    // The paper platform allocates at 500 MHz but not arbitrarily low.
    let spec = paper_workload(42);
    assert!(AeliteSystem::design(spec.at_frequency(500)).is_ok());
    assert!(AeliteSystem::design(spec.at_frequency(100)).is_err());
}
