//! Property-based tests of batched admission: a batched round over an
//! arbitrary burst — conflicting requests included — yields the
//! identical end-state allocation (free mask and owner array in
//! lock-step per slot) and identical per-request verdicts as serially
//! submitting the same requests in canonical order; and the planned
//! independent bursts of a client-population stream replay identically
//! batched and burstwise-serial.

use aelite_alloc::Allocation;
use aelite_online::{canonical_order, AdmissionRequest, AdmissionResponse, ChurnEngine};
use aelite_serve::{merge_population, plan_bursts, replay_batched, warm_up};
use aelite_spec::app::SystemSpec;
use aelite_spec::churn::{client_population, ChurnParams};
use aelite_spec::generate::{random_workload, WorkloadParams};
use aelite_spec::ids::{AppId, ConnId, LinkId};
use aelite_spec::topology::Topology;
use aelite_spec::NocConfig;
use proptest::prelude::*;

/// A small but genuinely shared platform: 2×2 mesh, 2 NIs per router,
/// 3 applications, 14 connections.
fn small_spec(seed: u64) -> SystemSpec {
    let params = WorkloadParams {
        apps: 3,
        connections: 14,
        ips: 8,
        bw_min_mb: 10,
        bw_max_mb: 80,
        lat_min_ns: 200,
        lat_max_ns: 2_000,
        message_bytes: 32,
        ni_load_cap: 0.5,
    };
    random_workload(
        Topology::mesh(2, 2, 2),
        NocConfig::paper_default(),
        params,
        seed,
    )
}

/// Decodes one proptest draw into a (possibly conflicting, possibly
/// state-mismatched) admission request — totality is part of what the
/// equivalence must cover.
fn decode_request(spec: &SystemSpec, kind: u8, pick: u16) -> AdmissionRequest {
    let conns = spec.connections();
    let n = conns.len();
    let conn = |p: usize| conns[p % n].id;
    match kind % 8 {
        0..=2 => AdmissionRequest::Open(conn(pick as usize)),
        3..=5 => AdmissionRequest::Close(conn(pick as usize)),
        _ => {
            // An arbitrary small switch; sides may overlap other
            // requests of the burst or name open/closed conns wrongly.
            let app = AppId::new(u32::from(pick) % spec.apps().len() as u32);
            let side: Vec<ConnId> = spec.app_connections(app).map(|c| c.id).collect();
            let mid = (pick as usize / 7) % (side.len() + 1);
            AdmissionRequest::Switch {
                close: side[..mid].to_vec(),
                open: side[mid..].to_vec(),
            }
        }
    }
}

/// Every slot of every link agrees between the two allocations: same
/// free bit, same owner (free mask and owner array lock-step equality).
fn assert_tables_identical(spec: &SystemSpec, a: &Allocation, b: &Allocation) {
    for li in 0..spec.topology().link_count() {
        let (ta, tb) = (
            a.link_table(LinkId::new(li as u32)),
            b.link_table(LinkId::new(li as u32)),
        );
        for s in 0..ta.size() {
            assert_eq!(ta.is_free(s), tb.is_free(s), "link {li} slot {s} free bit");
            assert_eq!(ta.owner(s), tb.owner(s), "link {li} slot {s} owner");
        }
    }
    for c in spec.connections() {
        assert_eq!(a.grant(c.id), b.grant(c.id), "{} grant diverged", c.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `submit_batch` over an arbitrary burst ≡ serial `submit` of the
    /// same requests in `canonical_order`: identical verdicts at every
    /// arrival index, identical engine counters, identical end state
    /// down to each slot's free bit and owner.
    #[test]
    fn batched_round_equals_serial_canonical(
        seed in 0u64..4,
        prelude in proptest::collection::vec((0u8..8, 0u16..1024), 0..20),
        bursts in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u16..1024), 1..16), 1..5),
    ) {
        let spec = small_spec(seed);
        let mut engine_a = ChurnEngine::new(&spec);
        let mut engine_b = ChurnEngine::new(&spec);
        let mut alloc_a = Allocation::empty_for(&spec);
        let mut alloc_b = Allocation::empty_for(&spec);

        // Identical arbitrary starting state on both sides.
        for &(kind, pick) in &prelude {
            let req = decode_request(&spec, kind, pick);
            let va = engine_a.submit(&spec, &mut alloc_a, req.clone());
            let vb = engine_b.submit(&spec, &mut alloc_b, req);
            prop_assert_eq!(va, vb);
        }

        let mut order = Vec::new();
        let mut verdicts_a = Vec::new();
        for burst in &bursts {
            let requests: Vec<AdmissionRequest> = burst
                .iter()
                .map(|&(kind, pick)| decode_request(&spec, kind, pick))
                .collect();

            // A: one batched admission round.
            engine_a.submit_batch(&spec, &mut alloc_a, &requests, &mut verdicts_a);
            prop_assert_eq!(verdicts_a.len(), requests.len());

            // B: serial submits in canonical order, verdicts landed at
            // their arrival indices.
            canonical_order(&spec, &requests, &mut order);
            let mut verdicts_b = vec![None; requests.len()];
            for &i in &order {
                verdicts_b[i] =
                    Some(engine_b.submit(&spec, &mut alloc_b, requests[i].clone()));
            }

            for (i, v) in verdicts_a.iter().enumerate() {
                prop_assert_eq!(Some(*v), verdicts_b[i], "verdict {} diverged", i);
            }
            assert_tables_identical(&spec, &alloc_a, &alloc_b);
            prop_assert_eq!(engine_a.stats(), engine_b.stats());
        }
    }

    /// The deterministic batched replay of a client-population stream
    /// equals applying each planned burst serially in canonical order —
    /// end state, verdict count and counters.
    #[test]
    fn population_replay_batched_equals_burstwise_serial(
        clients in 2u32..8,
        events in 20u32..60,
        seed in 0u64..3,
        cap in 2usize..32,
    ) {
        let spec = small_spec(1);
        let stream = merge_population(client_population(
            &spec, clients, &ChurnParams::steady(events), seed,
        ));
        let warmup = stream.len() / 4;

        let mut engine_a = ChurnEngine::new(&spec);
        let mut alloc_a = Allocation::empty_for(&spec);
        warm_up(&spec, &mut engine_a, &mut alloc_a, &stream, warmup);
        let report = replay_batched(&spec, &mut engine_a, &mut alloc_a, &stream[warmup..], cap);

        let mut engine_b = ChurnEngine::new(&spec);
        let mut alloc_b = Allocation::empty_for(&spec);
        warm_up(&spec, &mut engine_b, &mut alloc_b, &stream, warmup);
        let timed = &stream[warmup..];
        let mut order = Vec::new();
        let mut admitted = 0u64;
        for b in plan_bursts(timed, cap) {
            let requests: Vec<AdmissionRequest> =
                timed[b].iter().map(|r| r.request.clone()).collect();
            canonical_order(&spec, &requests, &mut order);
            for &i in &order {
                if engine_b.submit(&spec, &mut alloc_b, requests[i].clone()).is_ok() {
                    admitted += 1;
                }
            }
        }

        prop_assert_eq!(report.admitted, admitted);
        prop_assert_eq!(report.requests, timed.len() as u64);
        assert_tables_identical(&spec, &alloc_a, &alloc_b);
        prop_assert_eq!(engine_a.stats(), engine_b.stats());
    }

    /// Batch verdicts are faithful: every `Opened`/`Closed`/`Switched`
    /// response left the named connections in the promised state when no
    /// later request of the same burst touched them again.
    #[test]
    fn burst_verdicts_match_end_state_for_unconflicted_requests(
        seed in 0u64..4,
        burst in proptest::collection::vec((0u8..6, 0u16..1024), 1..14),
    ) {
        let spec = small_spec(seed);
        let mut engine = ChurnEngine::new(&spec);
        let mut alloc = Allocation::empty_for(&spec);
        // Half-open starting state, deterministically.
        for c in spec.connections().iter().step_by(2) {
            let _ = engine.submit(&spec, &mut alloc, AdmissionRequest::Open(c.id));
        }
        let requests: Vec<AdmissionRequest> = burst
            .iter()
            .map(|&(kind, pick)| decode_request(&spec, kind, pick))
            .collect();
        let mut verdicts = Vec::new();
        engine.submit_batch(&spec, &mut alloc, &requests, &mut verdicts);

        let touched_once = |c: ConnId| {
            requests
                .iter()
                .filter(|r| match r {
                    AdmissionRequest::Open(x) | AdmissionRequest::Close(x) => *x == c,
                    AdmissionRequest::Switch { close, open } => {
                        close.contains(&c) || open.contains(&c)
                    }
                })
                .count()
                == 1
        };
        for (req, verdict) in requests.iter().zip(&verdicts) {
            match (req, verdict) {
                (AdmissionRequest::Open(c), Ok(AdmissionResponse::Opened(r))) => {
                    prop_assert_eq!(c, r);
                    if touched_once(*c) {
                        prop_assert!(alloc.grant(*c).is_some());
                    }
                }
                (AdmissionRequest::Close(c), Ok(AdmissionResponse::Closed(r))) => {
                    prop_assert_eq!(c, r);
                    if touched_once(*c) {
                        prop_assert!(alloc.grant(*c).is_none());
                    }
                }
                (AdmissionRequest::Switch { close, open },
                 Ok(AdmissionResponse::Switched { opened, .. })) => {
                    prop_assert_eq!(*opened as usize, open.len());
                    for c in close.iter().filter(|&&c| touched_once(c)) {
                        prop_assert!(alloc.grant(*c).is_none());
                    }
                    for c in open.iter().filter(|&&c| touched_once(c)) {
                        prop_assert!(alloc.grant(*c).is_some());
                    }
                }
                (_, Err(_)) => {}
                (req, verdict) => {
                    prop_assert!(false, "mismatched verdict {:?} for {:?}", verdict, req);
                }
            }
        }
    }
}
