//! Composability verified on the **cycle-accurate hardware models** (not
//! just the flit-level abstraction): with the mesochronous build included,
//! toggling one application's offered traffic cannot move a single
//! delivery cycle of another application.

use aelite_alloc::allocate;
use aelite_noc::network::{build_network, NetworkKind};
use aelite_noc::ni::Message;
use aelite_spec::app::{SystemSpec, SystemSpecBuilder};
use aelite_spec::config::NocConfig;
use aelite_spec::ids::{ConnId, NiId};
use aelite_spec::topology::Topology;
use aelite_spec::traffic::Bandwidth;

/// 2x2 mesh, two applications with crossing connections.
fn spec(stages: u32) -> SystemSpec {
    let topo = Topology::mesh(2, 2, 1);
    let mut cfg = NocConfig::paper_default();
    cfg.link_pipeline_stages = stages;
    let mut b = SystemSpecBuilder::new(topo, cfg);
    let app_a = b.add_app("A");
    let app_b = b.add_app("B");
    let ips: Vec<_> = (0..4).map(|i| b.add_ip_at(NiId::new(i))).collect();
    // A: corner to corner, both diagonals.
    b.add_connection(
        app_a,
        ips[0],
        ips[3],
        Bandwidth::from_mbytes_per_sec(80),
        900,
    );
    b.add_connection(
        app_a,
        ips[3],
        ips[0],
        Bandwidth::from_mbytes_per_sec(60),
        900,
    );
    // B: the other diagonal, sharing routers (but never slots) with A.
    b.add_connection(
        app_b,
        ips[1],
        ips[2],
        Bandwidth::from_mbytes_per_sec(100),
        900,
    );
    b.add_connection(
        app_b,
        ips[2],
        ips[1],
        Bandwidth::from_mbytes_per_sec(40),
        900,
    );
    b.build()
}

fn offer(net: &mut aelite_noc::network::CycleNet, conn: ConnId, n: u32) {
    for seq in 0..n {
        net.queue(conn).borrow_mut().push_back(Message {
            seq,
            words: 2,
            ready_cycle: u64::from(seq) * 17, // deliberately slot-unaligned
        });
    }
}

fn run_case(stages: u32, kind: NetworkKind, with_b: bool) -> Vec<Vec<u64>> {
    let s = spec(stages);
    let alloc = allocate(&s).expect("allocates");
    let mut net = build_network(&s, &alloc, kind, false);
    let a_conns = [ConnId::new(0), ConnId::new(1)];
    let b_conns = [ConnId::new(2), ConnId::new(3)];
    for c in a_conns {
        offer(&mut net, c, 20);
    }
    if with_b {
        for c in b_conns {
            offer(&mut net, c, 20);
        }
    }
    net.run_cycles(8_000);
    a_conns.iter().map(|&c| net.delivery_cycles(c)).collect()
}

#[test]
fn synchronous_hardware_is_composable() {
    let with = run_case(0, NetworkKind::Synchronous, true);
    let without = run_case(0, NetworkKind::Synchronous, false);
    assert_eq!(with, without, "app B's presence changed app A's cycles");
    assert!(with.iter().all(|t| t.len() == 20), "all flits delivered");
}

#[test]
fn mesochronous_hardware_is_composable() {
    let kind = NetworkKind::Mesochronous { phase_seed: 99 };
    let with = run_case(1, kind, true);
    let without = run_case(1, kind, false);
    assert_eq!(with, without);
    // And across phase assignments too (flit synchronicity).
    let other_phases = run_case(1, NetworkKind::Mesochronous { phase_seed: 7 }, true);
    assert_eq!(with, other_phases);
}

#[test]
fn contention_freedom_holds_cycle_by_cycle() {
    // The router model panics on any same-cycle output contention; a full
    // busy run without panic is a per-cycle proof over the whole window.
    let s = spec(0);
    let alloc = allocate(&s).expect("allocates");
    let mut net = build_network(&s, &alloc, NetworkKind::Synchronous, true);
    net.run_cycles(30_000);
    for c in s.connections() {
        assert!(
            net.delivery_cycles(c.id).len() > 50,
            "{}: traffic flowed",
            c.id
        );
    }
}
