//! Property-based pinning of the edge calendar against the scheduler's
//! binary heap: for random multi-domain `ClockSpec` sets, the calendar
//! must enumerate exactly the instants — and exactly the same-instant
//! coincidence groups, in the same domain order — that heap-driven edge
//! discovery produces, and a calendar-driven `Simulator` run must be
//! bit-identical to a heap-driven one.

use aelite_sim::calendar::EdgeCalendar;
use aelite_sim::clock::ClockSpec;
use aelite_sim::module::{EdgeContext, Module};
use aelite_sim::scheduler::Simulator;
use aelite_sim::time::{Frequency, SimDuration, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Frequencies whose periods share a small lcm, so a calendar always
/// exists (plesiochronous ppm sets are separately pinned to decline).
const FREQS_MHZ: [u64; 5] = [125, 200, 250, 500, 1000];

/// A random periodic domain: a frequency pick plus a phase below the
/// period.
fn domain_strategy() -> impl Strategy<Value = ClockSpec> {
    (0..FREQS_MHZ.len(), 0u64..8_000_000).prop_map(|(fi, phase_fs)| {
        let f = Frequency::from_mhz(FREQS_MHZ[fi]);
        let period_fs = f.period().as_fs();
        ClockSpec::new(f).with_phase(SimDuration::from_fs(phase_fs % period_fs))
    })
}

/// Heap-driven reference: the first `count` instants with their due
/// domains, exactly as `Simulator::step` discovers them (min-time pop,
/// ties broken by ascending domain index).
fn heap_edge_groups(specs: &[ClockSpec], count: usize) -> Vec<(SimTime, Vec<usize>)> {
    let mut queue: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
    let mut next_edge = vec![0u64; specs.len()];
    for (d, s) in specs.iter().enumerate() {
        queue.push(Reverse((s.edge(0), d)));
    }
    let mut groups = Vec::with_capacity(count);
    while groups.len() < count {
        let Reverse((t, d)) = queue.pop().expect("periodic clocks never run dry");
        let mut due = vec![d];
        while let Some(&Reverse((ti, di))) = queue.peek() {
            if ti != t {
                break;
            }
            queue.pop();
            due.push(di);
        }
        for &d in &due {
            next_edge[d] += 1;
            queue.push(Reverse((specs[d].edge(next_edge[d]), d)));
        }
        groups.push((t, due));
    }
    groups
}

/// Calendar-driven enumeration of the first `count` instants.
fn calendar_edge_groups(cal: &EdgeCalendar, count: usize) -> Vec<(SimTime, Vec<usize>)> {
    let mut groups = Vec::with_capacity(count);
    let mut rev = 0u64;
    'outer: loop {
        for (g, group) in cal.groups().iter().enumerate() {
            if groups.len() == count {
                break 'outer;
            }
            groups.push((cal.instant(rev, g), group.domains().to_vec()));
        }
        rev += 1;
    }
    groups
}

/// A counter per domain, so run results depend on every edge.
struct Counter {
    out: aelite_sim::signal::Wire<u64>,
}
impl Module for Counter {
    type Value = u64;
    fn name(&self) -> &str {
        "counter"
    }
    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, u64>) {
        let v = ctx.read(self.out);
        ctx.write(self.out, v + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The calendar enumerates exactly the heap's edge order, including
    /// coincidence grouping and tie-break order, for any periodic
    /// multi-domain set.
    #[test]
    fn calendar_matches_heap_edge_order(
        specs in proptest::collection::vec(domain_strategy(), 1..5),
    ) {
        let cal = EdgeCalendar::build(&specs).expect("small-lcm periodic set");
        let reference = heap_edge_groups(&specs, 96);
        let calendar = calendar_edge_groups(&cal, 96);
        prop_assert_eq!(reference, calendar);
    }

    /// A calendar-driven simulator run produces identical state to a
    /// heap-driven run of the same system.
    #[test]
    fn calendar_run_is_bit_identical_to_heap_run(
        specs in proptest::collection::vec(domain_strategy(), 1..4),
        deadline_ns in 1u64..400,
    ) {
        let build = |specs: &[ClockSpec]| {
            let mut sim: Simulator<u64> = Simulator::new();
            let mut wires = Vec::new();
            for s in specs {
                let d = sim.add_domain(*s);
                let w = sim.add_wire("count");
                sim.add_module(d, Counter { out: w });
                wires.push(w);
            }
            (sim, wires)
        };
        let deadline = SimTime::from_ns(deadline_ns);

        let (mut heap_sim, heap_wires) = build(&specs);
        let heap_edges = heap_sim.run_until(deadline);

        let (mut cal_sim, cal_wires) = build(&specs);
        let cal = cal_sim.edge_calendar().expect("small-lcm periodic set");
        let cal_edges = cal_sim.run_until_with_calendar(deadline, &cal);

        prop_assert_eq!(heap_edges, cal_edges);
        prop_assert_eq!(heap_sim.now(), cal_sim.now());
        for (hw, cw) in heap_wires.iter().zip(&cal_wires) {
            prop_assert_eq!(heap_sim.signals().read(*hw), cal_sim.signals().read(*cw));
        }
        // And the heap path continues seamlessly after a calendar run.
        let extended = SimTime::from_ns(deadline_ns + 50);
        heap_sim.run_until(extended);
        cal_sim.run_until(extended);
        prop_assert_eq!(heap_sim.edges_processed(), cal_sim.edges_processed());
        for (hw, cw) in heap_wires.iter().zip(&cal_wires) {
            prop_assert_eq!(heap_sim.signals().read(*hw), cal_sim.signals().read(*cw));
        }
    }

    /// Plesiochronous sets (ppm-offset periods) have intractable
    /// hyperperiods: the calendar must decline, never mis-enumerate.
    #[test]
    fn ppm_offset_sets_decline_a_calendar(ppm in 1i64..20_000) {
        let f = Frequency::from_mhz(500);
        let specs = [
            ClockSpec::new(f),
            ClockSpec::new(f).with_ppm(ppm),
        ];
        // Either no calendar (typical), or a correct tiny one when the
        // ppm offset happens to divide cleanly.
        if let Some(cal) = EdgeCalendar::build(&specs) {
            let reference = heap_edge_groups(&specs, 32);
            let calendar = calendar_edge_groups(&cal, 32);
            prop_assert_eq!(reference, calendar);
        }
    }
}
