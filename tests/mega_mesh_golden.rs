//! Mega-mesh golden pins: on a 16×16 mesh with 10k connections, the
//! lazy hashed [`RouteCache`] and the eager [`DenseRouteCache`] must
//! yield **bit-for-bit identical grants** — the allocator's decisions
//! derive solely from the free-mask kernels and the candidate sequence,
//! and both providers enumerate the same candidates in the same order —
//! and the lazy cache's memory must track the pairs actually routed,
//! not the `ni_count²` pair space.

use aelite_alloc::allocate::Allocator;
use aelite_alloc::{DenseRouteCache, RouteCache, RouteProvider};
use aelite_spec::generate::WorkloadBuilder;
use std::collections::HashSet;

#[test]
fn grants_identical_under_lazy_and_dense_route_providers_at_16x16_10k() {
    let spec = WorkloadBuilder::mesh(16, 16, 4)
        .mega_traffic()
        .connections(10_000)
        .tiles(8, 8)
        .seed(1)
        .build();
    assert_eq!(spec.connections().len(), 10_000);
    assert_eq!(spec.topology().ni_count(), 1024);

    let allocator = Allocator::new();
    let mut lazy = RouteCache::new(spec.topology(), allocator.max_paths);
    let mut dense = DenseRouteCache::new(spec.topology(), allocator.max_paths);

    let a_lazy = allocator
        .allocate_with_cache(&spec, &mut lazy)
        .expect("16x16/10k regional workload allocates (lazy provider)");
    let a_dense = allocator
        .allocate_with_cache(&spec, &mut dense)
        .expect("16x16/10k regional workload allocates (dense provider)");

    for c in spec.connections() {
        assert_eq!(
            a_lazy.grant(c.id).expect("granted"),
            a_dense.grant(c.id).expect("granted"),
            "grant of {} diverged between route providers",
            c.id
        );
    }

    // Regression for the old eager ni_count² allocation: the lazy
    // cache's resident entries are bounded by the distinct NI pairs the
    // workload can possibly route — a tiny fraction of the pair space.
    let pairs: HashSet<(usize, usize)> = spec
        .connections()
        .iter()
        .map(|c| (spec.ip_ni(c.src).index(), spec.ip_ni(c.dst).index()))
        .collect();
    assert!(
        lazy.resident_pairs() <= pairs.len(),
        "lazy cache holds {} entries for {} routed pairs",
        lazy.resident_pairs(),
        pairs.len()
    );
    let pair_space = spec.topology().ni_count() * spec.topology().ni_count();
    assert!(
        lazy.resident_pairs() * 10 < pair_space,
        "lazy cache ({} entries) is not sparse in the {} pair space",
        lazy.resident_pairs(),
        pair_space
    );

    aelite_alloc::validate_allocation(&spec, &a_lazy)
        .expect("mega-mesh allocation is contention-free");
}
