//! Golden equivalence: the compiled turbo kernel must reproduce the
//! event-driven cycle-accurate simulator **bit for bit** — every
//! `FlitDelivery` record (connection, tag, destination cycle, absolute
//! time) identical — on the paper platform and on scaled meshes, in
//! both clocking organisations.
//!
//! This is the contract that lets the DSE `--validate` stage and the
//! throughput benchmarks trust the turbo engine: the event-driven
//! `aelite_sim::scheduler::Simulator` build stays the golden reference,
//! and these tests are the pin holding the two together.

use aelite_alloc::allocate;
use aelite_noc::network::{build_network, NetworkKind};
use aelite_noc::turbo::build_turbo;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload};

/// Runs both engines with CBR traffic for `cycles` and asserts every
/// connection's delivery log identical; returns total flits compared.
fn assert_golden(spec: &SystemSpec, kind: NetworkKind, cycles: u64) -> u64 {
    let alloc = allocate(spec).expect("workload allocates");
    let mut event = build_network(spec, &alloc, kind, true);
    let mut turbo = build_turbo(spec, &alloc, kind, true);
    event.run_cycles(cycles);
    turbo.run_cycles(cycles);
    let mut flits = 0u64;
    for c in spec.connections() {
        let ev = event.log(c.id).borrow();
        let tb = turbo.log(c.id).borrow();
        assert_eq!(*ev, *tb, "{}: delivery logs diverge", c.id);
        flits += ev.len() as u64;
    }
    assert!(flits > 0, "nothing delivered in {cycles} cycles");
    flits
}

#[test]
fn paper_platform_synchronous_golden() {
    // Section VII: 4x3 mesh, 12 routers, 48 NIs, 200 connections.
    let spec = paper_workload(42);
    let flits = assert_golden(&spec, NetworkKind::Synchronous, 10_000);
    assert!(flits > 10_000, "only {flits} flits on the paper platform");
}

#[test]
fn paper_platform_mesochronous_golden() {
    let spec = paper_workload(42).with_link_pipeline_stages(1, 1);
    for seed in [7u64, 41] {
        assert_golden(&spec, NetworkKind::Mesochronous { phase_seed: seed }, 5_000);
    }
}

#[test]
fn scaled_4x4_synchronous_golden() {
    let spec = scaled_workload(4, 4, 4, 500, 1);
    assert_golden(&spec, NetworkKind::Synchronous, 6_000);
}

#[test]
fn scaled_4x4_mesochronous_golden() {
    // Mesochronous hops cost an extra TDM slot, so the contracts drawn
    // for the synchronous organisation get a 2x latency margin.
    let spec = scaled_workload(4, 4, 4, 500, 1).with_link_pipeline_stages(1, 2);
    assert_golden(&spec, NetworkKind::Mesochronous { phase_seed: 11 }, 3_000);
}

#[test]
fn scaled_8x8_synchronous_golden() {
    let spec = scaled_workload(8, 8, 4, 1000, 1);
    assert_golden(&spec, NetworkKind::Synchronous, 3_000);
}

#[test]
fn scaled_8x8_mesochronous_golden() {
    let spec = scaled_workload(8, 8, 4, 1000, 1).with_link_pipeline_stages(1, 2);
    assert_golden(&spec, NetworkKind::Mesochronous { phase_seed: 23 }, 2_000);
}

#[test]
fn turbo_latency_stays_within_the_analytical_bound_on_the_paper_platform() {
    // The property the DSE --validate stage replays per Pareto point:
    // measured worst-case per-flit latency never exceeds the bound.
    let spec = paper_workload(42);
    let alloc = allocate(&spec).expect("allocates");
    let mut turbo = build_turbo(&spec, &alloc, NetworkKind::Synchronous, true);
    turbo.run_cycles(30_000);
    for c in spec.connections() {
        let lat = turbo.latency(c.id);
        let bound = alloc.worst_case_latency_cycles(&spec, c.id);
        assert!(lat.flits > 0, "{} delivered nothing", c.id);
        assert!(
            lat.max_cycles <= bound,
            "{}: measured {} cycles > analytical bound {bound}",
            c.id,
            lat.max_cycles
        );
    }
}
