//! Deterministic sharded replay: the reduced bench-shard scenario —
//! regional workload, shard-grouped client population, shard-aware
//! burst planning — must produce bit-identical admission counts, slot
//! tables and verdict streams at every thread count. This is the
//! invariance `examples/bench_shard.rs` records into `BENCH_SHARD.json`.

use aelite_online::{ShardClass, ShardConfig, ShardMap, ShardedAllocation, ShardedEngine};
use aelite_serve::{merge_population, replay_sharded, warm_up_sharded, ReplayReport, TimedRequest};
use aelite_spec::app::SystemSpec;
use aelite_spec::churn::{client_population_grouped, ChurnParams};
use aelite_spec::generate::regional_workload;
use aelite_spec::ids::LinkId;

const BURST_CAP: usize = 32;
const WARMUP: usize = 64;

/// A reduced copy of the bench-shard platform: 4×4 mesh, 2 NIs per
/// router, 120 regional connections over the same 2×2 tiling the shard
/// map uses, so most traffic is intra-shard.
fn bench_like_scenario() -> (SystemSpec, ShardConfig, Vec<TimedRequest>) {
    let cfg = ShardConfig {
        max_paths: 2,
        ..ShardConfig::tiled(2, 2)
    };
    let spec = regional_workload(4, 4, 2, 120, 77, 2, 2);
    let map = ShardMap::build(&spec, &cfg);
    // Group clients by their connections' home shard (cross-shard conns
    // get their own group) so each client's pool stays shard-coherent.
    let population = client_population_grouped(&spec, 24, &ChurnParams::steady(80), 99, |c| {
        map.conn_home(c.id).map_or(map.shards(), |k| k) as u32
    });
    (spec, cfg, merge_population(population))
}

fn run(
    spec: &SystemSpec,
    cfg: ShardConfig,
    stream: &[TimedRequest],
    threads: usize,
) -> (ReplayReport, ShardedEngine, ShardedAllocation) {
    let mut engine = ShardedEngine::new(spec, cfg);
    let mut alloc = ShardedAllocation::empty_for(spec, engine.map());
    warm_up_sharded(spec, &mut engine, &mut alloc, stream, WARMUP);
    let report = replay_sharded(
        spec,
        &mut engine,
        &mut alloc,
        &stream[WARMUP..],
        BURST_CAP,
        threads,
    );
    (report, engine, alloc)
}

#[test]
fn replay_admission_counts_are_thread_count_invariant() {
    let (spec, cfg, stream) = bench_like_scenario();
    let (base, base_engine, base_alloc) = run(&spec, cfg, &stream, 1);
    assert_eq!(base.requests, (stream.len() - WARMUP) as u64);
    assert!(base.admitted > 0, "scenario admits nothing");
    assert!(base.ops > 0, "scenario performs no slot operations");

    let reference = base_alloc.collapse(base_engine.map());
    for threads in [2usize, 4, 8] {
        let (r, engine, alloc) = run(&spec, cfg, &stream, threads);
        assert_eq!(r.requests, base.requests, "{threads} threads: requests");
        assert_eq!(r.admitted, base.admitted, "{threads} threads: admitted");
        assert_eq!(r.refused, base.refused, "{threads} threads: refused");
        assert_eq!(r.ops, base.ops, "{threads} threads: ops");
        assert_eq!(r.bursts, base.bursts, "{threads} threads: burst count");
        assert_eq!(
            engine.stats(),
            base_engine.stats(),
            "{threads} threads: stats"
        );

        let collapsed = alloc.collapse(engine.map());
        for li in 0..spec.topology().link_count() {
            let link = LinkId::new(li as u32);
            let (ta, tb) = (reference.link_table(link), collapsed.link_table(link));
            for s in 0..ta.size() {
                assert_eq!(
                    ta.is_free(s),
                    tb.is_free(s),
                    "{threads}t link {li} slot {s}"
                );
                assert_eq!(ta.owner(s), tb.owner(s), "{threads}t link {li} slot {s}");
            }
        }
        for c in spec.connections() {
            assert_eq!(
                reference.grant(c.id),
                collapsed.grant(c.id),
                "{threads} threads: {} grant",
                c.id
            );
        }
    }
}

#[test]
fn regional_population_is_mostly_intra_shard() {
    let (spec, cfg, stream) = bench_like_scenario();
    let map = ShardMap::build(&spec, &cfg);
    let (mut intra, mut cross) = (0u64, 0u64);
    for r in &stream {
        match map.classify(&r.request) {
            ShardClass::Intra(_) => intra += 1,
            ShardClass::Cross => cross += 1,
        }
    }
    // The regional generator keeps traffic inside its tile, so the
    // overwhelming share of the stream must admit shard-locally — that
    // is the parallelism the bench measures.
    assert!(
        intra >= 9 * (intra + cross) / 10,
        "only {intra}/{} requests intra-shard",
        intra + cross
    );
    assert!(spec.connections().len() == 120);
}
