//! Property-based tests of sharded parallel admission: classification
//! is total and stable, a one-shard config is bit-identical to the
//! plain [`ChurnEngine`], and the shard-parallel end state — slot
//! tables, owners, verdicts and counters in lock-step — equals the
//! sharded-canonical serial reference whatever the thread count.

use aelite_alloc::{Allocation, Allocator};
use aelite_online::{
    sharded_canonical_order, AdmissionRequest, ChurnEngine, ShardClass, ShardConfig, ShardMap,
    ShardedAllocation, ShardedEngine,
};
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::scaled_workload;
use aelite_spec::ids::{AppId, ConnId, LinkId};
use proptest::prelude::*;

/// A 4×4 mesh with 2 NIs per router and 60 connections: big enough
/// that a 2×2 quadrant tiling has both intra- and cross-shard traffic.
fn quad_spec(seed: u64) -> SystemSpec {
    scaled_workload(4, 4, 2, 60, seed)
}

fn quad_config() -> ShardConfig {
    ShardConfig {
        max_paths: 2,
        ..ShardConfig::tiled(2, 2)
    }
}

/// Decodes one proptest draw into a (possibly conflicting, possibly
/// state-mismatched) admission request, as `tests/proptest_serve.rs`.
fn decode_request(spec: &SystemSpec, kind: u8, pick: u16) -> AdmissionRequest {
    let conns = spec.connections();
    let n = conns.len();
    let conn = |p: usize| conns[p % n].id;
    match kind % 8 {
        0..=2 => AdmissionRequest::Open(conn(pick as usize)),
        3..=5 => AdmissionRequest::Close(conn(pick as usize)),
        _ => {
            let app = AppId::new(u32::from(pick) % spec.apps().len() as u32);
            let side: Vec<ConnId> = spec.app_connections(app).map(|c| c.id).collect();
            let mid = (pick as usize / 7) % (side.len() + 1);
            AdmissionRequest::Switch {
                close: side[..mid].to_vec(),
                open: side[mid..].to_vec(),
            }
        }
    }
}

/// Free mask and owner array lock-step equality over every link.
fn assert_tables_identical(spec: &SystemSpec, a: &Allocation, b: &Allocation) {
    for li in 0..spec.topology().link_count() {
        let (ta, tb) = (
            a.link_table(LinkId::new(li as u32)),
            b.link_table(LinkId::new(li as u32)),
        );
        for s in 0..ta.size() {
            assert_eq!(ta.is_free(s), tb.is_free(s), "link {li} slot {s} free bit");
            assert_eq!(ta.owner(s), tb.owner(s), "link {li} slot {s} owner");
        }
    }
    for c in spec.connections() {
        assert_eq!(a.grant(c.id), b.grant(c.id), "{} grant diverged", c.id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Classification is total (every decodable request maps to exactly
    /// one class, unknown ids included) and stable (same answer on
    /// every call; open and close of one connection agree), and a
    /// one-shard map classifies everything onto shard 0.
    #[test]
    fn classification_is_total_and_stable(
        seed in 0u64..4,
        draws in proptest::collection::vec((0u8..8, 0u16..1024), 1..40),
    ) {
        let spec = quad_spec(seed);
        let map = ShardMap::build(&spec, &quad_config());
        let single = ShardMap::build(&spec, &ShardConfig::single());
        for &(kind, pick) in &draws {
            let req = decode_request(&spec, kind, pick);
            let class = map.classify(&req);
            prop_assert_eq!(map.classify(&req), class, "classification unstable");
            if let ShardClass::Intra(k) = class {
                prop_assert!(k < map.shards());
            }
            prop_assert_eq!(single.classify(&req), ShardClass::Intra(0));
            if let AdmissionRequest::Open(c) = req {
                prop_assert_eq!(
                    map.classify(&AdmissionRequest::Close(c)),
                    class,
                    "open/close of one connection disagree"
                );
            }
        }
        // The classification invariant the parallelism rests on: an
        // intra-homed connection's every candidate link is owned by its
        // home shard (spot-checked structurally via the map accessors).
        for c in spec.connections() {
            if let Some(_k) = map.conn_home(c.id) {
                prop_assert!(map.classify(&AdmissionRequest::Open(c.id)) != ShardClass::Cross);
            }
        }
    }

    /// A one-shard [`ShardedEngine`] is bit-identical to the plain
    /// [`ChurnEngine`] over arbitrary (conflicting included) bursts:
    /// same verdicts at every arrival index, same end state, same
    /// counters.
    #[test]
    fn one_shard_is_bit_identical_to_plain_engine(
        seed in 0u64..4,
        bursts in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u16..1024), 1..12), 1..4),
    ) {
        let spec = quad_spec(seed);
        let cfg = ShardConfig::single();
        let mut sharded = ShardedEngine::new(&spec, cfg);
        let mut plain = ChurnEngine::new(&spec);
        let mut parts = ShardedAllocation::empty_for(&spec, sharded.map());
        let mut flat = Allocation::empty_for(&spec);

        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for burst in &bursts {
            let requests: Vec<AdmissionRequest> = burst
                .iter()
                .map(|&(kind, pick)| decode_request(&spec, kind, pick))
                .collect();
            sharded.submit_batch(&spec, &mut parts, &requests, &mut va, 2);
            plain.submit_batch(&spec, &mut flat, &requests, &mut vb);
            prop_assert_eq!(&va, &vb);
            assert_tables_identical(&spec, &parts.collapse(sharded.map()), &flat);
            prop_assert_eq!(&sharded.stats(), plain.stats());
        }
    }

    /// The tentpole equivalence: shard-parallel `submit_batch` over a
    /// quadrant tiling ≡ serially submitting the same requests through
    /// one plain engine (same `max_paths` bound) in
    /// [`sharded_canonical_order`] — verdicts, slot tables, owners and
    /// counters all in lock-step, at every thread count.
    #[test]
    fn shard_parallel_equals_sharded_canonical_serial(
        seed in 0u64..4,
        threads in 1usize..5,
        bursts in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u16..1024), 1..12), 1..4),
    ) {
        let spec = quad_spec(seed);
        let cfg = quad_config();
        let mut sharded = ShardedEngine::new(&spec, cfg);
        let mut parts = ShardedAllocation::empty_for(&spec, sharded.map());
        // The serial reference shares the allocator's route bound, so
        // both sides enumerate identical candidates.
        let mut serial = ChurnEngine::with_allocator(
            &spec,
            Allocator { max_paths: cfg.max_paths, ..Allocator::new() },
        );
        let mut flat = Allocation::empty_for(&spec);

        let mut order = Vec::new();
        let mut va = Vec::new();
        for burst in &bursts {
            let requests: Vec<AdmissionRequest> = burst
                .iter()
                .map(|&(kind, pick)| decode_request(&spec, kind, pick))
                .collect();

            sharded.submit_batch(&spec, &mut parts, &requests, &mut va, threads);

            sharded_canonical_order(&spec, sharded.map(), &requests, &mut order);
            prop_assert_eq!(order.len(), requests.len());
            let mut vb = vec![None; requests.len()];
            for &i in &order {
                vb[i] = Some(serial.submit(&spec, &mut flat, requests[i].clone()));
            }
            for (i, v) in va.iter().enumerate() {
                prop_assert_eq!(Some(v), vb[i].as_ref(), "verdict {} diverged", i);
            }
            assert_tables_identical(&spec, &parts.collapse(sharded.map()), &flat);
            prop_assert_eq!(&sharded.stats(), serial.stats());
        }
    }

    /// Thread-count invariance: the same burst sequence through clones
    /// of one sharded engine at 1, 2 and 4 threads produces identical
    /// verdicts and identical collapsed end states.
    #[test]
    fn outcomes_are_thread_count_invariant(
        seed in 0u64..4,
        bursts in proptest::collection::vec(
            proptest::collection::vec((0u8..8, 0u16..1024), 1..12), 1..4),
    ) {
        let spec = quad_spec(seed);
        let cfg = quad_config();
        let mut engines: Vec<ShardedEngine> =
            (0..3).map(|_| ShardedEngine::new(&spec, cfg)).collect();
        let mut allocs: Vec<ShardedAllocation> = (0..3)
            .map(|_| ShardedAllocation::empty_for(&spec, engines[0].map()))
            .collect();
        let mut verdicts: Vec<Vec<_>> = vec![Vec::new(); 3];

        for burst in &bursts {
            let requests: Vec<AdmissionRequest> = burst
                .iter()
                .map(|&(kind, pick)| decode_request(&spec, kind, pick))
                .collect();
            for (t, threads) in [1usize, 2, 4].into_iter().enumerate() {
                engines[t].submit_batch(
                    &spec, &mut allocs[t], &requests, &mut verdicts[t], threads,
                );
            }
            prop_assert_eq!(&verdicts[0], &verdicts[1]);
            prop_assert_eq!(&verdicts[0], &verdicts[2]);
        }
        let map = engines[0].map().clone();
        let reference = allocs[0].collapse(&map);
        assert_tables_identical(&spec, &reference, &allocs[1].collapse(&map));
        assert_tables_identical(&spec, &reference, &allocs[2].collapse(&map));
        prop_assert_eq!(engines[0].stats(), engines[1].stats());
        prop_assert_eq!(engines[0].stats(), engines[2].stats());
    }
}
