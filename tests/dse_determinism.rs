//! Pins the DSE engine's scheduling-independence contract: the same grid
//! must serialize to byte-identical `DSE_REPORT.json` content however
//! many workers evaluate it. Workload seeds derive from point
//! coordinates, results land in enumeration-order slots, and every
//! metric is a pure function of the point — so 1 thread and N threads
//! may *visit* points in any order but must *report* the same bytes.

use aelite_dse::engine::run_sweep;
use aelite_dse::grid::{DseGrid, MeshDim, TrafficMix};
use aelite_dse::report::check_report_text;

/// The CI grid, 1 worker vs 4: byte-identical serialized reports.
#[test]
fn reduced_sweep_is_byte_identical_across_worker_counts() {
    let grid = DseGrid::reduced();
    let mut a = run_sweep(&grid, 1);
    a.attach_fault_scenarios();
    let single = a.to_json();
    let mut b = run_sweep(&grid, 4);
    b.attach_fault_scenarios();
    let multi = b.to_json();
    assert!(
        single == multi,
        "reduced sweep differs between 1 and 4 workers:\n\
         first divergence at byte {}",
        single
            .bytes()
            .zip(multi.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| single.len().min(multi.len()))
    );
    // And the serialized report passes the same gates CI applies to the
    // committed DSE_REPORT.json.
    check_report_text(&single).expect("reduced report passes the gates");
}

/// Oversubscribed grids exercise the incremental-admission fallback;
/// that path must be schedule-independent too.
#[test]
fn partial_points_are_deterministic_across_worker_counts() {
    let grid = DseGrid {
        label: "overload".into(),
        meshes: vec![MeshDim::new(2, 2, 1), MeshDim::new(2, 2, 2)],
        slot_table_sizes: vec![32],
        link_pipeline_depths: vec![0, 1],
        mixes: vec![TrafficMix::Heavy],
    };
    let single = run_sweep(&grid, 1);
    let multi = run_sweep(&grid, 3);
    assert_eq!(single.to_json(), multi.to_json());
}

/// The full grid meets the acceptance floor of 100 points and keeps the
/// paper platform exactly once. (Enumeration only — the full sweep runs
/// in the `dse_sweep` example and CI, not the unit suite.)
#[test]
fn full_grid_spans_at_least_100_points() {
    let grid = DseGrid::full();
    assert!(grid.len() >= 100, "only {} points", grid.len());
    let points = grid.points();
    assert_eq!(
        points
            .iter()
            .filter(|p| p.id() == aelite_dse::PAPER_POINT_ID)
            .count(),
        1
    );
}
