//! Golden equivalence: the bitset/route-cache allocator must produce
//! **bit-for-bit identical grants** to the pre-optimization seed
//! allocator (preserved verbatim in `aelite_baseline::alloc_ref`) on the
//! paper workloads — same paths, same injection slots, same link lists.
//!
//! This is the contract that makes the hot-path rewrite a pure
//! performance change: every kernel (rotate-and-AND candidate masks,
//! nearest-bit spread selection, single-start gap cover, lazy route
//! materialization) replicates the original's decisions exactly,
//! including tie-breaking.

use aelite_baseline::allocate_seed;
use aelite_spec::generate::{paper_workload, scaled_workload};

#[test]
fn grants_match_seed_allocator_on_paper_workloads() {
    for seed in 0..10 {
        let spec = paper_workload(seed);
        let reference = allocate_seed(&spec).expect("seed allocator handles paper workload");
        let optimized = aelite_alloc::allocate(&spec).expect("optimized allocator succeeds");
        for c in spec.connections() {
            let want = reference.grants[c.id.index()]
                .as_ref()
                .expect("reference granted every connection");
            let got = optimized.grant(c.id).expect("optimized granted too");
            assert_eq!(got, want, "seed {seed}: grant of {} diverged", c.id);
        }
    }
}

#[test]
fn grants_match_seed_allocator_on_scaled_mesh() {
    // One synthetic scaled platform keeps the equivalence honest beyond
    // the paper's 4×3 mesh (different table pressure and path diversity).
    let spec = scaled_workload(4, 4, 4, 300, 7);
    let reference = allocate_seed(&spec).expect("seed allocator handles scaled workload");
    let optimized = aelite_alloc::allocate(&spec).expect("optimized allocator succeeds");
    for c in spec.connections() {
        let want = reference.grants[c.id.index()].as_ref().unwrap();
        let got = optimized.grant(c.id).unwrap();
        assert_eq!(got, want, "grant of {} diverged", c.id);
    }
}

#[test]
fn optimized_allocation_still_validates() {
    for seed in [0, 5, 9] {
        let spec = paper_workload(seed);
        let alloc = aelite_alloc::allocate(&spec).unwrap();
        aelite_alloc::validate_allocation(&spec, &alloc)
            .expect("optimized allocation passes the independent checker");
    }
}
