//! Undisturbed service across fault injection and recovery, validated
//! at the cycle level.
//!
//! The paper's contract — admitted connections are undisturbed by
//! everything else, including reconfiguration — must extend to
//! failures: the [`FaultEngine`] services a link or router going down
//! as a churn delta, re-routing only the affected grants. These tests
//! prove the contract **behaviourally**: every bystander's full turbo
//! delivery log — conn, tag, destination cycle *and* absolute time of
//! every flit — is bit-for-bit identical before the failure, after the
//! recovery sweep, and after the repair re-homes the displaced
//! connections. The turbo simulator is itself pinned against the
//! event-driven cycle-accurate engine by `tests/turbo_golden.rs`, so
//! the equivalence transitively covers the reference simulator.
//!
//! The last test is the sharded side of the same story: with a
//! boundary link down, the parallel sharded engine stays bit-identical
//! to the plain serial engine in [`sharded_canonical_order`] at every
//! thread count — the fault mask only removes candidates, it never
//! perturbs the commit order.

use aelite_alloc::{allocate, Allocation, Allocator, FaultMask, Steering};
use aelite_noc::network::NetworkKind;
use aelite_noc::ni::FlitDelivery;
use aelite_noc::turbo::build_turbo;
use aelite_online::{
    sharded_canonical_order, AdmissionRequest, ChurnEngine, FaultEngine, ShardConfig,
    ShardedAllocation, ShardedEngine,
};
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload};
use aelite_spec::ids::{ConnId, LinkId, RouterId};
use aelite_spec::topology::Endpoint;

const HORIZON_CYCLES: u64 = 20_000;

/// Runs `spec` under `alloc` for the common horizon and returns the
/// delivery logs of `conns`, in the given order.
fn delivery_logs(
    spec: &SystemSpec,
    alloc: &Allocation,
    conns: &[ConnId],
) -> Vec<Vec<FlitDelivery>> {
    let mut net = build_turbo(spec, alloc, NetworkKind::Synchronous, true);
    net.run_cycles(HORIZON_CYCLES);
    conns.iter().map(|&c| net.log(c).borrow().clone()).collect()
}

/// The view of `spec` restricted to the currently granted connections.
fn open_view(spec: &SystemSpec, alloc: &Allocation) -> SystemSpec {
    let open: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
    spec.restricted_to_connections(&open)
}

/// The most-loaded link of `alloc` and how many grants traverse it.
fn most_loaded_link(spec: &SystemSpec, alloc: &Allocation) -> (LinkId, u32) {
    let mut load = vec![0u32; spec.topology().link_count()];
    for g in alloc.grants() {
        for &l in &g.links {
            load[l.index()] += 1;
        }
    }
    let (victim, &count) = load.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
    (LinkId::new(victim as u32), count)
}

#[test]
fn bystanders_are_bitwise_undisturbed_across_inject_recover_repair() {
    // Fail the most-loaded link of the fully-allocated paper platform:
    // the recovery sweep has maximal work, and every grant *not* routed
    // over it is a bystander whose service must not change.
    let spec = paper_workload(42);
    let mut alloc = allocate(&spec).expect("paper workload allocates");
    let (victim, affected) = most_loaded_link(&spec, &alloc);
    assert!(affected > 0, "paper workload loads some link");

    let bystanders: Vec<ConnId> = alloc
        .grants()
        .filter(|g| !g.links.contains(&victim))
        .map(|g| g.conn)
        .collect();
    assert!(
        bystanders.len() > spec.connections().len() / 2,
        "most of the workload must be bystanders"
    );
    let bystander_grants: Vec<_> = bystanders
        .iter()
        .map(|&c| alloc.grant(c).unwrap().clone())
        .collect();
    let before = delivery_logs(&spec, &alloc, &bystanders);

    // Inject: the link goes down; the engine walks the recovery ladder.
    let mut engine = FaultEngine::new(&spec);
    let report = engine.link_down(&spec, &mut alloc, victim);
    assert_eq!(report.affected, affected);
    assert_eq!(report.survived() + report.dropped, report.affected);
    for g in alloc.grants() {
        assert!(
            !g.links.contains(&victim),
            "{} still over the fault",
            g.conn
        );
    }

    // Structural: bystander grants are bit-identical.
    for g in &bystander_grants {
        assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
    }
    // Behavioural: bystander delivery logs are bit-for-bit the pre-fault
    // logs, even though affected connections were re-routed around them.
    let during = delivery_logs(&open_view(&spec, &alloc), &alloc, &bystanders);
    assert_eq!(before, during, "recovery disturbed a bystander");

    // Repair: the link comes back; displaced connections are re-homed.
    let repair = engine.link_up(&spec, &mut alloc, victim);
    assert_eq!(
        repair.restored as usize + engine.displaced().len(),
        report.dropped as usize,
        "every dropped connection is re-homed or still parked"
    );
    for g in &bystander_grants {
        assert_eq!(
            alloc.grant(g.conn).unwrap(),
            g,
            "{} moved on repair",
            g.conn
        );
    }
    let after = delivery_logs(&open_view(&spec, &alloc), &alloc, &bystanders);
    assert_eq!(before, after, "repair disturbed a bystander");

    // The logs carry real traffic — this test never compares silence.
    let flits: usize = before.iter().map(Vec::len).sum();
    assert!(
        flits > 5_000,
        "only {flits} flits in {HORIZON_CYCLES} cycles"
    );
}

#[test]
fn sub_threshold_glitch_leaves_every_delivery_log_bit_for_bit() {
    // A transient glitch below the persistence threshold masks the link
    // out of admission but displaces nothing: *every* connection is a
    // bystander. Tables, grants and full cycle-level delivery logs must
    // be bit-for-bit unchanged through the glitch and its expiry.
    let spec = paper_workload(42);
    let mut alloc = allocate(&spec).expect("paper workload allocates");
    let (victim, loaded) = most_loaded_link(&spec, &alloc);
    assert!(loaded > 0, "paper workload loads some link");

    let everyone: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
    let grants: Vec<_> = everyone
        .iter()
        .map(|&c| alloc.grant(c).unwrap().clone())
        .collect();
    let before = delivery_logs(&spec, &alloc, &everyone);

    let mut engine = FaultEngine::new(&spec);
    let duration_ns = engine.persistence_threshold_ns() - 1;
    let report = engine.link_glitch(&spec, &mut alloc, victim, duration_ns);
    assert_eq!(report.affected, 0, "a sub-threshold glitch displaced");
    assert_eq!(engine.stats().affected, 0);
    assert!(engine.mask().is_down(victim), "glitch must mask admission");
    assert!(!engine.enforced().is_down(victim));

    // Structural and behavioural: nothing moved, nobody's service
    // changed — even the grants riding the glitched link.
    for g in &grants {
        assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
    }
    let during = delivery_logs(&spec, &alloc, &everyone);
    assert_eq!(before, during, "a sub-threshold glitch disturbed service");

    // Expiry is equally invisible: only the admission mask clears.
    engine.advance_to(&spec, &mut alloc, duration_ns + 1);
    assert!(engine.mask().is_empty());
    assert_eq!(engine.stats().glitch_expiries, 1);
    for g in &grants {
        assert_eq!(
            alloc.grant(g.conn).unwrap(),
            g,
            "{} moved on expiry",
            g.conn
        );
    }
    let after = delivery_logs(&spec, &alloc, &everyone);
    assert_eq!(before, after, "glitch expiry disturbed service");

    let flits: usize = before.iter().map(Vec::len).sum();
    assert!(
        flits > 5_000,
        "only {flits} flits in {HORIZON_CYCLES} cycles"
    );
}

#[test]
fn router_failure_leaves_unaffected_grants_bit_identical() {
    // A whole mid-mesh router goes down — every adjacent link in one
    // sweep. Grants touching none of those links are bystanders.
    let spec = paper_workload(42);
    let mut alloc = allocate(&spec).expect("paper workload allocates");
    let router = RouterId::new(5);
    let adjacent: Vec<LinkId> = spec
        .topology()
        .links()
        .filter(|&l| {
            let link = spec.topology().link(l);
            let touches = |e: Endpoint| matches!(e, Endpoint::Router(r, _) if r == router);
            touches(link.from) || touches(link.to)
        })
        .collect();
    assert!(!adjacent.is_empty());

    let bystanders: Vec<ConnId> = alloc
        .grants()
        .filter(|g| !g.links.iter().any(|l| adjacent.contains(l)))
        .map(|g| g.conn)
        .collect();
    assert!(!bystanders.is_empty(), "some traffic avoids the router");
    let bystander_grants: Vec<_> = bystanders
        .iter()
        .map(|&c| alloc.grant(c).unwrap().clone())
        .collect();
    let before = delivery_logs(&spec, &alloc, &bystanders);

    let mut engine = FaultEngine::new(&spec);
    let report = engine.router_down(&spec, &mut alloc, router);
    assert!(report.affected > 0, "a mid-mesh router carries traffic");
    for g in alloc.grants() {
        assert!(
            !g.links.iter().any(|l| engine.mask().is_down(*l)),
            "{} granted over a down link",
            g.conn
        );
    }
    for g in &bystander_grants {
        assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
    }
    let during = delivery_logs(&open_view(&spec, &alloc), &alloc, &bystanders);
    assert_eq!(before, during, "router recovery disturbed a bystander");

    engine.router_up(&spec, &mut alloc, router);
    assert!(engine.mask().is_empty());
    for g in &bystander_grants {
        assert_eq!(
            alloc.grant(g.conn).unwrap(),
            g,
            "{} moved on repair",
            g.conn
        );
    }
    let after = delivery_logs(&open_view(&spec, &alloc), &alloc, &bystanders);
    assert_eq!(before, after, "router repair disturbed a bystander");

    let flits: usize = before.iter().map(Vec::len).sum();
    assert!(
        flits > 1_000,
        "only {flits} flits in {HORIZON_CYCLES} cycles"
    );
}

// With a shard-boundary link down, the parallel sharded engine must
// stay bit-identical — verdicts, slot tables, owners, counters — to
// one plain engine applying the same bursts serially in
// `sharded_canonical_order`, at every thread count. The mask only
// removes route candidates; it never perturbs the commit order. The
// same holds under spare-capacity steering: candidate *ordering* is
// part of the per-shard allocators and the serial reference alike.
fn masked_sharded_matches_serial(steering: Steering) {
    let spec = scaled_workload(4, 4, 2, 60, 7);
    let cfg = ShardConfig {
        max_paths: 2,
        steering,
        ..ShardConfig::tiled(2, 2)
    };
    let topo = spec.topology();
    let (cols, rows) = topo.mesh_dims().unwrap();
    let tile = |r: RouterId| {
        let (x, y) = topo.coords(r).unwrap();
        (x * 2 / cols, y * 2 / rows)
    };
    // A router-router link crossing the quadrant boundary: the hardest
    // case, because cross-shard traffic admits through the hub's
    // two-phase commit.
    let boundary = topo
        .links()
        .find(|&l| {
            let link = topo.link(l);
            match (link.from, link.to) {
                (Endpoint::Router(a, _), Endpoint::Router(b, _)) => tile(a) != tile(b),
                _ => false,
            }
        })
        .expect("a 2x2-tiled 4x4 mesh has boundary links");
    let mut mask = FaultMask::new();
    mask.set_down(boundary);

    // Three independent sharded runs (1, 2, 4 threads) plus the serial
    // reference, all admitting under the same mask.
    let mut engines: Vec<ShardedEngine> = (0..3).map(|_| ShardedEngine::new(&spec, cfg)).collect();
    let mut allocs: Vec<ShardedAllocation> = (0..3)
        .map(|_| ShardedAllocation::empty_for(&spec, engines[0].map()))
        .collect();
    for e in &mut engines {
        e.set_faults(&mask);
    }
    let mut serial = ChurnEngine::with_allocator(
        &spec,
        Allocator {
            max_paths: cfg.max_paths,
            steering: cfg.steering,
            ..Allocator::new()
        },
    );
    serial.set_faults(&mask);
    let mut flat = Allocation::empty_for(&spec);

    // Burst 1: open everything. Burst 2: churn every 3rd connection.
    let all: Vec<ConnId> = spec.connections().iter().map(|c| c.id).collect();
    let opens: Vec<AdmissionRequest> = all.iter().map(|&c| AdmissionRequest::Open(c)).collect();
    let churn: Vec<AdmissionRequest> = all
        .iter()
        .filter(|c| c.index() % 3 == 1)
        .flat_map(|&c| [AdmissionRequest::Close(c), AdmissionRequest::Open(c)])
        .collect();

    let mut order = Vec::new();
    let mut verdicts: Vec<Vec<_>> = vec![Vec::new(); 3];
    for requests in [&opens, &churn] {
        for (t, threads) in [1usize, 2, 4].into_iter().enumerate() {
            engines[t].submit_batch(&spec, &mut allocs[t], requests, &mut verdicts[t], threads);
        }
        assert_eq!(verdicts[0], verdicts[1], "2 threads diverged");
        assert_eq!(verdicts[0], verdicts[2], "4 threads diverged");

        sharded_canonical_order(&spec, engines[0].map(), requests, &mut order);
        assert_eq!(order.len(), requests.len());
        let mut reference = vec![None; requests.len()];
        for &i in &order {
            reference[i] = Some(serial.submit(&spec, &mut flat, requests[i].clone()));
        }
        for (i, v) in verdicts[0].iter().enumerate() {
            assert_eq!(Some(v), reference[i].as_ref(), "verdict {i} diverged");
        }
    }

    // Identical end state across all four runs, and no granted route —
    // intra-shard or hub-committed — traverses the down link.
    for t in 0..3 {
        let collapsed = allocs[t].collapse(engines[t].map());
        for li in 0..topo.link_count() {
            let link = LinkId::new(li as u32);
            let (ta, tb) = (flat.link_table(link), collapsed.link_table(link));
            for s in 0..ta.size() {
                assert_eq!(ta.is_free(s), tb.is_free(s), "run {t} link {li} slot {s}");
                assert_eq!(ta.owner(s), tb.owner(s), "run {t} link {li} slot {s}");
            }
        }
        for &c in &all {
            assert_eq!(flat.grant(c), collapsed.grant(c), "run {t}: {c} grant");
        }
        assert_eq!(engines[t].stats(), *serial.stats(), "run {t} stats");
        for g in collapsed.grants() {
            assert!(!g.links.contains(&boundary), "{} over the fault", g.conn);
        }
    }
    assert!(
        flat.grants().count() > all.len() / 2,
        "the masked platform still admits most of the workload"
    );
}

#[test]
fn sharded_admission_under_fault_mask_matches_sharded_canonical_serial() {
    masked_sharded_matches_serial(Steering::ShortestFirst);
}

#[test]
fn steered_sharded_admission_under_fault_mask_matches_serial() {
    masked_sharded_matches_serial(Steering::SpareCapacity);
}
