//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! handful of `rand` 0.8 APIs the workspace uses are reimplemented here on
//! top of a small, fast, deterministic generator (splitmix64 seeding a
//! xoshiro256++ state). The statistical quality is far beyond what the
//! seeded workload generators need; the point is a stable, reproducible
//! stream per seed, not cryptographic strength.
//!
//! Swap this path dependency for the real crates.io `rand` when network
//! access is available — call sites will compile unchanged.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the unit interval / full range
/// by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let draw = rng.next_u64() as $wide % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() as $wide % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution (e.g. `f64` in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64, matching the construction recommended by its authors.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_interval_covers_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let low = (0..n).filter(|_| rng.gen::<f64>() < 0.5).count();
        assert!((n / 2 - n / 10..=n / 2 + n / 10).contains(&low), "{low}");
    }
}
