//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! Provides `Criterion`, `Bencher`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros with compatible
//! signatures so the workspace's benches compile (and run, printing
//! simple wall-clock timings) without registry access. There is no
//! statistical analysis, warm-up modelling or HTML report — swap this
//! path dependency for the real crates.io `criterion` when network
//! access is available.

#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion supports `cargo bench -- --test`, which runs each
        // benchmark exactly once as a smoke test; mirror that so CI can
        // exercise bench targets cheaply.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples [`Bencher::iter`] collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: if self.test_mode { 1 } else { self.sample_size },
            total_ns: 0,
            iterations: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("bench {id:<48} ok (test mode)");
        } else if b.iterations > 0 {
            let mean = b.total_ns as f64 / b.iterations as f64;
            println!(
                "bench {id:<48} {:>12.0} ns/iter ({} iters)",
                mean, b.iterations
            );
        } else {
            println!("bench {id:<48} (no iterations)");
        }
        self
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    total_ns: u128,
    iterations: u64,
}

impl Bencher {
    /// Runs `f` `sample_size` times, accumulating wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.total_ns += start.elapsed().as_nanos();
            self.iterations += 1;
        }
    }
}

/// Declares a benchmark group: a function running each target with a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running each benchmark group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| black_box(1u64) + 1));
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_runs() {
        group();
    }
}
