//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest 1.x that this workspace's property
//! tests use: range/tuple/collection strategies, `prop_map` /
//! `prop_flat_map`, `Just`, `prop_oneof!`, the `proptest!` macro with an
//! optional `#![proptest_config(...)]` attribute, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case panics with its sampled inputs instead
//!   of a minimized counterexample;
//! - sampling is deterministic per test (seeded from the test name), so CI
//!   failures always reproduce locally.
//!
//! Swap this path dependency for the real crates.io `proptest` when
//! network access is available — call sites will compile unchanged.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-loop configuration and the deterministic case generator.

    /// How many random cases a `proptest!` test runs, and related knobs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` sampled cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Marker for a rejected (assumption-failed) case; the runner simply
    /// moves on to the next case.
    #[derive(Debug)]
    pub struct Rejected;

    /// Deterministic random source driving strategy sampling
    /// (xoshiro256++ seeded from a string, usually the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (FNV-1a hashed).
        #[must_use]
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Returns the next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// is just a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (parity with proptest's `boxed`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union drawing uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections with sampled sizes.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use std::collections::BTreeSet;

    /// An (inclusive-min, inclusive-max) size specification, convertible
    /// from `usize`, `a..b` and `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            let span = (self.max - self.min + 1) as u64;
            self.min + rng.below(span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of sampled length; see [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet`s of sampled cardinality; see [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // The element domain must hold at least `target` distinct
            // values (as with real proptest); the attempt cap only guards
            // against a misused strategy looping forever.
            let mut attempts = 0usize;
            while set.len() < target {
                set.insert(self.elem.sample(rng));
                attempts += 1;
                assert!(
                    attempts < 100_000,
                    "btree_set: element domain too small for requested size {target}"
                );
            }
            set
        }
    }

    /// A `BTreeSet` whose cardinality is drawn from `size` and whose
    /// elements are drawn from `elem` (resampling duplicates).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Runs `cases` sampled test cases (the `proptest!` macro body).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = <$crate::test_runner::Config as ::core::default::Default>::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::core::module_path!(), "::", ::core::stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                // A rejected case (failed prop_assume!) is simply skipped.
                ::core::mem::drop(__outcome);
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, panicking with the
/// formatted message on failure (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::core::assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::core::assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::core::assert_ne!($($args)*) };
}

/// Skips the current case when its sampled inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among several strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! One-stop import for writing property tests.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        let strat = (1u32..5, 10u64..=20);
        for _ in 0..1000 {
            let (a, b) = strat.sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!((10..=20).contains(&b));
        }
    }

    #[test]
    fn btree_set_hits_requested_cardinality() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let strat = crate::collection::btree_set(0u32..8, 3..=8);
        for _ in 0..200 {
            let s = strat.sample(&mut rng);
            assert!((3..=8).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), c in 0u8..4) {
            prop_assume!(a != 9);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(u32::from(c), u32::from(c));
        }

        #[test]
        fn oneof_and_flat_map(v in prop_oneof![Just(1u32), Just(2)], n in (1u32..4).prop_flat_map(|k| 0u32..(k + 1))) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(n < 4);
        }
    }
}
