//! A multi-application multimedia SoC — the scenario the paper's
//! introduction motivates: independent applications (video, audio, GUI,
//! control) integrated on one chip, each developed and verified in
//! isolation, with composability guaranteeing that integration changes
//! nothing about their timing.
//!
//! Run with: `cargo run --example multimedia_soc`

use aelite_core::{AeliteSystem, SimOptions};
use aelite_spec::app::SystemSpecBuilder;
use aelite_spec::config::NocConfig;
use aelite_spec::ids::IpId;
use aelite_spec::topology::Topology;
use aelite_spec::traffic::Bandwidth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3x2 concentrated mesh with 2 NIs per router: 12 NI attach points.
    let topo = Topology::mesh(3, 2, 2);
    let nis: Vec<_> = topo.nis().collect();
    let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());

    // IP cores, placed around the chip.
    let ip: Vec<IpId> = (0..12).map(|i| b.add_ip_at(nis[i])).collect();
    let (video_in, video_dec, display, mem0) = (ip[0], ip[1], ip[2], ip[3]);
    let (audio_in, audio_dsp, speakers) = (ip[4], ip[5], ip[6]);
    let (gui, mem1) = (ip[7], ip[8]);
    let (host, sensors, actuators) = (ip[9], ip[10], ip[11]);

    // Four independent applications.
    let video = b.add_app("video decode");
    b.add_connection(
        video,
        video_in,
        video_dec,
        Bandwidth::from_mbytes_per_sec(200),
        300,
    );
    b.add_connection(
        video,
        video_dec,
        mem0,
        Bandwidth::from_mbytes_per_sec(400),
        250,
    );
    b.add_connection(
        video,
        mem0,
        video_dec,
        Bandwidth::from_mbytes_per_sec(400),
        250,
    );
    b.add_connection(
        video,
        video_dec,
        display,
        Bandwidth::from_mbytes_per_sec(250),
        200,
    );

    let audio = b.add_app("audio");
    b.add_connection(
        audio,
        audio_in,
        audio_dsp,
        Bandwidth::from_mbytes_per_sec(12),
        400,
    );
    b.add_connection(
        audio,
        audio_dsp,
        speakers,
        Bandwidth::from_mbytes_per_sec(12),
        150,
    );

    let gfx = b.add_app("GUI");
    b.add_connection(gfx, gui, mem1, Bandwidth::from_mbytes_per_sec(80), 400);
    b.add_connection(gfx, mem1, display, Bandwidth::from_mbytes_per_sec(120), 350);

    let control = b.add_app("control");
    b.add_connection(
        control,
        host,
        sensors,
        Bandwidth::from_mbytes_per_sec(10),
        500,
    );
    b.add_connection(
        control,
        sensors,
        host,
        Bandwidth::from_mbytes_per_sec(10),
        500,
    );
    b.add_connection(
        control,
        host,
        actuators,
        Bandwidth::from_mbytes_per_sec(10),
        450,
    );

    let system = AeliteSystem::design(b.build())?;
    let opts = SimOptions {
        duration_cycles: 120_000,
        ..SimOptions::default()
    };

    // Each team verifies its application in isolation...
    for (app, name) in [
        (video, "video decode"),
        (audio, "audio"),
        (gfx, "GUI"),
        (control, "control"),
    ] {
        let isolated = system.simulate_apps(&[app], opts);
        assert!(isolated.service.all_ok(), "{name} fails in isolation");
        println!(
            "{name:>13}: {} connections verified in isolation",
            isolated.service.verdicts.len()
        );
    }

    // ... and integration cannot change any of their timing.
    let integration = system.verify_composability(opts);
    println!("integration check: {integration}");
    assert!(integration.is_composable());

    // The full system also meets every contract, of course.
    let full = system.simulate(opts);
    assert!(full.service.all_ok());
    println!(
        "full system: {} connections, peak link utilisation {:.0}%",
        full.service.verdicts.len(),
        system.allocation().peak_utilisation() * 100.0
    );
    Ok(())
}
