//! Allocator-throughput trajectory: measures the pre-optimization seed
//! allocator against the current bitset + route-cache allocator and
//! writes `BENCH_ALLOC.json`, the perf record future PRs track.
//!
//! Three configurations per workload (see the `alloc_throughput` bench
//! for the same matrix under criterion):
//!
//! * **seed** — the original allocator, preserved verbatim in
//!   `aelite_baseline::alloc_ref`, measured live so the comparison is
//!   apples-to-apples on whatever machine regenerates the file;
//! * **cold** — `aelite_alloc::allocate` building its route cache from
//!   scratch (a one-shot design-time run);
//! * **warm** — `allocate_with_cache` with a primed [`RouteCache`] (the
//!   steady-state re-allocation path for heavy-traffic scenarios).
//!
//! A second, **scaling-curve** section tracks the mega-mesh regime the
//! lazy route cache and sparse slot tables unlock: regional workloads
//! from 8×8/2.5k connections up to 32×32/30k connections, cold and
//! warm, with the lazy cache's resident pair count recorded against the
//! `ni_count²` pair space it replaced.
//!
//! Run with `cargo run --release --example bench_alloc`. Modes:
//!
//! * (no args) — measure everything, write `BENCH_ALLOC.json`, assert
//!   the speedup and scaling gates;
//! * `--scaling` — CI smoke: only the smallest and one mid-size curve
//!   point, written to `BENCH_ALLOC_SCALING_SMOKE.json` (the committed
//!   `BENCH_ALLOC.json` is left untouched);
//! * `--check` — no measurement: re-validate the gates against the
//!   committed `BENCH_ALLOC.json`.

use aelite_alloc::{Allocator, RouteCache, RouteProvider};
use aelite_baseline::allocate_seed;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload, WorkloadBuilder};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    platform: &'static str,
    connections: usize,
    seed_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
}

fn time_ms<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    // One untimed warm-up evens out first-touch effects.
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps)
}

fn measure(name: &'static str, platform: &'static str, spec: &SystemSpec, reps: u32) -> Row {
    let seed_ms = time_ms(reps, || allocate_seed(spec).expect("seed allocates"));
    let cold_ms = time_ms(reps, || aelite_alloc::allocate(spec).expect("allocates"));
    let allocator = Allocator::new();
    let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
    let warm_ms = time_ms(reps, || {
        allocator
            .allocate_with_cache(spec, &mut routes)
            .expect("allocates")
    });
    let row = Row {
        name,
        platform,
        connections: spec.connections().len(),
        seed_ms,
        cold_ms,
        warm_ms,
    };
    println!(
        "{name:>13}: seed {seed_ms:8.2} ms | cold {cold_ms:7.2} ms ({:4.1}x) | warm {warm_ms:6.2} ms ({:4.1}x)",
        seed_ms / cold_ms,
        seed_ms / warm_ms,
    );
    row
}

struct ScalingRow {
    name: String,
    mesh: u32,
    connections: usize,
    cold_ms: f64,
    warm_ms: f64,
    resident_pairs: usize,
    pair_space: usize,
}

/// The scaling curve's workload at one mesh size: regional (2×2-router
/// tiles) mega-profile traffic — the locality mega-meshes are built for.
fn mega_spec(n: u32, connections: u32) -> SystemSpec {
    WorkloadBuilder::mesh(n, n, 4)
        .mega_traffic()
        .connections(connections)
        .tiles(n / 2, n / 2)
        .seed(1)
        .build()
}

fn measure_scaling(n: u32, connections: u32, reps: u32) -> ScalingRow {
    let spec = mega_spec(n, connections);
    let cold_ms = time_ms(reps, || aelite_alloc::allocate(&spec).expect("allocates"));
    let allocator = Allocator::new();
    let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
    let warm_ms = time_ms(reps, || {
        allocator
            .allocate_with_cache(&spec, &mut routes)
            .expect("allocates")
    });
    let ni = spec.topology().ni_count();
    let row = ScalingRow {
        name: format!("mesh{n}x{n}_{connections}"),
        mesh: n,
        connections: spec.connections().len(),
        cold_ms,
        warm_ms,
        resident_pairs: routes.resident_pairs(),
        pair_space: ni * ni,
    };
    println!(
        "{:>15}: cold {:8.2} ms ({:8.0} conns/s) | warm {:8.2} ms ({:8.0} conns/s) | {} / {} route pairs resident",
        row.name,
        cold_ms,
        connections as f64 / (cold_ms / 1e3),
        warm_ms,
        connections as f64 / (warm_ms / 1e3),
        row.resident_pairs,
        row.pair_space,
    );
    row
}

fn scaling_json(rows: &[ScalingRow]) -> String {
    let mut json = String::new();
    json.push_str("  \"scaling\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let conns = r.connections as f64;
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(
            json,
            "      \"platform\": \"{0}x{0} mesh, 4 NIs/router, regional mega-profile\",",
            r.mesh
        )
        .unwrap();
        writeln!(json, "      \"connections\": {},", r.connections).unwrap();
        writeln!(json, "      \"cold_ms_per_alloc\": {:.3},", r.cold_ms).unwrap();
        writeln!(json, "      \"warm_ms_per_alloc\": {:.3},", r.warm_ms).unwrap();
        writeln!(
            json,
            "      \"cold_conns_per_sec\": {:.0},",
            conns / (r.cold_ms / 1e3)
        )
        .unwrap();
        writeln!(
            json,
            "      \"warm_conns_per_sec\": {:.0},",
            conns / (r.warm_ms / 1e3)
        )
        .unwrap();
        writeln!(
            json,
            "      \"resident_route_pairs\": {},",
            r.resident_pairs
        )
        .unwrap();
        writeln!(json, "      \"route_pair_space\": {}", r.pair_space).unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n");
    json
}

/// The scaling gate: the largest curve point must allocate at this rate
/// or better, cold (recorded headroom is several-fold — see
/// `BENCH_ALLOC.json`).
const SCALING_GATE_CONNS_PER_SEC: f64 = 50_000.0;

/// Minimal field scanner for the committed JSON (`--check` mode): the
/// benches emit one `"key": value` pair per line, so rows can be
/// re-read without a JSON dependency.
fn scan_rows(text: &str) -> Vec<std::collections::HashMap<String, String>> {
    let mut rows = Vec::new();
    let mut cur: Option<std::collections::HashMap<String, String>> = None;
    for line in text.lines() {
        let t = line.trim();
        if t == "{" {
            cur = Some(std::collections::HashMap::new());
        } else if t.starts_with('}') {
            if let Some(row) = cur.take() {
                rows.push(row);
            }
        } else if let Some(row) = &mut cur {
            if let Some((k, v)) = t.split_once(':') {
                let k = k.trim().trim_matches('"').to_string();
                let v = v.trim().trim_end_matches(',').trim_matches('"').to_string();
                row.insert(k, v);
            }
        }
    }
    rows
}

fn field_f64(row: &std::collections::HashMap<String, String>, key: &str) -> f64 {
    row.get(key)
        .unwrap_or_else(|| panic!("committed JSON row missing {key}"))
        .parse()
        .unwrap_or_else(|e| panic!("committed JSON field {key} unparsable: {e}"))
}

/// `--check`: re-assert every gate against the committed JSON.
fn check_committed() {
    let text = std::fs::read_to_string("BENCH_ALLOC.json").expect("read BENCH_ALLOC.json");
    let rows = scan_rows(&text);
    let gate = rows
        .iter()
        .find(|r| r.get("name").map(String::as_str) == Some("mesh8x8_1000"))
        .expect("committed JSON lacks the mesh8x8_1000 gate row");
    let cold = field_f64(gate, "cold_speedup_vs_seed");
    let warm = field_f64(gate, "warm_speedup_vs_seed");
    assert!(
        cold >= 5.0 || warm >= 5.0,
        "committed mesh8x8_1000 speedup below 5x: cold {cold:.2}x, warm {warm:.2}x"
    );
    let largest = rows
        .iter()
        .filter(|r| r.contains_key("route_pair_space"))
        .max_by_key(|r| field_f64(r, "connections") as u64)
        .expect("committed JSON lacks a scaling section");
    assert!(
        field_f64(largest, "connections") >= 10_000.0,
        "largest committed scaling point is under 10k connections"
    );
    let rate = field_f64(largest, "cold_conns_per_sec");
    assert!(
        rate >= SCALING_GATE_CONNS_PER_SEC,
        "committed scaling gate below {SCALING_GATE_CONNS_PER_SEC} conns/s: {rate:.0}"
    );
    println!(
        "BENCH_ALLOC.json gates hold: mesh8x8_1000 {cold:.2}x/{warm:.2}x, \
         largest scaling point {rate:.0} conns/s"
    );
}

/// `--scaling`: CI smoke — smallest + one mid-size point, separate
/// artifact, committed JSON untouched.
fn scaling_smoke() {
    println!("allocator scaling smoke (smallest + mid-size curve points)");
    let rows = [measure_scaling(8, 2_500, 2), measure_scaling(16, 10_000, 2)];
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-alloc-scaling-smoke/1\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_alloc.rs --scaling\",\n");
    json.push_str(&scaling_json(&rows));
    json.push_str("}\n");
    std::fs::write("BENCH_ALLOC_SCALING_SMOKE.json", &json)
        .expect("write BENCH_ALLOC_SCALING_SMOKE.json");
    println!("\nwrote BENCH_ALLOC_SCALING_SMOKE.json");
    for r in &rows {
        assert!(
            r.resident_pairs < r.pair_space,
            "{}: lazy cache not sparse in pair space",
            r.name
        );
    }
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("--check") => return check_committed(),
        Some("--scaling") => return scaling_smoke(),
        Some(other) => panic!("unknown mode {other}; use --check or --scaling"),
        None => {}
    }
    println!("allocator throughput (ms per full allocation; speedups vs seed)");
    let rows = [
        measure(
            "paper_200",
            "4x3 mesh, 4 NIs/router (Section VII)",
            &paper_workload(42),
            10,
        ),
        measure(
            "mesh4x4_500",
            "4x4 mesh, 4 NIs/router, synthetic",
            &scaled_workload(4, 4, 4, 500, 1),
            5,
        ),
        measure(
            "mesh8x8_1000",
            "8x8 mesh, 4 NIs/router, synthetic",
            &scaled_workload(8, 8, 4, 1000, 1),
            5,
        ),
        measure(
            "mesh8x8_2000",
            "8x8 mesh, 4 NIs/router, synthetic",
            &scaled_workload(8, 8, 4, 2000, 1),
            3,
        ),
    ];

    println!("\nmega-mesh scaling curve (regional mega-profile, cold/warm)");
    let scaling = [
        measure_scaling(8, 2_500, 3),
        measure_scaling(16, 10_000, 3),
        measure_scaling(24, 20_000, 2),
        measure_scaling(32, 30_000, 2),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-alloc/2\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_alloc.rs\",\n");
    json.push_str(
        "  \"note\": \"seed = pre-optimization allocator (aelite_baseline::alloc_ref), \
         measured live on the same machine; cold = current allocator with a fresh route \
         cache; warm = current allocator re-using a RouteCache (steady-state \
         re-allocation)\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let conns = r.connections as f64;
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"platform\": \"{}\",", r.platform).unwrap();
        writeln!(json, "      \"connections\": {},", r.connections).unwrap();
        writeln!(json, "      \"seed_ms_per_alloc\": {:.3},", r.seed_ms).unwrap();
        writeln!(json, "      \"cold_ms_per_alloc\": {:.3},", r.cold_ms).unwrap();
        writeln!(json, "      \"warm_ms_per_alloc\": {:.3},", r.warm_ms).unwrap();
        writeln!(
            json,
            "      \"seed_conns_per_sec\": {:.0},",
            conns / (r.seed_ms / 1e3)
        )
        .unwrap();
        writeln!(
            json,
            "      \"cold_conns_per_sec\": {:.0},",
            conns / (r.cold_ms / 1e3)
        )
        .unwrap();
        writeln!(
            json,
            "      \"warm_conns_per_sec\": {:.0},",
            conns / (r.warm_ms / 1e3)
        )
        .unwrap();
        writeln!(
            json,
            "      \"cold_speedup_vs_seed\": {:.2},",
            r.seed_ms / r.cold_ms
        )
        .unwrap();
        writeln!(
            json,
            "      \"warm_speedup_vs_seed\": {:.2}",
            r.seed_ms / r.warm_ms
        )
        .unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ],\n");
    json.push_str(&scaling_json(&scaling));
    json.push_str("}\n");

    std::fs::write("BENCH_ALLOC.json", &json).expect("write BENCH_ALLOC.json");
    println!("\nwrote BENCH_ALLOC.json");

    // The acceptance gate this trajectory started with: the 1000-connection
    // 8x8 mesh must allocate at least 5x faster than the seed allocator.
    // Wall-clock measurements on shared CI runners are noisy, so the hard
    // failure only fires when *both* the cold and the warm configuration
    // miss the bar (headroom at the time of recording: ~9x cold, ~20x
    // warm); a cold-only dip is reported as a warning.
    let gate = rows.iter().find(|r| r.name == "mesh8x8_1000").unwrap();
    let cold_speedup = gate.seed_ms / gate.cold_ms;
    let warm_speedup = gate.seed_ms / gate.warm_ms;
    if cold_speedup < 5.0 {
        eprintln!("warning: mesh8x8_1000 cold speedup below 5x: {cold_speedup:.2}x");
    }
    assert!(
        cold_speedup >= 5.0 || warm_speedup >= 5.0,
        "mesh8x8_1000 speedup regressed below 5x: cold {cold_speedup:.2}x, warm {warm_speedup:.2}x"
    );

    // The mega-mesh scaling gate: the largest curve point (32x32, 30k
    // connections) must keep allocating at rate — this is the point the
    // dense route cache and dense slot tables made intractable.
    let largest = scaling.last().unwrap();
    assert!(largest.connections >= 10_000, "largest point shrank");
    let rate = largest.connections as f64 / (largest.cold_ms / 1e3);
    assert!(
        rate >= SCALING_GATE_CONNS_PER_SEC,
        "{} cold allocation rate regressed below {SCALING_GATE_CONNS_PER_SEC} conns/s: {rate:.0}",
        largest.name
    );
    assert!(
        largest.resident_pairs * 10 < largest.pair_space,
        "lazy route cache no longer sparse at 32x32: {} of {} pairs resident",
        largest.resident_pairs,
        largest.pair_space
    );
}
