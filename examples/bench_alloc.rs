//! Allocator-throughput trajectory: measures the pre-optimization seed
//! allocator against the current bitset + route-cache allocator and
//! writes `BENCH_ALLOC.json`, the perf record future PRs track.
//!
//! Three configurations per workload (see the `alloc_throughput` bench
//! for the same matrix under criterion):
//!
//! * **seed** — the original allocator, preserved verbatim in
//!   `aelite_baseline::alloc_ref`, measured live so the comparison is
//!   apples-to-apples on whatever machine regenerates the file;
//! * **cold** — `aelite_alloc::allocate` building its route cache from
//!   scratch (a one-shot design-time run);
//! * **warm** — `allocate_with_cache` with a primed [`RouteCache`] (the
//!   steady-state re-allocation path for heavy-traffic scenarios).
//!
//! Run with `cargo run --release --example bench_alloc`.

use aelite_alloc::{Allocator, RouteCache};
use aelite_baseline::allocate_seed;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    platform: &'static str,
    connections: usize,
    seed_ms: f64,
    cold_ms: f64,
    warm_ms: f64,
}

fn time_ms<R>(reps: u32, mut f: impl FnMut() -> R) -> f64 {
    // One untimed warm-up evens out first-touch effects.
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps)
}

fn measure(name: &'static str, platform: &'static str, spec: &SystemSpec, reps: u32) -> Row {
    let seed_ms = time_ms(reps, || allocate_seed(spec).expect("seed allocates"));
    let cold_ms = time_ms(reps, || aelite_alloc::allocate(spec).expect("allocates"));
    let allocator = Allocator::new();
    let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
    let warm_ms = time_ms(reps, || {
        allocator
            .allocate_with_cache(spec, &mut routes)
            .expect("allocates")
    });
    let row = Row {
        name,
        platform,
        connections: spec.connections().len(),
        seed_ms,
        cold_ms,
        warm_ms,
    };
    println!(
        "{name:>13}: seed {seed_ms:8.2} ms | cold {cold_ms:7.2} ms ({:4.1}x) | warm {warm_ms:6.2} ms ({:4.1}x)",
        seed_ms / cold_ms,
        seed_ms / warm_ms,
    );
    row
}

fn main() {
    println!("allocator throughput (ms per full allocation; speedups vs seed)");
    let rows = [
        measure(
            "paper_200",
            "4x3 mesh, 4 NIs/router (Section VII)",
            &paper_workload(42),
            10,
        ),
        measure(
            "mesh4x4_500",
            "4x4 mesh, 4 NIs/router, synthetic",
            &scaled_workload(4, 4, 4, 500, 1),
            5,
        ),
        measure(
            "mesh8x8_1000",
            "8x8 mesh, 4 NIs/router, synthetic",
            &scaled_workload(8, 8, 4, 1000, 1),
            5,
        ),
        measure(
            "mesh8x8_2000",
            "8x8 mesh, 4 NIs/router, synthetic",
            &scaled_workload(8, 8, 4, 2000, 1),
            3,
        ),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-alloc/1\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_alloc.rs\",\n");
    json.push_str(
        "  \"note\": \"seed = pre-optimization allocator (aelite_baseline::alloc_ref), \
         measured live on the same machine; cold = current allocator with a fresh route \
         cache; warm = current allocator re-using a RouteCache (steady-state \
         re-allocation)\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let conns = r.connections as f64;
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"platform\": \"{}\",", r.platform).unwrap();
        writeln!(json, "      \"connections\": {},", r.connections).unwrap();
        writeln!(json, "      \"seed_ms_per_alloc\": {:.3},", r.seed_ms).unwrap();
        writeln!(json, "      \"cold_ms_per_alloc\": {:.3},", r.cold_ms).unwrap();
        writeln!(json, "      \"warm_ms_per_alloc\": {:.3},", r.warm_ms).unwrap();
        writeln!(
            json,
            "      \"seed_conns_per_sec\": {:.0},",
            conns / (r.seed_ms / 1e3)
        )
        .unwrap();
        writeln!(
            json,
            "      \"cold_conns_per_sec\": {:.0},",
            conns / (r.cold_ms / 1e3)
        )
        .unwrap();
        writeln!(
            json,
            "      \"warm_conns_per_sec\": {:.0},",
            conns / (r.warm_ms / 1e3)
        )
        .unwrap();
        writeln!(
            json,
            "      \"cold_speedup_vs_seed\": {:.2},",
            r.seed_ms / r.cold_ms
        )
        .unwrap();
        writeln!(
            json,
            "      \"warm_speedup_vs_seed\": {:.2}",
            r.seed_ms / r.warm_ms
        )
        .unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_ALLOC.json", &json).expect("write BENCH_ALLOC.json");
    println!("\nwrote BENCH_ALLOC.json");

    // The acceptance gate this trajectory started with: the 1000-connection
    // 8x8 mesh must allocate at least 5x faster than the seed allocator.
    // Wall-clock measurements on shared CI runners are noisy, so the hard
    // failure only fires when *both* the cold and the warm configuration
    // miss the bar (headroom at the time of recording: ~9x cold, ~20x
    // warm); a cold-only dip is reported as a warning.
    let gate = rows.iter().find(|r| r.name == "mesh8x8_1000").unwrap();
    let cold_speedup = gate.seed_ms / gate.cold_ms;
    let warm_speedup = gate.seed_ms / gate.warm_ms;
    if cold_speedup < 5.0 {
        eprintln!("warning: mesh8x8_1000 cold speedup below 5x: {cold_speedup:.2}x");
    }
    assert!(
        cold_speedup >= 5.0 || warm_speedup >= 5.0,
        "mesh8x8_1000 speedup regressed below 5x: cold {cold_speedup:.2}x, warm {warm_speedup:.2}x"
    );
}
