//! Parallel design-space sweep: explore mesh dimensions × slot-table
//! sizes × link pipeline depths × traffic mixes, and report success
//! rates, worst-case bounds and the area-vs-guaranteed-throughput
//! Pareto front in `DSE_REPORT.json`.
//!
//! ```text
//! cargo run --release --example dse_sweep                 # full 126-point grid
//! cargo run --release --example dse_sweep -- --reduced    # CI's 12-point grid
//! cargo run --release --example dse_sweep -- --threads 4  # fixed worker count
//! cargo run --release --example dse_sweep -- --out my.json
//! cargo run --release --example dse_sweep -- --check      # gate an existing report
//! cargo run --release --example dse_sweep -- --reduced --validate
//! ```
//!
//! The report is deterministic: the same grid produces byte-identical
//! JSON for any `--threads` value (workload seeds derive from point
//! coordinates, never from the schedule). Schema `aelite-dse-report/2`
//! folds the fault scenario in: every Pareto-front point is replayed
//! through the `FaultEngine` under a seeded merged churn + fault trace
//! and its deterministic admission/displacement counts are committed as
//! `fault_scenarios` (wall-clock rates stay out). `--check` verifies an
//! already written report — CI uses it to gate the committed
//! `DSE_REPORT.json` before regenerating its own reduced sweep.
//!
//! `--validate` replays every Pareto-front point through the turbo
//! cycle-accurate kernel (`aelite_noc::turbo`) and asserts the measured
//! worst-case per-flit latency of every connection stays within the
//! analytical bound the report advertises — simulation-backed evidence
//! for the front, cheap enough for CI.
//!
//! `--churn` drives every Pareto-front point through the online
//! reconfiguration engine (`aelite_online::ChurnEngine`) under a seeded
//! Poisson open/close/use-case-switch trace and reports each point's
//! admission outcome and sustained churn rate (setup+teardown ops/sec)
//! alongside its area and throughput.

use aelite_dse::churn::{churn_front, churn_table_header, CHURN_EVENTS_PER_POINT};
use aelite_dse::engine::run_sweep;
use aelite_dse::fault::fault_table_header;
use aelite_dse::grid::DseGrid;
use aelite_dse::report::check_report_text;
use aelite_dse::validate::{validate_front, validation_table_header, VALIDATE_DURATION_CYCLES};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut grid = DseGrid::full();
    let mut threads = 0usize; // 0 = one worker per CPU
    let mut out = String::from("DSE_REPORT.json");
    let mut check: Option<String> = None;
    let mut validate = false;
    let mut churn = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reduced" => grid = DseGrid::reduced(),
            "--validate" => validate = true,
            "--churn" => churn = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--out" => {
                i += 1;
                out = args.get(i).expect("--out needs a path").clone();
            }
            "--check" => {
                // Optional path operand; defaults to the committed report.
                check = Some(match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "DSE_REPORT.json".to_string(),
                });
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match check_report_text(&text) {
            Ok(()) => println!("{path}: schema and gates OK"),
            Err(e) => panic!("{path}: gate failed: {e}"),
        }
        return;
    }

    println!(
        "design-space sweep: {} points ({} grid), {} worker(s)",
        grid.len(),
        grid.label,
        if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        }
    );
    let t0 = Instant::now();
    let mut report = run_sweep(&grid, threads);
    let elapsed = t0.elapsed().as_secs_f64();
    println!("swept in {elapsed:.2} s\n");

    // The fault scenario is part of the report (schema 2): replay every
    // front point through a seeded merged churn + fault trace and fold
    // the deterministic counts in before serializing.
    report.attach_fault_scenarios();

    print!("{}", report.summary_table());
    println!();
    print!("{}", report.pareto_table());
    println!();
    println!("{}", fault_table_header());
    for f in &report.fault {
        println!("{f}");
    }

    // The gates CI relies on: consistency, a non-empty front, and the
    // paper platform (present in both the full and reduced grids)
    // allocating every one of its connections.
    report.assert_gates();
    assert!(
        report.paper_point().is_some(),
        "grid must include the paper platform point"
    );

    let json = report.to_json();
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out} ({} points)", report.points.len());

    // Simulation-backed validation of the front: replay each Pareto
    // point through the turbo kernel; any connection whose measured
    // worst-case latency exceeds its analytical bound panics there.
    if validate {
        println!(
            "\nvalidating {} Pareto point(s) over {VALIDATE_DURATION_CYCLES} cycles each",
            report.pareto.len()
        );
        let t0 = Instant::now();
        let rows = validate_front(&report, VALIDATE_DURATION_CYCLES);
        println!("{}", validation_table_header());
        for row in &rows {
            println!("{row}");
        }
        println!(
            "validated in {:.2} s: every measured worst case within its analytical bound",
            t0.elapsed().as_secs_f64()
        );
    }

    // The churn scenario: sustainable online-reconfiguration rate of
    // every front point, under a Poisson open/close/use-case-switch
    // trace replayed through the ChurnEngine.
    if churn {
        println!(
            "\nchurning {} Pareto point(s), {CHURN_EVENTS_PER_POINT} events each",
            report.pareto.len()
        );
        let t0 = Instant::now();
        let rows = churn_front(&report, CHURN_EVENTS_PER_POINT);
        println!("{}", churn_table_header());
        for row in &rows {
            println!("{row}");
        }
        let worst = rows
            .iter()
            .map(|r| r.admission_rate)
            .fold(f64::INFINITY, f64::min);
        println!(
            "churned in {:.2} s: worst-case admission rate {:.1}%",
            t0.elapsed().as_secs_f64(),
            100.0 * worst
        );
    }
}
