//! Sharded parallel admission scaling: drives the region-partitioned
//! [`ShardedEngine`] over a regional client population and writes
//! `BENCH_SHARD.json`, the shards×threads scaling record future PRs
//! track.
//!
//! The platform is the 8×8-mesh/1000-connection workload with
//! **regional** traffic (each connection stays inside its 2×2-quadrant
//! tile), so under the matching quadrant shard map almost every request
//! admits shard-locally and the four shard engines can run on separate
//! threads. Clients are grouped by their connections' home shard, and
//! `plan_bursts_sharded` caps bursts per shard lane, so each admission
//! round fans out up to `shards × cap` requests wide.
//!
//! Per (shards, threads) cell the harness replays the same merged
//! stream after the same untimed warm-up quarter (best of N
//! repetitions) through `replay_sharded`. Gates, asserted here and
//! smoke-run in CI:
//!
//! * **determinism** — admission counts (admitted / refused / ops) are
//!   bit-identical across thread counts at every shard count;
//! * **scaling** — at 4 shards, the best ops/sec is ≥2× the
//!   1-shard/1-thread baseline. Parallel wall-clock speedup needs real
//!   cores, so this gate is enforced only when
//!   `std::thread::available_parallelism() >= 4`; the JSON records the
//!   parallelism the numbers were taken under either way.
//!
//! Run with `cargo run --release --example bench_shard`; pass `--smoke`
//! for the reduced CI variant (4×4 mesh, 2 shards × 2 threads).

use aelite_online::{ShardConfig, ShardMap, ShardedAllocation, ShardedEngine};
use aelite_serve::{merge_population, replay_sharded, warm_up_sharded, ReplayReport, TimedRequest};
use aelite_spec::app::SystemSpec;
use aelite_spec::churn::{client_population_grouped, ChurnParams};
use aelite_spec::generate::regional_workload;
use std::fmt::Write as _;

/// Maximum requests per shard lane per batched admission round.
const BURST_CAP: usize = 64;

/// Timed repetitions per cell; each cell reports its best run (noise
/// can only slow a repetition down, never speed it up).
const REPS: usize = 3;

struct Scenario {
    mode: &'static str,
    platform: &'static str,
    spec: SystemSpec,
    tiles: (u32, u32),
    clients: u32,
    shard_grids: Vec<(u32, u32)>,
    threads: Vec<usize>,
}

struct Cell {
    shards: usize,
    threads: usize,
    report: ReplayReport,
}

fn scenario(smoke: bool) -> Scenario {
    if smoke {
        Scenario {
            mode: "smoke",
            platform: "4x4 mesh, 2 NIs/router, 64-slot tables, regional 2x1 tiling",
            spec: regional_workload(4, 4, 2, 200, 1, 2, 1),
            tiles: (2, 1),
            clients: 60,
            shard_grids: vec![(1, 1), (2, 1)],
            threads: vec![1, 2],
        }
    } else {
        Scenario {
            mode: "full",
            platform: "8x8 mesh, 4 NIs/router, 64-slot tables, regional 2x2 tiling",
            spec: regional_workload(8, 8, 4, 1000, 1, 2, 2),
            tiles: (2, 2),
            clients: 500,
            shard_grids: vec![(1, 1), (2, 2)],
            threads: vec![1, 2, 4],
        }
    }
}

fn config_for(grid: (u32, u32)) -> ShardConfig {
    // Every cell — the 1-shard baseline included — runs the same
    // max_paths bound, so the admission decisions being timed are
    // identical work.
    ShardConfig {
        max_paths: 2,
        ..ShardConfig::tiled(grid.0, grid.1)
    }
}

fn run_cell(
    spec: &SystemSpec,
    cfg: ShardConfig,
    stream: &[TimedRequest],
    warmup: usize,
    threads: usize,
) -> ReplayReport {
    let mut best: Option<ReplayReport> = None;
    for _ in 0..REPS {
        let mut engine = ShardedEngine::new(spec, cfg);
        let mut alloc = ShardedAllocation::empty_for(spec, engine.map());
        warm_up_sharded(spec, &mut engine, &mut alloc, stream, warmup);
        let r = replay_sharded(
            spec,
            &mut engine,
            &mut alloc,
            &stream[warmup..],
            BURST_CAP,
            threads,
        );
        if best.as_ref().is_none_or(|b| r.ops_per_sec > b.ops_per_sec) {
            best = Some(r);
        }
    }
    best.unwrap()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sc = scenario(smoke);
    let parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "sharded admission scaling ({} mode, {} hardware threads; burst cap {BURST_CAP}/lane, \
         first quarter untimed, best of {REPS})",
        sc.mode, parallelism
    );

    // The client population is grouped by home shard of the finest shard
    // map measured, so the same stream exercises every cell.
    let finest = ShardMap::build(&sc.spec, &config_for(*sc.shard_grids.last().unwrap()));
    let events = if smoke { 100 } else { 400 };
    let population =
        client_population_grouped(&sc.spec, sc.clients, &ChurnParams::steady(events), 1, |c| {
            finest.conn_home(c.id).map_or(finest.shards(), |k| k) as u32
        });
    let stream = merge_population(population);
    let warmup = stream.len() / 4;

    let mut cells: Vec<Cell> = Vec::new();
    for &grid in &sc.shard_grids {
        let cfg = config_for(grid);
        let shards = cfg.shard_count();
        for &threads in &sc.threads {
            if shards == 1 && threads > 1 {
                continue; // one lane cannot use more than one worker
            }
            let report = run_cell(&sc.spec, cfg, &stream, warmup, threads);
            println!(
                "  {shards} shard(s) x {threads} thread(s): {:6.2} Mops/s \
                 ({} requests, {:.1} req/burst, {} admitted)",
                report.ops_per_sec / 1e6,
                report.requests,
                report.requests as f64 / report.bursts.max(1) as f64,
                report.admitted,
            );
            cells.push(Cell {
                shards,
                threads,
                report,
            });
        }
    }

    // Determinism gate: at each shard count, admission counts must be
    // bit-identical whatever the thread count.
    for c in &cells {
        let base = cells.iter().find(|b| b.shards == c.shards).unwrap();
        assert!(
            c.report.admitted == base.report.admitted
                && c.report.refused == base.report.refused
                && c.report.ops == base.report.ops,
            "{} shards: admission counts vary with thread count",
            c.shards
        );
    }

    let baseline = cells
        .iter()
        .find(|c| c.shards == 1 && c.threads == 1)
        .unwrap()
        .report
        .ops_per_sec;
    let max_shards = cells.iter().map(|c| c.shards).max().unwrap();
    let best_sharded = cells
        .iter()
        .filter(|c| c.shards == max_shards)
        .map(|c| c.report.ops_per_sec)
        .fold(0.0f64, f64::max);
    let scaling = best_sharded / baseline;
    println!(
        "  scaling: {scaling:.2}x at {max_shards} shards vs 1-shard baseline \
         ({:.2} -> {:.2} Mops/s)",
        baseline / 1e6,
        best_sharded / 1e6
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-shard/1\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_shard.rs\",\n");
    json.push_str(
        "  \"note\": \"region-partitioned parallel admission: the mesh is tiled into \
         link-disjoint quadrant shards, one ChurnEngine per shard on its own thread; regional \
         workloads keep every route inside its tile so requests admit shard-locally, cross-shard \
         requests two-phase commit through a hub merge. Clients are grouped by home shard; \
         plan_bursts_sharded caps bursts per shard lane (cap 64/lane, bursts up to shards*cap \
         wide). ops = connection setups+teardowns; first quarter untimed; each cell best of 3. \
         Admission counts are thread-count-invariant by construction (asserted here); parallel \
         wall-clock speedup requires real cores — see available_parallelism for what these \
         numbers were taken under\",\n",
    );
    writeln!(
        json,
        "  \"gate\": \"admission counts identical across thread counts at every shard count; \
         at {max_shards} shards best ops/sec >= 2x the 1-shard/1-thread baseline (enforced when \
         available_parallelism >= 4)\","
    )
    .unwrap();
    writeln!(json, "  \"mode\": \"{}\",", sc.mode).unwrap();
    writeln!(json, "  \"available_parallelism\": {parallelism},").unwrap();
    writeln!(json, "  \"platform\": \"{}\",", sc.platform).unwrap();
    writeln!(json, "  \"connections\": {},", sc.spec.connections().len()).unwrap();
    writeln!(json, "  \"clients\": {},", sc.clients).unwrap();
    writeln!(json, "  \"tiles\": [{}, {}],", sc.tiles.0, sc.tiles.1).unwrap();
    writeln!(json, "  \"burst_cap_per_lane\": {BURST_CAP},").unwrap();
    writeln!(json, "  \"baseline_ops_per_sec\": {baseline:.0},").unwrap();
    writeln!(json, "  \"best_sharded_ops_per_sec\": {best_sharded:.0},").unwrap();
    writeln!(json, "  \"scaling_at_{max_shards}_shards\": {scaling:.2},").unwrap();
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.report;
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"shards\": {},", c.shards).unwrap();
        writeln!(json, "      \"threads\": {},", c.threads).unwrap();
        writeln!(json, "      \"ops_per_sec\": {:.0},", r.ops_per_sec).unwrap();
        writeln!(
            json,
            "      \"speedup_vs_baseline\": {:.2},",
            r.ops_per_sec / baseline
        )
        .unwrap();
        writeln!(json, "      \"timed_requests\": {},", r.requests).unwrap();
        writeln!(json, "      \"bursts\": {},", r.bursts).unwrap();
        writeln!(
            json,
            "      \"mean_burst_size\": {:.1},",
            r.requests as f64 / r.bursts.max(1) as f64
        )
        .unwrap();
        writeln!(json, "      \"admitted\": {},", r.admitted).unwrap();
        writeln!(json, "      \"refused\": {},", r.refused).unwrap();
        writeln!(json, "      \"ops\": {}", r.ops).unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < cells.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_SHARD.json", &json).expect("write BENCH_SHARD.json");
    println!("\nwrote BENCH_SHARD.json");

    // Scaling gate — only meaningful with real cores under the threads.
    if !smoke && parallelism >= 4 {
        assert!(
            scaling >= 2.0,
            "sharded admission regressed below 2x the single-shard baseline: {scaling:.2}x"
        );
    } else if !smoke {
        println!(
            "scaling gate skipped: available_parallelism {parallelism} < 4 \
             (determinism gate enforced above)"
        );
    }
}
