//! Undisrupted reconfiguration: stop one application, start another, and
//! prove — flit by flit — that nobody else noticed. This is the use-case
//! behaviour of the Æthereal flow the paper builds on (its reference
//! \[16\]), enabled by aelite's complete connection isolation.
//!
//! Run with: `cargo run --example reconfiguration`

use aelite_core::{AeliteSystem, SimOptions};
use aelite_spec::app::SystemSpecBuilder;
use aelite_spec::config::NocConfig;
use aelite_spec::ids::AppId;
use aelite_spec::topology::Topology;
use aelite_spec::traffic::Bandwidth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A platform running a resident application plus a video call.
    let build = |with_call: bool, with_game: bool| {
        let topo = Topology::mesh(3, 2, 2);
        let nis: Vec<_> = topo.nis().collect();
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let resident = b.add_app("resident OS services");
        let call = b.add_app("video call");
        let game = b.add_app("game");
        let ips: Vec<_> = (0..8).map(|i| b.add_ip_at(nis[i])).collect();
        // The resident app always runs. Connection ids stay stable
        // because every connection is declared in a fixed order and
        // simply omitted (same positions never re-used) when inactive...
        b.add_connection(
            resident,
            ips[0],
            ips[1],
            Bandwidth::from_mbytes_per_sec(50),
            400,
        );
        b.add_connection(
            resident,
            ips[1],
            ips[0],
            Bandwidth::from_mbytes_per_sec(50),
            400,
        );
        if with_call {
            b.add_connection(
                call,
                ips[2],
                ips[3],
                Bandwidth::from_mbytes_per_sec(150),
                300,
            );
            b.add_connection(
                call,
                ips[3],
                ips[2],
                Bandwidth::from_mbytes_per_sec(150),
                300,
            );
        }
        if with_game {
            b.add_connection(
                game,
                ips[4],
                ips[5],
                Bandwidth::from_mbytes_per_sec(200),
                250,
            );
            b.add_connection(
                game,
                ips[5],
                ips[6],
                Bandwidth::from_mbytes_per_sec(100),
                350,
            );
        }
        // Ids stay stable because connections are declared in a fixed
        // order and flags only append/omit at the tail; transitions that
        // drop a middle application use `restricted_to` (id-preserving).
        b.build()
    };

    // Boot: resident + video call.
    let mut system = AeliteSystem::design(build(true, false))?;
    let opts = SimOptions {
        duration_cycles: 60_000,
        record_timestamps: true,
        ..SimOptions::default()
    };
    let resident = AppId::new(0);
    let before = system.simulate_apps(&[resident], opts);
    println!(
        "boot: resident + video call ({} connections total)",
        system.spec().connections().len()
    );

    // The call ends and a game starts — one reconfiguration call.
    let report = system.reconfigure(build(true, true))?;
    println!(
        "game installed: +{} connections (released {})",
        report.added.len(),
        report.released.len()
    );
    let report = {
        // Now drop the call: ids 2 and 3 disappear, the game stays.
        let mut keep = system.spec().clone();
        keep = keep.restricted_to(&[AppId::new(0), AppId::new(2)]);
        system.reconfigure(keep)?
    };
    println!(
        "call ended: released {} connections (added {})",
        report.released.len(),
        report.added.len()
    );

    // The resident application's delivery timeline never moved by a
    // single cycle through both reconfigurations.
    let after = system.simulate_apps(&[resident], opts);
    for (b, a) in before.report.per_conn.iter().zip(&after.report.per_conn) {
        assert_eq!(
            b.timestamps, a.timestamps,
            "{}: timing changed across reconfiguration",
            b.conn
        );
    }
    println!("resident app: every flit delivery cycle identical across both swaps");

    // And the surviving applications all meet their contracts.
    let outcome = system.simulate(opts);
    assert!(outcome.service.all_ok());
    println!(
        "final system verified: {} connections all within contract",
        outcome.service.verdicts.len()
    );
    Ok(())
}
