//! Online-reconfiguration throughput trajectory: drives the
//! [`ChurnEngine`] with Poisson open/close/use-case-switch traces and
//! writes `BENCH_CHURN.json`, the churn perf record future PRs track.
//!
//! Per workload the harness measures:
//!
//! * **churn** — steady-state setup+teardown throughput of the engine
//!   (warm route cache, recycled grant buffers), in ops/sec and ns/op;
//! * **full re-allocation** — the counterfactual cost of servicing one
//!   reconfiguration event by re-deriving the surviving set from
//!   scratch with the batch allocator (warm route cache), the way the
//!   pre-online flow did;
//! * **speedup** — full-re-allocation-per-event over churn-per-op.
//!
//! The committed gate (asserted here, smoke-run in CI) is the tentpole
//! target on the 8×8 mesh / 64-slot platform: **≥1M setup+teardown
//! ops/sec sustained and ≥10× over per-event full re-allocation**.
//!
//! Run with `cargo run --release --example bench_churn`.

use aelite_alloc::{Allocation, Allocator, RouteCache};
use aelite_online::ChurnEngine;
use aelite_spec::app::SystemSpec;
use aelite_spec::churn::{churn_trace, ChurnParams};
use aelite_spec::generate::{paper_workload, scaled_workload};
use std::fmt::Write as _;
use std::time::Instant;

/// Events per trace: enough to cycle each pool many times; the first
/// quarter is an untimed ramp to steady-state occupancy.
const EVENTS: u32 = 100_000;
const WARMUP_EVENTS: usize = (EVENTS / 4) as usize;

struct Row {
    name: &'static str,
    platform: &'static str,
    connections: usize,
    ops: u64,
    ops_per_sec: f64,
    ns_per_op: f64,
    admission_rate: f64,
    switches: u64,
    full_realloc_ms: f64,
    speedup: f64,
}

fn measure(name: &'static str, platform: &'static str, spec: &SystemSpec, seed: u64) -> Row {
    let trace = churn_trace(spec, &ChurnParams::steady(EVENTS), seed);
    let mut engine = ChurnEngine::new(spec);
    let mut alloc = Allocation::empty_for(spec);

    // Untimed ramp: reach steady-state occupancy, warm the route cache
    // and fill the recycled-grant pool.
    for e in &trace.events[..WARMUP_EVENTS] {
        engine.apply(spec, &mut alloc, &e.op);
    }

    // The timed steady state.
    let before = *engine.stats();
    let t0 = Instant::now();
    for e in &trace.events[WARMUP_EVENTS..] {
        engine.apply(spec, &mut alloc, &e.op);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = *engine.stats();
    let ops = stats.ops() - before.ops();
    let setups = stats.setups - before.setups;
    let rejected = stats.refused_opens + stats.refused_switches
        - before.refused_opens
        - before.refused_switches;
    let ops_per_sec = ops as f64 / elapsed;
    let ns_per_op = elapsed * 1e9 / ops as f64;

    // The counterfactual: one reconfiguration event serviced by a full
    // batch re-allocation of the surviving set (warm route cache, as
    // favourable as the old flow gets).
    let surviving: Vec<_> = alloc.grants().map(|g| g.conn).collect();
    let view = spec.restricted_to_connections(&surviving);
    let allocator = Allocator::new();
    let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
    let _ = allocator
        .allocate_with_cache(&view, &mut routes)
        .expect("surviving set re-allocates");
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            allocator
                .allocate_with_cache(&view, &mut routes)
                .expect("surviving set re-allocates"),
        );
    }
    let full_realloc_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let speedup = full_realloc_ms * 1e6 / ns_per_op;

    let row = Row {
        name,
        platform,
        connections: spec.connections().len(),
        ops,
        ops_per_sec,
        ns_per_op,
        admission_rate: setups as f64 / (setups + rejected).max(1) as f64,
        switches: stats.switches - before.switches,
        full_realloc_ms,
        speedup,
    };
    println!(
        "{name:>13}: {:7.2} Mops/s | {ns_per_op:6.0} ns/op | admission {:5.1}% | \
         full realloc {full_realloc_ms:8.3} ms/event ({speedup:6.0}x slower)",
        ops_per_sec / 1e6,
        100.0 * row.admission_rate,
    );
    row
}

fn main() {
    println!(
        "online churn throughput (steady state; {EVENTS} events/trace, first quarter untimed)"
    );
    let rows = [
        measure(
            "paper_200",
            "4x3 mesh, 4 NIs/router, 64-slot tables (Section VII)",
            &paper_workload(42),
            42,
        ),
        measure(
            "mesh8x8_1000",
            "8x8 mesh, 4 NIs/router, 64-slot tables, synthetic",
            &scaled_workload(8, 8, 4, 1000, 1),
            1,
        ),
        measure(
            "mesh8x8_2000",
            "8x8 mesh, 4 NIs/router, 64-slot tables, synthetic",
            &scaled_workload(8, 8, 4, 2000, 1),
            2,
        ),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-churn/1\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_churn.rs\",\n");
    json.push_str(
        "  \"note\": \"steady-state online reconfiguration through aelite_online::ChurnEngine \
         under a Poisson open/close/use-case-switch trace (70% target occupancy); ops = \
         individual connection setups+teardowns; full_realloc = batch re-allocation of the \
         surviving set with a warm RouteCache, the per-event cost of the pre-online flow; \
         speedup = full_realloc_per_event / churn_per_op\",\n",
    );
    json.push_str(
        "  \"gate\": \"mesh8x8_1000: ops_per_sec >= 1e6 and speedup_vs_full_realloc >= 10\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"platform\": \"{}\",", r.platform).unwrap();
        writeln!(json, "      \"connections\": {},", r.connections).unwrap();
        writeln!(json, "      \"timed_ops\": {},", r.ops).unwrap();
        writeln!(json, "      \"ops_per_sec\": {:.0},", r.ops_per_sec).unwrap();
        writeln!(json, "      \"ns_per_op\": {:.1},", r.ns_per_op).unwrap();
        writeln!(json, "      \"admission_rate\": {:.4},", r.admission_rate).unwrap();
        writeln!(json, "      \"use_case_switches\": {},", r.switches).unwrap();
        writeln!(
            json,
            "      \"full_realloc_ms_per_event\": {:.3},",
            r.full_realloc_ms
        )
        .unwrap();
        writeln!(json, "      \"speedup_vs_full_realloc\": {:.1}", r.speedup).unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_CHURN.json", &json).expect("write BENCH_CHURN.json");
    println!("\nwrote BENCH_CHURN.json");

    // The tentpole gate: sustained >= 1M setup+teardown ops/sec on the
    // 8x8/64-slot platform and >= 10x over per-event full re-allocation.
    // Headroom at the time of recording: several Mops/s and a three-
    // digit speedup, so a CI-runner wobble does not trip the gate.
    let gate = rows.iter().find(|r| r.name == "mesh8x8_1000").unwrap();
    assert!(
        gate.ops_per_sec >= 1.0e6,
        "mesh8x8_1000 churn regressed below 1M ops/sec: {:.0}",
        gate.ops_per_sec
    );
    assert!(
        gate.speedup >= 10.0,
        "mesh8x8_1000 churn speedup vs full re-allocation regressed below 10x: {:.1}x",
        gate.speedup
    );
}
