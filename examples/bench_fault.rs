//! Fault-recovery trajectory: replays merged churn + fault scenarios
//! through the [`FaultEngine`] over four traffic profiles — uniform and
//! the three adversarial patterns ([`TrafficProfile`]) — under **both
//! candidate-ordering modes** ([`Steering::ShortestFirst`] and
//! [`Steering::SpareCapacity`]) and writes `BENCH_FAULT.json`, the
//! robustness record future PRs track.
//!
//! Every outcome field (admissions, affected grants, recovery ladder
//! split, drops, restorations, glitch escalations, steering deltas) is
//! deterministic — same seeds, same platform, same numbers on every
//! machine — so the file doubles as a regression pin. Only the
//! wall-clock columns (`replay_ms`, `events_per_sec`) vary by machine
//! and are never gated.
//!
//! Run with `cargo run --release --example bench_fault`. Modes:
//!
//! * (no args) — replay everything, write `BENCH_FAULT.json`, assert
//!   the recovery gates;
//! * `--check` — no replay: re-validate the gates against the
//!   committed `BENCH_FAULT.json`.

use aelite_alloc::{Allocation, Allocator, Steering};
use aelite_online::{ChurnEngine, FaultEngine};
use aelite_spec::app::SystemSpec;
use aelite_spec::fault::{fault_trace, FaultParams, FaultScenario};
use aelite_spec::generate::{TrafficProfile, WorkloadBuilder};
use aelite_spec::ids::ConnId;
use aelite_spec::{churn_trace, ChurnOp, ChurnParams, ScenarioOp};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 11;
const CHURN_EVENTS: u32 = 240;
const FAULT_EVENTS: u32 = 40;

/// JSON names of the two steering modes, in row order.
const STEERINGS: [(&str, Steering); 2] = [
    ("shortest_first", Steering::ShortestFirst),
    ("spare_capacity", Steering::SpareCapacity),
];

struct Row {
    name: &'static str,
    profile: &'static str,
    steering: &'static str,
    connections: usize,
    admitted: u32,
    events: usize,
    link_downs: u64,
    link_ups: u64,
    router_downs: u64,
    router_ups: u64,
    glitches: u64,
    escalated: u64,
    glitch_expiries: u64,
    affected: u64,
    survived: u64,
    dropped: u64,
    restored: u64,
    refused_link_down: u64,
    replay_ms: f64,
}

/// The bench platform under one traffic profile: an 8×8 mesh, 2 NIs
/// per router, 200 connections — enough load that failures hit real
/// traffic on every profile.
fn bench_spec(profile: TrafficProfile) -> SystemSpec {
    WorkloadBuilder::mesh(8, 8, 2)
        .connections(200)
        .apps(6)
        .seed(SEED)
        .profile(profile)
        .build()
}

fn replay(
    name: &'static str,
    profile_name: &'static str,
    profile: TrafficProfile,
    steering_name: &'static str,
    steering: Steering,
) -> Row {
    let spec = bench_spec(profile);
    let mut alloc = Allocation::empty_for(&spec);
    let mut engine = FaultEngine::with_engine(ChurnEngine::with_allocator(
        &spec,
        Allocator {
            steering,
            ..Allocator::new()
        },
    ));

    // Populate through the engine itself (refusals are fine — the
    // admitted set is what the scenario then stresses).
    let mut admitted = 0u32;
    for c in spec.connections() {
        if engine.apply(&spec, &mut alloc, &ScenarioOp::Churn(ChurnOp::Open(c.id))) {
            admitted += 1;
        }
    }

    let churn = churn_trace(
        &spec,
        &ChurnParams {
            events: CHURN_EVENTS,
            ..ChurnParams::steady(CHURN_EVENTS)
        },
        SEED,
    );
    let faults = fault_trace(
        spec.topology(),
        &FaultParams {
            events: FAULT_EVENTS,
            rate_per_sec: 1.0e5,
            ..FaultParams::sparse(FAULT_EVENTS)
        },
        SEED,
    );
    let scenario = FaultScenario::merge(&churn, &faults);

    let t0 = Instant::now();
    for e in &scenario.events {
        engine.apply_event(&spec, &mut alloc, e);
    }
    // Run the clock past every pending glitch so the end state is
    // glitch-free: only enforced (persistent) faults remain masked.
    let end_ns = scenario.events.last().map_or(0, |e| e.at_ns);
    engine.advance_to(&spec, &mut alloc, end_ns.saturating_add(1_000_000));
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Post-replay sanity: the core invariant held (cheap full scan).
    // Grants may ride out sub-threshold glitches, so the invariant is
    // over the *enforced* mask; after the final advance the admission
    // mask has converged to it.
    for g in alloc.grants() {
        for &l in &g.links {
            assert!(!engine.enforced().is_down(l), "{} over a down link", g.conn);
        }
    }
    assert_eq!(
        engine.mask().down_count(),
        engine.enforced().down_count(),
        "glitches remain masked after the final advance"
    );
    let open: Vec<ConnId> = alloc.grants().map(|g| g.conn).collect();
    aelite_alloc::validate_allocation(&spec.restricted_to_connections(&open), &alloc)
        .expect("valid end state");

    let s = *engine.stats();
    let row = Row {
        name,
        profile: profile_name,
        steering: steering_name,
        connections: spec.connections().len(),
        admitted,
        events: scenario.len(),
        link_downs: s.link_downs,
        link_ups: s.link_ups,
        router_downs: s.router_downs,
        router_ups: s.router_ups,
        glitches: s.glitches,
        escalated: s.escalated,
        glitch_expiries: s.glitch_expiries,
        affected: s.affected,
        survived: s.survived(),
        dropped: s.dropped,
        restored: s.restored,
        refused_link_down: engine.engine().stats().refused_link_down,
        replay_ms,
    };
    println!(
        "{name:>15}/{steering_name:<14}: {admitted:3} admitted | {:3} events in {replay_ms:7.2} ms | \
         affected {:3}: {:3} survived, {:2} dropped | {:2} glitches ({:2} escalated)",
        row.events, row.affected, row.survived, row.dropped, row.glitches, row.escalated,
    );
    row
}

/// Minimal field scanner for the committed JSON (`--check` mode): one
/// `"key": value` pair per line, no JSON dependency.
fn scan_rows(text: &str) -> Vec<std::collections::HashMap<String, String>> {
    let mut rows = Vec::new();
    let mut cur: Option<std::collections::HashMap<String, String>> = None;
    for line in text.lines() {
        let t = line.trim();
        if t == "{" {
            cur = Some(std::collections::HashMap::new());
        } else if t.starts_with('}') {
            if let Some(row) = cur.take() {
                rows.push(row);
            }
        } else if let Some(row) = &mut cur {
            if let Some((k, v)) = t.split_once(':') {
                let k = k.trim().trim_matches('"').to_string();
                let v = v.trim().trim_end_matches(',').trim_matches('"').to_string();
                row.insert(k, v);
            }
        }
    }
    rows
}

fn field_u64(row: &std::collections::HashMap<String, String>, key: &str) -> u64 {
    row.get(key)
        .unwrap_or_else(|| panic!("committed JSON row missing {key}"))
        .parse()
        .unwrap_or_else(|e| panic!("committed JSON field {key} unparsable: {e}"))
}

/// The gated outcome fields of one row (fresh or committed).
struct Outcome {
    connections: u64,
    admitted: u64,
    affected: u64,
    survived: u64,
    dropped: u64,
    link_downs: u64,
    router_downs: u64,
    glitches: u64,
    escalated: u64,
}

impl Outcome {
    fn of(r: &Row) -> Self {
        Outcome {
            connections: r.connections as u64,
            admitted: u64::from(r.admitted),
            affected: r.affected,
            survived: r.survived,
            dropped: r.dropped,
            link_downs: r.link_downs,
            router_downs: r.router_downs,
            glitches: r.glitches,
            escalated: r.escalated,
        }
    }

    fn of_json(row: &std::collections::HashMap<String, String>) -> Self {
        Outcome {
            connections: field_u64(row, "connections"),
            admitted: field_u64(row, "admitted"),
            affected: field_u64(row, "affected"),
            survived: field_u64(row, "survived"),
            dropped: field_u64(row, "dropped"),
            link_downs: field_u64(row, "link_downs"),
            router_downs: field_u64(row, "router_downs"),
            glitches: field_u64(row, "glitches"),
            escalated: field_u64(row, "escalated"),
        }
    }
}

/// The recovery gates, applied to one row (fresh or committed):
/// accounting closes, failures hit real traffic, most of the workload
/// admits, most affected grants keep service, and the scenario drew
/// transient glitches (of which only the escalated subset displaced
/// anyone — sub-threshold glitches never count towards `affected`).
fn assert_gates(name: &str, o: &Outcome) {
    let Outcome {
        connections,
        admitted,
        affected,
        survived,
        dropped,
        link_downs,
        router_downs,
        glitches,
        escalated,
    } = *o;
    assert_eq!(
        survived + dropped,
        affected,
        "{name}: recovery accounting does not close"
    );
    assert!(
        link_downs + router_downs > 0,
        "{name}: scenario injected no failures"
    );
    assert!(affected > 0, "{name}: failures hit no traffic");
    assert!(
        admitted * 2 >= connections,
        "{name}: under half the workload admitted ({admitted}/{connections})"
    );
    assert!(
        survived * 2 >= affected,
        "{name}: under half the affected grants kept service ({survived}/{affected})"
    );
    assert!(glitches > 0, "{name}: scenario drew no transient glitches");
    assert!(
        escalated <= glitches,
        "{name}: more escalations than glitches"
    );
}

/// The steering gate over one profile's (baseline, steered) row pair:
/// spare-capacity steering must not increase the affected-grant count,
/// and across the whole sweep it must strictly reduce it somewhere
/// (checked by the caller via the returned delta).
fn steering_delta(name: &str, baseline: &Outcome, steered: &Outcome) -> (i64, i64) {
    assert_eq!(
        baseline.connections, steered.connections,
        "{name}: steering rows disagree on the workload"
    );
    let affected_delta = steered.affected as i64 - baseline.affected as i64;
    let dropped_delta = steered.dropped as i64 - baseline.dropped as i64;
    (affected_delta, dropped_delta)
}

fn assert_steering_sweep(deltas: &[(&str, i64, i64)]) {
    assert!(
        deltas.iter().any(|&(_, affected, _)| affected < 0),
        "spare-capacity steering reduced the affected-grant count on no profile: {deltas:?}"
    );
}

/// `--check`: re-assert every gate against the committed JSON.
fn check_committed() {
    let text = std::fs::read_to_string("BENCH_FAULT.json").expect("read BENCH_FAULT.json");
    assert!(
        text.contains("\"schema\": \"aelite-bench-fault/2\""),
        "committed BENCH_FAULT.json is not schema aelite-bench-fault/2"
    );
    let rows = scan_rows(&text);
    let find = |name: &str, steering: &str| {
        rows.iter()
            .find(|r| {
                r.get("name").map(String::as_str) == Some(name)
                    && r.get("steering").map(String::as_str) == Some(steering)
            })
            .unwrap_or_else(|| panic!("committed JSON lacks the {name}/{steering} row"))
    };
    let profiles = ["uniform", "hotspot4", "transpose", "bit_complement"];
    let mut deltas = Vec::new();
    for name in profiles {
        let baseline = Outcome::of_json(find(name, STEERINGS[0].0));
        let steered = Outcome::of_json(find(name, STEERINGS[1].0));
        assert_gates(name, &baseline);
        assert_gates(name, &steered);
        let (affected_delta, dropped_delta) = steering_delta(name, &baseline, &steered);
        assert_eq!(
            affected_delta,
            field_u64_signed(find(name, STEERINGS[1].0), "affected_delta"),
            "{name}: committed affected_delta disagrees with the row pair"
        );
        deltas.push((name, affected_delta, dropped_delta));
    }
    assert_steering_sweep(&deltas);
    println!(
        "BENCH_FAULT.json gates hold for all {} profiles x {} steering modes",
        profiles.len(),
        STEERINGS.len()
    );
}

fn field_u64_signed(row: &std::collections::HashMap<String, String>, key: &str) -> i64 {
    row.get(key)
        .unwrap_or_else(|| panic!("committed JSON row missing {key}"))
        .parse()
        .unwrap_or_else(|e| panic!("committed JSON field {key} unparsable: {e}"))
}

fn main() {
    if let Some(arg) = std::env::args().nth(1) {
        match arg.as_str() {
            "--check" => return check_committed(),
            other => panic!("unknown mode {other}; use --check"),
        }
    }

    println!("fault recovery under churn (8x8 mesh, 200 connections, merged scenario)");
    let profiles: [(&'static str, &'static str, TrafficProfile); 4] = [
        ("uniform", "uniform random", TrafficProfile::Uniform),
        (
            "hotspot4",
            "hotspot (4 spots, 50% of traffic)",
            TrafficProfile::Hotspot { spots: 4 },
        ),
        (
            "transpose",
            "transpose (x,y)->(y,x)",
            TrafficProfile::Transpose,
        ),
        (
            "bit_complement",
            "bit-complement (mirror across centre)",
            TrafficProfile::BitComplement,
        ),
    ];
    let mut rows = Vec::new();
    for (name, profile_name, profile) in profiles {
        for (steering_name, steering) in STEERINGS {
            rows.push(replay(name, profile_name, profile, steering_name, steering));
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-fault/2\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_fault.rs\",\n");
    json.push_str(
        "  \"note\": \"outcome fields are seeded-deterministic and gated by --check; \
         replay_ms and events_per_sec are wall-clock and never gated; each profile has \
         one row per steering mode and the spare_capacity row carries the deltas\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"profile\": \"{}\",", r.profile).unwrap();
        writeln!(json, "      \"steering\": \"{}\",", r.steering).unwrap();
        writeln!(json, "      \"platform\": \"8x8 mesh, 2 NIs/router\",").unwrap();
        writeln!(json, "      \"connections\": {},", r.connections).unwrap();
        writeln!(json, "      \"admitted\": {},", r.admitted).unwrap();
        writeln!(json, "      \"scenario_events\": {},", r.events).unwrap();
        writeln!(json, "      \"link_downs\": {},", r.link_downs).unwrap();
        writeln!(json, "      \"link_ups\": {},", r.link_ups).unwrap();
        writeln!(json, "      \"router_downs\": {},", r.router_downs).unwrap();
        writeln!(json, "      \"router_ups\": {},", r.router_ups).unwrap();
        writeln!(json, "      \"glitches\": {},", r.glitches).unwrap();
        writeln!(json, "      \"escalated\": {},", r.escalated).unwrap();
        writeln!(json, "      \"glitch_expiries\": {},", r.glitch_expiries).unwrap();
        writeln!(json, "      \"affected\": {},", r.affected).unwrap();
        writeln!(json, "      \"survived\": {},", r.survived).unwrap();
        writeln!(json, "      \"dropped\": {},", r.dropped).unwrap();
        writeln!(json, "      \"restored\": {},", r.restored).unwrap();
        writeln!(
            json,
            "      \"refused_link_down\": {},",
            r.refused_link_down
        )
        .unwrap();
        if r.steering == STEERINGS[1].0 {
            let base = &rows[i - 1];
            writeln!(
                json,
                "      \"affected_delta\": {},",
                r.affected as i64 - base.affected as i64
            )
            .unwrap();
            writeln!(
                json,
                "      \"dropped_delta\": {},",
                r.dropped as i64 - base.dropped as i64
            )
            .unwrap();
        }
        writeln!(json, "      \"replay_ms\": {:.3},", r.replay_ms).unwrap();
        writeln!(
            json,
            "      \"events_per_sec\": {:.0}",
            r.events as f64 / (r.replay_ms / 1e3)
        )
        .unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    std::fs::write("BENCH_FAULT.json", &json).expect("write BENCH_FAULT.json");
    println!("\nwrote BENCH_FAULT.json");

    let mut deltas = Vec::new();
    for pair in rows.chunks_exact(2) {
        let (baseline, steered) = (&pair[0], &pair[1]);
        assert_gates(baseline.name, &Outcome::of(baseline));
        assert_gates(steered.name, &Outcome::of(steered));
        let (affected_delta, dropped_delta) =
            steering_delta(baseline.name, &Outcome::of(baseline), &Outcome::of(steered));
        deltas.push((baseline.name, affected_delta, dropped_delta));
    }
    assert_steering_sweep(&deltas);
    for (name, affected_delta, dropped_delta) in &deltas {
        println!("{name:>15}: steering affected delta {affected_delta:+3}, dropped delta {dropped_delta:+3}");
    }
}
