//! Quickstart: specify a small platform, design the aelite NoC, read the
//! guarantees off the allocation, and confirm them in simulation.
//!
//! Run with: `cargo run --example quickstart`

use aelite_core::{AeliteSystem, SimOptions};
use aelite_spec::app::SystemSpecBuilder;
use aelite_spec::config::NocConfig;
use aelite_spec::topology::Topology;
use aelite_spec::traffic::Bandwidth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The platform: a 2x2 mesh with one network interface per router.
    let topo = Topology::mesh(2, 2, 1);
    let nis: Vec<_> = topo.nis().collect();
    let mut builder = SystemSpecBuilder::new(topo, NocConfig::paper_default());

    // 2. One application with three guaranteed-service connections.
    let app = builder.add_app("camera pipeline");
    let camera = builder.add_ip_at(nis[0]);
    let isp = builder.add_ip_at(nis[1]);
    let encoder = builder.add_ip_at(nis[2]);
    let memory = builder.add_ip_at(nis[3]);
    let raw = builder.add_connection(app, camera, isp, Bandwidth::from_mbytes_per_sec(300), 200);
    let processed =
        builder.add_connection(app, isp, encoder, Bandwidth::from_mbytes_per_sec(150), 300);
    let bitstream = builder.add_connection(
        app,
        encoder,
        memory,
        Bandwidth::from_mbytes_per_sec(40),
        500,
    );
    let spec = builder.build();

    // 3. Design: paths + TDM slots, contention-free by construction.
    let system = AeliteSystem::design(spec)?;
    println!(
        "designed {} connections:",
        system.spec().connections().len()
    );
    for conn in [raw, processed, bitstream] {
        println!(
            "  {conn}: guaranteed {} | worst-case latency {:.1} ns",
            system.guaranteed_bandwidth(conn),
            system.latency_bound_ns(conn),
        );
    }

    // 4. Simulate and verify every contract.
    let outcome = system.simulate(SimOptions {
        duration_cycles: 100_000,
        ..SimOptions::default()
    });
    for verdict in &outcome.service.verdicts {
        println!("  {verdict}");
    }
    assert!(outcome.service.all_ok(), "all contracts must hold");
    println!("all guaranteed services verified in simulation");
    Ok(())
}
