//! Back-pressure without contract violation: an IP that offers more than
//! its reservation only slows itself down — "there is no possibility for
//! an application to violate any contract with the interconnect" (paper
//! Section IV-A).
//!
//! Run with: `cargo run --example oversubscription`

use aelite_analysis::composability::compare_timelines;
use aelite_core::{measured_services, timelines, AeliteSystem, SimOptions};
use aelite_spec::app::SystemSpecBuilder;
use aelite_spec::config::NocConfig;
use aelite_spec::topology::Topology;
use aelite_spec::traffic::{Bandwidth, TrafficPattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let build = |greedy_pattern: TrafficPattern| {
        let topo = Topology::mesh(2, 1, 2);
        let nis: Vec<_> = topo.nis().collect();
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app_greedy = b.add_app("greedy");
        let app_victim = b.add_app("well-behaved");
        let g_src = b.add_ip_at(nis[0]);
        let g_dst = b.add_ip_at(nis[2]);
        let v_src = b.add_ip_at(nis[1]);
        let v_dst = b.add_ip_at(nis[3]);
        // The greedy app reserved only 30 MB/s...
        b.add_connection_with(
            app_greedy,
            g_src,
            g_dst,
            Bandwidth::from_mbytes_per_sec(30),
            2_000,
            greedy_pattern,
            16,
        );
        // ... its neighbour holds a normal CBR contract.
        b.add_connection(
            app_victim,
            v_src,
            v_dst,
            Bandwidth::from_mbytes_per_sec(120),
            400,
        );
        b.build()
    };
    let opts = SimOptions {
        duration_cycles: 192_000,
        record_timestamps: true,
        ..SimOptions::default()
    };

    // Baseline: the greedy app behaves (offers its contracted rate).
    let behaved = AeliteSystem::design(build(TrafficPattern::ConstantRate))?;
    let base = behaved.simulate(opts);

    // Now it floods the NoC with as much data as it can produce.
    let flooded = AeliteSystem::design(build(TrafficPattern::Saturating))?;
    let flood = flooded.simulate(opts);

    let greedy = flooded.spec().connections()[0].id;
    let victim = flooded.spec().connections()[1].id;

    // 1. The offender is clipped to its reservation.
    let m = measured_services(&flood.report);
    let greedy_bw = m[greedy.index()].bytes as f64 * 500e6 / 192_000.0;
    let reserved = flooded.guaranteed_bandwidth(greedy).bytes_per_sec() as f64;
    println!(
        "greedy app: offered unbounded, delivered {:.1} MB/s (reservation {:.1} MB/s)",
        greedy_bw / 1e6,
        reserved / 1e6
    );
    assert!(
        greedy_bw <= reserved * 1.02,
        "reservation must cap the offender"
    );

    // 2. The victim's timing is bit-identical either way.
    let victim_timelines_base: Vec<_> = timelines(&base.report)
        .into_iter()
        .filter(|t| t.conn == victim)
        .collect();
    let victim_timelines_flood: Vec<_> = timelines(&flood.report)
        .into_iter()
        .filter(|t| t.conn == victim)
        .collect();
    let cmp = compare_timelines(&victim_timelines_base, &victim_timelines_flood);
    println!("victim under flood: {cmp}");
    assert!(cmp.is_composable(), "the victim must be untouched");

    // 3. And the victim's contract still verifies.
    assert!(flood.service.verdict(victim).ok());
    println!("victim's contract verified under a flooding neighbour");
    Ok(())
}
