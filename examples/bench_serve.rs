//! Admission-as-a-service throughput and latency: drives the
//! `aelite-serve` request pipeline with client populations churning
//! disjoint connection pools and writes `BENCH_SERVE.json`, the serving
//! perf record future PRs track.
//!
//! Per workload the harness measures, over the same merged request
//! stream after the same untimed warm-up quarter (serial and batched as
//! the best of five interleaved repetitions each, so scheduler noise
//! cannot fake or mask a speedup):
//!
//! * **serial** — the per-op baseline: every request through
//!   `ChurnEngine::submit`, one admission round each;
//! * **batched** — the deterministic single-thread pipeline:
//!   `plan_bursts` + `ChurnEngine::submit_batch`, one admission round
//!   per independent burst (the per-round platform validation and
//!   grant-capacity check amortise across the burst);
//! * **pipeline** — the threaded executor (`serve_pipeline`): producer
//!   threads enqueue per-client streams into a bounded queue, the
//!   admission loop drains bursts and records end-to-end latency in an
//!   HDR-style histogram (p50/p99/p999).
//!
//! The committed gate (asserted here, smoke-run in CI) is on the
//! 8×8-mesh/1000-connection platform: **batched throughput ≥0.5× the
//! serial per-op baseline**, with sane latency percentiles
//! (p50 ≤ p99 ≤ p999).
//!
//! The gate was re-baselined when round setup (`begin_round`) became
//! O(1): the serial path no longer pays per-request platform
//! validation, so batching's amortisation premise is gone and the
//! single-thread crossover vanished — batched now runs at ~0.6–0.7×
//! serial, the price of one slot estimate per open for canonical
//! hardest-first ordering. Bursts at or under the engine's serial
//! floor (4) take the per-request path outright. Batching's payoff is
//! admission ordering under contention and the sharded parallel
//! fan-out measured in `BENCH_SHARD.json`.
//!
//! Run with `cargo run --release --example bench_serve`.

use aelite_alloc::Allocation;
use aelite_online::ChurnEngine;
use aelite_serve::{
    merge_population, replay_batched, replay_serial, serve_pipeline, warm_up, PipelineConfig,
    TimedRequest,
};
use aelite_spec::app::SystemSpec;
use aelite_spec::churn::{client_population, ChurnParams};
use aelite_spec::generate::{paper_workload, scaled_workload};
use std::fmt::Write as _;

/// Maximum requests per batched admission round.
const BURST_CAP: usize = 64;

/// Timed repetitions per replay leg; each leg reports its best run
/// (noise can only slow a repetition down, never speed it up).
const REPS: usize = 5;

struct Row {
    name: &'static str,
    platform: &'static str,
    connections: usize,
    clients: u32,
    requests: u64,
    serial_ops_per_sec: f64,
    batched_ops_per_sec: f64,
    batched_speedup: f64,
    bursts: u64,
    mean_burst: f64,
    admission_rate: f64,
    refused_opens: u64,
    refused_closes: u64,
    refused_switches: u64,
    rolled_back_opens: u64,
    pipeline_ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    mean_ns: f64,
    max_ns: u64,
}

fn fresh(spec: &SystemSpec, stream: &[TimedRequest], warmup: usize) -> (ChurnEngine, Allocation) {
    let mut engine = ChurnEngine::new(spec);
    let mut alloc = Allocation::empty_for(spec);
    warm_up(spec, &mut engine, &mut alloc, stream, warmup);
    (engine, alloc)
}

fn measure(
    name: &'static str,
    platform: &'static str,
    spec: &SystemSpec,
    clients: u32,
    events_per_client: u32,
    seed: u64,
) -> Row {
    let population =
        client_population(spec, clients, &ChurnParams::steady(events_per_client), seed);
    let stream = merge_population(population);
    // Untimed ramp to steady-state occupancy on each fresh engine; the
    // remaining three quarters are the timed window.
    let warmup = stream.len() / 4;
    let timed = &stream[warmup..];

    // Interleaved best-of-N: scheduler noise only ever *slows* a run
    // down, so the fastest of several repetitions — serial and batched
    // alternating, so a quiet window benefits both legs — recovers each
    // leg's true sustained rate.
    let mut serial: Option<aelite_serve::ReplayReport> = None;
    let mut batched: Option<aelite_serve::ReplayReport> = None;
    for _ in 0..REPS {
        let (mut engine, mut alloc) = fresh(spec, &stream, warmup);
        let s = replay_serial(spec, &mut engine, &mut alloc, timed);
        if serial
            .as_ref()
            .is_none_or(|b| s.ops_per_sec > b.ops_per_sec)
        {
            serial = Some(s);
        }
        let (mut engine, mut alloc) = fresh(spec, &stream, warmup);
        let b = replay_batched(spec, &mut engine, &mut alloc, timed, BURST_CAP);
        if batched
            .as_ref()
            .is_none_or(|x| b.ops_per_sec > x.ops_per_sec)
        {
            batched = Some(b);
        }
    }
    let (serial, batched) = (serial.unwrap(), batched.unwrap());

    // The threaded executor over the same timed window, split back into
    // per-client streams (order within each client preserved).
    let (mut engine, mut alloc) = fresh(spec, &stream, warmup);
    let mut streams: Vec<Vec<TimedRequest>> = (0..clients).map(|_| Vec::new()).collect();
    for r in timed {
        streams[r.client as usize].push(r.clone());
    }
    let pipeline = serve_pipeline(
        spec,
        &mut engine,
        &mut alloc,
        &streams,
        &PipelineConfig {
            burst_cap: BURST_CAP,
            ..PipelineConfig::default()
        },
    );

    let row = Row {
        name,
        platform,
        connections: spec.connections().len(),
        clients,
        requests: batched.requests,
        serial_ops_per_sec: serial.ops_per_sec,
        batched_ops_per_sec: batched.ops_per_sec,
        batched_speedup: batched.ops_per_sec / serial.ops_per_sec,
        bursts: batched.bursts,
        mean_burst: batched.requests as f64 / batched.bursts as f64,
        admission_rate: batched.admitted as f64 / batched.requests.max(1) as f64,
        refused_opens: batched.stats.refused_opens,
        refused_closes: batched.stats.refused_closes,
        refused_switches: batched.stats.refused_switches,
        rolled_back_opens: batched.stats.rolled_back_opens,
        pipeline_ops_per_sec: pipeline.replay.ops_per_sec,
        p50_ns: pipeline.latency.percentile(50.0),
        p99_ns: pipeline.latency.percentile(99.0),
        p999_ns: pipeline.latency.percentile(99.9),
        mean_ns: pipeline.latency.mean(),
        max_ns: pipeline.latency.max(),
    };
    println!(
        "{name:>13}: serial {:5.2} Mops/s | batched {:5.2} Mops/s ({:4.2}x, {:4.1} req/burst) | \
         pipeline {:5.2} Mops/s | p50 {:.1} us, p99 {:.1} us, p999 {:.1} us",
        row.serial_ops_per_sec / 1e6,
        row.batched_ops_per_sec / 1e6,
        row.batched_speedup,
        row.mean_burst,
        row.pipeline_ops_per_sec / 1e6,
        row.p50_ns as f64 / 1e3,
        row.p99_ns as f64 / 1e3,
        row.p999_ns as f64 / 1e3,
    );
    row
}

fn main() {
    println!(
        "admission-as-a-service (client populations over disjoint pools; burst cap {BURST_CAP}, \
         first quarter untimed)"
    );
    let rows = [
        measure(
            "paper_200",
            "4x3 mesh, 4 NIs/router, 64-slot tables (Section VII)",
            &paper_workload(42),
            50,
            400,
            42,
        ),
        measure(
            "mesh8x8_1000",
            "8x8 mesh, 4 NIs/router, 64-slot tables, synthetic",
            &scaled_workload(8, 8, 4, 1000, 1),
            500,
            400,
            1,
        ),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-serve/1\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_serve.rs\",\n");
    json.push_str(
        "  \"note\": \"request pipeline over aelite_online::ChurnEngine: per-client Poisson churn \
         streams on disjoint connection pools, merged arrival-ordered; serial = one admission \
         round per request; batched = one round per independent burst (client-unique, cap 64), \
         which amortises the per-round spec validation and grant-capacity check and shares the \
         warm RouteCache and recycled-grant scratch across the burst, with per-request rollback; \
         pipeline = threaded producer/consumer executor, latency measured enqueue-to-burst-\
         completion on a log-linear HDR histogram (~6% resolution). ops = individual connection \
         setups+teardowns; first quarter of each stream is an untimed ramp; serial and batched \
         report the best of 5 interleaved repetitions each. Crossover: since begin_round became \
         O(1) the serial path pays no per-request platform validation, so single-thread batched \
         runs at ~0.6-0.7x serial (one slot estimate per open buys canonical hardest-first \
         ordering); bursts <= the engine's serial floor (4) take the per-request path outright. \
         Batching's payoff is admission ordering under contention and the sharded parallel \
         fan-out recorded in BENCH_SHARD.json\",\n",
    );
    json.push_str(
        "  \"gate\": \"mesh8x8_1000: batched_speedup_vs_serial >= 0.5 and p50 <= p99 <= p999\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"platform\": \"{}\",", r.platform).unwrap();
        writeln!(json, "      \"connections\": {},", r.connections).unwrap();
        writeln!(json, "      \"clients\": {},", r.clients).unwrap();
        writeln!(json, "      \"timed_requests\": {},", r.requests).unwrap();
        writeln!(
            json,
            "      \"serial_ops_per_sec\": {:.0},",
            r.serial_ops_per_sec
        )
        .unwrap();
        writeln!(
            json,
            "      \"batched_ops_per_sec\": {:.0},",
            r.batched_ops_per_sec
        )
        .unwrap();
        writeln!(
            json,
            "      \"batched_speedup_vs_serial\": {:.2},",
            r.batched_speedup
        )
        .unwrap();
        writeln!(json, "      \"bursts\": {},", r.bursts).unwrap();
        writeln!(json, "      \"mean_burst_size\": {:.1},", r.mean_burst).unwrap();
        writeln!(json, "      \"admission_rate\": {:.4},", r.admission_rate).unwrap();
        writeln!(json, "      \"refused_opens\": {},", r.refused_opens).unwrap();
        writeln!(json, "      \"refused_closes\": {},", r.refused_closes).unwrap();
        writeln!(json, "      \"refused_switches\": {},", r.refused_switches).unwrap();
        writeln!(
            json,
            "      \"rolled_back_opens\": {},",
            r.rolled_back_opens
        )
        .unwrap();
        writeln!(
            json,
            "      \"pipeline_ops_per_sec\": {:.0},",
            r.pipeline_ops_per_sec
        )
        .unwrap();
        writeln!(json, "      \"latency_p50_ns\": {},", r.p50_ns).unwrap();
        writeln!(json, "      \"latency_p99_ns\": {},", r.p99_ns).unwrap();
        writeln!(json, "      \"latency_p999_ns\": {},", r.p999_ns).unwrap();
        writeln!(json, "      \"latency_mean_ns\": {:.0},", r.mean_ns).unwrap();
        writeln!(json, "      \"latency_max_ns\": {}", r.max_ns).unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_SERVE.json", &json).expect("write BENCH_SERVE.json");
    println!("\nwrote BENCH_SERVE.json");

    // Batching no longer amortises round setup (begin_round is O(1)),
    // so the gate is a floor, not a speedup: batched ordering overhead
    // must stay within 2x of the serial per-op path on the 8x8/1000
    // platform, and the latency distribution must be well-formed.
    let gate = rows.iter().find(|r| r.name == "mesh8x8_1000").unwrap();
    assert!(
        gate.batched_speedup >= 0.5,
        "mesh8x8_1000 batched admission fell below 0.5x serial: {:.2}x",
        gate.batched_speedup
    );
    for r in &rows {
        assert!(
            r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns && r.p999_ns <= r.max_ns,
            "{}: malformed latency percentiles",
            r.name
        );
        assert!(
            r.admission_rate > 0.9,
            "{}: admission rate collapsed to {:.3}",
            r.name,
            r.admission_rate
        );
    }
}
