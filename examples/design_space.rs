//! Design-space exploration with the synthesis models: pick a router
//! configuration for a bandwidth target and price the mesochronous
//! option — the paper's Section VII cost discussion as a tool.
//!
//! Run with: `cargo run --example design_space`

use aelite_synth::compare::GsBeComparison;
use aelite_synth::components::{router_with_links_area_um2, FifoKind};
use aelite_synth::router::{
    aggregate_throughput_gbytes, router_max_frequency_mhz, synthesize, synthesize_max, RouterParams,
};
use aelite_synth::tech::LayoutDerate;

fn main() {
    // Requirement: a concentrated-topology router moving >= 40 GB/s
    // aggregate, as cheaply as possible.
    let target_gbytes = 40.0;
    println!("target: {target_gbytes} GB/s aggregate per router\n");
    println!(
        "{:>5} {:>6} {:>10} {:>10} {:>12} {:>10}",
        "arity", "width", "f_max MHz", "GB/s", "area um2", "meets?"
    );

    let mut best: Option<(RouterParams, f64)> = None;
    for arity in [4u32, 5, 6, 7] {
        for width in [32u32, 64, 128] {
            let p = RouterParams::symmetric(arity, width);
            let r = synthesize_max(&p);
            let gbps = aggregate_throughput_gbytes(&p, r.achieved_mhz);
            let meets = gbps >= target_gbytes;
            println!(
                "{arity:>5} {width:>6} {:>10.0} {gbps:>10.1} {:>12.0} {meets:>10}",
                r.achieved_mhz, r.area_um2
            );
            if meets && best.as_ref().is_none_or(|(_, a)| r.area_um2 < *a) {
                best = Some((p, r.area_um2));
            }
        }
    }
    let (pick, area) = best.expect("some configuration meets the target");
    println!("\ncheapest configuration meeting the target: {pick} at {area:.0} um2");

    // Price the physical-scalability options for the chosen router.
    println!("\nphysical organisation options for {pick}:");
    let sync = synthesize(&pick, 500.0);
    println!(
        "  synchronous (global clock):      {:>8.0} um2",
        sync.area_um2
    );
    let meso_custom = router_with_links_area_um2(&pick, FifoKind::Custom);
    println!("  mesochronous, custom FIFOs [18]: {meso_custom:>8.0} um2");
    let meso_std = router_with_links_area_um2(&pick, FifoKind::StandardCell);
    println!("  mesochronous, std-cell FIFOs [4]:{meso_std:>8.0} um2");

    // Post-layout expectations (the paper's derating).
    let derate = LayoutDerate::paper();
    let fmax = router_max_frequency_mhz(&pick);
    println!(
        "\npost-layout estimate: {:.0} um2 silicon, ~{:.0} MHz",
        derate.layout_area_um2(meso_custom),
        derate.layout_frequency_mhz(fmax)
    );

    // And the headline cost argument vs a combined GS+BE design.
    let cmp = GsBeComparison::for_params(&RouterParams::paper_reference());
    println!(
        "\nGS-only pays off: {:.1}x smaller and {:.1}x faster than the \
         combined GS+BE Aethereal router (90 nm)",
        cmp.area_ratio(),
        cmp.frequency_ratio()
    );
}
