//! Link-width conversion — the paper's concluding future work ("we aim to
//! extend aelite with link-width conversion and include the asynchronous
//! wrappers in the formal models of the NoC"), analysed with the multirate
//! dataflow machinery of `aelite-dataflow`.
//!
//! A 2:1 converter joins two narrow (32-bit) flits into one wide (64-bit)
//! flit; the SDF model predicts the sustainable flit rate of the mixed
//! configuration and locates the bottleneck.
//!
//! Run with: `cargo run --example width_conversion`

use aelite_dataflow::sdf::SdfGraph;

/// Builds the narrow-NI → converter → wide-router chain. Execution times
/// are one flit cycle (3 local clock cycles) in nanoseconds.
fn chain(narrow_mhz: f64, wide_mhz: f64) -> (SdfGraph, [aelite_dataflow::sdf::SdfActorId; 3]) {
    let mut g = SdfGraph::new();
    let narrow = g.add_actor("narrow NI (32-bit)", 3_000.0 / narrow_mhz);
    let conv = g.add_actor("2:1 width converter", 3_000.0 / wide_mhz);
    let wide = g.add_actor("wide router (64-bit)", 3_000.0 / wide_mhz);
    // Elements are non-reentrant: one flit cycle at a time.
    g.add_edge(narrow, 1, narrow, 1, 1);
    g.add_edge(conv, 1, conv, 1, 1);
    g.add_edge(wide, 1, wide, 1, 1);
    // The converter consumes 2 narrow flits per wide flit.
    g.add_channel(narrow, 1, conv, 2, 4);
    g.add_channel(conv, 1, wide, 1, 2);
    (g, [narrow, conv, wide])
}

fn main() {
    println!("2:1 link-width conversion, SDF analysis (flits per microsecond)\n");
    println!(
        "{:<28} {:>14} {:>14} {:>12}",
        "configuration", "narrow flits", "wide flits", "bottleneck"
    );
    for (label, narrow_mhz, wide_mhz) in [
        ("balanced: 500 / 250 MHz", 500.0, 250.0),
        ("fast wide region: 500/500", 500.0, 500.0),
        ("slow wide region: 500/125", 500.0, 125.0),
    ] {
        let (g, [narrow, _conv, wide]) = chain(narrow_mhz, wide_mhz);
        let narrow_rate = g.actor_throughput(narrow).expect("cyclic") * 1_000.0;
        let wide_rate = g.actor_throughput(wide).expect("cyclic") * 1_000.0;
        // The narrow region can offer narrow_mhz/3 flits/us; the wide
        // region can absorb 2 * wide_mhz/3 narrow-equivalents.
        let bottleneck = if narrow_mhz / 3.0 <= 2.0 * wide_mhz / 3.0 {
            "narrow"
        } else {
            "wide"
        };
        println!("{label:<28} {narrow_rate:>14.1} {wide_rate:>14.1} {bottleneck:>12}");
        // Conservation: two narrow flits per wide flit, always.
        assert!((narrow_rate / wide_rate - 2.0).abs() < 1e-9);
    }

    // Balanced case: the 250 MHz wide region matches the 500 MHz narrow
    // region exactly (same payload rate), so the narrow NI runs at its
    // full 500/3 = 166.7 flits/us.
    let (g, [narrow, _, _]) = chain(500.0, 250.0);
    let rate = g.actor_throughput(narrow).expect("cyclic") * 1_000.0;
    assert!((rate - 500.0 / 3.0).abs() < 1e-6);
    println!("\nbalanced configuration sustains the full narrow-region rate");
    println!("(payload conserved: exactly two 32-bit flits per 64-bit flit)");
}
