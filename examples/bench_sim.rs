//! Simulator-throughput trajectory: measures the event-driven
//! cycle-accurate engine against the compiled turbo kernel and writes
//! `BENCH_SIM.json`, the perf record future PRs track (the simulation
//! counterpart of `BENCH_ALLOC.json`).
//!
//! Each row runs the same spec/allocation/kind through both engines:
//!
//! * **event** — `build_network` + the event-driven
//!   `aelite_sim::scheduler::Simulator` (binary-heap edge discovery,
//!   `dyn Module` dispatch, double-buffered signal store) — the golden
//!   reference;
//! * **turbo** — `build_turbo`'s compiled flit-synchronous kernel
//!   (static network timing, flat per-connection state, slot-grained
//!   stepping).
//!
//! The two must agree bit-for-bit; this binary re-asserts the delivery
//! equivalence on every measured run before trusting the timing.
//!
//! A second, **scaling-curve** section tracks the mega-mesh regime:
//! regional workloads from 8×8/2.5k up to 32×32/30k connections run
//! through the turbo kernel alone — the event engine is the golden
//! reference at the sizes where running it is tractable (the rows
//! above, plus the equivalence suite in `tests/turbo_golden.rs`), while
//! the curve records how compiled-simulation throughput scales with
//! platform size.
//!
//! Run with `cargo run --release --example bench_sim`. Modes:
//!
//! * (no args) — measure everything, write `BENCH_SIM.json`, assert the
//!   speedup and scaling gates;
//! * `--scaling` — CI smoke: only the smallest and one mid-size curve
//!   point, written to `BENCH_SIM_SCALING_SMOKE.json` (the committed
//!   `BENCH_SIM.json` is left untouched);
//! * `--check` — no measurement: re-validate the gates against the
//!   committed `BENCH_SIM.json`.

use aelite_alloc::allocate;
use aelite_noc::network::{build_network, NetworkKind};
use aelite_noc::turbo::build_turbo;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload, WorkloadBuilder};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    platform: &'static str,
    kind: &'static str,
    cycles: u64,
    flits: u64,
    event_mcps: f64,
    turbo_mcps: f64,
}

/// Wall-clock seconds of the fastest of `reps` runs of `f` (the usual
/// defence against scheduler noise on shared runners).
fn best_secs(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn measure(
    name: &'static str,
    platform: &'static str,
    spec: &SystemSpec,
    kind: NetworkKind,
    cycles: u64,
    reps: u32,
) -> Row {
    let alloc = allocate(spec).expect("allocates");

    // Equivalence first: a fast wrong simulator is worthless.
    let mut event = build_network(spec, &alloc, kind, true);
    let mut turbo = build_turbo(spec, &alloc, kind, true);
    event.run_cycles(cycles);
    turbo.run_cycles(cycles);
    let mut flits = 0u64;
    for c in spec.connections() {
        assert_eq!(
            *event.log(c.id).borrow(),
            *turbo.log(c.id).borrow(),
            "{}: turbo delivery log diverges from the event engine",
            c.id
        );
        flits += event.log(c.id).borrow().len() as u64;
    }
    assert!(flits > 0, "{name}: nothing delivered");

    let event_s = best_secs(reps, || {
        let mut net = build_network(spec, &alloc, kind, true);
        net.run_cycles(cycles);
        std::hint::black_box(&net);
    });
    let turbo_s = best_secs(reps, || {
        let mut net = build_turbo(spec, &alloc, kind, true);
        net.run_cycles(cycles);
        std::hint::black_box(&net);
    });

    let row = Row {
        name,
        platform,
        kind: match kind {
            NetworkKind::Synchronous => "synchronous",
            NetworkKind::Mesochronous { .. } => "mesochronous",
        },
        cycles,
        flits,
        event_mcps: cycles as f64 / event_s / 1e6,
        turbo_mcps: cycles as f64 / turbo_s / 1e6,
    };
    println!(
        "{name:>14}: event {:8.3} Mcycles/s | turbo {:8.3} Mcycles/s ({:5.1}x) | {} flits",
        row.event_mcps,
        row.turbo_mcps,
        row.turbo_mcps / row.event_mcps,
        row.flits,
    );
    row
}

struct ScalingRow {
    name: String,
    mesh: u32,
    connections: usize,
    cycles: u64,
    flits: u64,
    turbo_mcps: f64,
}

/// The scaling curve's workload at one mesh size — the same regional
/// mega-profile shape as `bench_alloc`'s curve.
fn mega_spec(n: u32, connections: u32) -> SystemSpec {
    WorkloadBuilder::mesh(n, n, 4)
        .mega_traffic()
        .connections(connections)
        .tiles(n / 2, n / 2)
        .seed(1)
        .build()
}

fn measure_scaling(n: u32, connections: u32, cycles: u64, reps: u32) -> ScalingRow {
    let spec = mega_spec(n, connections);
    let alloc = allocate(&spec).expect("mega-mesh workload allocates");
    let mut probe = build_turbo(&spec, &alloc, NetworkKind::Synchronous, true);
    probe.run_cycles(cycles);
    let flits: u64 = spec
        .connections()
        .iter()
        .map(|c| probe.log(c.id).borrow().len() as u64)
        .sum();
    assert!(flits > 0, "mesh{n}x{n}: nothing delivered");
    let turbo_s = best_secs(reps, || {
        let mut net = build_turbo(&spec, &alloc, NetworkKind::Synchronous, true);
        net.run_cycles(cycles);
        std::hint::black_box(&net);
    });
    let row = ScalingRow {
        name: format!("mesh{n}x{n}_{connections}"),
        mesh: n,
        connections: spec.connections().len(),
        cycles,
        flits,
        turbo_mcps: cycles as f64 / turbo_s / 1e6,
    };
    println!(
        "{:>15}: turbo {:8.3} Mcycles/s | {} flits in {} cycles",
        row.name, row.turbo_mcps, row.flits, row.cycles,
    );
    row
}

fn scaling_json(rows: &[ScalingRow]) -> String {
    let mut json = String::new();
    json.push_str("  \"scaling\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(
            json,
            "      \"platform\": \"{0}x{0} mesh, 4 NIs/router, regional mega-profile\",",
            r.mesh
        )
        .unwrap();
        writeln!(json, "      \"connections\": {},", r.connections).unwrap();
        writeln!(json, "      \"simulated_cycles\": {},", r.cycles).unwrap();
        writeln!(json, "      \"flits_delivered\": {},", r.flits).unwrap();
        writeln!(
            json,
            "      \"turbo_mcycles_per_sec\": {:.3},",
            r.turbo_mcps
        )
        .unwrap();
        writeln!(
            json,
            "      \"turbo_flits_per_sec\": {:.0}",
            r.flits as f64 * r.turbo_mcps * 1e6 / r.cycles as f64
        )
        .unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n");
    json
}

/// The scaling gate: the largest curve point (32×32) must simulate at
/// this rate or better. Simulated cycles get more expensive as the
/// platform grows (one decision per NI per slot: work per cycle is
/// O(NIs)), so the per-point floor is set for 4096 NIs at 30k
/// connections — recorded headroom is several-fold; the delivered-flit
/// rate at that point runs in the millions per second.
const SCALING_GATE_MCYCLES_PER_SEC: f64 = 0.005;

/// Minimal field scanner for the committed JSON (`--check` mode); same
/// shape as `bench_alloc`'s.
fn scan_rows(text: &str) -> Vec<std::collections::HashMap<String, String>> {
    let mut rows = Vec::new();
    let mut cur: Option<std::collections::HashMap<String, String>> = None;
    for line in text.lines() {
        let t = line.trim();
        if t == "{" {
            cur = Some(std::collections::HashMap::new());
        } else if t.starts_with('}') {
            if let Some(row) = cur.take() {
                rows.push(row);
            }
        } else if let Some(row) = &mut cur {
            if let Some((k, v)) = t.split_once(':') {
                let k = k.trim().trim_matches('"').to_string();
                let v = v.trim().trim_end_matches(',').trim_matches('"').to_string();
                row.insert(k, v);
            }
        }
    }
    rows
}

fn field_f64(row: &std::collections::HashMap<String, String>, key: &str) -> f64 {
    row.get(key)
        .unwrap_or_else(|| panic!("committed JSON row missing {key}"))
        .parse()
        .unwrap_or_else(|e| panic!("committed JSON field {key} unparsable: {e}"))
}

/// `--check`: re-assert every gate against the committed JSON.
fn check_committed() {
    let text = std::fs::read_to_string("BENCH_SIM.json").expect("read BENCH_SIM.json");
    let rows = scan_rows(&text);
    let speedup_of = |name: &str| {
        let row = rows
            .iter()
            .find(|r| r.get("name").map(String::as_str) == Some(name))
            .unwrap_or_else(|| panic!("committed JSON lacks the {name} row"));
        field_f64(row, "turbo_speedup_vs_event")
    };
    let sync = speedup_of("paper_sync");
    let meso = speedup_of("paper_meso");
    assert!(
        sync >= 5.0 && meso >= 5.0,
        "committed paper-platform speedup below 5x: sync {sync:.2}x, meso {meso:.2}x"
    );
    let largest = rows
        .iter()
        .filter(|r| r.contains_key("turbo_mcycles_per_sec") && !r.contains_key("kind"))
        .max_by_key(|r| field_f64(r, "connections") as u64)
        .expect("committed JSON lacks a scaling section");
    let rate = field_f64(largest, "turbo_mcycles_per_sec");
    assert!(
        rate >= SCALING_GATE_MCYCLES_PER_SEC,
        "committed scaling gate below {SCALING_GATE_MCYCLES_PER_SEC} Mcycles/s: {rate:.3}"
    );
    println!(
        "BENCH_SIM.json gates hold: paper {sync:.2}x/{meso:.2}x, \
         largest scaling point {rate:.3} Mcycles/s"
    );
}

/// `--scaling`: CI smoke — smallest + one mid-size point, separate
/// artifact, committed JSON untouched.
fn scaling_smoke() {
    println!("simulator scaling smoke (smallest + mid-size curve points)");
    let rows = [
        measure_scaling(8, 2_500, 2_000, 2),
        measure_scaling(16, 10_000, 2_000, 2),
    ];
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-sim-scaling-smoke/1\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_sim.rs --scaling\",\n");
    json.push_str(&scaling_json(&rows));
    json.push_str("}\n");
    std::fs::write("BENCH_SIM_SCALING_SMOKE.json", &json)
        .expect("write BENCH_SIM_SCALING_SMOKE.json");
    println!("\nwrote BENCH_SIM_SCALING_SMOKE.json");
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("--check") => return check_committed(),
        Some("--scaling") => return scaling_smoke(),
        Some(other) => panic!("unknown mode {other}; use --check or --scaling"),
        None => {}
    }
    println!("simulator throughput (simulated Mcycles/s; speedup = turbo vs event)");
    let paper = paper_workload(42);
    let paper_meso = paper.with_link_pipeline_stages(1, 1);
    let scaled = scaled_workload(4, 4, 4, 500, 1);
    let scaled_meso = scaled.with_link_pipeline_stages(1, 2);
    let meso = NetworkKind::Mesochronous { phase_seed: 7 };
    let rows = [
        measure(
            "paper_sync",
            "4x3 mesh, 48 NIs, 200 connections (Section VII)",
            &paper,
            NetworkKind::Synchronous,
            30_000,
            3,
        ),
        measure(
            "paper_meso",
            "4x3 mesh, 48 NIs, 200 connections (Section VII)",
            &paper_meso,
            meso,
            10_000,
            3,
        ),
        measure(
            "mesh4x4_sync",
            "4x4 mesh, 4 NIs/router, 500 connections",
            &scaled,
            NetworkKind::Synchronous,
            10_000,
            3,
        ),
        measure(
            "mesh4x4_meso",
            "4x4 mesh, 4 NIs/router, 500 connections",
            &scaled_meso,
            meso,
            5_000,
            3,
        ),
    ];

    println!("\nmega-mesh scaling curve (regional mega-profile, turbo kernel)");
    let scaling = [
        measure_scaling(8, 2_500, 10_000, 3),
        measure_scaling(16, 10_000, 5_000, 3),
        measure_scaling(24, 20_000, 5_000, 2),
        measure_scaling(32, 30_000, 5_000, 2),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-sim/2\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_sim.rs\",\n");
    json.push_str(
        "  \"note\": \"event = event-driven Simulator (BinaryHeap edge discovery, dyn Module \
         dispatch), the golden reference; turbo = compiled flit-synchronous kernel (static \
         network timing, flat per-connection state, slot-grained stepping); delivery logs \
         are asserted bit-for-bit identical before timing; throughput in simulated \
         megacycles per wall-clock second\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"platform\": \"{}\",", r.platform).unwrap();
        writeln!(json, "      \"kind\": \"{}\",", r.kind).unwrap();
        writeln!(json, "      \"simulated_cycles\": {},", r.cycles).unwrap();
        writeln!(json, "      \"flits_delivered\": {},", r.flits).unwrap();
        writeln!(
            json,
            "      \"event_mcycles_per_sec\": {:.3},",
            r.event_mcps
        )
        .unwrap();
        writeln!(
            json,
            "      \"turbo_mcycles_per_sec\": {:.3},",
            r.turbo_mcps
        )
        .unwrap();
        writeln!(
            json,
            "      \"turbo_speedup_vs_event\": {:.2}",
            r.turbo_mcps / r.event_mcps
        )
        .unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ],\n");
    json.push_str(&scaling_json(&scaling));
    json.push_str("}\n");

    std::fs::write("BENCH_SIM.json", &json).expect("write BENCH_SIM.json");
    println!("\nwrote BENCH_SIM.json");

    // The acceptance gate: the turbo kernel must simulate the paper
    // platform at least 5x faster than the event-driven engine, in
    // *both* clocking organisations. Recorded headroom is ~25-50x, so
    // the strict gate stays comfortably clear of CI runner noise.
    let sync = rows.iter().find(|r| r.name == "paper_sync").unwrap();
    let meso = rows.iter().find(|r| r.name == "paper_meso").unwrap();
    let sync_speedup = sync.turbo_mcps / sync.event_mcps;
    let meso_speedup = meso.turbo_mcps / meso.event_mcps;
    assert!(
        sync_speedup >= 5.0 && meso_speedup >= 5.0,
        "paper-platform turbo speedup regressed below 5x: sync {sync_speedup:.2}x, \
         meso {meso_speedup:.2}x"
    );

    // The mega-mesh scaling gate: the largest curve point (32x32, 30k
    // connections) must keep simulating at rate.
    let largest = scaling.last().unwrap();
    assert!(
        largest.turbo_mcps >= SCALING_GATE_MCYCLES_PER_SEC,
        "{} turbo throughput regressed below {SCALING_GATE_MCYCLES_PER_SEC} Mcycles/s: {:.3}",
        largest.name,
        largest.turbo_mcps
    );
}
