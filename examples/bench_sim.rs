//! Simulator-throughput trajectory: measures the event-driven
//! cycle-accurate engine against the compiled turbo kernel and writes
//! `BENCH_SIM.json`, the perf record future PRs track (the simulation
//! counterpart of `BENCH_ALLOC.json`).
//!
//! Each row runs the same spec/allocation/kind through both engines:
//!
//! * **event** — `build_network` + the event-driven
//!   `aelite_sim::scheduler::Simulator` (binary-heap edge discovery,
//!   `dyn Module` dispatch, double-buffered signal store) — the golden
//!   reference;
//! * **turbo** — `build_turbo`'s compiled flit-synchronous kernel
//!   (static network timing, flat per-connection state, slot-grained
//!   stepping).
//!
//! The two must agree bit-for-bit; this binary re-asserts the delivery
//! equivalence on every measured run before trusting the timing.
//!
//! Run with `cargo run --release --example bench_sim`.

use aelite_alloc::allocate;
use aelite_noc::network::{build_network, NetworkKind};
use aelite_noc::turbo::build_turbo;
use aelite_spec::app::SystemSpec;
use aelite_spec::generate::{paper_workload, scaled_workload};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    platform: &'static str,
    kind: &'static str,
    cycles: u64,
    flits: u64,
    event_mcps: f64,
    turbo_mcps: f64,
}

/// Wall-clock seconds of the fastest of `reps` runs of `f` (the usual
/// defence against scheduler noise on shared runners).
fn best_secs(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn measure(
    name: &'static str,
    platform: &'static str,
    spec: &SystemSpec,
    kind: NetworkKind,
    cycles: u64,
    reps: u32,
) -> Row {
    let alloc = allocate(spec).expect("allocates");

    // Equivalence first: a fast wrong simulator is worthless.
    let mut event = build_network(spec, &alloc, kind, true);
    let mut turbo = build_turbo(spec, &alloc, kind, true);
    event.run_cycles(cycles);
    turbo.run_cycles(cycles);
    let mut flits = 0u64;
    for c in spec.connections() {
        assert_eq!(
            *event.log(c.id).borrow(),
            *turbo.log(c.id).borrow(),
            "{}: turbo delivery log diverges from the event engine",
            c.id
        );
        flits += event.log(c.id).borrow().len() as u64;
    }
    assert!(flits > 0, "{name}: nothing delivered");

    let event_s = best_secs(reps, || {
        let mut net = build_network(spec, &alloc, kind, true);
        net.run_cycles(cycles);
        std::hint::black_box(&net);
    });
    let turbo_s = best_secs(reps, || {
        let mut net = build_turbo(spec, &alloc, kind, true);
        net.run_cycles(cycles);
        std::hint::black_box(&net);
    });

    let row = Row {
        name,
        platform,
        kind: match kind {
            NetworkKind::Synchronous => "synchronous",
            NetworkKind::Mesochronous { .. } => "mesochronous",
        },
        cycles,
        flits,
        event_mcps: cycles as f64 / event_s / 1e6,
        turbo_mcps: cycles as f64 / turbo_s / 1e6,
    };
    println!(
        "{name:>14}: event {:8.3} Mcycles/s | turbo {:8.3} Mcycles/s ({:5.1}x) | {} flits",
        row.event_mcps,
        row.turbo_mcps,
        row.turbo_mcps / row.event_mcps,
        row.flits,
    );
    row
}

fn main() {
    println!("simulator throughput (simulated Mcycles/s; speedup = turbo vs event)");
    let paper = paper_workload(42);
    let paper_meso = paper.with_link_pipeline_stages(1, 1);
    let scaled = scaled_workload(4, 4, 4, 500, 1);
    let scaled_meso = scaled.with_link_pipeline_stages(1, 2);
    let meso = NetworkKind::Mesochronous { phase_seed: 7 };
    let rows = [
        measure(
            "paper_sync",
            "4x3 mesh, 48 NIs, 200 connections (Section VII)",
            &paper,
            NetworkKind::Synchronous,
            30_000,
            3,
        ),
        measure(
            "paper_meso",
            "4x3 mesh, 48 NIs, 200 connections (Section VII)",
            &paper_meso,
            meso,
            10_000,
            3,
        ),
        measure(
            "mesh4x4_sync",
            "4x4 mesh, 4 NIs/router, 500 connections",
            &scaled,
            NetworkKind::Synchronous,
            10_000,
            3,
        ),
        measure(
            "mesh4x4_meso",
            "4x4 mesh, 4 NIs/router, 500 connections",
            &scaled_meso,
            meso,
            5_000,
            3,
        ),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"aelite-bench-sim/1\",\n");
    json.push_str("  \"generated_by\": \"examples/bench_sim.rs\",\n");
    json.push_str(
        "  \"note\": \"event = event-driven Simulator (BinaryHeap edge discovery, dyn Module \
         dispatch), the golden reference; turbo = compiled flit-synchronous kernel (static \
         network timing, flat per-connection state, slot-grained stepping); delivery logs \
         are asserted bit-for-bit identical before timing; throughput in simulated \
         megacycles per wall-clock second\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"platform\": \"{}\",", r.platform).unwrap();
        writeln!(json, "      \"kind\": \"{}\",", r.kind).unwrap();
        writeln!(json, "      \"simulated_cycles\": {},", r.cycles).unwrap();
        writeln!(json, "      \"flits_delivered\": {},", r.flits).unwrap();
        writeln!(
            json,
            "      \"event_mcycles_per_sec\": {:.3},",
            r.event_mcps
        )
        .unwrap();
        writeln!(
            json,
            "      \"turbo_mcycles_per_sec\": {:.3},",
            r.turbo_mcps
        )
        .unwrap();
        writeln!(
            json,
            "      \"turbo_speedup_vs_event\": {:.2}",
            r.turbo_mcps / r.event_mcps
        )
        .unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_SIM.json", &json).expect("write BENCH_SIM.json");
    println!("\nwrote BENCH_SIM.json");

    // The acceptance gate: the turbo kernel must simulate the paper
    // platform at least 5x faster than the event-driven engine, in
    // *both* clocking organisations. Recorded headroom is ~25-50x, so
    // the strict gate stays comfortably clear of CI runner noise.
    let sync = rows.iter().find(|r| r.name == "paper_sync").unwrap();
    let meso = rows.iter().find(|r| r.name == "paper_meso").unwrap();
    let sync_speedup = sync.turbo_mcps / sync.event_mcps;
    let meso_speedup = meso.turbo_mcps / meso.event_mcps;
    assert!(
        sync_speedup >= 5.0 && meso_speedup >= 5.0,
        "paper-platform turbo speedup regressed below 5x: sync {sync_speedup:.2}x, \
         meso {meso_speedup:.2}x"
    );
}
