//! GALS in action: the same NoC built synchronously and mesochronously
//! (per-element clock phases, bi-synchronous FIFO link stages) delivers
//! flits in exactly the same local flit cycles — the paper's claim that
//! "the NoC can be conceived as globally synchronous on the flit level",
//! so the designer never needs to think about the phases.
//!
//! Run with: `cargo run --example mesochronous_gals`

use aelite_alloc::allocate;
use aelite_noc::network::{build_network, NetworkKind};
use aelite_noc::ni::Message;
use aelite_spec::app::SystemSpecBuilder;
use aelite_spec::config::NocConfig;
use aelite_spec::ids::NiId;
use aelite_spec::topology::Topology;
use aelite_spec::traffic::Bandwidth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2x2 mesh; the mesochronous build needs one pipeline stage per
    // link, which the allocator accounts for as an extra slot per hop.
    let build_spec = |stages: u32| {
        let topo = Topology::mesh(2, 2, 1);
        let mut cfg = NocConfig::paper_default();
        cfg.link_pipeline_stages = stages;
        let mut b = SystemSpecBuilder::new(topo, cfg);
        let app = b.add_app("app");
        let a = b.add_ip_at(NiId::new(0));
        let z = b.add_ip_at(NiId::new(3));
        b.add_connection(app, a, z, Bandwidth::from_mbytes_per_sec(100), 900);
        b.build()
    };

    // Mesochronous build, three different random phase assignments.
    let spec = build_spec(1);
    let alloc = allocate(&spec)?;
    let conn = spec.connections()[0].id;
    println!("mesochronous 2x2 mesh, connection {conn}:");
    let mut reference: Option<Vec<u64>> = None;
    for seed in [11u64, 222, 3333] {
        let mut net = build_network(
            &spec,
            &alloc,
            NetworkKind::Mesochronous { phase_seed: seed },
            false,
        );
        for seq in 0..4 {
            net.queue(conn).borrow_mut().push_back(Message {
                seq,
                words: 2,
                ready_cycle: u64::from(seq) * 50,
            });
        }
        net.run_cycles(2_000);
        let cycles = net.delivery_cycles(conn);
        println!("  phase seed {seed:>5}: deliveries at local cycles {cycles:?}");
        match &reference {
            None => reference = Some(cycles),
            Some(r) => assert_eq!(
                r, &cycles,
                "flit synchronicity: phases must not change delivery cycles"
            ),
        }
    }
    println!("  -> identical for every phase assignment (flit-synchronous)");

    // The synchronous build of the same system differs only by the
    // pipeline-stage slots the allocator inserted.
    let sync_spec = build_spec(0);
    let sync_alloc = allocate(&sync_spec)?;
    let sync_conn = sync_spec.connections()[0].id;
    let mut sync_net = build_network(&sync_spec, &sync_alloc, NetworkKind::Synchronous, false);
    for seq in 0..4 {
        sync_net.queue(sync_conn).borrow_mut().push_back(Message {
            seq,
            words: 2,
            ready_cycle: u64::from(seq) * 50,
        });
    }
    sync_net.run_cycles(2_000);
    println!(
        "synchronous build (no link stages): deliveries at {:?}",
        sync_net.delivery_cycles(sync_conn)
    );
    println!("(earlier by one slot per hop: the price of each re-aligning link stage)");
    Ok(())
}
