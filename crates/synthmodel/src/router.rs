//! Analytical area and timing model of the aelite router.
//!
//! Substitutes for the paper's commercial synthesis flow (see `DESIGN.md`):
//! a first-order gate-level model whose free constants are calibrated to
//! the three result sets the paper reports for 90 nm worst-case low-power
//! CMOS, cell area only, pre-layout:
//!
//! * **Fig 5** — arity-5, 32-bit: ~14.2 kµm² for relaxed targets
//!   (≤650 MHz), a knee around 750 MHz, saturation at ~17.9 kµm² and
//!   ~875 MHz;
//! * **Fig 6(a)** — area roughly linear in arity (2–7) despite the
//!   quadratic switch, max frequency declining with arity;
//! * **Fig 6(b)** — area linear in data width (32–256 bits), frequency
//!   declining roughly linearly.
//!
//! ## Model structure
//!
//! Area (µm² of standard cells) is a sum over the datapath of Fig 2:
//!
//! | block | cells | scaling |
//! |---|---|---|
//! | input registers | 1 DFF per input bit | `arity_in * width` |
//! | HPU + port latch | route shifter slice + latch per input | `arity_in * (base + width)` |
//! | one-hot encode + control | per input | `arity_in` |
//! | switch | mux tree, `arity_out - 1` mux2 per output bit | `width * arity_out * (arity_out - 1)` |
//!
//! Timing: critical path is the switch mux tree (depth `log2 arity`) plus
//! flop overhead plus a wire/load term growing with width.
//!
//! Synthesis effort: pushing the target frequency towards the achievable
//! maximum inflates area (larger drive strengths, logic duplication); the
//! effort curve is flat to ~74% of `f_max`, then rises quadratically to
//! +26% at `f_max` — reproducing Fig 5's knee-and-saturate shape.

use crate::tech::TechNode;
use core::fmt;

/// Router instantiation parameters (the only hardware parameters the
/// aelite router has — paper Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouterParams {
    /// Number of input ports.
    pub arity_in: u32,
    /// Number of output ports.
    pub arity_out: u32,
    /// Data-path width in bits.
    pub width_bits: u32,
}

impl RouterParams {
    /// A symmetric router of the given arity and width.
    ///
    /// # Panics
    ///
    /// Panics if arity is 0 or exceeds 8, or width is 0.
    #[must_use]
    pub fn symmetric(arity: u32, width_bits: u32) -> Self {
        assert!((1..=8).contains(&arity), "arity {arity} out of range 1..=8");
        assert!(width_bits > 0, "width must be non-zero");
        RouterParams {
            arity_in: arity,
            arity_out: arity,
            width_bits,
        }
    }

    /// The paper's reference instance: arity-5, 32-bit.
    #[must_use]
    pub fn paper_reference() -> Self {
        RouterParams::symmetric(5, 32)
    }
}

impl fmt::Display for RouterParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "arity {}x{}, {}-bit",
            self.arity_in, self.arity_out, self.width_bits
        )
    }
}

// ---- Calibration constants (90 nm LP, worst case, cell area) ----------
// Derived from the paper's reported points; see module docs.

/// DFF cell area, µm² per bit.
const A_FF: f64 = 25.0;
/// HPU fixed slice per input (route shift/port decode control).
const A_HPU_BASE: f64 = 560.0;
/// HPU per-bit forwarding cost per input.
const A_HPU_BIT: f64 = 10.0;
/// One-hot encode + valid/EoP control per input.
const A_CTL: f64 = 120.0;
/// 2:1 mux cell area per bit.
const A_MUX2: f64 = 8.3;

/// Flop clk→q + setup + fixed control overhead, ps.
const D_BASE_PS: f64 = 540.0;
/// Mux-tree delay per log2(arity), ps.
const D_MUX_PS: f64 = 260.0;
/// Wire/load delay per data bit beyond 32, ps.
const D_BIT_PS: f64 = 0.96;

/// Relative area inflation at the maximum achievable frequency (Fig 5:
/// 17.9 / 14.2 ≈ 1.26).
const EFFORT_MAX: f64 = 0.26;
/// Fraction of `f_max` below which effort costs nothing (Fig 5: flat to
/// ~650 MHz of 875 MHz).
const EFFORT_KNEE: f64 = 0.74;

/// Cell area at relaxed timing (the flat region of Fig 5), µm², 90 nm.
#[must_use]
pub fn router_base_area_um2(p: &RouterParams) -> f64 {
    let n_in = f64::from(p.arity_in);
    let n_out = f64::from(p.arity_out);
    let w = f64::from(p.width_bits);
    let regs = n_in * w * A_FF;
    let hpu = n_in * (A_HPU_BASE + w * A_HPU_BIT);
    let ctl = n_in * A_CTL;
    let switch = w * n_out * (n_out - 1.0).max(0.0) * A_MUX2;
    regs + hpu + ctl + switch
}

/// Maximum achievable pre-layout frequency, MHz, 90 nm.
#[must_use]
pub fn router_max_frequency_mhz(p: &RouterParams) -> f64 {
    let n = f64::from(p.arity_out.max(2));
    let extra_bits = f64::from(p.width_bits.saturating_sub(32));
    let delay_ps = D_BASE_PS + D_MUX_PS * n.log2() + D_BIT_PS * extra_bits;
    1.0e6 / delay_ps
}

/// The result of one synthesis run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthResult {
    /// The frequency the netlist actually meets, MHz.
    pub achieved_mhz: f64,
    /// Cell area, µm².
    pub area_um2: f64,
    /// Whether the requested target was met (`false` = the tool returned
    /// its best effort at `achieved_mhz < target`).
    pub met_target: bool,
}

/// Synthesises `p` for `target_mhz`, reproducing the effort/area trade-off
/// of Fig 5.
///
/// Beyond the achievable maximum the result saturates: the returned
/// netlist runs at `f_max` with the maximum-effort area and
/// `met_target == false` — which is how the paper's area curve flattens
/// above 875 MHz.
#[must_use]
pub fn synthesize(p: &RouterParams, target_mhz: f64) -> SynthResult {
    let base = router_base_area_um2(p);
    let f_max = router_max_frequency_mhz(p);
    let u = (target_mhz / f_max).min(1.0);
    let effort = if u <= EFFORT_KNEE {
        0.0
    } else {
        let x = (u - EFFORT_KNEE) / (1.0 - EFFORT_KNEE);
        EFFORT_MAX * x * x
    };
    SynthResult {
        achieved_mhz: target_mhz.min(f_max),
        area_um2: base * (1.0 + effort),
        met_target: target_mhz <= f_max,
    }
}

/// Synthesises `p` at its maximum achievable frequency (the regime of
/// Fig 6).
#[must_use]
pub fn synthesize_max(p: &RouterParams) -> SynthResult {
    synthesize(p, router_max_frequency_mhz(p))
}

/// Aggregate router throughput at frequency `f_mhz`: all input plus all
/// output ports moving one word per cycle, in decimal Gbyte/s.
///
/// The paper quotes "an arity-6 aelite router offers 64 Gbyte/s at
/// 0.03 mm² for a 64-bit data width" under this convention.
#[must_use]
pub fn aggregate_throughput_gbytes(p: &RouterParams, f_mhz: f64) -> f64 {
    let ports = f64::from(p.arity_in + p.arity_out);
    let bytes = f64::from(p.width_bits) / 8.0;
    ports * bytes * f_mhz * 1.0e6 / 1.0e9
}

/// Synthesises `p` in a different technology node: the 90 nm-calibrated
/// model is evaluated at the frequency equivalent and the results scaled
/// back (area quadratically, frequency linearly).
#[must_use]
pub fn synthesize_at(p: &RouterParams, target_mhz: f64, node: TechNode) -> SynthResult {
    let target_90 = node.scale_frequency_mhz(target_mhz, TechNode::NM90);
    let r90 = synthesize(p, target_90);
    SynthResult {
        achieved_mhz: TechNode::NM90.scale_frequency_mhz(r90.achieved_mhz, node),
        area_um2: TechNode::NM90.scale_area_um2(r90.area_um2, node),
        met_target: r90.met_target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF: RouterParams = RouterParams {
        arity_in: 5,
        arity_out: 5,
        width_bits: 32,
    };

    #[test]
    fn fig5_flat_region_matches_paper() {
        // "the router occupies less than 0.015 mm² for frequencies up to
        // 650 MHz"
        for f in [500.0, 550.0, 600.0, 650.0] {
            let r = synthesize(&REF, f);
            assert!(r.met_target, "{f} MHz must be feasible");
            assert!(
                (14_000.0..15_000.0).contains(&r.area_um2),
                "{f} MHz -> {} µm²",
                r.area_um2
            );
        }
    }

    #[test]
    fn fig5_saturation_matches_paper() {
        // "the area grows steeply after 750 MHz and saturates around
        // 875 MHz" at ~17.9 kµm².
        let fmax = router_max_frequency_mhz(&REF);
        assert!(
            (860.0..=890.0).contains(&fmax),
            "f_max {fmax} MHz off the paper's ~875 MHz"
        );
        let at_max = synthesize(&REF, fmax);
        assert!(
            (17_000.0..18_500.0).contains(&at_max.area_um2),
            "max-effort area {} µm²",
            at_max.area_um2
        );
        // Saturated beyond f_max.
        let beyond = synthesize(&REF, fmax + 100.0);
        assert!(!beyond.met_target);
        assert_eq!(beyond.achieved_mhz, fmax);
        assert!((beyond.area_um2 - at_max.area_um2).abs() < 1.0);
    }

    #[test]
    fn fig5_growth_is_steeper_after_750() {
        let a = |f: f64| synthesize(&REF, f).area_um2;
        let slope_early = a(700.0) - a(650.0);
        let slope_late = a(850.0) - a(800.0);
        assert!(
            slope_late > 3.0 * slope_early.max(1.0),
            "late slope {slope_late} vs early {slope_early}"
        );
    }

    #[test]
    fn fig6a_area_roughly_linear_in_arity() {
        // Ratio of successive per-arity increments stays below 2 — "grows
        // roughly linearly with the arity, despite the multiplexer tree".
        let areas: Vec<f64> = (2..=7)
            .map(|n| synthesize_max(&RouterParams::symmetric(n, 32)).area_um2)
            .collect();
        for w in areas.windows(3) {
            let d1 = w[1] - w[0];
            let d2 = w[2] - w[1];
            assert!(d2 > 0.0 && d1 > 0.0);
            assert!(d2 / d1 < 1.9, "increments {d1} then {d2}");
        }
        // Absolute anchors from the figure's axis range.
        assert!(
            (4_000.0..7_000.0).contains(&areas[0]),
            "arity 2: {}",
            areas[0]
        );
        assert!(
            (20_000.0..30_000.0).contains(&areas[5]),
            "arity 7: {}",
            areas[5]
        );
    }

    #[test]
    fn fig6a_frequency_declines_with_arity() {
        let freqs: Vec<f64> = (2..=7)
            .map(|n| router_max_frequency_mhz(&RouterParams::symmetric(n, 32)))
            .collect();
        for w in freqs.windows(2) {
            assert!(w[1] <= w[0], "{freqs:?}");
        }
        assert!(freqs[0] > 1_200.0, "arity 2: {}", freqs[0]);
        assert!(freqs[5] > 750.0, "arity 7: {}", freqs[5]);
    }

    #[test]
    fn fig6b_area_linear_in_width() {
        // Doubling the width should roughly double the area (within 15%).
        let a = |w: u32| synthesize_max(&RouterParams::symmetric(6, w)).area_um2;
        for w in [32u32, 64, 128] {
            let ratio = a(2 * w) / a(w);
            assert!((1.7..2.1).contains(&ratio), "width {w} -> {}x", ratio);
        }
    }

    #[test]
    fn fig6b_frequency_declines_roughly_linearly_with_width() {
        let f = |w: u32| router_max_frequency_mhz(&RouterParams::symmetric(6, w));
        let f32b = f(32);
        let f256b = f(256);
        assert!(f32b > f256b, "frequency must drop with width");
        // Paper's Fig 6(b) axis spans roughly 880 down to 740 MHz.
        assert!((780.0..880.0).contains(&f32b), "{f32b}");
        assert!((650.0..780.0).contains(&f256b), "{f256b}");
        // Linear trend: mid-point frequency near the average of extremes.
        let mid = f(144);
        let avg = (f32b + f256b) / 2.0;
        assert!((mid - avg).abs() / avg < 0.05, "mid {mid} vs avg {avg}");
    }

    #[test]
    fn area_independent_of_connection_count() {
        // The defining property vs VC-based NoCs: the model has no input
        // for connections or service levels at all — the type system makes
        // this trivially true; assert the reference numbers for the doc.
        let r = synthesize(&REF, 500.0);
        assert!(r.met_target);
    }

    #[test]
    fn paper_quote_arity6_64bit_throughput() {
        // "an arity-6 aelite router offers 64 Gbyte/s at 0.03 mm² for a
        // 64-bit data width": 64 GB/s over 12 ports of 8 bytes needs
        // ~667 MHz, comfortably below f_max, at near-baseline area.
        let p = RouterParams::symmetric(6, 64);
        let f_needed = 64.0e9 / (12.0 * 8.0) / 1.0e6; // MHz
        let r = synthesize(&p, f_needed);
        assert!(r.met_target, "667 MHz must be feasible for arity-6/64-bit");
        let gbps = aggregate_throughput_gbytes(&p, r.achieved_mhz);
        assert!(gbps >= 64.0, "only {gbps} GB/s");
        assert!(
            r.area_um2 < 36_000.0,
            "area {} µm² above the paper's ~0.03 mm² order",
            r.area_um2
        );
    }

    #[test]
    fn asymmetric_routers_supported() {
        let p = RouterParams {
            arity_in: 3,
            arity_out: 5,
            width_bits: 32,
        };
        let a = router_base_area_um2(&p);
        let sym5 = router_base_area_um2(&RouterParams::symmetric(5, 32));
        assert!(a < sym5, "fewer inputs must shrink the router");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arity_over_8_rejected() {
        let _ = RouterParams::symmetric(9, 32);
    }

    #[test]
    fn display_formats_params() {
        assert_eq!(REF.to_string(), "arity 5x5, 32-bit");
    }
}
