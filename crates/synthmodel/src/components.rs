//! Area models for the non-router components: bi-synchronous FIFOs, the
//! mesochronous link pipeline stage, and the complete router-with-links.
//!
//! Calibration anchors from the paper (Section VII):
//!
//! * 4-word bi-sync FIFO: ~1,500 µm² with the custom design of \[18\],
//!   ~3,300 µm² with the non-custom design of \[4\] (32-bit words);
//! * a complete arity-5 router with mesochronous links is ~0.032 mm².

use crate::router::{synthesize_max, RouterParams};

/// The bi-synchronous FIFO implementation variants the paper prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FifoKind {
    /// The custom, area-efficient embedded FIFO of Wielage et al. \[18\].
    Custom,
    /// The standard-cell FIFO of Miro Panades et al. \[4\].
    StandardCell,
}

/// Cell area of a bi-synchronous FIFO, µm² at 90 nm.
///
/// Storage scales with `words * width_bits`; the synchroniser/pointer
/// overhead is per-FIFO. Calibrated so that a 4-word, 32-bit FIFO costs
/// 1,500 µm² (custom) or 3,300 µm² (standard cell), the paper's figures.
///
/// # Panics
///
/// Panics if `words` or `width_bits` is zero.
#[must_use]
pub fn bisync_fifo_area_um2(kind: FifoKind, words: u32, width_bits: u32) -> f64 {
    assert!(words > 0 && width_bits > 0, "FIFO must have storage");
    let bits = f64::from(words) * f64::from(width_bits);
    match kind {
        // 1500 = overhead + 128 bits * per-bit  =>  300 + 128 * 9.375
        FifoKind::Custom => 300.0 + bits * 9.375,
        // 3300 = 500 + 128 * 21.875
        FifoKind::StandardCell => 500.0 + bits * 21.875,
    }
}

/// Cell area of the flit-cycle re-aligning FSM of a link pipeline stage
/// (state counter + valid/accept control), µm² at 90 nm.
#[must_use]
pub fn meso_fsm_area_um2() -> f64 {
    200.0
}

/// Cell area of one complete mesochronous link pipeline stage: the
/// source-synchronous capture register, the 4-word bi-sync FIFO and the
/// FSM (paper Fig 3), µm² at 90 nm.
#[must_use]
pub fn link_stage_area_um2(kind: FifoKind, width_bits: u32) -> f64 {
    let capture_reg = f64::from(width_bits) * 25.0;
    bisync_fifo_area_um2(kind, 4, width_bits) + meso_fsm_area_um2() + capture_reg
}

/// Cell area of a network interface, µm² at 90 nm.
///
/// NIs dominate Æthereal-family NoC area because they hold the
/// per-connection buffering: two FIFOs (request/response) of
/// `buffer_words` words per connection, the TDM slot table, and the
/// packetisation/credit control. Storage is priced at the custom-FIFO
/// bit density of \[18\]; the paper reports no NI figure, so this model
/// is indicative (used for whole-system cost comparisons, not calibrated
/// claims).
///
/// # Panics
///
/// Panics if any parameter is zero.
#[must_use]
pub fn ni_area_um2(
    connections: u32,
    buffer_words: u32,
    width_bits: u32,
    slot_table_size: u32,
) -> f64 {
    assert!(
        connections > 0 && buffer_words > 0 && width_bits > 0 && slot_table_size > 0,
        "NI parameters must be non-zero"
    );
    let bits_per_fifo = f64::from(buffer_words) * f64::from(width_bits);
    let buffers = f64::from(connections) * 2.0 * (300.0 + bits_per_fifo * 9.375);
    // Slot table: one connection-id entry (8 bits) per slot, flop-based.
    let table = f64::from(slot_table_size) * 8.0 * 25.0 / 8.0;
    // Packetisation FSM, credit counters and IP-side bi-sync FIFO.
    let control = 2_000.0 + f64::from(connections) * 250.0;
    buffers + table + control
}

/// Cell area of a complete router with one mesochronous pipeline stage on
/// each input link, µm² at 90 nm, synthesised at maximum frequency.
///
/// The paper: "For an arity-5 router with mesochronous links the complete
/// router with links is in the order of 0.032 mm²."
#[must_use]
pub fn router_with_links_area_um2(p: &RouterParams, kind: FifoKind) -> f64 {
    synthesize_max(p).area_um2 + f64::from(p.arity_in) * link_stage_area_um2(kind, p.width_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_areas_match_paper_anchors() {
        let custom = bisync_fifo_area_um2(FifoKind::Custom, 4, 32);
        assert!((custom - 1_500.0).abs() < 1.0, "{custom}");
        let std_cell = bisync_fifo_area_um2(FifoKind::StandardCell, 4, 32);
        assert!((std_cell - 3_300.0).abs() < 1.0, "{std_cell}");
    }

    #[test]
    fn fifo_area_scales_with_storage() {
        let a4 = bisync_fifo_area_um2(FifoKind::Custom, 4, 32);
        let a8 = bisync_fifo_area_um2(FifoKind::Custom, 8, 32);
        let a4w64 = bisync_fifo_area_um2(FifoKind::Custom, 4, 64);
        assert!(a8 > a4);
        assert!(
            (a8 - a4 - (a4w64 - a4)).abs() < 1e-9,
            "words and width symmetric"
        );
    }

    #[test]
    fn complete_arity5_router_with_links_near_paper_figure() {
        // ~0.032 mm² with custom FIFOs.
        let p = RouterParams::paper_reference();
        let a = router_with_links_area_um2(&p, FifoKind::Custom);
        assert!(
            (29_000.0..35_000.0).contains(&a),
            "router+links {a} µm² vs paper ~32,000"
        );
    }

    #[test]
    fn standard_cell_fifos_cost_more() {
        let p = RouterParams::paper_reference();
        let custom = router_with_links_area_um2(&p, FifoKind::Custom);
        let std_cell = router_with_links_area_um2(&p, FifoKind::StandardCell);
        assert!(std_cell > custom + 5.0 * 1_500.0);
    }

    #[test]
    #[should_panic(expected = "storage")]
    fn zero_word_fifo_rejected() {
        let _ = bisync_fifo_area_um2(FifoKind::Custom, 0, 32);
    }

    #[test]
    fn ni_area_scales_with_connections() {
        let one = ni_area_um2(1, 24, 32, 64);
        let four = ni_area_um2(4, 24, 32, 64);
        assert!(four > 3.0 * one - 3_000.0, "{one} vs {four}");
        // NIs with several connections dwarf the router — the known
        // Æthereal-family cost structure.
        assert!(four > 14_000.0, "{four}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn ni_zero_conns_rejected() {
        let _ = ni_area_um2(0, 24, 32, 64);
    }
}
