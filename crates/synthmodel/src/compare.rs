//! Published comparison points: the combined GS+BE Æthereal router and
//! the mesochronous/asynchronous routers the paper compares against.
//!
//! These models regenerate the in-text comparison of Section VII:
//!
//! * Æthereal combined GS+BE router: 0.13 mm² at 500 MHz in 130 nm \[8\];
//!   against aelite in the same 90 nm technology the difference is
//!   "roughly 5× smaller area and 1.5× the frequency";
//! * the mesochronous router of \[4\]: 0.082 mm²;
//! * the asynchronous router of \[7\]: 0.12 mm² (scaled from 130 nm);
//!   both offering only two service levels and no composability.

use crate::components::{router_with_links_area_um2, FifoKind};
use crate::router::{router_max_frequency_mhz, RouterParams};
use crate::tech::TechNode;

/// The published Æthereal combined GS+BE router result \[8\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedRouter {
    /// Design name for reports.
    pub name: &'static str,
    /// Cell area in µm², in `node`.
    pub area_um2: f64,
    /// Operating frequency in MHz, in `node`.
    pub frequency_mhz: f64,
    /// The node the numbers were reported in.
    pub node: TechNode,
    /// Service levels offered (GS/BE distinctions).
    pub service_levels: u32,
    /// Whether the design isolates applications completely.
    pub composable: bool,
}

/// Æthereal's combined GS+BE arity-5 router \[8\]: 0.13 mm², 500 MHz,
/// 130 nm.
#[must_use]
pub fn aethereal_gs_be() -> PublishedRouter {
    PublishedRouter {
        name: "Aethereal GS+BE [8]",
        area_um2: 130_000.0,
        frequency_mhz: 500.0,
        node: TechNode::NM130,
        service_levels: 2,
        composable: false,
    }
}

/// The mesochronous router of Miro Panades et al. \[4\]: 0.082 mm² (as
/// published; two service levels, no composability).
#[must_use]
pub fn panades_mesochronous() -> PublishedRouter {
    PublishedRouter {
        name: "mesochronous router [4]",
        area_um2: 82_000.0,
        frequency_mhz: 500.0,
        node: TechNode::NM90,
        service_levels: 2,
        composable: false,
    }
}

/// The asynchronous router of Beigne et al. \[7\]: 0.12 mm² scaled from
/// 130 nm (the paper quotes the scaled value).
#[must_use]
pub fn beigne_asynchronous() -> PublishedRouter {
    PublishedRouter {
        name: "asynchronous router [7]",
        area_um2: 120_000.0,
        frequency_mhz: 0.0, // asynchronous: no single clock figure
        node: TechNode::NM90,
        service_levels: 2,
        composable: false,
    }
}

impl PublishedRouter {
    /// Area scaled into `target` node.
    #[must_use]
    pub fn area_in(&self, target: TechNode) -> f64 {
        self.node.scale_area_um2(self.area_um2, target)
    }

    /// Frequency scaled into `target` node.
    #[must_use]
    pub fn frequency_in(&self, target: TechNode) -> f64 {
        self.node.scale_frequency_mhz(self.frequency_mhz, target)
    }
}

/// The Section VII comparison, computed: aelite's area and frequency
/// advantage over the combined GS+BE Æthereal router in the same 90 nm
/// technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GsBeComparison {
    /// aelite router cell area at relaxed timing, µm² (90 nm).
    pub aelite_area_um2: f64,
    /// aelite maximum frequency, MHz (90 nm).
    pub aelite_frequency_mhz: f64,
    /// Æthereal GS+BE area scaled to 90 nm, µm².
    pub aethereal_area_um2: f64,
    /// Æthereal GS+BE frequency scaled to 90 nm, MHz.
    pub aethereal_frequency_mhz: f64,
}

impl GsBeComparison {
    /// Computes the comparison for a router instance.
    #[must_use]
    pub fn for_params(p: &RouterParams) -> Self {
        let aeth = aethereal_gs_be();
        GsBeComparison {
            aelite_area_um2: crate::router::synthesize(p, 650.0).area_um2,
            aelite_frequency_mhz: router_max_frequency_mhz(p),
            aethereal_area_um2: aeth.area_in(TechNode::NM90),
            aethereal_frequency_mhz: aeth.frequency_in(TechNode::NM90),
        }
    }

    /// Area ratio (Æthereal / aelite) — the paper's "roughly 5×".
    #[must_use]
    pub fn area_ratio(&self) -> f64 {
        self.aethereal_area_um2 / self.aelite_area_um2
    }

    /// Frequency ratio (aelite / Æthereal) — the paper's "1.5×".
    #[must_use]
    pub fn frequency_ratio(&self) -> f64 {
        self.aelite_frequency_mhz / self.aethereal_frequency_mhz
    }
}

/// Row of the router-comparison table (experiment T1).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Design label.
    pub name: String,
    /// Cell area at 90 nm, µm².
    pub area_um2: f64,
    /// Service levels.
    pub service_levels: u32,
    /// Complete application isolation?
    pub composable: bool,
}

/// Builds the full comparison table of Section VII: aelite (router with
/// mesochronous links) against \[4\] and \[7\].
#[must_use]
pub fn comparison_table(p: &RouterParams) -> Vec<ComparisonRow> {
    let aelite = ComparisonRow {
        name: format!("aelite router + links ({p})"),
        area_um2: router_with_links_area_um2(p, FifoKind::Custom),
        service_levels: u32::MAX, // unbounded connections/service levels
        composable: true,
    };
    let rows = [panades_mesochronous(), beigne_asynchronous()];
    let mut table = vec![aelite];
    for r in rows {
        table.push(ComparisonRow {
            name: r.name.to_owned(),
            area_um2: r.area_in(TechNode::NM90),
            service_levels: r.service_levels,
            composable: r.composable,
        });
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gs_be_comparison_matches_paper_ratios() {
        // "In aelite the difference is roughly 5× smaller area and 1.5×
        // the frequency for the same 90 nm technology."
        let cmp = GsBeComparison::for_params(&RouterParams::paper_reference());
        let area = cmp.area_ratio();
        assert!(
            (4.0..6.0).contains(&area),
            "area ratio {area} not 'roughly 5x'"
        );
        let freq = cmp.frequency_ratio();
        assert!(
            (1.15..1.6).contains(&freq),
            "frequency ratio {freq} not 'roughly 1.5x'"
        );
    }

    #[test]
    fn aelite_with_links_beats_published_competitors() {
        // 0.032 mm² vs 0.082 mm² [4] and 0.12 mm² [7].
        let table = comparison_table(&RouterParams::paper_reference());
        assert_eq!(table.len(), 3);
        let aelite = &table[0];
        for other in &table[1..] {
            assert!(
                aelite.area_um2 < other.area_um2 / 2.0,
                "{} ({}) vs {} ({})",
                aelite.name,
                aelite.area_um2,
                other.name,
                other.area_um2
            );
            assert!(!other.composable);
        }
        assert!(aelite.composable);
    }

    #[test]
    fn published_numbers_scale() {
        let aeth = aethereal_gs_be();
        let a90 = aeth.area_in(TechNode::NM90);
        assert!((a90 - 130_000.0 * (90.0f64 / 130.0).powi(2)).abs() < 1.0);
        let f90 = aeth.frequency_in(TechNode::NM90);
        assert!((f90 - 500.0 * 130.0 / 90.0).abs() < 1e-9);
    }

    #[test]
    fn beigne_is_already_scaled() {
        assert_eq!(beigne_asynchronous().area_in(TechNode::NM90), 120_000.0);
    }
}
