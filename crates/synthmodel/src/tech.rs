//! Technology nodes and first-order scaling.
//!
//! The paper reports aelite numbers in a 90 nm low-power CMOS technology
//! and compares against designs published in 130 nm, "scaled from 130 nm".
//! This module provides the classical constant-field scaling used for such
//! comparisons: area scales with the square of the feature-size ratio,
//! achievable frequency inversely with it.

use core::fmt;

/// A CMOS technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TechNode {
    nm: u32,
}

impl TechNode {
    /// The paper's 90 nm low-power node.
    pub const NM90: TechNode = TechNode { nm: 90 };
    /// The 130 nm node of the original Æthereal results.
    pub const NM130: TechNode = TechNode { nm: 130 };
    /// The 65 nm node referenced for post-layout derating \[12\].
    pub const NM65: TechNode = TechNode { nm: 65 };

    /// An arbitrary node.
    ///
    /// # Panics
    ///
    /// Panics if `nm` is zero.
    #[must_use]
    pub const fn new(nm: u32) -> Self {
        assert!(nm > 0, "feature size must be non-zero");
        TechNode { nm }
    }

    /// Feature size in nanometres.
    #[must_use]
    pub const fn nanometres(self) -> u32 {
        self.nm
    }

    /// Scales an area from `self` to `target`: `area * (target/self)^2`.
    #[must_use]
    pub fn scale_area_um2(self, area_um2: f64, target: TechNode) -> f64 {
        let r = f64::from(target.nm) / f64::from(self.nm);
        area_um2 * r * r
    }

    /// Scales a frequency from `self` to `target`: `f * (self/target)`.
    #[must_use]
    pub fn scale_frequency_mhz(self, f_mhz: f64, target: TechNode) -> f64 {
        f_mhz * f64::from(self.nm) / f64::from(target.nm)
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.nm)
    }
}

/// Post-layout derating noted in the paper: "a utilisation higher than 85%
/// is difficult to achieve and frequency reductions of up to 30% are
/// reported in \[12\]".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutDerate {
    /// Cell-area utilisation achievable after placement (≤ 1).
    pub utilisation: f64,
    /// Fraction of the pre-layout frequency retained (≤ 1).
    pub frequency_retention: f64,
}

impl LayoutDerate {
    /// The paper's quoted figures: 85% utilisation, up to 30% slower.
    #[must_use]
    pub const fn paper() -> Self {
        LayoutDerate {
            utilisation: 0.85,
            frequency_retention: 0.70,
        }
    }

    /// Post-layout silicon area for a given cell area.
    #[must_use]
    pub fn layout_area_um2(&self, cell_area_um2: f64) -> f64 {
        cell_area_um2 / self.utilisation
    }

    /// Post-layout frequency for a given pre-layout frequency.
    #[must_use]
    pub fn layout_frequency_mhz(&self, f_mhz: f64) -> f64 {
        f_mhz * self.frequency_retention
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scaling_is_quadratic() {
        let a130 = 130_000.0;
        let a90 = TechNode::NM130.scale_area_um2(a130, TechNode::NM90);
        let ratio = a90 / a130;
        let expect = (90.0f64 / 130.0).powi(2);
        assert!((ratio - expect).abs() < 1e-12);
    }

    #[test]
    fn frequency_scaling_is_linear() {
        let f = TechNode::NM130.scale_frequency_mhz(500.0, TechNode::NM90);
        assert!((f - 500.0 * 130.0 / 90.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_round_trips() {
        let a = TechNode::NM90.scale_area_um2(
            TechNode::NM130.scale_area_um2(1234.5, TechNode::NM90),
            TechNode::NM130,
        );
        assert!((a - 1234.5).abs() < 1e-9);
    }

    #[test]
    fn identity_scaling() {
        assert_eq!(TechNode::NM90.scale_area_um2(100.0, TechNode::NM90), 100.0);
    }

    #[test]
    fn derate_matches_paper_quotes() {
        let d = LayoutDerate::paper();
        assert!((d.layout_area_um2(85.0) - 100.0).abs() < 1e-9);
        assert!((d.layout_frequency_mhz(1000.0) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn display_shows_nm() {
        assert_eq!(TechNode::NM90.to_string(), "90 nm");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_node_rejected() {
        let _ = TechNode::new(0);
    }
}
