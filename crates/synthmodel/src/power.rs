//! First-order power model and the paper's sleep-mode future work.
//!
//! The paper notes as a limitation (Section VI-A): "the aelite NoC, in its
//! current form, consumes power while idling. The power consumption is
//! reduced by moving to a completely asynchronous implementation \[15\],
//! or by introducing sleep modes for individual routers. We consider the
//! latter ... future work." This module implements that future-work
//! direction as an analytical model, so the trade-off can be explored
//! (see the ablation bench).
//!
//! The model is a standard three-term decomposition for a low-power 90 nm
//! process; the paper reports no power numbers, so the constants are
//! representative rather than calibrated (documented in `DESIGN.md`'s
//! spirit: shapes and ratios are meaningful, absolute mW are indicative):
//!
//! * **leakage** — proportional to cell area, frequency-independent;
//! * **clock/register power** — proportional to area × frequency; burned
//!   whenever the clock toggles, *even when idle* — the cost the paper
//!   calls out;
//! * **data-path switching** — proportional to area × frequency ×
//!   utilisation (fraction of cycles moving real words).

/// Representative leakage density for 90 nm LP, mW per µm².
const LEAK_MW_PER_UM2: f64 = 2.0e-5;
/// Clock-tree + register switching, mW per µm² per MHz.
const CLK_MW_PER_UM2_MHZ: f64 = 1.0e-6;
/// Data-path switching at 100% utilisation, mW per µm² per MHz.
const DATA_MW_PER_UM2_MHZ: f64 = 0.5e-6;

/// Power breakdown of one component, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Leakage (always on).
    pub leakage_mw: f64,
    /// Clock and register power (on whenever the clock runs).
    pub clock_mw: f64,
    /// Data-dependent switching power.
    pub data_mw: f64,
}

impl PowerBreakdown {
    /// Total power in milliwatts.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.leakage_mw + self.clock_mw + self.data_mw
    }
}

/// Power of a component of `area_um2` cell area clocked at `f_mhz` with
/// the given data-path `utilisation` (0 = idle, 1 = every cycle busy).
///
/// # Panics
///
/// Panics if `utilisation` is outside `[0, 1]` or any input is negative.
#[must_use]
pub fn component_power(area_um2: f64, f_mhz: f64, utilisation: f64) -> PowerBreakdown {
    assert!(
        (0.0..=1.0).contains(&utilisation),
        "utilisation {utilisation} out of [0, 1]"
    );
    assert!(area_um2 >= 0.0 && f_mhz >= 0.0, "negative inputs");
    PowerBreakdown {
        leakage_mw: area_um2 * LEAK_MW_PER_UM2,
        clock_mw: area_um2 * f_mhz * CLK_MW_PER_UM2_MHZ,
        data_mw: area_um2 * f_mhz * DATA_MW_PER_UM2_MHZ * utilisation,
    }
}

/// Sleep-mode policy for idle routers (the paper's future-work knob).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SleepMode {
    /// The paper's current form: clocks run continuously.
    AlwaysOn,
    /// Clock-gate a router during slots where its tables are idle:
    /// clock power scales with the router's slot occupancy, plus a small
    /// wake overhead fraction.
    ClockGated {
        /// Extra clock activity for wake-up/synchronisation, as a
        /// fraction of full clock power (e.g. `0.05`).
        wake_overhead: f64,
    },
}

/// Power of one router under a sleep policy.
///
/// `occupancy` is the fraction of slots in which any of the router's
/// links carries a reservation — exactly what a TDM schedule knows at
/// design time, which is what makes clock gating attractive here: the
/// gating schedule is static and interferes with nothing.
///
/// # Panics
///
/// Panics if `occupancy` is outside `[0, 1]`.
#[must_use]
pub fn router_power(area_um2: f64, f_mhz: f64, occupancy: f64, mode: SleepMode) -> PowerBreakdown {
    assert!(
        (0.0..=1.0).contains(&occupancy),
        "occupancy {occupancy} out of [0, 1]"
    );
    let base = component_power(area_um2, f_mhz, occupancy);
    match mode {
        SleepMode::AlwaysOn => base,
        SleepMode::ClockGated { wake_overhead } => {
            assert!(
                (0.0..=1.0).contains(&wake_overhead),
                "wake overhead out of [0, 1]"
            );
            let gated_clock = base.clock_mw * (occupancy + wake_overhead).min(1.0);
            PowerBreakdown {
                clock_mw: gated_clock,
                ..base
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_router_still_burns_clock_power_when_always_on() {
        // The paper's limitation: idle != free.
        let p = router_power(14_300.0, 500.0, 0.0, SleepMode::AlwaysOn);
        assert!(p.clock_mw > 5.0, "clock power {} mW", p.clock_mw);
        assert_eq!(p.data_mw, 0.0);
        assert!(p.total_mw() > p.leakage_mw);
    }

    #[test]
    fn clock_gating_saves_most_idle_power() {
        let on = router_power(14_300.0, 500.0, 0.1, SleepMode::AlwaysOn);
        let gated = router_power(
            14_300.0,
            500.0,
            0.1,
            SleepMode::ClockGated {
                wake_overhead: 0.05,
            },
        );
        assert!(gated.total_mw() < on.total_mw());
        // At 10% occupancy the gated clock burns ~15% of the always-on
        // clock power.
        let ratio = gated.clock_mw / on.clock_mw;
        assert!((ratio - 0.15).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn gating_never_helps_a_fully_busy_router() {
        let on = router_power(10_000.0, 500.0, 1.0, SleepMode::AlwaysOn);
        let gated = router_power(
            10_000.0,
            500.0,
            1.0,
            SleepMode::ClockGated {
                wake_overhead: 0.05,
            },
        );
        assert!((gated.total_mw() - on.total_mw()).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_area_and_frequency() {
        let small = component_power(10_000.0, 500.0, 0.5);
        let big = component_power(20_000.0, 500.0, 0.5);
        let fast = component_power(10_000.0, 1_000.0, 0.5);
        assert!((big.total_mw() / small.total_mw() - 2.0).abs() < 1e-9);
        assert!(fast.clock_mw > small.clock_mw);
        assert_eq!(fast.leakage_mw, small.leakage_mw);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn utilisation_validated() {
        let _ = component_power(1.0, 1.0, 1.5);
    }

    #[test]
    fn realistic_router_magnitude() {
        // Sanity: a busy arity-5 router at 500 MHz lands in the single-
        // digit-mW range typical for 90 nm LP NoC routers.
        let p = router_power(14_300.0, 500.0, 0.5, SleepMode::AlwaysOn);
        assert!(
            (5.0..20.0).contains(&p.total_mw()),
            "{} mW out of the plausible range",
            p.total_mw()
        );
    }
}
