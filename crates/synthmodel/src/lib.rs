//! # aelite-synth — analytical area/timing models (90 nm calibration)
//!
//! The paper's evaluation rests on commercial synthesis of the aelite
//! router in a 90 nm low-power CMOS technology. This crate substitutes a
//! first-order gate-level model calibrated to every number the paper
//! reports (the substitution is documented in `DESIGN.md`):
//!
//! * [`router`] — cell area and maximum frequency of the aelite router,
//!   with the target-frequency effort curve of Fig 5 and the arity/width
//!   scaling of Fig 6.
//! * [`components`] — bi-synchronous FIFOs (custom \[18\] and standard
//!   cell \[4\]), the link-stage FSM and the complete router-with-links.
//! * [`compare`] — the Æthereal GS+BE router and the published
//!   mesochronous/asynchronous comparison points, with technology scaling.
//! * [`tech`] — 130 nm ↔ 90 nm scaling and post-layout derating.
//!
//! # Examples
//!
//! ```
//! use aelite_synth::router::{synthesize, RouterParams};
//!
//! let reference = RouterParams::paper_reference(); // arity-5, 32-bit
//! let relaxed = synthesize(&reference, 600.0);
//! assert!(relaxed.met_target);
//! assert!(relaxed.area_um2 < 15_000.0); // "< 0.015 mm2 up to 650 MHz"
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod components;
pub mod power;
pub mod router;
pub mod tech;

pub use compare::{comparison_table, GsBeComparison, PublishedRouter};
pub use components::{
    bisync_fifo_area_um2, link_stage_area_um2, ni_area_um2, router_with_links_area_um2, FifoKind,
};
pub use power::{component_power, router_power, PowerBreakdown, SleepMode};
pub use router::{
    aggregate_throughput_gbytes, router_base_area_um2, router_max_frequency_mhz, synthesize,
    synthesize_at, synthesize_max, RouterParams, SynthResult,
};
pub use tech::{LayoutDerate, TechNode};
