//! Client-population request streams: merging per-client churn traces
//! into one arrival-ordered stream and planning independent bursts over
//! it.

use aelite_online::AdmissionRequest;
use aelite_spec::churn::ClientTrace;
use core::ops::Range;

/// One admission request with its arrival metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedRequest {
    /// Arrival time, in nanoseconds from stream start.
    pub at_ns: u64,
    /// The client that issued it.
    pub client: u32,
    /// The request.
    pub request: AdmissionRequest,
}

/// Merges a client population's traces into one globally arrival-ordered
/// stream, ties broken by client index then per-client sequence — the
/// unique order a perfectly fair front door would see.
///
/// Because the population's pools are disjoint
/// ([`aelite_spec::churn::client_population`]) and each client's
/// sub-stream order is preserved, the merged stream is
/// stateful-consistent over the whole platform.
#[must_use]
pub fn merge_population(population: Vec<ClientTrace>) -> Vec<TimedRequest> {
    let mut stream: Vec<TimedRequest> = population
        .into_iter()
        .flat_map(|ct| {
            let client = ct.client;
            ct.trace.events.into_iter().map(move |e| TimedRequest {
                at_ns: e.at_ns,
                client,
                request: e.op.into(),
            })
        })
        .collect();
    // The per-client traces are already time-sorted, so ties within one
    // client cannot reorder its sequence under a stable sort by
    // (at_ns, client).
    stream.sort_by_key(|r| (r.at_ns, r.client));
    stream
}

/// Plans the batched admission rounds over an arrival-ordered stream:
/// maximal contiguous bursts of **independent** requests, as index
/// ranges into `stream`.
///
/// A burst is flushed when the next request's client already appears in
/// it — per-client pools are disjoint, so client uniqueness within a
/// burst guarantees no two requests touch the same connection — or when
/// it reaches `cap` requests. Every request lands in exactly one burst
/// and burst-local order is arrival order, so serially applying the
/// bursts preserves each client's own request sequence.
///
/// # Panics
///
/// Panics if `cap` is zero.
#[must_use]
pub fn plan_bursts(stream: &[TimedRequest], cap: usize) -> Vec<Range<usize>> {
    assert!(cap > 0, "burst capacity must be positive");
    let clients = stream.iter().map(|r| r.client).max().map_or(0, |c| c + 1);
    // Epoch-stamped membership set: stamp[c] == current burst id means
    // client c already has a request in the burst. O(1) per request, no
    // clearing between bursts.
    let mut stamp = vec![usize::MAX; clients as usize];
    let mut bursts = Vec::new();
    let mut start = 0usize;
    for (i, r) in stream.iter().enumerate() {
        let burst_id = bursts.len();
        if i - start >= cap || stamp[r.client as usize] == burst_id {
            bursts.push(start..i);
            start = i;
        }
        stamp[r.client as usize] = bursts.len();
    }
    if start < stream.len() {
        bursts.push(start..stream.len());
    }
    bursts
}

/// Shard-aware burst planning: like [`plan_bursts`], but the capacity
/// applies **per shard lane** instead of per burst. A burst is flushed
/// when the next request's client already appears in it, or when any
/// single shard's bucket (per `shard_of`, e.g.
/// [`ShardMap::classify`](aelite_online::ShardMap::classify) mapped to
/// a lane index) would exceed `cap` requests. On a sharded engine each
/// lane admits its bucket independently, so per-lane capping yields
/// bursts up to `shards × cap` wide — wider fan-out per round — while
/// keeping every lane's round bounded.
///
/// With one shard (a constant `shard_of`) this is exactly
/// [`plan_bursts`].
///
/// # Panics
///
/// Panics if `cap` is zero.
#[must_use]
pub fn plan_bursts_sharded(
    stream: &[TimedRequest],
    cap: usize,
    lanes: usize,
    mut shard_of: impl FnMut(&AdmissionRequest) -> usize,
) -> Vec<Range<usize>> {
    assert!(cap > 0, "burst capacity must be positive");
    let clients = stream.iter().map(|r| r.client).max().map_or(0, |c| c + 1);
    let mut stamp = vec![usize::MAX; clients as usize];
    // Per-lane request counts of the current burst (lane index clamped
    // into range, so an out-of-range `shard_of` answer is just a lane).
    let mut lane_count = vec![0usize; lanes.max(1)];
    let mut bursts = Vec::new();
    let mut start = 0usize;
    for (i, r) in stream.iter().enumerate() {
        let burst_id = bursts.len();
        let lane = shard_of(&r.request).min(lane_count.len() - 1);
        if lane_count[lane] >= cap || stamp[r.client as usize] == burst_id {
            bursts.push(start..i);
            start = i;
            lane_count.iter_mut().for_each(|c| *c = 0);
        }
        stamp[r.client as usize] = bursts.len();
        lane_count[lane] += 1;
    }
    if start < stream.len() {
        bursts.push(start..stream.len());
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_spec::churn::{client_population, ChurnParams};
    use aelite_spec::generate::paper_workload;
    use std::collections::HashSet;

    fn stream_for(clients: u32, events: u32, seed: u64) -> Vec<TimedRequest> {
        let spec = paper_workload(42);
        merge_population(client_population(
            &spec,
            clients,
            &ChurnParams::steady(events),
            seed,
        ))
    }

    #[test]
    fn merge_preserves_each_clients_order_and_sorts_by_time() {
        let stream = stream_for(6, 300, 7);
        assert_eq!(stream.len(), 6 * 300);
        let mut prev_t = 0;
        let mut last_seq = [0u64; 6];
        for r in &stream {
            assert!(r.at_ns >= prev_t, "stream not time-sorted");
            prev_t = r.at_ns;
            // Per-client times are non-decreasing too (order preserved).
            assert!(r.at_ns >= last_seq[r.client as usize]);
            last_seq[r.client as usize] = r.at_ns;
        }
    }

    #[test]
    fn bursts_partition_the_stream_into_independent_ranges() {
        let stream = stream_for(9, 200, 3);
        let bursts = plan_bursts(&stream, 64);
        // A partition: contiguous, covering, non-empty.
        let mut next = 0;
        for b in &bursts {
            assert_eq!(b.start, next);
            assert!(b.end > b.start);
            next = b.end;
        }
        assert_eq!(next, stream.len());
        // Independence: within a burst every client appears once, so
        // (disjoint pools) every connection appears once.
        for b in &bursts {
            let mut seen = HashSet::new();
            for r in &stream[b.clone()] {
                assert!(seen.insert(r.client), "client repeated in burst");
            }
            assert!(b.end - b.start <= 64, "burst over cap");
        }
    }

    #[test]
    fn sharded_planner_with_one_lane_matches_plain() {
        let stream = stream_for(9, 200, 3);
        assert_eq!(
            plan_bursts_sharded(&stream, 64, 1, |_| 0),
            plan_bursts(&stream, 64)
        );
    }

    #[test]
    fn sharded_planner_caps_per_lane_and_widens_bursts() {
        let stream = stream_for(50, 40, 5);
        // A deterministic 4-way pseudo-partition by connection id.
        let lane_of = |r: &AdmissionRequest| match r {
            AdmissionRequest::Open(c) | AdmissionRequest::Close(c) => c.index() % 4,
            AdmissionRequest::Switch { .. } => 0,
        };
        let plain = plan_bursts(&stream, 16);
        let sharded = plan_bursts_sharded(&stream, 16, 4, lane_of);
        // Still a partition with client-unique bursts.
        let mut next = 0;
        for b in &sharded {
            assert_eq!(b.start, next);
            assert!(b.end > b.start);
            let mut seen = HashSet::new();
            let mut lanes = [0usize; 4];
            for r in &stream[b.clone()] {
                assert!(seen.insert(r.client), "client repeated in burst");
                lanes[lane_of(&r.request)] += 1;
            }
            assert!(lanes.iter().all(|&n| n <= 16), "lane over cap: {lanes:?}");
            next = b.end;
        }
        assert_eq!(next, stream.len());
        // Per-lane capping can only merge plain bursts, never split.
        assert!(sharded.len() <= plain.len());
    }

    #[test]
    fn cap_one_degenerates_to_serial() {
        let stream = stream_for(3, 50, 1);
        let bursts = plan_bursts(&stream, 1);
        assert_eq!(bursts.len(), stream.len());
        assert!(bursts.iter().all(|b| b.end - b.start == 1));
    }

    #[test]
    fn wide_caps_make_wide_bursts() {
        // With many clients and a generous cap, mean burst size should
        // be well above 1 (that's the whole point of batching).
        let stream = stream_for(50, 40, 5);
        let bursts = plan_bursts(&stream, 256);
        let mean = stream.len() as f64 / bursts.len() as f64;
        assert!(mean > 4.0, "mean burst size {mean}");
    }
}
