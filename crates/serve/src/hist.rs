//! A hand-rolled HDR-style latency histogram: log-linear buckets with
//! bounded relative error, O(1) recording, mergeable across threads.
//!
//! Values below 16 get one exact bucket each; every power-of-two octave
//! above that is split into 16 linear sub-buckets, so any recorded value
//! lands in a bucket whose width is at most 1/16 of its magnitude
//! (~6% relative resolution) — the classic high-dynamic-range layout,
//! sized here for nanosecond latencies from tens of ns to minutes.

/// Exact buckets below this value (one bucket per integer).
const LINEAR_MAX: u64 = 16;
/// Linear sub-buckets per power-of-two octave above [`LINEAR_MAX`].
const SUBS: usize = 16;
/// Octaves: exponents 4..=63 (values 16 .. u64::MAX).
const OCTAVES: usize = 60;
/// Total bucket count.
const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUBS;

/// A log-linear latency histogram with ~6% relative bucket resolution.
///
/// Recording is branch-light O(1) (a leading-zeros count and two
/// shifts); [`merge`](Self::merge) folds per-thread histograms into one;
/// [`percentile`](Self::percentile) reports the upper bound of the
/// bucket holding the requested quantile, clamped to the true observed
/// maximum — so `percentile(100.0)` is exact and every other quantile is
/// overestimated by at most one bucket width.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// The bucket a value lands in.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (exp - 4)) - LINEAR_MAX) as usize;
        (exp - 4) * SUBS + LINEAR_MAX as usize + sub
    }
}

/// The largest value mapping to bucket `idx` (inverse of
/// [`bucket_index`], upper edge).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        idx as u64
    } else {
        let exp = (idx - LINEAR_MAX as usize) / SUBS + 4;
        let sub = ((idx - LINEAR_MAX as usize) % SUBS) as u64;
        let lower = (LINEAR_MAX + sub) << (exp - 4);
        lower + (1u64 << (exp - 4)) - 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value (a latency in nanoseconds, by convention).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.sum += u128::from(v);
    }

    /// Folds `other` into `self` (for per-thread histogram merging).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded value (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at or below which `p`% of recordings fall, reported as
    /// the holding bucket's upper edge clamped to the observed maximum
    /// (0 if empty).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.percentile(0.0), 0);
        // ceil(0.5 * 16) = 8th value of 0..=15 → 7.
        assert_eq!(h.percentile(50.0), 7);
    }

    #[test]
    fn buckets_cover_the_u64_range_in_order() {
        // Index is monotone and the upper edge really bounds its bucket.
        let mut prev = 0;
        for shift in 0..60 {
            for v in [16u64 << shift, (16u64 << shift) + (1u64 << shift) - 1] {
                let idx = bucket_index(v);
                assert!(idx >= prev, "index not monotone at {v}");
                assert!(bucket_upper(idx) >= v);
                assert!(idx == 0 || bucket_upper(idx - 1) < v);
                prev = idx;
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let v = 123_456_789;
        h.record(v);
        let p = h.percentile(99.0);
        assert!(p >= v);
        assert!((p - v) as f64 / v as f64 <= 1.0 / 16.0, "p={p} for v={v}");
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1_000u64 {
            let v = i * i % 777_777;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        for p in [50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
        assert!((a.mean() - all.mean()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..10_000u64 {
            h.record(i * 37 % 5_000);
        }
        let mut prev = 0;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev);
            prev = v;
        }
    }
}
