//! The admission pipeline: deterministic serial/batched replays of a
//! request stream (for throughput comparison and proptest pinning) and a
//! threaded producer/consumer executor with per-request latency
//! percentiles.

use crate::hist::LatencyHistogram;
use crate::stream::{plan_bursts, plan_bursts_sharded, TimedRequest};
use aelite_alloc::Allocation;
use aelite_online::{
    AdmissionRequest, ChurnEngine, ChurnStats, ShardClass, ShardedAllocation, ShardedEngine,
};
use aelite_spec::SystemSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::time::Instant;

/// Outcome of one timed replay of a request stream.
#[derive(Debug, Clone, Copy)]
pub struct ReplayReport {
    /// Requests serviced in the timed window.
    pub requests: u64,
    /// Batched rounds the window was applied in (== `requests` for the
    /// serial replay).
    pub bursts: u64,
    /// Requests answered with an `AdmissionResponse`.
    pub admitted: u64,
    /// Requests answered with an `AdmissionError`.
    pub refused: u64,
    /// Individual setup + teardown operations performed.
    pub ops: u64,
    /// Wall-clock time of the timed window, in nanoseconds.
    pub elapsed_ns: u64,
    /// Successful operations per second (`ops / elapsed`).
    pub ops_per_sec: f64,
    /// Engine counter delta over the timed window.
    pub stats: ChurnStats,
}

fn stats_delta(after: &ChurnStats, before: &ChurnStats) -> ChurnStats {
    after.delta(before)
}

/// Applies `stream[..warmup]` serially (untimed) to bring `engine` and
/// `alloc` to steady state: occupancy near target, route cache warm,
/// recycled-grant pool filled.
pub fn warm_up(
    spec: &SystemSpec,
    engine: &mut ChurnEngine,
    alloc: &mut Allocation,
    stream: &[TimedRequest],
    warmup: usize,
) {
    for r in &stream[..warmup] {
        let _ = engine.submit(spec, alloc, r.request.clone());
    }
}

/// Replays `stream` one request at a time through
/// [`ChurnEngine::submit`] — the serial per-op baseline every batched
/// number is compared against.
#[must_use]
pub fn replay_serial(
    spec: &SystemSpec,
    engine: &mut ChurnEngine,
    alloc: &mut Allocation,
    stream: &[TimedRequest],
) -> ReplayReport {
    let before = *engine.stats();
    let mut admitted = 0u64;
    let t0 = Instant::now();
    for r in stream {
        if engine.submit(spec, alloc, r.request.clone()).is_ok() {
            admitted += 1;
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let stats = stats_delta(engine.stats(), &before);
    ReplayReport {
        requests: stream.len() as u64,
        bursts: stream.len() as u64,
        admitted,
        refused: stream.len() as u64 - admitted,
        ops: stats.ops(),
        elapsed_ns,
        ops_per_sec: stats.ops() as f64 / (elapsed_ns as f64 / 1e9).max(1e-12),
        stats,
    }
}

/// Replays `stream` through [`ChurnEngine::submit_batch`]: plans
/// independent bursts (capped at `burst_cap`) and applies each as one
/// batched admission round. Burst planning and request staging are
/// inside the timed window — the reported throughput is end to end.
///
/// Deterministic: same stream, same cap, same warmed state → identical
/// bursts, verdicts and end state (this is the single-thread mode the
/// equivalence proptests pin against [`replay_serial`] in canonical
/// order).
///
/// # Panics
///
/// Panics if `burst_cap` is zero.
#[must_use]
pub fn replay_batched(
    spec: &SystemSpec,
    engine: &mut ChurnEngine,
    alloc: &mut Allocation,
    stream: &[TimedRequest],
    burst_cap: usize,
) -> ReplayReport {
    let before = *engine.stats();
    let mut admitted = 0u64;
    let mut reqs: Vec<AdmissionRequest> = Vec::with_capacity(burst_cap);
    let mut verdicts = Vec::with_capacity(burst_cap);
    let t0 = Instant::now();
    let bursts = plan_bursts(stream, burst_cap);
    for b in &bursts {
        reqs.clear();
        reqs.extend(stream[b.clone()].iter().map(|r| r.request.clone()));
        engine.submit_batch(spec, alloc, &reqs, &mut verdicts);
        admitted += verdicts.iter().filter(|v| v.is_ok()).count() as u64;
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let stats = stats_delta(engine.stats(), &before);
    ReplayReport {
        requests: stream.len() as u64,
        bursts: bursts.len() as u64,
        admitted,
        refused: stream.len() as u64 - admitted,
        ops: stats.ops(),
        elapsed_ns,
        ops_per_sec: stats.ops() as f64 / (elapsed_ns as f64 / 1e9).max(1e-12),
        stats,
    }
}

/// [`warm_up`] for the sharded engine: applies `stream[..warmup]` as
/// single-request bursts (untimed, single-threaded) to bring every
/// shard's engine and partition to steady state.
pub fn warm_up_sharded(
    spec: &SystemSpec,
    engine: &mut ShardedEngine,
    alloc: &mut ShardedAllocation,
    stream: &[TimedRequest],
    warmup: usize,
) {
    let mut verdicts = Vec::with_capacity(1);
    for r in &stream[..warmup] {
        let burst = [r.request.clone()];
        engine.submit_batch(spec, alloc, &burst, &mut verdicts, 1);
    }
}

/// Replays `stream` through [`ShardedEngine::replay_stream`]: plans
/// shard-aware bursts (per-lane capacity `burst_cap`, see
/// [`plan_bursts_sharded`]) and applies them with segment-scoped
/// threading on up to `threads` workers. Planning, classification and
/// request staging are all inside the timed window — the reported
/// throughput is end to end.
///
/// Deterministic for any `threads`: per-connection request order is
/// preserved by the shard lanes, so verdicts and end state are
/// bit-identical to submitting each planned burst through
/// [`ShardedEngine::submit_batch`], whatever the worker count (the
/// thread-count invariance `tests/shard_replay.rs` pins).
///
/// # Panics
///
/// Panics if `burst_cap` is zero, or on platform mismatch.
#[must_use]
pub fn replay_sharded(
    spec: &SystemSpec,
    engine: &mut ShardedEngine,
    alloc: &mut ShardedAllocation,
    stream: &[TimedRequest],
    burst_cap: usize,
    threads: usize,
) -> ReplayReport {
    let before = engine.stats();
    let mut verdicts = Vec::new();
    let t0 = Instant::now();
    let lanes = engine.map().shards() + 1; // last lane = cross-shard
    let map = engine.map();
    let bursts = plan_bursts_sharded(stream, burst_cap, lanes, |r| match map.classify(r) {
        ShardClass::Intra(k) => k,
        ShardClass::Cross => lanes - 1,
    });
    let reqs: Vec<AdmissionRequest> = stream.iter().map(|r| r.request.clone()).collect();
    engine.replay_stream(spec, alloc, &reqs, &bursts, threads, &mut verdicts);
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let admitted = verdicts.iter().filter(|v| v.is_ok()).count() as u64;
    let stats = stats_delta(&engine.stats(), &before);
    ReplayReport {
        requests: stream.len() as u64,
        bursts: bursts.len() as u64,
        admitted,
        refused: stream.len() as u64 - admitted,
        ops: stats.ops(),
        elapsed_ns,
        ops_per_sec: stats.ops() as f64 / (elapsed_ns as f64 / 1e9).max(1e-12),
        stats,
    }
}

/// Tuning knobs of the threaded pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Producer threads feeding the admission queue. Each repeatedly
    /// claims the next un-served client off an atomic cursor and enqueues
    /// that client's requests in order.
    pub producers: usize,
    /// Maximum requests per batched admission round.
    pub burst_cap: usize,
    /// Bounded queue depth between producers and the admission loop —
    /// the backpressure window; enqueue blocks when it is full, and that
    /// wait is part of the measured request latency.
    pub queue_depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            producers: 2,
            burst_cap: 64,
            queue_depth: 8192,
        }
    }
}

/// Outcome of a threaded pipeline run: the replay numbers plus the
/// end-to-end request latency distribution.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Throughput and admission accounting of the run.
    pub replay: ReplayReport,
    /// End-to-end latency (enqueue → burst completion) of every request,
    /// in nanoseconds.
    pub latency: LatencyHistogram,
}

/// Runs the threaded admission pipeline: `cfg.producers` threads enqueue
/// the per-client request streams (claimed whole off an atomic cursor,
/// preserving each client's order) into a bounded channel, and this
/// thread's admission loop drains it into independent bursts — flushed
/// on client repeat or at `cfg.burst_cap` — applying each as one batched
/// admission round.
///
/// Per-request latency is measured from enqueue (after any backpressure
/// wait) to completion of the request's burst, and recorded in the
/// returned histogram. Burst composition depends on thread interleaving,
/// so throughput and latency are measurements, not reproducible
/// artifacts — use [`replay_batched`] for the deterministic mode.
///
/// # Panics
///
/// Panics if `cfg.producers` is zero, `cfg.burst_cap` is zero, or a
/// producer thread panics (poisoned channel).
#[must_use]
pub fn serve_pipeline(
    spec: &SystemSpec,
    engine: &mut ChurnEngine,
    alloc: &mut Allocation,
    streams: &[Vec<TimedRequest>],
    cfg: &PipelineConfig,
) -> PipelineReport {
    assert!(cfg.producers > 0, "need at least one producer");
    assert!(cfg.burst_cap > 0, "burst capacity must be positive");
    let clients = streams
        .iter()
        .flat_map(|s| s.iter().map(|r| r.client))
        .max()
        .map_or(0, |c| c as usize + 1);

    let before = *engine.stats();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = sync_channel::<(Instant, u32, AdmissionRequest)>(cfg.queue_depth);

    let mut latency = LatencyHistogram::new();
    let mut admitted = 0u64;
    let mut requests = 0u64;
    let mut bursts = 0u64;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..cfg.producers {
            let tx = tx.clone();
            let cursor = &cursor;
            s.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(stream) = streams.get(k) else { break };
                for r in stream {
                    tx.send((Instant::now(), r.client, r.request.clone()))
                        .expect("admission loop outlives producers");
                }
            });
        }
        drop(tx);

        // The admission loop. Epoch stamps track burst membership in
        // O(1) without clearing between bursts.
        let mut stamp = vec![u64::MAX; clients];
        let mut burst_id = 0u64;
        let mut enq: Vec<Instant> = Vec::with_capacity(cfg.burst_cap);
        let mut reqs: Vec<AdmissionRequest> = Vec::with_capacity(cfg.burst_cap);
        let mut verdicts = Vec::with_capacity(cfg.burst_cap);
        let mut flush = |engine: &mut ChurnEngine,
                         alloc: &mut Allocation,
                         reqs: &mut Vec<AdmissionRequest>,
                         enq: &mut Vec<Instant>| {
            if reqs.is_empty() {
                return;
            }
            engine.submit_batch(spec, alloc, reqs, &mut verdicts);
            admitted += verdicts.iter().filter(|v| v.is_ok()).count() as u64;
            let done = Instant::now();
            for &t in enq.iter() {
                latency.record(done.duration_since(t).as_nanos() as u64);
            }
            bursts += 1;
            reqs.clear();
            enq.clear();
        };
        while let Ok((t, client, request)) = rx.recv() {
            if reqs.len() >= cfg.burst_cap || stamp[client as usize] == burst_id {
                flush(engine, alloc, &mut reqs, &mut enq);
                burst_id += 1;
            }
            stamp[client as usize] = burst_id;
            enq.push(t);
            reqs.push(request);
            requests += 1;
        }
        flush(engine, alloc, &mut reqs, &mut enq);
    });
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    let stats = stats_delta(engine.stats(), &before);
    PipelineReport {
        replay: ReplayReport {
            requests,
            bursts,
            admitted,
            refused: requests - admitted,
            ops: stats.ops(),
            elapsed_ns,
            ops_per_sec: stats.ops() as f64 / (elapsed_ns as f64 / 1e9).max(1e-12),
            stats,
        },
        latency,
    }
}

/// [`serve_pipeline`] driving a [`ShardedEngine`]: the admission loop
/// buckets incoming requests by shard lane as it drains the queue,
/// flushes a burst when a client repeats **or any single lane reaches
/// `cfg.burst_cap`** (so bursts fan out up to `shards × burst_cap`
/// wide), and applies each burst through
/// [`ShardedEngine::submit_batch`] on up to `threads` admission
/// workers.
///
/// Latency semantics are identical to [`serve_pipeline`]: enqueue
/// (after backpressure) to burst completion. Burst composition depends
/// on producer interleaving, so use [`replay_sharded`] for the
/// deterministic mode.
///
/// # Panics
///
/// Panics as [`serve_pipeline`].
#[must_use]
pub fn serve_pipeline_sharded(
    spec: &SystemSpec,
    engine: &mut ShardedEngine,
    alloc: &mut ShardedAllocation,
    streams: &[Vec<TimedRequest>],
    cfg: &PipelineConfig,
    threads: usize,
) -> PipelineReport {
    assert!(cfg.producers > 0, "need at least one producer");
    assert!(cfg.burst_cap > 0, "burst capacity must be positive");
    let clients = streams
        .iter()
        .flat_map(|s| s.iter().map(|r| r.client))
        .max()
        .map_or(0, |c| c as usize + 1);

    let before = engine.stats();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = sync_channel::<(Instant, u32, AdmissionRequest)>(cfg.queue_depth);

    let mut latency = LatencyHistogram::new();
    let mut admitted = 0u64;
    let mut requests = 0u64;
    let mut bursts = 0u64;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..cfg.producers {
            let tx = tx.clone();
            let cursor = &cursor;
            s.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(stream) = streams.get(k) else { break };
                for r in stream {
                    tx.send((Instant::now(), r.client, r.request.clone()))
                        .expect("admission loop outlives producers");
                }
            });
        }
        drop(tx);

        let lanes = engine.map().shards() + 1; // last lane = cross-shard
        let mut stamp = vec![u64::MAX; clients];
        let mut lane_count = vec![0usize; lanes];
        let mut burst_id = 0u64;
        let mut enq: Vec<Instant> = Vec::new();
        let mut reqs: Vec<AdmissionRequest> = Vec::new();
        let mut verdicts = Vec::new();
        let mut flush = |engine: &mut ShardedEngine,
                         alloc: &mut ShardedAllocation,
                         reqs: &mut Vec<AdmissionRequest>,
                         enq: &mut Vec<Instant>,
                         lane_count: &mut Vec<usize>| {
            if reqs.is_empty() {
                return;
            }
            engine.submit_batch(spec, alloc, reqs, &mut verdicts, threads);
            admitted += verdicts.iter().filter(|v| v.is_ok()).count() as u64;
            let done = Instant::now();
            for &t in enq.iter() {
                latency.record(done.duration_since(t).as_nanos() as u64);
            }
            bursts += 1;
            reqs.clear();
            enq.clear();
            lane_count.iter_mut().for_each(|c| *c = 0);
        };
        while let Ok((t, client, request)) = rx.recv() {
            let lane = match engine.map().classify(&request) {
                ShardClass::Intra(k) => k,
                ShardClass::Cross => lanes - 1,
            };
            if lane_count[lane] >= cfg.burst_cap || stamp[client as usize] == burst_id {
                flush(engine, alloc, &mut reqs, &mut enq, &mut lane_count);
                burst_id += 1;
            }
            stamp[client as usize] = burst_id;
            lane_count[lane] += 1;
            enq.push(t);
            reqs.push(request);
            requests += 1;
        }
        flush(engine, alloc, &mut reqs, &mut enq, &mut lane_count);
    });
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    let stats = stats_delta(&engine.stats(), &before);
    PipelineReport {
        replay: ReplayReport {
            requests,
            bursts,
            admitted,
            refused: requests - admitted,
            ops: stats.ops(),
            elapsed_ns,
            ops_per_sec: stats.ops() as f64 / (elapsed_ns as f64 / 1e9).max(1e-12),
            stats,
        },
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::merge_population;
    use aelite_spec::churn::{client_population, ChurnParams};
    use aelite_spec::generate::paper_workload;

    fn setup(
        clients: u32,
        events: u32,
        seed: u64,
    ) -> (SystemSpec, ChurnEngine, Allocation, Vec<TimedRequest>) {
        let spec = paper_workload(42);
        let stream = merge_population(client_population(
            &spec,
            clients,
            &ChurnParams::steady(events),
            seed,
        ));
        let engine = ChurnEngine::new(&spec);
        let alloc = Allocation::empty_for(&spec);
        (spec, engine, alloc, stream)
    }

    #[test]
    fn batched_replay_matches_burstwise_canonical_serial() {
        use crate::stream::plan_bursts;
        use aelite_online::canonical_order;

        let (spec, mut e1, mut a1, stream) = setup(8, 250, 3);
        let warmup = stream.len() / 4;
        warm_up(&spec, &mut e1, &mut a1, &stream, warmup);
        // Reference: each planned burst submitted serially in canonical
        // order — the order the batch applies internally.
        let timed = &stream[warmup..];
        let before1 = *e1.stats();
        let mut admitted = 0u64;
        let mut order = Vec::new();
        for b in plan_bursts(timed, 64) {
            let reqs: Vec<_> = timed[b].iter().map(|r| r.request.clone()).collect();
            canonical_order(&spec, &reqs, &mut order);
            for &i in &order {
                if e1.submit(&spec, &mut a1, reqs[i].clone()).is_ok() {
                    admitted += 1;
                }
            }
        }

        let (_, mut e2, mut a2, _) = setup(8, 250, 3);
        warm_up(&spec, &mut e2, &mut a2, &stream, warmup);
        let batched = replay_batched(&spec, &mut e2, &mut a2, timed, 64);

        // Identical outcomes, fewer rounds than requests.
        assert_eq!(batched.requests, timed.len() as u64);
        assert_eq!(batched.admitted, admitted);
        assert_eq!(batched.stats, stats_delta(e1.stats(), &before1));
        assert!(batched.bursts < batched.requests);
        for c in spec.connections() {
            assert_eq!(a1.grant(c.id), a2.grant(c.id), "{} diverged", c.id);
        }
    }

    #[test]
    fn pipeline_services_every_request_and_measures_latency() {
        let (spec, mut engine, mut alloc, stream) = setup(10, 100, 9);
        let warmup = stream.len() / 4;
        warm_up(&spec, &mut engine, &mut alloc, &stream, warmup);
        // Split the remainder per client, preserving order.
        let mut streams: Vec<Vec<TimedRequest>> = (0..10).map(|_| Vec::new()).collect();
        for r in &stream[warmup..] {
            streams[r.client as usize].push(r.clone());
        }
        let report = serve_pipeline(
            &spec,
            &mut engine,
            &mut alloc,
            &streams,
            &PipelineConfig::default(),
        );
        assert_eq!(report.replay.requests, (stream.len() - warmup) as u64);
        assert_eq!(report.latency.count(), report.replay.requests);
        assert!(report.replay.bursts > 0);
        assert!(report.replay.ops > 0);
        let p50 = report.latency.percentile(50.0);
        let p99 = report.latency.percentile(99.0);
        let p999 = report.latency.percentile(99.9);
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999);
        assert!(p999 <= report.latency.max());
    }
}
