//! Fast flit-level TDM simulator.
//!
//! Because aelite is contention-free, the network-side timing of every
//! flit is *deterministic*: a flit injected in slot *t* is delivered
//! exactly `n_links * slots_per_hop` slots later, with no queueing
//! anywhere inside the network. This simulator exploits that to run the
//! paper's 200-connection experiment (Section VII) quickly: it models NI
//! state (message arrival, slot tables, end-to-end credits) exactly and
//! replaces the network pipeline by its closed-form delay.
//!
//! The abstraction is validated against the cycle-accurate models in the
//! cross-crate integration tests: for identical scenarios, delivery
//! cycles agree exactly.

use aelite_alloc::allocate::Allocation;
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::ConnId;
use aelite_spec::traffic::TrafficPattern;
use std::collections::VecDeque;

/// Configuration of a flit-level run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitSimConfig {
    /// Simulated duration in clock cycles.
    pub duration_cycles: u64,
    /// Record every delivery cycle per connection (needed for the
    /// composability equality check; costs memory).
    pub record_timestamps: bool,
    /// Cycles between a flit's delivery and its credits reaching the
    /// source NI (models Æthereal's piggybacked credit return).
    pub credit_return_cycles: u64,
}

impl Default for FlitSimConfig {
    fn default() -> Self {
        FlitSimConfig {
            duration_cycles: 300_000,
            record_timestamps: false,
            credit_return_cycles: 24,
        }
    }
}

/// Per-connection results of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnStats {
    /// The connection.
    pub conn: ConnId,
    /// Flits delivered.
    pub flits: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Minimum observed flit latency, in cycles.
    pub min_latency: u64,
    /// Maximum observed flit latency, in cycles.
    pub max_latency: u64,
    /// Sum of flit latencies (for the mean), in cycles.
    pub latency_sum: u64,
    /// Delivery cycle of every flit, when recording was enabled.
    pub timestamps: Vec<u64>,
}

impl ConnStats {
    fn new(conn: ConnId) -> Self {
        ConnStats {
            conn,
            flits: 0,
            bytes: 0,
            min_latency: u64::MAX,
            max_latency: 0,
            latency_sum: 0,
            timestamps: Vec::new(),
        }
    }

    /// Mean flit latency in cycles, or `None` before any delivery.
    #[must_use]
    pub fn mean_latency(&self) -> Option<f64> {
        (self.flits > 0).then(|| self.latency_sum as f64 / self.flits as f64)
    }

    /// Achieved throughput in bytes per second at `frequency_mhz`, over
    /// `duration_cycles`.
    #[must_use]
    pub fn throughput_bytes_per_sec(&self, frequency_mhz: u64, duration_cycles: u64) -> f64 {
        if duration_cycles == 0 {
            return 0.0;
        }
        self.bytes as f64 * frequency_mhz as f64 * 1e6 / duration_cycles as f64
    }
}

/// The results of one flit-level run.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Per-connection statistics, in the order of the simulated spec's
    /// connection list.
    pub per_conn: Vec<ConnStats>,
    /// Simulated duration in cycles.
    pub duration_cycles: u64,
}

impl TrafficReport {
    /// The stats of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` was not simulated.
    #[must_use]
    pub fn conn(&self, conn: ConnId) -> &ConnStats {
        self.per_conn
            .iter()
            .find(|s| s.conn == conn)
            .unwrap_or_else(|| panic!("{conn} not simulated"))
    }
}

#[derive(Debug)]
struct ConnState {
    /// Payload bytes one flit carries.
    payload_bytes: u64,
    /// Delivery delay in slots (network pipeline).
    delay_slots: u64,
    pattern: Pattern,
    /// Next message arrival in 48.16 fixed-point cycles (avoids drift).
    next_arrival_fp: u64,
    interval_fp: u64,
    /// Queue of (arrival_cycle, remaining_bytes).
    queue: VecDeque<(u64, u64)>,
    /// Credits in payload bytes.
    credits: i64,
    /// In-flight credit returns (cycle, bytes) in cycle order.
    credit_returns: VecDeque<(u64, u64)>,
    /// Cycle at which the previously injected flit's slot ended: a flit
    /// is only *ready* once its predecessor left the NI, so per-flit
    /// latency excludes serialisation behind earlier flits (matching the
    /// paper's per-flit latency and the analytical bound).
    ready_floor: u64,
    stats: ConnStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Cbr { message_bytes: u64 },
    Saturating,
    Bursty { burst_bytes: u64 },
}

/// The flit-level simulator.
///
/// # Examples
///
/// ```
/// use aelite_alloc::allocate;
/// use aelite_noc::flitsim::{FlitSim, FlitSimConfig};
/// use aelite_spec::generate::paper_workload;
///
/// let spec = paper_workload(42);
/// let alloc = allocate(&spec)?;
/// let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
///     duration_cycles: 30_000,
///     ..FlitSimConfig::default()
/// });
/// assert_eq!(report.per_conn.len(), 200);
/// # Ok::<(), aelite_alloc::AllocError>(())
/// ```
#[derive(Debug)]
pub struct FlitSim<'a> {
    spec: &'a SystemSpec,
    alloc: &'a Allocation,
}

impl<'a> FlitSim<'a> {
    /// Prepares a simulator for `spec` under `alloc`.
    ///
    /// `alloc` may cover a superset of `spec`'s connections (the
    /// composability experiments simulate one application against the
    /// full-system allocation).
    ///
    /// # Panics
    ///
    /// Panics if any of `spec`'s connections lacks a grant in `alloc`.
    #[must_use]
    pub fn new(spec: &'a SystemSpec, alloc: &'a Allocation) -> Self {
        for c in spec.connections() {
            assert!(
                alloc.grant(c.id).is_some(),
                "{} has no grant in the supplied allocation",
                c.id
            );
        }
        FlitSim { spec, alloc }
    }

    /// Runs the simulation and collects per-connection statistics.
    #[must_use]
    pub fn run(&self, cfg: FlitSimConfig) -> TrafficReport {
        let ncfg = self.spec.config();
        let slot_cycles = u64::from(ncfg.slot_cycles());
        let table = u64::from(ncfg.slot_table_size);
        let payload_bytes =
            u64::from(ncfg.payload_words_per_flit()) * u64::from(ncfg.data_width_bytes());
        let shift = u64::from(ncfg.slots_per_hop());
        let cycles_per_sec = ncfg.frequency_mhz * 1_000_000;

        // Per-slot injection lists and per-connection state.
        let mut slot_conns: Vec<Vec<usize>> = vec![Vec::new(); table as usize];
        let mut states: Vec<ConnState> = Vec::with_capacity(self.spec.connections().len());
        for (i, c) in self.spec.connections().iter().enumerate() {
            let grant = self.alloc.grant(c.id).expect("checked in new");
            for &s in &grant.inject_slots {
                slot_conns[s as usize].push(i);
            }
            let (pattern, interval_cycles) = match c.pattern {
                TrafficPattern::ConstantRate => {
                    let msg = u64::from(c.message_bytes);
                    // interval = message_bytes / (bw / f) cycles.
                    let interval =
                        msg as f64 * cycles_per_sec as f64 / c.bandwidth.bytes_per_sec() as f64;
                    (Pattern::Cbr { message_bytes: msg }, interval)
                }
                TrafficPattern::Saturating => (Pattern::Saturating, 0.0),
                TrafficPattern::Bursty {
                    burst_bytes,
                    period_ns,
                } => {
                    let cycles = f64::from(period_ns) * ncfg.frequency_mhz as f64 / 1_000.0;
                    (
                        Pattern::Bursty {
                            burst_bytes: u64::from(burst_bytes),
                        },
                        cycles,
                    )
                }
            };
            states.push(ConnState {
                payload_bytes,
                delay_slots: grant.links.len() as u64 * shift,
                pattern,
                next_arrival_fp: 0,
                interval_fp: (interval_cycles * 65_536.0) as u64,
                queue: VecDeque::new(),
                credits: i64::from(ncfg.ni_buffer_words) * i64::from(ncfg.data_width_bytes()),
                credit_returns: VecDeque::new(),
                ready_floor: 0,
                stats: ConnStats::new(c.id),
            });
        }

        let total_slots = cfg.duration_cycles / slot_cycles;
        for t in 0..total_slots {
            let cycle = t * slot_cycles;
            for &ci in &slot_conns[(t % table) as usize] {
                let st = &mut states[ci];

                // Credits that have come home by now.
                while st
                    .credit_returns
                    .front()
                    .is_some_and(|&(ret, _)| ret <= cycle)
                {
                    let (_, bytes) = st.credit_returns.pop_front().expect("checked front");
                    st.credits += bytes as i64;
                }

                // Offered load up to this cycle.
                match st.pattern {
                    Pattern::Cbr { message_bytes } => {
                        while st.next_arrival_fp <= cycle << 16 {
                            st.queue
                                .push_back((st.next_arrival_fp >> 16, message_bytes));
                            st.next_arrival_fp += st.interval_fp;
                        }
                    }
                    Pattern::Saturating => {
                        if st.queue.is_empty() {
                            st.queue.push_back((cycle, u64::MAX / 2));
                        }
                    }
                    Pattern::Bursty { burst_bytes } => {
                        while st.next_arrival_fp <= cycle << 16 {
                            st.queue.push_back((st.next_arrival_fp >> 16, burst_bytes));
                            st.next_arrival_fp += st.interval_fp;
                        }
                    }
                }

                // Inject one flit if data and credits allow.
                let Some(&(arrival, remaining)) = st.queue.front() else {
                    continue;
                };
                if arrival > cycle {
                    continue;
                }
                let send = remaining.min(st.payload_bytes);
                if (send as i64) > st.credits {
                    continue; // back-pressure: the slot idles
                }
                st.credits -= send as i64;
                if remaining > send {
                    st.queue.front_mut().expect("non-empty").1 -= send;
                } else {
                    st.queue.pop_front();
                }

                let delivered = (t + st.delay_slots) * slot_cycles;
                let ready = arrival.max(st.ready_floor);
                st.ready_floor = (t + 1) * slot_cycles;
                if delivered > cfg.duration_cycles {
                    continue; // flit lands after the measurement window
                }
                let latency = delivered - ready;
                st.stats.flits += 1;
                st.stats.bytes += send;
                st.stats.min_latency = st.stats.min_latency.min(latency);
                st.stats.max_latency = st.stats.max_latency.max(latency);
                st.stats.latency_sum += latency;
                if cfg.record_timestamps {
                    st.stats.timestamps.push(delivered);
                }
                st.credit_returns
                    .push_back((delivered + cfg.credit_return_cycles, send));
            }
        }

        TrafficReport {
            per_conn: states.into_iter().map(|s| s.stats).collect(),
            duration_cycles: cfg.duration_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::allocate;
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::config::NocConfig;
    use aelite_spec::generate::paper_workload;
    use aelite_spec::ids::NiId;
    use aelite_spec::traffic::Bandwidth;

    fn small_spec(pattern: TrafficPattern, bw_mb: u64) -> SystemSpec {
        let topo = aelite_spec::topology::Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        b.add_connection_with(
            app,
            s,
            d,
            Bandwidth::from_mbytes_per_sec(bw_mb),
            1_000,
            pattern,
            16,
        );
        b.build()
    }

    #[test]
    fn saturating_source_achieves_allocated_bandwidth() {
        let spec = small_spec(TrafficPattern::Saturating, 100);
        let alloc = allocate(&spec).unwrap();
        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 192_000, // 1000 table revolutions
            ..FlitSimConfig::default()
        });
        let stats = &report.per_conn[0];
        let conn = spec.connections()[0].id;
        let achieved = stats.throughput_bytes_per_sec(500, report.duration_cycles);
        let allocated = alloc.allocated_bandwidth(&spec, conn).bytes_per_sec() as f64;
        assert!(
            achieved >= allocated * 0.98,
            "achieved {achieved} vs allocated {allocated}"
        );
    }

    #[test]
    fn cbr_source_achieves_contract() {
        let spec = small_spec(TrafficPattern::ConstantRate, 100);
        let alloc = allocate(&spec).unwrap();
        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 192_000,
            ..FlitSimConfig::default()
        });
        let achieved = report.per_conn[0].throughput_bytes_per_sec(500, report.duration_cycles);
        assert!(
            achieved >= 98e6,
            "CBR at 100 MB/s delivered only {achieved} B/s"
        );
    }

    #[test]
    fn latency_stays_within_analytical_bound() {
        let spec = small_spec(TrafficPattern::ConstantRate, 50);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 192_000,
            ..FlitSimConfig::default()
        });
        let bound = alloc.worst_case_latency_cycles(&spec, conn);
        let measured = report.per_conn[0].max_latency;
        assert!(
            measured <= bound,
            "measured max {measured} exceeds bound {bound}"
        );
        assert!(report.per_conn[0].min_latency > 0);
    }

    #[test]
    fn paper_workload_meets_every_contract_at_500mhz() {
        // The headline GS claim of Section VII: every one of the 200
        // connections meets throughput and latency at 500 MHz.
        let spec = paper_workload(42);
        let alloc = allocate(&spec).unwrap();
        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 200_000,
            ..FlitSimConfig::default()
        });
        let cycle_ns = spec.config().cycle_ns();
        for c in spec.connections() {
            let stats = report.conn(c.id);
            assert!(stats.flits > 0, "{} never delivered", c.id);
            let max_ns = stats.max_latency as f64 * cycle_ns;
            assert!(
                max_ns <= c.max_latency_ns as f64,
                "{}: measured {max_ns:.1} ns > required {} ns",
                c.id,
                c.max_latency_ns
            );
            let achieved = stats.throughput_bytes_per_sec(spec.config().frequency_mhz, 200_000);
            assert!(
                achieved >= c.bandwidth.bytes_per_sec() as f64 * 0.95,
                "{}: achieved {achieved} of {}",
                c.id,
                c.bandwidth.bytes_per_sec()
            );
        }
    }

    #[test]
    fn composability_timestamps_identical_in_isolation() {
        // Per-flit delivery times of app 0 are bit-identical whether the
        // other three applications run or not — the paper's composability
        // claim, checked at scale.
        let spec = paper_workload(7);
        let alloc = allocate(&spec).unwrap();
        let cfg = FlitSimConfig {
            duration_cycles: 60_000,
            record_timestamps: true,
            ..FlitSimConfig::default()
        };
        let full = FlitSim::new(&spec, &alloc).run(cfg);
        let only0 = spec.restricted_to(&[aelite_spec::ids::AppId::new(0)]);
        let isolated = FlitSim::new(&only0, &alloc).run(cfg);
        for c in only0.connections() {
            assert_eq!(
                full.conn(c.id).timestamps,
                isolated.conn(c.id).timestamps,
                "{} timing changed when other applications were removed",
                c.id
            );
        }
    }

    #[test]
    fn oversubscription_is_clipped_to_the_reservation() {
        // An IP offering more than its contract only slows itself down
        // (paper Section IV-A): delivery is capped by the reserved slots.
        let topo = aelite_spec::topology::Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        b.add_connection_with(
            app,
            s,
            d,
            Bandwidth::from_mbytes_per_sec(20),
            2_000,
            TrafficPattern::Saturating,
            16,
        );
        let spec = b.build();
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 192_000,
            ..FlitSimConfig::default()
        });
        let achieved = report.per_conn[0].throughput_bytes_per_sec(500, report.duration_cycles);
        let allocated = alloc.allocated_bandwidth(&spec, conn).bytes_per_sec() as f64;
        assert!(
            achieved <= allocated * 1.02,
            "offender exceeded its reservation: {achieved} > {allocated}"
        );
    }

    #[test]
    fn bursty_pattern_does_not_reduce_worst_latency() {
        let cbr_spec = small_spec(TrafficPattern::ConstantRate, 50);
        let bursty_spec = small_spec(
            TrafficPattern::Bursty {
                burst_bytes: 64,
                period_ns: 1_280, // same 50 MB/s average
            },
            50,
        );
        let run = |spec: &SystemSpec| {
            let alloc = allocate(spec).unwrap();
            let r = FlitSim::new(spec, &alloc).run(FlitSimConfig {
                duration_cycles: 192_000,
                ..FlitSimConfig::default()
            });
            r.per_conn[0].max_latency
        };
        assert!(run(&bursty_spec) >= run(&cbr_spec));
    }

    #[test]
    #[should_panic(expected = "has no grant")]
    fn missing_grant_is_rejected() {
        let spec = small_spec(TrafficPattern::ConstantRate, 10);
        let empty_spec = {
            let topo = aelite_spec::topology::Topology::mesh(2, 1, 1);
            SystemSpecBuilder::new(topo, NocConfig::paper_default()).build()
        };
        let empty_alloc = allocate(&empty_spec).unwrap();
        let _ = FlitSim::new(&spec, &empty_alloc);
    }

    #[test]
    fn report_conn_lookup() {
        let spec = small_spec(TrafficPattern::ConstantRate, 10);
        let alloc = allocate(&spec).unwrap();
        let report = FlitSim::new(&spec, &alloc).run(FlitSimConfig {
            duration_cycles: 19_200,
            ..FlitSimConfig::default()
        });
        let id = spec.connections()[0].id;
        assert_eq!(report.conn(id).conn, id);
        assert!(report.conn(id).mean_latency().is_some());
    }
}
