//! Words on aelite links: data/header phits with explicit sideband.
//!
//! One [`LinkWord`] travels over each link per cycle. Following the paper's
//! router (Section IV), the `valid` and end-of-packet (`eop`) bits are
//! **explicit control signals** that need no decoding — this is what takes
//! the header-parsing unit off the critical path compared to Æthereal.
//!
//! A flit is 3 consecutive words. A packet starts with a header word
//! carrying the source route (3 bits per hop, consumed front-first by each
//! router's HPU) and the connection id; subsequent words are payload. The
//! [`codec`](crate::codec) module proves this logical structure packs into
//! the physical data word.

use aelite_spec::ids::{ConnId, Port};
use core::fmt;

/// The source route of a packet: up to 21 pending 3-bit output-port hops.
///
/// Each router pops the front (least-significant) 3 bits to select its
/// output port and forwards the shifted remainder — exactly the HPU
/// behaviour of the paper, which supports arities up to 8.
///
/// # Examples
///
/// ```
/// use aelite_noc::phit::RouteBits;
/// use aelite_spec::ids::Port;
///
/// let mut route = RouteBits::from_ports(&[Port(3), Port(0), Port(5)]);
/// assert_eq!(route.pop_port(), Port(3));
/// assert_eq!(route.pop_port(), Port(0));
/// assert_eq!(route.pop_port(), Port(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RouteBits {
    bits: u64,
    len: u8,
}

/// Maximum hops encodable in a route (bounded by the 63 usable bits).
pub const MAX_ROUTE_HOPS: usize = 21;

impl RouteBits {
    /// Encodes a port sequence, first hop in the low bits.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ROUTE_HOPS`] ports are given or any port
    /// exceeds 7 (3-bit encoding, arity ≤ 8).
    #[must_use]
    pub fn from_ports(ports: &[Port]) -> Self {
        assert!(
            ports.len() <= MAX_ROUTE_HOPS,
            "route of {} hops exceeds the {MAX_ROUTE_HOPS}-hop encoding",
            ports.len()
        );
        let mut bits = 0u64;
        for (i, p) in ports.iter().enumerate() {
            assert!(p.0 < 8, "{p} does not fit the 3-bit port encoding");
            bits |= u64::from(p.0) << (3 * i);
        }
        RouteBits {
            bits,
            len: ports.len() as u8,
        }
    }

    /// Pops the next output port (front of the route) and shifts.
    ///
    /// # Panics
    ///
    /// Panics if the route is exhausted — a packet arriving at a router
    /// with no route left is a misrouting bug worth failing loudly on.
    pub fn pop_port(&mut self) -> Port {
        assert!(self.len > 0, "route exhausted");
        let p = Port((self.bits & 0b111) as u8);
        self.bits >>= 3;
        self.len -= 1;
        p
    }

    /// Remaining hops.
    #[must_use]
    pub fn remaining(&self) -> usize {
        usize::from(self.len)
    }

    /// The raw shifted bit pattern (for the codec).
    #[must_use]
    pub fn raw_bits(&self) -> u64 {
        self.bits
    }
}

impl fmt::Display for RouteBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut copy = *self;
        write!(f, "[")?;
        let mut first = true;
        while copy.remaining() > 0 {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", copy.pop_port())?;
            first = false;
        }
        write!(f, "]")
    }
}

/// The header word starting every packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Header {
    /// Remaining source route (consumed hop by hop).
    pub route: RouteBits,
    /// The connection this packet belongs to (selects the destination
    /// NI queue).
    pub conn: ConnId,
}

/// What a link word carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Payload {
    /// No packet word this cycle (valid is low).
    #[default]
    Idle,
    /// A packet header.
    Head(Header),
    /// A payload word (the carried bytes are abstracted as a tag).
    Data(u64),
}

/// One word on a physical link, with its sideband signals.
///
/// `LinkWord::default()` is the idle word every wire holds at reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinkWord {
    /// Explicit valid control signal.
    pub valid: bool,
    /// Explicit end-of-packet control signal (meaningful when valid).
    pub eop: bool,
    /// The data word.
    pub payload: Payload,
}

impl LinkWord {
    /// An idle (invalid) word.
    #[must_use]
    pub fn idle() -> Self {
        LinkWord::default()
    }

    /// A header word opening a packet on `conn` with the given route.
    #[must_use]
    pub fn head(route: RouteBits, conn: ConnId) -> Self {
        LinkWord {
            valid: true,
            eop: false,
            payload: Payload::Head(Header { route, conn }),
        }
    }

    /// A payload word; `eop` marks the packet's last word.
    #[must_use]
    pub fn data(tag: u64, eop: bool) -> Self {
        LinkWord {
            valid: true,
            eop,
            payload: Payload::Data(tag),
        }
    }

    /// Whether this word carries a packet header.
    #[must_use]
    pub fn is_head(&self) -> bool {
        self.valid && matches!(self.payload, Payload::Head(_))
    }
}

impl fmt::Display for LinkWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.valid {
            return write!(f, "idle");
        }
        match self.payload {
            Payload::Idle => write!(f, "valid-but-idle"),
            Payload::Head(h) => write!(f, "head({} route {})", h.conn, h.route),
            Payload::Data(d) => write!(f, "data({d}{})", if self.eop { ", eop" } else { "" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_roundtrips_ports() {
        let ports = [Port(1), Port(7), Port(0), Port(4)];
        let mut r = RouteBits::from_ports(&ports);
        assert_eq!(r.remaining(), 4);
        for p in ports {
            assert_eq!(r.pop_port(), p);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "route exhausted")]
    fn popping_empty_route_panics() {
        let mut r = RouteBits::from_ports(&[]);
        let _ = r.pop_port();
    }

    #[test]
    #[should_panic(expected = "3-bit port encoding")]
    fn oversized_port_rejected() {
        let _ = RouteBits::from_ports(&[Port(8)]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overlong_route_rejected() {
        let ports = vec![Port(0); MAX_ROUTE_HOPS + 1];
        let _ = RouteBits::from_ports(&ports);
    }

    #[test]
    fn max_length_route_is_accepted() {
        let ports = vec![Port(5); MAX_ROUTE_HOPS];
        let mut r = RouteBits::from_ports(&ports);
        for _ in 0..MAX_ROUTE_HOPS {
            assert_eq!(r.pop_port(), Port(5));
        }
    }

    #[test]
    fn default_word_is_idle() {
        let w = LinkWord::default();
        assert!(!w.valid);
        assert!(!w.is_head());
        assert_eq!(w, LinkWord::idle());
    }

    #[test]
    fn constructors_set_sideband() {
        let h = LinkWord::head(RouteBits::from_ports(&[Port(2)]), ConnId::new(5));
        assert!(h.valid && !h.eop && h.is_head());
        let d = LinkWord::data(42, true);
        assert!(d.valid && d.eop && !d.is_head());
    }

    #[test]
    fn display_formats() {
        assert_eq!(LinkWord::idle().to_string(), "idle");
        let h = LinkWord::head(RouteBits::from_ports(&[Port(2), Port(1)]), ConnId::new(3));
        assert_eq!(h.to_string(), "head(c3 route [p2 p1])");
        assert_eq!(LinkWord::data(7, true).to_string(), "data(7, eop)");
    }
}
