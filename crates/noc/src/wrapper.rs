//! The asynchronous wrapper (paper Section VI, Fig 4).
//!
//! For plesiochronous (or heterochronous) elements, mesochronous link
//! stages are not enough: faster elements must be *stalled* so that input
//! and output stay flit-synchronous relative to their neighbours. The
//! wrapper turns routers and NIs into stallable processes that behave like
//! dataflow actors:
//!
//! * each router port gets a **Port Interface** — Input PIs count available
//!   flits, Output PIs count unreserved space (decremented at *fire* time,
//!   the paper's early reservation, so the router's forwarding delay can
//!   never overflow an output FIFO);
//! * the **Port Interface Controller** fires once *all* PIs can fire: every
//!   input holds at least one flit and every output has space for one;
//! * when an element has nothing useful to send it emits an **empty
//!   token**, whose only purpose is synchronising the neighbour;
//! * at reset, channels are pre-filled with initial empty tokens —
//!   without them the system deadlocks (paper Section VI).
//!
//! Following the paper's own framing ("the flit thus corresponds to a
//! token in the dataflow model, and every PI is a firing rule"), this
//! model works at whole-flit (token) granularity: one firing moves one
//! token per port. The word-level data path inside a firing is untimed —
//! the firing times carry all the semantics the paper argues about (rate,
//! composability, deadlock freedom), and `DESIGN.md` records this
//! abstraction.
//!
//! A wrapped element attempts to fire once per flit cycle (every
//! `flit_words` local clock cycles); stalling means skipping the attempt
//! until all firing rules hold. Consequently the NoC runs at the rate of
//! its slowest element (paper Section VI-A) — measured by experiment W1.

use crate::phit::{LinkWord, Payload};
use aelite_sim::bisync::{BisyncFifo, SharedBisync};
use aelite_sim::module::{EdgeContext, Module};
use aelite_sim::time::{SimDuration, SimTime};
use aelite_spec::ids::ConnId;
use std::collections::VecDeque;

/// One dataflow token: a whole flit, possibly empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitToken {
    /// The three words of the flit; all-idle for an empty token.
    pub words: [LinkWord; 3],
}

impl FlitToken {
    /// The empty (synchronisation-only) token.
    #[must_use]
    pub fn empty() -> Self {
        FlitToken {
            words: [LinkWord::idle(); 3],
        }
    }

    /// A data token from three words.
    #[must_use]
    pub fn new(words: [LinkWord; 3]) -> Self {
        FlitToken { words }
    }

    /// Whether this token carries any valid word.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| !w.valid)
    }
}

impl Default for FlitToken {
    fn default() -> Self {
        FlitToken::empty()
    }
}

/// An asynchronous link between wrapped elements: a token channel.
pub type TokenChannel = SharedBisync<FlitToken>;

/// Creates a token channel of `capacity` tokens with `latency` transfer
/// delay, pre-filled with `reset_tokens` empty tokens (paper: "a few
/// cycles are spent at reset to produce initial empty tokens ...
/// otherwise, the system deadlocks").
///
/// # Panics
///
/// Panics if `reset_tokens` exceeds `capacity`.
#[must_use]
pub fn token_channel(
    name: impl Into<String>,
    capacity: usize,
    latency: SimDuration,
    reset_tokens: usize,
) -> TokenChannel {
    assert!(reset_tokens <= capacity, "reset tokens exceed capacity");
    // Reset tokens are pushed at time zero and, like all tokens, become
    // visible one channel latency later — the paper's "a few cycles are
    // spent at reset to produce initial empty tokens".
    let mut fifo = BisyncFifo::new(name, capacity, latency);
    for _ in 0..reset_tokens {
        fifo.push(SimTime::ZERO, FlitToken::empty());
    }
    SharedBisync::new(fifo)
}

/// A router wrapped for asynchronous operation.
///
/// Inputs and outputs are [`TokenChannel`]s instead of wires; routing uses
/// the same HPU semantics as [`Router`](crate::router::Router) but at
/// token granularity (the route's front hop is popped from the head word).
#[derive(Debug)]
pub struct AsyncRouter {
    name: String,
    inputs: Vec<TokenChannel>,
    outputs: Vec<TokenChannel>,
    flit_words: u32,
    firings: u64,
    stalls: u64,
}

impl AsyncRouter {
    /// Creates a wrapped router.
    ///
    /// # Panics
    ///
    /// Panics if ports are empty or arity exceeds 8.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<TokenChannel>,
        outputs: Vec<TokenChannel>,
        flit_words: u32,
    ) -> Self {
        assert!(
            !inputs.is_empty() && !outputs.is_empty(),
            "router needs ports"
        );
        assert!(outputs.len() <= 8, "arity exceeds 3-bit port encoding");
        AsyncRouter {
            name: name.into(),
            inputs,
            outputs,
            flit_words,
            firings: 0,
            stalls: 0,
        }
    }

    /// Completed firings (flit cycles that actually advanced).
    #[must_use]
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Attempts that stalled on a firing rule.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

impl Module for AsyncRouter {
    type Value = LinkWord;

    fn name(&self) -> &str {
        &self.name
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        // One firing attempt per local flit cycle.
        if ctx.cycle() % u64::from(self.flit_words) != 0 {
            return;
        }
        let now = ctx.time();
        // PIC firing rule: all IPIs hold a flit, all OPIs have space.
        let inputs_ready = self
            .inputs
            .iter()
            .all(|ch| ch.with(|f| f.front_visible(now).is_some()));
        let outputs_ready = self
            .outputs
            .iter()
            .all(|ch| ch.with(|f| f.occupancy() < f.capacity()));
        if !inputs_ready || !outputs_ready {
            self.stalls += 1;
            return;
        }
        self.firings += 1;

        // Fire: consume one token per input, route, emit one per output.
        let mut out_tokens: Vec<Option<FlitToken>> = vec![None; self.outputs.len()];
        for (i, ch) in self.inputs.iter().enumerate() {
            let mut token = ch
                .with(|f| f.pop_visible(now))
                .expect("firing rule checked input");
            if token.is_empty() {
                continue;
            }
            let port = match &mut token.words[0].payload {
                Payload::Head(header) => header.route.pop_port(),
                other => panic!(
                    "{}: token on input {i} starts with {other:?}, not a header",
                    self.name
                ),
            };
            assert!(
                port.index() < self.outputs.len(),
                "{}: route selects missing output {port}",
                self.name
            );
            assert!(
                out_tokens[port.index()].is_none(),
                "{}: contention on output {port} (TDM allocation violated)",
                self.name
            );
            out_tokens[port.index()] = Some(token);
        }
        for (o, tok) in out_tokens.into_iter().enumerate() {
            let t = tok.unwrap_or_else(FlitToken::empty);
            self.outputs[o].with(|f| f.push(now, t));
        }
    }
}

/// Traffic offered by a wrapped NI's local IP: a queue of ready flits.
pub type TokenQueue = std::rc::Rc<std::cell::RefCell<VecDeque<[LinkWord; 3]>>>;

/// Creates an empty token queue.
#[must_use]
pub fn token_queue() -> TokenQueue {
    std::rc::Rc::new(std::cell::RefCell::new(VecDeque::new()))
}

/// One delivery observed by a wrapped NI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenDelivery {
    /// The connection the flit belongs to.
    pub conn: ConnId,
    /// The local firing index at which it arrived.
    pub firing: u64,
    /// Absolute arrival time.
    pub time: SimTime,
}

/// Shared log of wrapped-NI deliveries.
pub type TokenDeliveryLog = std::rc::Rc<std::cell::RefCell<Vec<TokenDelivery>>>;

/// Creates an empty delivery log.
#[must_use]
pub fn token_delivery_log() -> TokenDeliveryLog {
    std::rc::Rc::new(std::cell::RefCell::new(Vec::new()))
}

/// An NI wrapped for asynchronous operation: injects according to its TDM
/// table (the slot counter advances per *firing*, keeping the network
/// flit-synchronous), consumes arriving tokens, and always exchanges
/// exactly one token per firing with its router.
#[derive(Debug)]
pub struct AsyncNi {
    name: String,
    to_router: TokenChannel,
    from_router: TokenChannel,
    flit_words: u32,
    table_size: u32,
    /// slot -> queue to inject from (index into `queues`).
    slot_owner: Vec<Option<usize>>,
    queues: Vec<TokenQueue>,
    log: TokenDeliveryLog,
    firings: u64,
    stalls: u64,
}

impl AsyncNi {
    /// Creates a wrapped NI.
    ///
    /// `slots[i]` are the injection slots of `queues[i]`.
    ///
    /// # Panics
    ///
    /// Panics on overlapping or out-of-range slots, or mismatched
    /// `slots`/`queues` lengths.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        to_router: TokenChannel,
        from_router: TokenChannel,
        flit_words: u32,
        table_size: u32,
        slots: &[Vec<u32>],
        queues: Vec<TokenQueue>,
        log: TokenDeliveryLog,
    ) -> Self {
        assert_eq!(slots.len(), queues.len(), "one slot set per queue");
        let mut slot_owner = vec![None; table_size as usize];
        for (i, set) in slots.iter().enumerate() {
            for &s in set {
                assert!(s < table_size, "slot {s} out of range");
                assert!(slot_owner[s as usize].is_none(), "slot {s} claimed twice");
                slot_owner[s as usize] = Some(i);
            }
        }
        AsyncNi {
            name: name.into(),
            to_router,
            from_router,
            flit_words,
            table_size,
            slot_owner,
            queues,
            log,
            firings: 0,
            stalls: 0,
        }
    }

    /// Completed firings.
    #[must_use]
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Stalled firing attempts.
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

impl Module for AsyncNi {
    type Value = LinkWord;

    fn name(&self) -> &str {
        &self.name
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        if ctx.cycle() % u64::from(self.flit_words) != 0 {
            return;
        }
        let now = ctx.time();
        let input_ready = self.from_router.with(|f| f.front_visible(now).is_some());
        let output_ready = self.to_router.with(|f| f.occupancy() < f.capacity());
        if !input_ready || !output_ready {
            self.stalls += 1;
            return;
        }
        // Consume the incoming token.
        let incoming = self
            .from_router
            .with(|f| f.pop_visible(now))
            .expect("firing rule checked input");
        if !incoming.is_empty() {
            let conn = match incoming.words[0].payload {
                Payload::Head(h) => {
                    assert_eq!(
                        h.route.remaining(),
                        0,
                        "{}: arrived with unconsumed route",
                        self.name
                    );
                    h.conn
                }
                other => panic!("{}: token starts with {other:?}", self.name),
            };
            self.log.borrow_mut().push(TokenDelivery {
                conn,
                firing: self.firings,
                time: now,
            });
        }

        // Emit this firing's token: data if the slot is ours and a flit is
        // queued, an empty token otherwise.
        let slot = (self.firings % u64::from(self.table_size)) as usize;
        let token = match self.slot_owner[slot] {
            Some(q) => match self.queues[q].borrow_mut().pop_front() {
                Some(words) => FlitToken::new(words),
                None => FlitToken::empty(),
            },
            None => FlitToken::empty(),
        };
        self.to_router.with(|f| f.push(now, token));
        self.firings += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phit::RouteBits;
    use aelite_sim::clock::ClockSpec;
    use aelite_sim::scheduler::Simulator;
    use aelite_sim::time::Frequency;
    use aelite_spec::ids::Port;

    fn data_flit(conn: u32, route: &[Port], tag: u64) -> [LinkWord; 3] {
        [
            LinkWord::head(RouteBits::from_ports(route), ConnId::new(conn)),
            LinkWord::data(tag, false),
            LinkWord::data(tag + 1, true),
        ]
    }

    /// Two wrapped NIs around one wrapped 2x2 router, each element in its
    /// own clock domain with the given ppm offsets.
    struct Bench {
        sim: Simulator<LinkWord>,
        q0: TokenQueue,
        log1: TokenDeliveryLog,
    }

    fn bench(ppm: [i64; 3]) -> Bench {
        let f = Frequency::from_mhz(500);
        let lat = SimDuration::from_ps(500);
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let d_ni0 = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[0]));
        let d_r = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[1]));
        let d_ni1 = sim.add_domain(ClockSpec::new(f).with_ppm(ppm[2]));

        // Channels (2 tokens deep, 1 reset token each).
        let ni0_r = token_channel("ni0->r", 2, lat, 1);
        let r_ni0 = token_channel("r->ni0", 2, lat, 1);
        let ni1_r = token_channel("ni1->r", 2, lat, 1);
        let r_ni1 = token_channel("r->ni1", 2, lat, 1);

        let q0 = token_queue();
        let q1 = token_queue();
        let log0 = token_delivery_log();
        let log1 = token_delivery_log();

        // NI0 owns slots {0, 2}, NI1 none (pure receiver), table size 4.
        sim.add_module(
            d_ni0,
            AsyncNi::new(
                "ni0",
                ni0_r.clone(),
                r_ni0.clone(),
                3,
                4,
                &[vec![0, 2]],
                vec![std::rc::Rc::clone(&q0)],
                log0,
            ),
        );
        sim.add_module(
            d_ni1,
            AsyncNi::new(
                "ni1",
                ni1_r.clone(),
                r_ni1.clone(),
                3,
                4,
                &[vec![]],
                vec![std::rc::Rc::clone(&q1)],
                std::rc::Rc::clone(&log1),
            ),
        );
        // Router: input 0 from NI0, input 1 from NI1; output 0 to NI0,
        // output 1 to NI1.
        sim.add_module(
            d_r,
            AsyncRouter::new("r", vec![ni0_r, ni1_r], vec![r_ni0, r_ni1], 3),
        );
        Bench { sim, q0, log1 }
    }

    #[test]
    fn tokens_flow_between_plesiochronous_elements() {
        let mut b = bench([-200, 0, 200]);
        for i in 0..5 {
            b.q0.borrow_mut()
                .push_back(data_flit(0, &[Port(1)], i * 10));
        }
        b.sim.run_until(aelite_sim::time::SimTime::from_us(2));
        let log = b.log1.borrow();
        assert_eq!(log.len(), 5, "all five flits must arrive: {log:?}");
        assert!(log.windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn no_deadlock_without_traffic() {
        // Empty-token synchronisation alone must keep firing forever.
        let mut b = bench([500, -500, 0]);
        b.sim.run_until(aelite_sim::time::SimTime::from_us(1));
        // Drive one late flit; it still arrives.
        b.q0.borrow_mut().push_back(data_flit(0, &[Port(1)], 1));
        b.sim.run_until(aelite_sim::time::SimTime::from_us(2));
        assert_eq!(b.log1.borrow().len(), 1);
    }

    #[test]
    fn network_runs_at_slowest_element_rate() {
        // NI0 is 2% slow; everyone else nominal. Throughput must track
        // the slowest clock (paper Section VI-A).
        let mut b = bench([-20_000, 0, 0]);
        for i in 0..200 {
            b.q0.borrow_mut().push_back(data_flit(0, &[Port(1)], i));
        }
        b.sim.run_until(aelite_sim::time::SimTime::from_us(20));
        let log = b.log1.borrow();
        assert_eq!(log.len(), 200, "all flits arrive");
        let first = log[0].time;
        let last = log[log.len() - 1].time;
        let span_ns = (last - first).as_ns_f64();
        // Each flit needs 2 firings of the slow NI (it owns 2 of 4
        // slots): 6 cycles of ~2 ns stretched by the -2% clock.
        let min_span = 199.0 * 6.0 * 2.0 / 0.98 * 0.95; // 5% tolerance
        assert!(
            span_ns > min_span,
            "deliveries too fast for the slowest element: {span_ns} vs {min_span}"
        );
    }

    #[test]
    fn empty_token_is_empty() {
        assert!(FlitToken::empty().is_empty());
        assert!(!FlitToken::new(data_flit(0, &[Port(0)], 0)).is_empty());
        assert_eq!(FlitToken::default(), FlitToken::empty());
    }

    #[test]
    fn full_output_stalls_router_without_panic() {
        let f = Frequency::from_mhz(500);
        let lat = SimDuration::from_ps(500);
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let d = sim.add_domain(ClockSpec::new(f));
        let input = token_channel("in", 8, lat, 8); // full of empties
        let output = token_channel("out", 2, lat, 2); // already full!
        sim.add_module(
            d,
            AsyncRouter::new("r", vec![input.clone()], vec![output], 3),
        );
        sim.run_until(aelite_sim::time::SimTime::from_ns(300));
        // The router could never fire: its input is still full.
        assert_eq!(input.with(|f| f.occupancy()), 8);
    }

    #[test]
    #[should_panic(expected = "reset tokens exceed capacity")]
    fn too_many_reset_tokens_rejected() {
        let _ = token_channel("bad", 2, SimDuration::ZERO, 3);
    }
}
