//! Cycle-accurate network interface (NI) models.
//!
//! The NI is where the guaranteed services are enforced (paper Section
//! III): it holds the TDM slot table, injects flits only in reserved
//! slots, packetises messages (header + payload words, explicit EoP), and
//! implements end-to-end flow control so that a destination buffer can
//! never overflow. IPs interface through queues and place no timing
//! assumptions on the network — blocking reads and writes.
//!
//! Credits are modelled out of band (see `DESIGN.md`): the real Æthereal
//! piggybacks them on reverse headers; here a
//! [`SharedBisync`] channel with a configurable return delay plays that
//! role, preserving the property that matters — credits arrive a bounded
//! time after the consumer frees space.

use crate::phit::{LinkWord, Payload, RouteBits};
use aelite_sim::bisync::{BisyncFifo, SharedBisync};
use aelite_sim::module::{EdgeContext, Module};
use aelite_sim::signal::Wire;
use aelite_sim::time::{SimDuration, SimTime};
use aelite_spec::ids::ConnId;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A message handed to the NI by an IP core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sequence number within its connection.
    pub seq: u32,
    /// Payload length in words.
    pub words: u32,
    /// The NI-domain cycle at which the message became available.
    pub ready_cycle: u64,
}

/// The shared handle through which an IP (or testbench) feeds messages to
/// a source NI queue.
pub type MessageQueue = Rc<RefCell<VecDeque<Message>>>;

/// Creates an empty message queue.
#[must_use]
pub fn message_queue() -> MessageQueue {
    Rc::new(RefCell::new(VecDeque::new()))
}

/// One delivered flit, as recorded at the destination NI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitDelivery {
    /// The owning connection.
    pub conn: ConnId,
    /// Tag of the first payload word (message seq << 8 | word index).
    pub tag: u64,
    /// Destination-NI cycle at which the EoP word was sampled.
    pub cycle: u64,
    /// Absolute simulation time of that cycle.
    pub time: SimTime,
}

/// The shared log of deliveries at a destination NI.
pub type DeliveryLog = Rc<RefCell<Vec<FlitDelivery>>>;

/// Creates an empty delivery log.
#[must_use]
pub fn delivery_log() -> DeliveryLog {
    Rc::new(RefCell::new(Vec::new()))
}

/// Credit return channel: payload-word counts flowing back from a
/// destination NI to the source NI.
pub type CreditChannel = SharedBisync<u32>;

/// Creates a credit channel with the given return delay.
///
/// Capacity is generous: credits are small counters, not buffered data.
#[must_use]
pub fn credit_channel(name: impl Into<String>, return_delay: SimDuration) -> CreditChannel {
    SharedBisync::new(BisyncFifo::new(name, 4096, return_delay))
}

/// Tag of a flit's first payload word: message sequence number in the
/// high bits, word offset within the message in the low 8. Shared by
/// the event-driven [`NiSource`] and the turbo kernel so the two
/// engines can never disagree on the tag layout.
#[must_use]
pub(crate) fn flit_base_tag(seq: u32, total_words: u32, remaining_words: u32) -> u64 {
    (u64::from(seq) << 8) | u64::from(total_words - remaining_words)
}

/// Per-connection source state inside an [`NiSource`].
#[derive(Debug)]
pub struct SourceConn {
    /// The connection id (carried in headers).
    pub conn: ConnId,
    /// The full source route (as allocated).
    pub route: Vec<aelite_spec::ids::Port>,
    /// Slot-table entries owned by this connection.
    pub inject_slots: Vec<u32>,
    /// Message queue filled by the IP.
    pub queue: MessageQueue,
    /// Credit return channel from the destination NI.
    pub credits_in: CreditChannel,
    /// Initial credit (destination buffer size), in payload words.
    pub initial_credit: u32,
}

#[derive(Debug)]
struct SourceState {
    credits: i64,
    /// Words left of the message currently being sent.
    current_msg: Option<(Message, u32)>,
    flits_sent: u64,
    words_sent: u64,
}

/// The sending half of an NI: slot table + packetisation + flow control.
#[derive(Debug)]
pub struct NiSource {
    name: String,
    output: Wire<LinkWord>,
    table_size: u32,
    flit_words: u32,
    conns: Vec<SourceConn>,
    state: Vec<SourceState>,
    /// Slot owner lookup: `slot -> index into conns`.
    slot_owner: Vec<Option<usize>>,
    /// Words queued for the remaining cycles of the current slot.
    pending: VecDeque<LinkWord>,
}

impl NiSource {
    /// Builds a source NI.
    ///
    /// # Panics
    ///
    /// Panics if two connections claim the same slot (the allocation must
    /// make NI-ingress slots exclusive) or a slot index is out of range.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        output: Wire<LinkWord>,
        table_size: u32,
        flit_words: u32,
        conns: Vec<SourceConn>,
    ) -> Self {
        let mut slot_owner = vec![None; table_size as usize];
        for (i, c) in conns.iter().enumerate() {
            for &s in &c.inject_slots {
                assert!(s < table_size, "slot {s} out of range for {}", c.conn);
                assert!(
                    slot_owner[s as usize].is_none(),
                    "slot {s} claimed twice on one NI"
                );
                slot_owner[s as usize] = Some(i);
            }
        }
        let state = conns
            .iter()
            .map(|c| SourceState {
                credits: i64::from(c.initial_credit),
                current_msg: None,
                flits_sent: 0,
                words_sent: 0,
            })
            .collect();
        NiSource {
            name: name.into(),
            output,
            table_size,
            flit_words,
            conns,
            state,
            slot_owner,
            pending: VecDeque::new(),
        }
    }

    /// Flits sent so far on the `i`-th connection.
    #[must_use]
    pub fn flits_sent(&self, i: usize) -> u64 {
        self.state[i].flits_sent
    }

    /// Current credit (payload words) of the `i`-th connection.
    #[must_use]
    pub fn credits(&self, i: usize) -> i64 {
        self.state[i].credits
    }
}

impl Module for NiSource {
    type Value = LinkWord;

    fn name(&self) -> &str {
        &self.name
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        let now = ctx.time();
        let cycle = ctx.cycle();
        // Collect returned credits.
        for (i, c) in self.conns.iter().enumerate() {
            while let Some(words) = c.credits_in.with(|f| f.pop_visible(now)) {
                self.state[i].credits += i64::from(words);
            }
        }

        // Continue an in-flight flit.
        if let Some(word) = self.pending.pop_front() {
            ctx.write(self.output, word);
            return;
        }

        let phase = cycle % u64::from(self.flit_words);
        if phase != 0 {
            ctx.write(self.output, LinkWord::idle());
            return;
        }
        let slot = ((cycle / u64::from(self.flit_words)) % u64::from(self.table_size)) as u32;
        let Some(ci) = self.slot_owner[slot as usize] else {
            ctx.write(self.output, LinkWord::idle());
            return;
        };

        // Fetch the next message if idle.
        let payload_capacity = self.flit_words - 1;
        let st = &mut self.state[ci];
        if st.current_msg.is_none() {
            let msg = self.conns[ci]
                .queue
                .borrow_mut()
                .front()
                .copied()
                .filter(|m| m.ready_cycle <= cycle);
            if let Some(m) = msg {
                self.conns[ci].queue.borrow_mut().pop_front();
                st.current_msg = Some((m, m.words));
            }
        }
        let Some((msg, remaining)) = st.current_msg else {
            ctx.write(self.output, LinkWord::idle());
            return;
        };

        // Flow control: only send what the destination can absorb.
        let send_words = remaining.min(payload_capacity);
        if i64::from(send_words) > st.credits {
            // Back-pressure: the slot goes idle, the connection slows
            // down, nobody else is affected (paper Section IV-A).
            ctx.write(self.output, LinkWord::idle());
            return;
        }
        st.credits -= i64::from(send_words);
        st.flits_sent += 1;
        st.words_sent += u64::from(send_words);
        let left = remaining - send_words;
        st.current_msg = if left > 0 { Some((msg, left)) } else { None };

        // Emit the flit: header now, payload words on the next cycles.
        let route = RouteBits::from_ports(&self.conns[ci].route);
        ctx.write(self.output, LinkWord::head(route, self.conns[ci].conn));
        let base_tag = flit_base_tag(msg.seq, msg.words, remaining);
        for k in 0..send_words {
            let eop = k + 1 == send_words;
            self.pending
                .push_back(LinkWord::data(base_tag + u64::from(k), eop));
        }
        // Pad short flits with idle cycles (slot is still consumed).
        for _ in send_words..payload_capacity {
            self.pending.push_back(LinkWord::idle());
        }
    }
}

/// Per-connection receive state inside an [`NiSink`].
#[derive(Debug)]
pub struct SinkConn {
    /// The connection id this queue serves.
    pub conn: ConnId,
    /// Shared delivery log (may be shared across connections).
    pub log: DeliveryLog,
    /// Credit return channel to the source NI.
    pub credits_out: CreditChannel,
    /// Consumer model: cycles between draining single words; 0 drains
    /// instantly (credits return as soon as the flit lands).
    pub drain_interval: u32,
}

#[derive(Debug)]
struct SinkState {
    /// Words buffered, waiting for the consumer.
    buffered: VecDeque<u64>,
    next_drain: u64,
    flits_received: u64,
    current_tag: Option<u64>,
    words_in_flit: u32,
}

/// The receiving half of an NI: reassembles flits, drains to the consumer
/// and returns credits.
#[derive(Debug)]
pub struct NiSink {
    name: String,
    input: Wire<LinkWord>,
    conns: Vec<SinkConn>,
    state: Vec<SinkState>,
    /// Connection of the packet currently streaming in, if any.
    active: Option<usize>,
}

impl NiSink {
    /// Builds a sink NI receiving from `input`.
    #[must_use]
    pub fn new(name: impl Into<String>, input: Wire<LinkWord>, conns: Vec<SinkConn>) -> Self {
        let state = conns
            .iter()
            .map(|_| SinkState {
                buffered: VecDeque::new(),
                next_drain: 0,
                flits_received: 0,
                current_tag: None,
                words_in_flit: 0,
            })
            .collect();
        NiSink {
            name: name.into(),
            input,
            conns,
            state,
            active: None,
        }
    }

    /// Flits received so far for the `i`-th connection.
    #[must_use]
    pub fn flits_received(&self, i: usize) -> u64 {
        self.state[i].flits_received
    }

    fn conn_index(&self, conn: ConnId) -> usize {
        self.conns
            .iter()
            .position(|c| c.conn == conn)
            .unwrap_or_else(|| panic!("{}: unexpected packet for {conn}", self.name))
    }
}

impl Module for NiSink {
    type Value = LinkWord;

    fn name(&self) -> &str {
        &self.name
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        let now = ctx.time();
        let cycle = ctx.cycle();

        // Drain consumers and return credits.
        for (i, c) in self.conns.iter().enumerate() {
            let st = &mut self.state[i];
            if c.drain_interval == 0 {
                let n = st.buffered.len() as u32;
                if n > 0 {
                    st.buffered.clear();
                    c.credits_out.with(|f| f.push(now, n));
                }
            } else if cycle >= st.next_drain && !st.buffered.is_empty() {
                st.buffered.pop_front();
                c.credits_out.with(|f| f.push(now, 1));
                st.next_drain = cycle + u64::from(c.drain_interval);
            }
        }

        // Receive one word.
        let word = ctx.read(self.input);
        if !word.valid {
            return;
        }
        match word.payload {
            Payload::Head(h) => {
                assert_eq!(
                    h.route.remaining(),
                    0,
                    "{}: packet arrived with unconsumed route",
                    self.name
                );
                let i = self.conn_index(h.conn);
                self.state[i].words_in_flit = 0;
                // Sentinel until the first data word supplies the tag.
                self.state[i].current_tag = Some(u64::MAX);
                self.active = Some(i);
            }
            Payload::Data(tag) => {
                let i = self
                    .active
                    .unwrap_or_else(|| panic!("{}: data word with no open packet", self.name));
                let st = &mut self.state[i];
                if st.current_tag == Some(u64::MAX) {
                    st.current_tag = Some(tag);
                }
                st.buffered.push_back(tag);
                st.words_in_flit += 1;
                if word.eop {
                    st.flits_received += 1;
                    let first = st.current_tag.take().unwrap_or(tag);
                    self.conns[i].log.borrow_mut().push(FlitDelivery {
                        conn: self.conns[i].conn,
                        tag: first,
                        cycle,
                        time: now,
                    });
                    self.active = None;
                }
            }
            Payload::Idle => {}
        }
    }
}

/// A constant-bit-rate IP traffic source feeding a [`MessageQueue`].
///
/// Pushes a `words_per_message` message every `interval_cycles`, starting
/// at `offset_cycles` — the paper's evaluation regime where IPs offer
/// exactly their contracted load.
#[derive(Debug)]
pub struct CbrSource {
    name: String,
    queue: MessageQueue,
    words_per_message: u32,
    interval_cycles: u64,
    offset_cycles: u64,
    seq: u32,
    /// Stop after this many messages (u32::MAX = unbounded).
    pub limit: u32,
}

impl CbrSource {
    /// Creates a CBR source.
    ///
    /// # Panics
    ///
    /// Panics if the interval or message size is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        queue: MessageQueue,
        words_per_message: u32,
        interval_cycles: u64,
        offset_cycles: u64,
    ) -> Self {
        assert!(interval_cycles > 0, "interval must be non-zero");
        assert!(words_per_message > 0, "messages must carry data");
        CbrSource {
            name: name.into(),
            queue,
            words_per_message,
            interval_cycles,
            offset_cycles,
            seq: 0,
            limit: u32::MAX,
        }
    }
}

impl Module for CbrSource {
    type Value = LinkWord;

    fn name(&self) -> &str {
        &self.name
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        let cycle = ctx.cycle();
        if cycle >= self.offset_cycles
            && (cycle - self.offset_cycles).is_multiple_of(self.interval_cycles)
            && self.seq < self.limit
        {
            self.queue.borrow_mut().push_back(Message {
                seq: self.seq,
                words: self.words_per_message,
                ready_cycle: cycle,
            });
            self.seq += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_sim::clock::ClockSpec;
    use aelite_sim::scheduler::Simulator;
    use aelite_sim::time::{Frequency, SimTime};
    const S: u32 = 8;

    fn source_conn(
        conn: u32,
        slots: Vec<u32>,
        queue: MessageQueue,
        credits_in: CreditChannel,
        credit: u32,
    ) -> SourceConn {
        SourceConn {
            conn: ConnId::new(conn),
            // Wired NI-to-NI in these tests: no router consumes hops, so
            // the route is empty.
            route: vec![],
            inject_slots: slots,
            queue,
            credits_in,
            initial_credit: credit,
        }
    }

    /// NI source wired straight into an NI sink (no router between) —
    /// enough to exercise packetisation, slots and credits.
    struct Bench {
        sim: Simulator<LinkWord>,
        queue: MessageQueue,
        log: DeliveryLog,
    }

    fn direct_bench(slots: Vec<u32>, credit: u32, drain_interval: u32) -> Bench {
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let wire = sim.add_wire("ni2ni");
        let queue = message_queue();
        let log = delivery_log();
        let credits = credit_channel("cr", SimDuration::ZERO);
        let src = NiSource::new(
            "src",
            wire,
            S,
            3,
            vec![source_conn(
                0,
                slots,
                Rc::clone(&queue),
                credits.clone(),
                credit,
            )],
        );
        // The sink sees packets whose single-hop route was consumed by a
        // router; emulate by building sources with an empty route.
        let sink = NiSink::new(
            "sink",
            wire,
            vec![SinkConn {
                conn: ConnId::new(0),
                log: Rc::clone(&log),
                credits_out: credits,
                drain_interval,
            }],
        );
        sim.add_module(clk, src);
        sim.add_module(clk, sink);
        Bench { sim, queue, log }
    }

    #[test]
    fn injects_only_in_reserved_slots() {
        let mut b = direct_bench(vec![2], 100, 0);
        b.queue.borrow_mut().push_back(Message {
            seq: 0,
            words: 2,
            ready_cycle: 0,
        });
        b.sim.run_until(SimTime::from_ns(200));
        let log = b.log.borrow();
        assert_eq!(log.len(), 1);
        // Slot 2 starts at cycle 6; header at 6, eop data at cycle 8,
        // sink samples it at cycle 9.
        assert_eq!(log[0].cycle, 9);
    }

    #[test]
    fn multi_flit_message_uses_successive_slots() {
        let mut b = direct_bench(vec![1, 5], 100, 0);
        b.queue.borrow_mut().push_back(Message {
            seq: 0,
            words: 6, // 3 flits of 2 payload words
            ready_cycle: 0,
        });
        b.sim.run_until(SimTime::from_ns(400));
        let log = b.log.borrow();
        assert_eq!(log.len(), 3);
        // Slots 1, 5, 9(=1 mod 8): cycles 3,15,27 -> eop sampled +3.
        assert_eq!(log[0].cycle, 6);
        assert_eq!(log[1].cycle, 18);
        assert_eq!(log[2].cycle, 30);
    }

    #[test]
    fn credits_gate_injection() {
        // Destination never drains (huge drain interval): after the
        // initial credit is spent, the source must stop.
        let mut b = direct_bench(vec![0, 1, 2, 3, 4, 5, 6, 7], 4, u32::MAX);
        for seq in 0..10 {
            b.queue.borrow_mut().push_back(Message {
                seq,
                words: 2,
                ready_cycle: 0,
            });
        }
        b.sim.run_until(SimTime::from_ns(1000));
        let log = b.log.borrow();
        // 4 credits / 2 words per flit = 2 flits, then back-pressure.
        assert_eq!(log.len(), 2, "{log:?}");
    }

    #[test]
    fn drained_credits_resume_injection() {
        // Slow consumer: drains one word every 30 cycles; the connection
        // proceeds at the drain rate instead of deadlocking.
        let mut b = direct_bench(vec![0], 2, 30);
        for seq in 0..4 {
            b.queue.borrow_mut().push_back(Message {
                seq,
                words: 2,
                ready_cycle: 0,
            });
        }
        b.sim.run_until(SimTime::from_ns(4000));
        assert_eq!(b.log.borrow().len(), 4);
    }

    #[test]
    fn partial_flit_carries_short_message() {
        let mut b = direct_bench(vec![0], 100, 0);
        b.queue.borrow_mut().push_back(Message {
            seq: 0,
            words: 1,
            ready_cycle: 0,
        });
        b.sim.run_until(SimTime::from_ns(100));
        let log = b.log.borrow();
        assert_eq!(log.len(), 1);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn overlapping_slots_rejected() {
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let wire = sim.add_wire("w");
        let q = message_queue();
        let cr = credit_channel("c", SimDuration::ZERO);
        let _ = NiSource::new(
            "src",
            wire,
            S,
            3,
            vec![
                source_conn(0, vec![1], Rc::clone(&q), cr.clone(), 4),
                source_conn(1, vec![1], q, cr, 4),
            ],
        );
    }

    #[test]
    fn cbr_source_pushes_on_schedule() {
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let q = message_queue();
        sim.add_module(clk, CbrSource::new("cbr", Rc::clone(&q), 2, 10, 5));
        sim.run_until(SimTime::from_ns(70)); // cycles 0..=35
        let msgs: Vec<Message> = q.borrow().iter().copied().collect();
        assert_eq!(msgs.len(), 4); // at cycles 5, 15, 25, 35
        assert_eq!(msgs[0].ready_cycle, 5);
        assert_eq!(msgs[3].ready_cycle, 35);
        assert_eq!(msgs[1].seq, 1);
    }
}
