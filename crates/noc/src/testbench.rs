//! Testbench building blocks: scripted drivers and probes.
//!
//! Reusable [`Module`]s for unit tests, examples and validation
//! experiments: a [`Feeder`] plays a scripted word sequence onto a wire,
//! a [`Probe`] records everything valid that appears on one, and
//! [`flit`] builds a canonical 3-word flit.

use crate::phit::{LinkWord, RouteBits};
use aelite_sim::module::{EdgeContext, Module};
use aelite_sim::signal::Wire;
use aelite_spec::ids::{ConnId, Port};
use std::cell::RefCell;
use std::rc::Rc;

/// Builds one 3-word flit: header (route, connection) + two data words,
/// the second carrying EoP.
#[must_use]
pub fn flit(route: &[Port], conn: u32, tag: u64) -> Vec<LinkWord> {
    vec![
        LinkWord::head(RouteBits::from_ports(route), ConnId::new(conn)),
        LinkWord::data(tag, false),
        LinkWord::data(tag + 1, true),
    ]
}

/// Drives a scripted word sequence onto a wire, one word per edge,
/// then idles.
#[derive(Debug)]
pub struct Feeder {
    output: Wire<LinkWord>,
    script: Vec<LinkWord>,
    at: usize,
}

impl Feeder {
    /// Creates a feeder playing `script` onto `output` from edge 0.
    #[must_use]
    pub fn new(output: Wire<LinkWord>, script: Vec<LinkWord>) -> Self {
        Feeder {
            output,
            script,
            at: 0,
        }
    }
}

impl Module for Feeder {
    type Value = LinkWord;

    fn name(&self) -> &str {
        "feeder"
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        let w = self.script.get(self.at).copied().unwrap_or_default();
        ctx.write(self.output, w);
        self.at += 1;
    }
}

/// A `(cycle, word)` record captured by a [`Probe`].
pub type ProbeLog = Rc<RefCell<Vec<(u64, LinkWord)>>>;

/// Creates an empty probe log.
#[must_use]
pub fn probe_log() -> ProbeLog {
    Rc::new(RefCell::new(Vec::new()))
}

/// Records every valid word appearing on a wire, with its local cycle.
#[derive(Debug)]
pub struct Probe {
    input: Wire<LinkWord>,
    log: ProbeLog,
}

impl Probe {
    /// Creates a probe on `input` appending to `log`.
    #[must_use]
    pub fn new(input: Wire<LinkWord>, log: ProbeLog) -> Self {
        Probe { input, log }
    }
}

impl Module for Probe {
    type Value = LinkWord;

    fn name(&self) -> &str {
        "probe"
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        let w = ctx.read(self.input);
        if w.valid {
            self.log.borrow_mut().push((ctx.cycle(), w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_sim::clock::ClockSpec;
    use aelite_sim::scheduler::Simulator;
    use aelite_sim::time::{Frequency, SimTime};

    #[test]
    fn feeder_plays_script_then_idles() {
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let wire = sim.add_wire("w");
        let log = probe_log();
        sim.add_module(clk, Feeder::new(wire, flit(&[Port(0)], 3, 7)));
        sim.add_module(clk, Probe::new(wire, Rc::clone(&log)));
        sim.run_until(SimTime::from_ns(40));
        let log = log.borrow();
        assert_eq!(log.len(), 3, "{log:?}");
        // Probe samples one cycle after the feeder drives.
        assert_eq!(log[0].0, 1);
        assert!(log[0].1.is_head());
        assert!(log[2].1.eop);
    }

    #[test]
    fn flit_builder_shape() {
        let f = flit(&[Port(1), Port(2)], 9, 100);
        assert_eq!(f.len(), 3);
        assert!(f[0].is_head());
        assert!(!f[1].eop && f[2].eop);
    }
}
