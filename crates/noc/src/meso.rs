//! The mesochronous link pipeline stage (paper Section V, Fig 3).
//!
//! Between a sender and a receiver that share a nominal frequency but have
//! an arbitrary (bounded) phase difference, the stage places:
//!
//! * a **bi-synchronous FIFO** written with the sender's clock (sourced
//!   along with the data, so it sees the same propagation delay) and read
//!   with the receiver's clock \[14\]\[18\]; and
//! * an **FSM** in the receiver's domain that tracks the position within
//!   the current flit (states 0, 1, 2) and, when the FIFO holds at least
//!   one word at the start of a flit cycle (state 0), forwards one word
//!   per cycle for the following 3 cycles — like a dataflow actor firing.
//!
//! The result: a flit always takes **exactly 3 receiver-clock cycles** to
//! traverse the link, re-aligned to the receiver's flit-cycle boundaries.
//! The extra slot this consumes is accounted for by the allocator
//! (`NocConfig::slots_per_hop`). Under the paper's assumptions (skew at
//! most half a cycle, FIFO forwarding delay below the flit size, one word
//! per cycle nominal rate) the 4-word FIFO can never fill, so it generates
//! no full/accept signal — all handshakes are local. This model panics on
//! overflow rather than dropping data, making any violation of the sizing
//! argument impossible to miss.
//!
//! The stage is split into two [`Module`]s sharing the FIFO: a
//! [`MesoWriter`] in the sender's domain (the input register moved onto
//! the link, Fig 2) and a [`MesoFsm`] in the receiver's domain.

use crate::phit::LinkWord;
use aelite_sim::bisync::{BisyncFifo, SharedBisync};
use aelite_sim::module::{EdgeContext, Module};
use aelite_sim::signal::Wire;
use aelite_sim::time::SimDuration;

/// Default FIFO capacity, per the paper: "the FIFO is chosen with
/// sufficient storage capacity to never be full (4 words)".
pub const MESO_FIFO_WORDS: usize = 4;

/// Builds the shared FIFO for one link stage.
///
/// `forward_delay` models the synchroniser latency of the bi-synchronous
/// FIFO (1–2 cycles in \[14\]/\[18\]); express it in time units of the
/// writer's clock period.
#[must_use]
pub fn meso_fifo(name: impl Into<String>, forward_delay: SimDuration) -> SharedBisync<LinkWord> {
    SharedBisync::new(BisyncFifo::new(name, MESO_FIFO_WORDS, forward_delay))
}

/// Sender-side half of the link stage: samples the upstream wire with the
/// clock sourced along with the data and writes valid words into the FIFO.
#[derive(Debug)]
pub struct MesoWriter {
    name: String,
    input: Wire<LinkWord>,
    fifo: SharedBisync<LinkWord>,
}

impl MesoWriter {
    /// Creates the writer for `input`, pushing into `fifo`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        input: Wire<LinkWord>,
        fifo: SharedBisync<LinkWord>,
    ) -> Self {
        MesoWriter {
            name: name.into(),
            input,
            fifo,
        }
    }
}

impl Module for MesoWriter {
    type Value = LinkWord;

    fn name(&self) -> &str {
        &self.name
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        let word = ctx.read(self.input);
        if word.valid {
            let now = ctx.time();
            self.fifo.with(|f| f.push(now, word));
        }
    }
}

/// Receiver-side half: the flit-cycle re-aligning FSM.
#[derive(Debug)]
pub struct MesoFsm {
    name: String,
    fifo: SharedBisync<LinkWord>,
    output: Wire<LinkWord>,
    flit_words: u32,
    /// Whether the FSM decided to forward during the current flit cycle.
    forwarding: bool,
    /// Flits forwarded so far (statistics).
    flits_forwarded: u64,
}

impl MesoFsm {
    /// Creates the FSM reading `fifo` and driving `output` in the
    /// receiver's clock domain.
    ///
    /// # Panics
    ///
    /// Panics if `flit_words` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        fifo: SharedBisync<LinkWord>,
        output: Wire<LinkWord>,
        flit_words: u32,
    ) -> Self {
        assert!(flit_words > 0, "flit must have at least one word");
        MesoFsm {
            name: name.into(),
            fifo,
            output,
            flit_words,
            forwarding: false,
            flits_forwarded: 0,
        }
    }

    /// Flits forwarded so far.
    #[must_use]
    pub fn flits_forwarded(&self) -> u64 {
        self.flits_forwarded
    }
}

impl Module for MesoFsm {
    type Value = LinkWord;

    fn name(&self) -> &str {
        &self.name
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        let state = ctx.cycle() % u64::from(self.flit_words);
        let now = ctx.time();
        if state == 0 {
            // Fire if the FIFO holds at least one word (valid high) at the
            // start of a flit cycle.
            self.forwarding = self.fifo.with(|f| f.front_visible(now).is_some());
            if self.forwarding {
                self.flits_forwarded += 1;
            }
        }
        if self.forwarding {
            let word = self.fifo.with(|f| f.pop_visible(now)).unwrap_or_else(|| {
                panic!(
                    "{}: FIFO underrun mid-flit — sender did not deliver one \
                     word per cycle (nominal-rate assumption violated)",
                    self.name
                )
            });
            ctx.write(self.output, word);
        } else {
            ctx.write(self.output, LinkWord::idle());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phit::RouteBits;
    use aelite_sim::clock::ClockSpec;
    use aelite_sim::scheduler::Simulator;
    use aelite_sim::time::{Frequency, SimTime};
    use aelite_spec::ids::{ConnId, Port};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Feeder {
        out: Wire<LinkWord>,
        script: Vec<LinkWord>,
        at: usize,
    }
    impl Module for Feeder {
        type Value = LinkWord;
        fn name(&self) -> &str {
            "feeder"
        }
        fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
            let w = self.script.get(self.at).copied().unwrap_or_default();
            ctx.write(self.out, w);
            self.at += 1;
        }
    }

    struct Probe {
        input: Wire<LinkWord>,
        log: Rc<RefCell<Vec<(u64, LinkWord)>>>,
    }
    impl Module for Probe {
        type Value = LinkWord;
        fn name(&self) -> &str {
            "probe"
        }
        fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
            let w = ctx.read(self.input);
            if w.valid {
                self.log.borrow_mut().push((ctx.cycle(), w));
            }
        }
    }

    fn flit(tag: u64) -> Vec<LinkWord> {
        vec![
            LinkWord::head(RouteBits::from_ports(&[Port(0)]), ConnId::new(0)),
            LinkWord::data(tag, false),
            LinkWord::data(tag + 1, true),
        ]
    }

    /// Sender at phase 0, receiver at `skew_ps`; returns (cycle, word)
    /// pairs seen by a receiver-domain probe after the FSM.
    fn run_with_skew(skew_ps: u64, script: Vec<LinkWord>) -> Vec<(u64, LinkWord)> {
        let f = Frequency::from_mhz(500); // 2000 ps period
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let tx = sim.add_domain(ClockSpec::new(f));
        let rx = sim.add_domain(ClockSpec::new(f).with_phase(SimDuration::from_ps(skew_ps)));
        let link_in = sim.add_wire("link_in");
        let link_out = sim.add_wire("link_out");
        let fifo = meso_fifo("stage", f.period()); // 1-cycle synchroniser
        sim.add_module(
            tx,
            Feeder {
                out: link_in,
                script,
                at: 0,
            },
        );
        sim.add_module(tx, MesoWriter::new("wr", link_in, fifo.clone()));
        sim.add_module(rx, MesoFsm::new("fsm", fifo, link_out, 3));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.add_module(
            rx,
            Probe {
                input: link_out,
                log: Rc::clone(&log),
            },
        );
        sim.run_until(SimTime::from_ns(200));
        let result = log.borrow().clone();
        result
    }

    #[test]
    fn flit_arrives_aligned_to_receiver_flit_cycle() {
        for skew in [0u64, 250, 500, 750, 999] {
            let log = run_with_skew(skew, flit(10));
            assert_eq!(log.len(), 3, "skew {skew}: {log:?}");
            // Words occupy three consecutive receiver cycles; the FSM
            // drives them starting at a flit-cycle boundary, which the
            // probe (one register later) sees at cycle 1 mod 3.
            assert_eq!(log[0].0 % 3, 1, "skew {skew}: unaligned start {log:?}");
            assert_eq!(log[1].0, log[0].0 + 1);
            assert_eq!(log[2].0, log[0].0 + 2);
            assert!(log[2].1.eop);
        }
    }

    #[test]
    fn traversal_is_constant_regardless_of_skew() {
        // The arrival flit-cycle must be the same for every legal skew —
        // that is what makes the NoC conceivable as globally flit-
        // synchronous (paper Section V).
        let mut starts = Vec::new();
        for skew in [1u64, 300, 600, 999] {
            let log = run_with_skew(skew, flit(0));
            starts.push(log[0].0);
        }
        assert!(
            starts.windows(2).all(|w| w[0] == w[1]),
            "arrival flit cycle varies with skew: {starts:?}"
        );
    }

    #[test]
    fn back_to_back_flits_stream_without_gaps() {
        let mut script = flit(0);
        script.extend(flit(10));
        script.extend(flit(20));
        let log = run_with_skew(700, script);
        assert_eq!(log.len(), 9);
        let first = log[0].0;
        let cycles: Vec<u64> = log.iter().map(|&(c, _)| c).collect();
        let expect: Vec<u64> = (first..first + 9).collect();
        assert_eq!(cycles, expect, "streaming flits must be gapless");
    }

    #[test]
    fn gap_between_flits_preserves_alignment() {
        let mut script = flit(0);
        script.extend(vec![LinkWord::idle(); 3]); // one empty slot
        script.extend(flit(10));
        let log = run_with_skew(500, script);
        assert_eq!(log.len(), 6);
        assert_eq!(log[3].0 - log[0].0, 6, "second flit must be one slot later");
        assert_eq!(log[3].0 % 3, 1);
    }

    #[test]
    fn fifo_never_exceeds_paper_capacity() {
        let f = Frequency::from_mhz(500);
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let tx = sim.add_domain(ClockSpec::new(f));
        let rx = sim.add_domain(ClockSpec::new(f).with_phase(SimDuration::from_ps(999)));
        let link_in = sim.add_wire("in");
        let link_out = sim.add_wire("out");
        let fifo = meso_fifo("stage", f.period());
        let mut script = Vec::new();
        for i in 0..20 {
            script.extend(flit(i * 10));
        }
        sim.add_module(
            tx,
            Feeder {
                out: link_in,
                script,
                at: 0,
            },
        );
        sim.add_module(tx, MesoWriter::new("wr", link_in, fifo.clone()));
        sim.add_module(rx, MesoFsm::new("fsm", fifo.clone(), link_out, 3));
        sim.run_until(SimTime::from_ns(400));
        // Saturated streaming for 60 words: occupancy stayed within the
        // paper's 4-word sizing (push would have panicked otherwise).
        let max = fifo.with(|f| f.max_occupancy());
        assert!(max <= MESO_FIFO_WORDS, "max occupancy {max}");
        assert_eq!(fifo.with(|f| f.total_pushed()), 60);
    }

    #[test]
    fn two_stages_in_sequence_compose() {
        // Paper: "It is also possible to place multiple link pipeline
        // stages in sequence." Each stage adds one flit cycle.
        let f = Frequency::from_mhz(500);
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let tx = sim.add_domain(ClockSpec::new(f));
        let mid = sim.add_domain(ClockSpec::new(f).with_phase(SimDuration::from_ps(400)));
        let rx = sim.add_domain(ClockSpec::new(f).with_phase(SimDuration::from_ps(900)));
        let w0 = sim.add_wire("w0");
        let w1 = sim.add_wire("w1");
        let w2 = sim.add_wire("w2");
        let f0 = meso_fifo("s0", f.period());
        let f1 = meso_fifo("s1", f.period());
        sim.add_module(
            tx,
            Feeder {
                out: w0,
                script: flit(5),
                at: 0,
            },
        );
        sim.add_module(tx, MesoWriter::new("wr0", w0, f0.clone()));
        sim.add_module(mid, MesoFsm::new("fsm0", f0, w1, 3));
        sim.add_module(mid, MesoWriter::new("wr1", w1, f1.clone()));
        sim.add_module(rx, MesoFsm::new("fsm1", f1, w2, 3));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.add_module(
            rx,
            Probe {
                input: w2,
                log: Rc::clone(&log),
            },
        );
        sim.run_until(SimTime::from_ns(200));
        let log = log.borrow();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].0 % 3, 1, "two-stage output still flit-aligned");
    }

    #[test]
    fn flits_forwarded_counts() {
        let fifo = meso_fifo("x", SimDuration::ZERO);
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let out = sim.add_wire("o");
        let fsm = MesoFsm::new("fsm", fifo.clone(), out, 3);
        assert_eq!(fsm.flits_forwarded(), 0);
        sim.add_module(clk, fsm);
        sim.run_until(SimTime::from_ns(20));
        // No input -> still zero flits, wire stays idle.
        assert!(!sim.signals().read(out).valid);
    }
}
