//! # aelite-noc — hardware models of the aelite network on chip
//!
//! Cycle-accurate models of every component the paper describes, plus a
//! fast flit-level simulator for large experiments:
//!
//! * [`phit`] — link words with explicit `valid`/`eop` sideband.
//! * [`codec`] — the physical header layout (route + connection id) and
//!   proof-of-packability.
//! * [`router`] — the 3-stage, arbiter-less GS-only router (Section IV).
//! * [`meso`] — the mesochronous link pipeline stage: bi-synchronous FIFO
//!   plus flit-cycle re-aligning FSM (Section V, Fig 3).
//! * [`wrapper`] — the asynchronous wrapper: port interfaces and the
//!   fire-when-all-ready controller (Section VI, Fig 4).
//! * [`ni`] — network interfaces: TDM slot tables, packetisation and
//!   end-to-end flow control.
//! * [`network`] — builders wiring a complete NoC (synchronous or
//!   mesochronous) from a spec and its allocation.
//! * [`flitsim`] — the fast flit-level TDM simulator used for the paper's
//!   200-connection experiment, validated against the cycle-accurate
//!   models.
//! * [`turbo`] — the compiled flit-synchronous execution engine: the same
//!   cycle-accurate network lowered to flat state and enum dispatch,
//!   bit-for-bit equivalent to the event-driven build and an order of
//!   magnitude faster.
//! * [`testbench`] — scripted drivers and probes for building validation
//!   scenarios.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod flitsim;
pub mod meso;
pub mod network;
pub mod ni;
pub mod phit;
pub mod router;
pub mod testbench;
pub mod turbo;
pub mod wrapper;

pub use phit::{Header, LinkWord, Payload, RouteBits};
pub use router::Router;
pub use turbo::{build_turbo, ConnLatency, TurboNet};
