//! The aelite router: a 3-stage, arbiter-less, GS-only pipeline.
//!
//! Faithful to paper Section IV (Fig 2):
//!
//! 1. **Input stage** — one register per input port (the router's *only*
//!    buffering: one word per input).
//! 2. **HPU stage** — on a header word, the Header Parsing Unit pops the
//!    front 3 bits of the source route to select the output port and
//!    forwards the shifted header; the selected port is latched until the
//!    explicit end-of-packet signal. `valid`/`eop` are sideband signals, so
//!    no decoding sits on the critical path.
//! 3. **Switch stage** — output ports are driven from the one-hot encoded
//!    port selections. There is **no arbiter**: contention is impossible
//!    under a correct TDM allocation, and this model panics if two words
//!    ever target the same output in the same cycle — turning any
//!    allocation bug into an immediate, loud failure (the contention-free
//!    invariant from `DESIGN.md`).
//!
//! Three cycles after a flit is presented at an input, its first word
//! appears on the output — the open-headed arrow of Fig 2.

use crate::phit::{LinkWord, Payload};
use aelite_sim::module::{EdgeContext, Module};
use aelite_sim::signal::Wire;
use aelite_spec::ids::Port;

/// Cycle-accurate model of the aelite router.
///
/// Parametrisable in the number of input and output ports (potentially
/// different, as in the paper) and agnostic to data width — width only
/// affects the synthesis model, not behaviour.
#[derive(Debug)]
pub struct Router {
    name: String,
    inputs: Vec<Wire<LinkWord>>,
    outputs: Vec<Wire<LinkWord>>,
    /// Stage-1 registers: one word per input port.
    in_reg: Vec<LinkWord>,
    /// Stage-2 registers: word plus its one-hot output selection.
    hpu_reg: Vec<(LinkWord, Option<Port>)>,
    /// HPU state: the latched output port per input, valid until EoP.
    port_latch: Vec<Option<Port>>,
    /// Statistics: words forwarded per output port.
    forwarded: Vec<u64>,
}

impl Router {
    /// Creates a router forwarding from `inputs` to `outputs`.
    ///
    /// # Panics
    ///
    /// Panics if there are no inputs, no outputs, or more than 8 outputs
    /// (the 3-bit route encoding bounds the arity, as in the paper).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<Wire<LinkWord>>,
        outputs: Vec<Wire<LinkWord>>,
    ) -> Self {
        assert!(!inputs.is_empty(), "router needs at least one input");
        assert!(!outputs.is_empty(), "router needs at least one output");
        assert!(
            outputs.len() <= 8,
            "router arity {} exceeds the 3-bit port encoding",
            outputs.len()
        );
        let n_in = inputs.len();
        let n_out = outputs.len();
        Router {
            name: name.into(),
            inputs,
            outputs,
            in_reg: vec![LinkWord::idle(); n_in],
            hpu_reg: vec![(LinkWord::idle(), None); n_in],
            port_latch: vec![None; n_in],
            forwarded: vec![0; n_out],
        }
    }

    /// Words forwarded so far through output `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    #[must_use]
    pub fn forwarded_count(&self, port: Port) -> u64 {
        self.forwarded[port.index()]
    }

    /// The number of input ports.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// The number of output ports.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }
}

impl Module for Router {
    type Value = LinkWord;

    fn name(&self) -> &str {
        &self.name
    }

    fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
        // ---- Stage 3: switch. Drive outputs from the HPU registers. ----
        let mut driven: Vec<Option<usize>> = vec![None; self.outputs.len()];
        for (input, (word, sel)) in self.hpu_reg.iter().enumerate() {
            if word.valid {
                let port = sel.expect("valid word with no output selection");
                assert!(
                    port.index() < self.outputs.len(),
                    "{}: route selects non-existent output {port}",
                    self.name
                );
                if let Some(prev) = driven[port.index()] {
                    panic!(
                        "{}: contention on output {port}: inputs p{prev} and p{input} \
                         in the same cycle (TDM allocation violated)",
                        self.name
                    );
                }
                driven[port.index()] = Some(input);
                ctx.write(self.outputs[port.index()], *word);
                self.forwarded[port.index()] += 1;
            }
        }
        for (o, d) in driven.iter().enumerate() {
            if d.is_none() {
                ctx.write(self.outputs[o], LinkWord::idle());
            }
        }

        // ---- Stage 2: HPU. Decode headers, latch ports until EoP. ----
        for (input, word) in self.in_reg.iter().enumerate() {
            let mut out_word = *word;
            let sel = if !word.valid {
                None
            } else {
                match word.payload {
                    Payload::Head(mut header) => {
                        let port = header.route.pop_port();
                        // Forward the *shifted* header, as the real HPU does.
                        out_word.payload = Payload::Head(header);
                        self.port_latch[input] = Some(port);
                        Some(port)
                    }
                    Payload::Data(_) | Payload::Idle => self.port_latch[input],
                }
            };
            if word.valid && word.eop {
                // Selected port holds for this word, then clears.
                self.port_latch[input] = None;
            }
            self.hpu_reg[input] = (out_word, sel);
        }

        // ---- Stage 1: sample inputs. ----
        for (i, &wire) in self.inputs.iter().enumerate() {
            self.in_reg[i] = ctx.read(wire);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phit::RouteBits;
    use aelite_sim::clock::ClockSpec;
    use aelite_sim::scheduler::Simulator;
    use aelite_sim::time::{Frequency, SimTime};
    use aelite_spec::ids::ConnId;

    /// Drives a scripted word sequence onto a wire.
    struct Feeder {
        out: Wire<LinkWord>,
        script: Vec<LinkWord>,
        at: usize,
    }
    impl Module for Feeder {
        type Value = LinkWord;
        fn name(&self) -> &str {
            "feeder"
        }
        fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
            let w = self.script.get(self.at).copied().unwrap_or_default();
            ctx.write(self.out, w);
            self.at += 1;
        }
    }

    /// A shared log of `(cycle, word)` observations.
    type ProbeLog = std::rc::Rc<std::cell::RefCell<Vec<(u64, LinkWord)>>>;

    /// Records everything appearing on a wire.
    struct Probe {
        input: Wire<LinkWord>,
        log: ProbeLog,
    }
    impl Module for Probe {
        type Value = LinkWord;
        fn name(&self) -> &str {
            "probe"
        }
        fn on_edge(&mut self, ctx: &mut EdgeContext<'_, LinkWord>) {
            let w = ctx.read(self.input);
            if w.valid {
                self.log.borrow_mut().push((ctx.cycle(), w));
            }
        }
    }

    fn flit(route: &[Port], conn: u32, tag: u64) -> Vec<LinkWord> {
        vec![
            LinkWord::head(RouteBits::from_ports(route), ConnId::new(conn)),
            LinkWord::data(tag, false),
            LinkWord::data(tag + 1, true),
        ]
    }

    struct Bench {
        sim: Simulator<LinkWord>,
        logs: Vec<ProbeLog>,
    }

    /// One router with `n_in` scripted inputs and probes on all outputs.
    fn bench(n_in: usize, n_out: usize, scripts: Vec<Vec<LinkWord>>) -> Bench {
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let ins: Vec<_> = (0..n_in).map(|i| sim.add_wire(format!("in{i}"))).collect();
        let outs: Vec<_> = (0..n_out)
            .map(|o| sim.add_wire(format!("out{o}")))
            .collect();
        for (i, script) in scripts.into_iter().enumerate() {
            sim.add_module(
                clk,
                Feeder {
                    out: ins[i],
                    script,
                    at: 0,
                },
            );
        }
        let mut logs = Vec::new();
        for &o in &outs {
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            logs.push(std::rc::Rc::clone(&log));
            sim.add_module(clk, Probe { input: o, log });
        }
        sim.add_module(clk, Router::new("R0", ins, outs));
        Bench { sim, logs }
    }

    #[test]
    fn forwards_flit_in_three_cycles() {
        // Feeder writes the header at edge 0 (visible after edge 0). The
        // router samples it at edge 1, decodes at 2, drives output at 3;
        // the probe sees it at edge 4: 3 router cycles after presentation.
        let mut b = bench(1, 2, vec![flit(&[Port(1)], 0, 100)]);
        b.sim.run_until(SimTime::from_ns(40));
        let log0 = b.logs[0].borrow();
        assert!(log0.is_empty(), "flit leaked to port 0: {log0:?}");
        let log1 = b.logs[1].borrow();
        assert_eq!(log1.len(), 3, "{log1:?}");
        assert_eq!(log1[0].0, 4); // header seen at probe edge 4 = in(1)+3
        assert_eq!(log1[1].0, 5);
        assert_eq!(log1[2].0, 6);
        assert!(log1[2].1.eop);
    }

    #[test]
    fn hpu_shifts_route() {
        let mut b = bench(1, 2, vec![flit(&[Port(1), Port(3)], 7, 0)]);
        b.sim.run_until(SimTime::from_ns(40));
        let log = b.logs[1].borrow();
        match log[0].1.payload {
            Payload::Head(mut h) => {
                assert_eq!(h.route.remaining(), 1);
                assert_eq!(h.route.pop_port(), Port(3));
                assert_eq!(h.conn, ConnId::new(7));
            }
            other => panic!("expected shifted header, got {other:?}"),
        }
    }

    #[test]
    fn port_latch_holds_until_eop_then_clears() {
        // Two back-to-back packets to different outputs on one input.
        let mut script = flit(&[Port(0)], 1, 10);
        script.extend(flit(&[Port(1)], 2, 20));
        let mut b = bench(1, 2, vec![script]);
        b.sim.run_until(SimTime::from_ns(60));
        assert_eq!(b.logs[0].borrow().len(), 3);
        assert_eq!(b.logs[1].borrow().len(), 3);
    }

    #[test]
    fn parallel_streams_to_distinct_outputs() {
        // TDM-aligned traffic: two inputs, two outputs, no contention.
        let mut b = bench(2, 2, vec![flit(&[Port(0)], 1, 0), flit(&[Port(1)], 2, 100)]);
        b.sim.run_until(SimTime::from_ns(40));
        assert_eq!(b.logs[0].borrow().len(), 3);
        assert_eq!(b.logs[1].borrow().len(), 3);
    }

    #[test]
    #[should_panic(expected = "contention")]
    fn contention_is_detected_and_fatal() {
        // Both inputs target output 0 in the same cycle — exactly what a
        // broken TDM allocation would produce.
        let mut b = bench(2, 2, vec![flit(&[Port(0)], 1, 0), flit(&[Port(0)], 2, 100)]);
        b.sim.run_until(SimTime::from_ns(40));
    }

    #[test]
    fn idle_gaps_between_flits_are_preserved() {
        // A flit, 3 idle cycles, another flit: output shows the same gap.
        let mut script = flit(&[Port(0)], 1, 0);
        script.extend([LinkWord::idle(); 3]);
        script.extend(flit(&[Port(0)], 1, 50));
        let mut b = bench(1, 1, vec![script]);
        b.sim.run_until(SimTime::from_ns(60));
        let log = b.logs[0].borrow();
        assert_eq!(log.len(), 6);
        // First flit at cycles 4,5,6; second at 10,11,12.
        let cycles: Vec<u64> = log.iter().map(|&(c, _)| c).collect();
        assert_eq!(cycles, vec![4, 5, 6, 10, 11, 12]);
    }

    #[test]
    fn forwarded_statistics_count_words() {
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let clk = sim.add_domain(ClockSpec::new(Frequency::from_mhz(500)));
        let input = sim.add_wire("in");
        let out = sim.add_wire("out");
        sim.add_module(
            clk,
            Feeder {
                out: input,
                script: flit(&[Port(0)], 0, 0),
                at: 0,
            },
        );
        // Keep a handle by boxing the router ourselves is not possible via
        // add_module; count via a probe instead.
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.add_module(
            clk,
            Probe {
                input: out,
                log: std::rc::Rc::clone(&log),
            },
        );
        sim.add_module(clk, Router::new("R", vec![input], vec![out]));
        sim.run_until(SimTime::from_ns(40));
        assert_eq!(log.borrow().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn router_needs_inputs() {
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let out = sim.add_wire("out");
        let _ = Router::new("R", vec![], vec![out]);
    }

    #[test]
    #[should_panic(expected = "exceeds the 3-bit port encoding")]
    fn router_arity_capped_at_8() {
        let mut sim: Simulator<LinkWord> = Simulator::new();
        let input = sim.add_wire("in");
        let outs: Vec<_> = (0..9).map(|i| sim.add_wire(format!("o{i}"))).collect();
        let _ = Router::new("R", vec![input], outs);
    }
}
