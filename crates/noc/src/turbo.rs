//! The flit-synchronous **turbo** execution engine.
//!
//! [`build_network`](crate::network::build_network) assembles the
//! cycle-accurate NoC as boxed [`Module`]s inside the event-driven
//! [`Simulator`](aelite_sim::scheduler::Simulator): every cycle pays for
//! binary-heap edge discovery, trait-object dispatch, per-word register
//! updates in every router pipeline stage and double-buffered
//! signal-store traffic. The paper's central claim makes almost all of
//! that avoidable: **flit-synchronous TDM operation makes network
//! timing fully static**. Once a flit is injected in a slot, its
//! passage through every router and link pipeline stage — and therefore
//! the exact destination-NI cycle of every one of its words — is a
//! closed-form function of the slot and the path, with no contention
//! anywhere (Section IV; the event-driven router models *panic* if that
//! invariant is ever violated, and [`build_turbo`] re-validates the
//! allocation up front instead).
//!
//! [`build_turbo`] therefore *compiles* the built router/link/NI module
//! graph:
//!
//! * the per-cycle dynamic state that actually carries semantics — NI
//!   slot tables, message queues, end-to-end credits — is lowered into
//!   flat per-connection state stepped by a slot-synchronous kernel
//!   (one decision per NI per TDM slot, exactly the instants at which
//!   the cycle-accurate NI makes them);
//! * the router pipeline registers and mesochronous link-stage FIFOs
//!   are lowered into their static timing: per connection, a compiled
//!   head-delay constant (3 cycles per router stage, one TDM slot per
//!   mesochronous pipeline stage) converts each injection into the
//!   exact delivery cycle and the per-word credit-return edges the
//!   event-driven sink would produce;
//! * clock-domain phases ([`NetworkKind::Mesochronous`]) fold into the
//!   compiled schedule as femtosecond offsets — the degenerate
//!   one-period hyperperiod of
//!   [`EdgeCalendar`](aelite_sim::calendar::EdgeCalendar) — so
//!   cross-domain credit visibility keeps its exact event-driven
//!   timing.
//!
//! **Equivalence is the contract**: a [`TurboNet`] produces delivery
//! logs bit-for-bit identical to the event-driven build of the same
//! spec/allocation/kind — the same [`FlitDelivery`] records including
//! destination cycle *and* absolute time — pinned by
//! `tests/turbo_golden.rs` on the paper platform and on 4×4/8×8 scaled
//! meshes in both clocking modes. The event-driven simulator stays the
//! golden reference; the turbo kernel is what makes simulation cheap
//! enough for the design-space exploration's `--validate` stage (see
//! `aelite_dse` and [`DseGrid`]-driven sweeps).
//!
//! [`Module`]: aelite_sim::module::Module
//! [`DseGrid`]: ../../aelite_dse/grid/struct.DseGrid.html

use crate::network::{NetworkKind, CREDIT_RETURN_CYCLES};
use crate::ni::{delivery_log, message_queue, DeliveryLog, FlitDelivery, Message, MessageQueue};
use aelite_alloc::allocate::Allocation;
use aelite_sim::time::{Frequency, SimTime};
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::ConnId;
use std::collections::VecDeque;
use std::rc::Rc;

/// Cycles a word spends in each router: the 3-stage pipeline of paper
/// Section IV (input register, HPU, switch).
const ROUTER_PIPELINE_CYCLES: u64 = 3;

/// Measured per-flit latency of one connection, tracked by the turbo
/// kernel (instrumentation only — it does not influence behaviour).
///
/// A flit becomes *ready* at `max(message arrival, end of the previous
/// flit's slot)` — the same per-flit definition as
/// [`FlitSim`](crate::flitsim::FlitSim) and the analytical bound
/// [`worst_case_latency_cycles`](Allocation::worst_case_latency_cycles) —
/// and its latency is the destination-NI delivery cycle minus that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnLatency {
    /// Flits delivered.
    pub flits: u64,
    /// Minimum observed per-flit latency, in cycles (`u64::MAX` before
    /// any delivery).
    pub min_cycles: u64,
    /// Maximum observed per-flit latency, in cycles.
    pub max_cycles: u64,
}

impl Default for ConnLatency {
    fn default() -> Self {
        ConnLatency {
            flits: 0,
            min_cycles: u64::MAX,
            max_cycles: 0,
        }
    }
}

/// A delivery already determined by an injection, waiting for the
/// simulation frontier to reach its destination edge.
#[derive(Debug, Clone, Copy)]
struct PendingDelivery {
    /// Destination-NI cycle at which the EoP word is sampled.
    eop_cycle: u64,
    /// Tag of the flit's first payload word.
    tag: u64,
    /// The cycle the flit became ready (latency instrumentation).
    ready: u64,
}

/// The compiled constant-bit-rate generator of one connection
/// (semantics of [`CbrSource`](crate::ni::CbrSource) with offset 0, as
/// `build_network` instantiates it), advanced lazily to each
/// observation point.
#[derive(Debug, Clone, Copy)]
struct CbrGen {
    words_per_message: u32,
    interval_cycles: u64,
    /// The next cycle at which a message will be pushed.
    next_cycle: u64,
    seq: u32,
}

impl CbrGen {
    /// Pushes every message the event-driven `CbrSource` would have
    /// pushed at edges up to and including `cycle`.
    fn advance(&mut self, cycle: u64, queue: &MessageQueue) {
        while self.next_cycle <= cycle {
            queue.borrow_mut().push_back(Message {
                seq: self.seq,
                words: self.words_per_message,
                ready_cycle: self.next_cycle,
            });
            self.seq += 1;
            self.next_cycle += self.interval_cycles;
        }
    }
}

/// Compiled per-connection state in struct-of-arrays layout: the NI-
/// resident dynamics (queue, credits, packetisation) plus the static
/// network timing. The slot kernel makes one decision per owned slot
/// and touches a handful of scalar fields per decision; parallel arrays
/// keep those scalars densely packed instead of strided across a large
/// per-connection struct — mega-mesh builds carry 10k–100k connections,
/// where the AoS layout wasted most of every cache line on the cold
/// queue/log/stats fields.
#[derive(Debug, Default)]
struct ConnSoa {
    conn: Vec<ConnId>,
    queue: Vec<MessageQueue>,
    log: Vec<DeliveryLog>,
    cbr: Vec<Option<CbrGen>>,
    /// Cycles from the injection slot-start to the destination NI
    /// sampling the packet header.
    head_delay: Vec<u64>,
    /// Source-NI clock phase, femtoseconds.
    src_phase_fs: Vec<u64>,
    /// Destination-NI clock phase, femtoseconds.
    dst_phase_fs: Vec<u64>,
    /// End-to-end credits, in payload words.
    credits: Vec<i64>,
    /// Scheduled credit returns `(visible-at fs, words)`, chronological —
    /// the compiled form of the credit bi-synchronous FIFO.
    credit_sched: Vec<VecDeque<(u64, u32)>>,
    /// In-flight flits, in injection order.
    in_network: Vec<VecDeque<PendingDelivery>>,
    /// The message being packetised, with words remaining.
    current_msg: Vec<Option<(Message, u32)>>,
    /// End of the previous flit's slot (latency instrumentation).
    ready_floor: Vec<u64>,
    stats: Vec<ConnLatency>,
}

impl ConnSoa {
    fn len(&self) -> usize {
        self.conn.len()
    }

    /// Appends one connection's compiled state across every array.
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        conn: ConnId,
        queue: MessageQueue,
        cbr: Option<CbrGen>,
        head_delay: u64,
        src_phase_fs: u64,
        dst_phase_fs: u64,
        credits: i64,
    ) {
        self.conn.push(conn);
        self.queue.push(queue);
        self.log.push(delivery_log());
        self.cbr.push(cbr);
        self.head_delay.push(head_delay);
        self.src_phase_fs.push(src_phase_fs);
        self.dst_phase_fs.push(dst_phase_fs);
        self.credits.push(credits);
        self.credit_sched.push(VecDeque::new());
        self.in_network.push(VecDeque::new());
        self.current_msg.push(None);
        self.ready_floor.push(0);
        self.stats.push(ConnLatency::default());
    }
}

/// Compiled source NI: its slot-owner table (indices into the global
/// connection vector) and its private slot cursor. Each NI advances
/// independently — their edges fall on different instants, so one run's
/// deadline can cut between them, and a shared cursor would skip the
/// slower NIs' boundary slots on resumed runs.
#[derive(Debug)]
struct SrcNi {
    phase_fs: u64,
    slot_owner: Vec<Option<u32>>,
    /// The next slot-start cycle this NI will decide.
    next_slot_cycle: u64,
}

/// A compiled cycle-accurate network. Build with [`build_turbo`]; drive
/// and observe through the same queue/log handles as
/// [`CycleNet`](crate::network::CycleNet).
#[derive(Debug)]
pub struct TurboNet {
    /// Per-connection source message queues (push to offer traffic).
    pub queues: Vec<(ConnId, MessageQueue)>,
    /// Per-connection delivery logs at the destination NIs.
    pub logs: Vec<(ConnId, DeliveryLog)>,
    /// Nominal clock of the NoC.
    pub frequency: Frequency,
    period_fs: u64,
    slot_cycles: u64,
    table_size: u64,
    payload_capacity: u32,
    mesochronous: bool,
    conns: ConnSoa,
    /// `ConnId::index() -> index into `conns``.
    conn_index: Vec<u32>,
    src_nis: Vec<SrcNi>,
    /// The largest deadline (in cycles) simulated so far.
    horizon_cycles: u64,
}

impl TurboNet {
    /// Runs all clock edges with time ≤ `cycles` nominal clock periods
    /// from simulation start — the same deadline rule as
    /// [`CycleNet::run_cycles`](crate::network::CycleNet::run_cycles),
    /// so repeated calls with increasing totals behave identically.
    pub fn run_cycles(&mut self, cycles: u64) {
        let deadline_fs = self
            .period_fs
            .checked_mul(cycles)
            .expect("deadline overflows femtoseconds");
        self.horizon_cycles = self.horizon_cycles.max(cycles);
        let TurboNet {
            period_fs,
            slot_cycles,
            table_size,
            payload_capacity,
            mesochronous,
            conns,
            src_nis,
            ..
        } = self;
        let (period_fs, slot_cycles, table_size) = (*period_fs, *slot_cycles, *table_size);
        let (payload_capacity, mesochronous) = (*payload_capacity, *mesochronous);

        // Slot loop: one decision per source NI per TDM slot — exactly
        // the instants at which the cycle-accurate NiSource can act.
        // NI-major order is equivalent to the event engine's time-major
        // order because source NIs share no state.
        for ni in src_nis.iter_mut() {
            while ni.phase_fs + ni.next_slot_cycle * period_fs <= deadline_fs {
                let c0 = ni.next_slot_cycle;
                ni.next_slot_cycle += slot_cycles;
                let slot = ((c0 / slot_cycles) % table_size) as usize;
                let Some(owner) = ni.slot_owner[slot] else {
                    continue;
                };
                let i = owner as usize;
                let now_fs = ni.phase_fs + c0 * period_fs;

                // Materialise CBR arrivals up to this edge (the event
                // engine's CbrSource runs before the NiSource at every
                // edge of their shared domain).
                if let Some(cbr) = &mut conns.cbr[i] {
                    cbr.advance(c0, &conns.queue[i]);
                }

                // Collect returned credits. The event engine pops at
                // every edge; popping at decision points is equivalent
                // because visibility is monotone and credits are only
                // observed here.
                while let Some(&(at, words)) = conns.credit_sched[i].front() {
                    if at > now_fs {
                        break;
                    }
                    conns.credit_sched[i].pop_front();
                    conns.credits[i] += i64::from(words);
                }

                // Fetch the next message if idle.
                if conns.current_msg[i].is_none() {
                    let msg = conns.queue[i]
                        .borrow_mut()
                        .front()
                        .copied()
                        .filter(|m| m.ready_cycle <= c0);
                    if let Some(m) = msg {
                        conns.queue[i].borrow_mut().pop_front();
                        conns.current_msg[i] = Some((m, m.words));
                    }
                }
                let Some((msg, remaining)) = conns.current_msg[i] else {
                    continue;
                };

                // Flow control: only send what the destination can
                // absorb; otherwise the slot idles (paper Section IV-A).
                let send_words = remaining.min(payload_capacity);
                if i64::from(send_words) > conns.credits[i] {
                    continue;
                }
                conns.credits[i] -= i64::from(send_words);
                let left = remaining - send_words;
                conns.current_msg[i] = if left > 0 { Some((msg, left)) } else { None };

                assert!(
                    !mesochronous || send_words == payload_capacity,
                    "{}: partial flit on a mesochronous link (the link FSM forwards \
                     whole flits; the event-driven reference underruns on this too)",
                    conns.conn[i]
                );

                // The flit's network passage is fully static: the EoP
                // word is sampled `head_delay + send_words` cycles after
                // the slot start, and each payload word's credit returns
                // one destination edge after that word lands.
                let head_delay = conns.head_delay[i];
                let eop_cycle = c0 + head_delay + u64::from(send_words);
                let ready = msg.ready_cycle.max(conns.ready_floor[i]);
                conns.ready_floor[i] = c0 + slot_cycles;
                conns.in_network[i].push_back(PendingDelivery {
                    eop_cycle,
                    tag: crate::ni::flit_base_tag(msg.seq, msg.words, remaining),
                    ready,
                });
                let credit_delay_fs = period_fs * CREDIT_RETURN_CYCLES;
                let dst_phase_fs = conns.dst_phase_fs[i];
                for k in 1..=u64::from(send_words) {
                    let drain_edge = c0 + head_delay + k + 1;
                    conns.credit_sched[i]
                        .push_back((dst_phase_fs + drain_edge * period_fs + credit_delay_fs, 1));
                }
            }
        }

        // Flush every delivery whose destination edge lies within the
        // run, in order, into the public logs.
        for i in 0..conns.len() {
            let dst_phase_fs = conns.dst_phase_fs[i];
            while let Some(&d) = conns.in_network[i].front() {
                if dst_phase_fs + d.eop_cycle * period_fs > deadline_fs {
                    break;
                }
                conns.in_network[i].pop_front();
                conns.log[i].borrow_mut().push(FlitDelivery {
                    conn: conns.conn[i],
                    tag: d.tag,
                    cycle: d.eop_cycle,
                    time: SimTime::from_fs(dst_phase_fs + d.eop_cycle * period_fs),
                });
                let latency = d.eop_cycle - d.ready;
                let stats = &mut conns.stats[i];
                stats.flits += 1;
                stats.min_cycles = stats.min_cycles.min(latency);
                stats.max_cycles = stats.max_cycles.max(latency);
            }
            // Settle CBR arrivals to this run's final source edge, so
            // the shared queue handles hold exactly what the event
            // engine's queues would.
            if let Some(cbr) = &mut conns.cbr[i] {
                if conns.src_phase_fs[i] <= deadline_fs {
                    cbr.advance(
                        (deadline_fs - conns.src_phase_fs[i]) / period_fs,
                        &conns.queue[i],
                    );
                }
            }
        }
    }

    /// The cycle index the engine will simulate next. After
    /// `run_cycles(c)` this is `c + 1`: the deadline is inclusive, so
    /// cycle `c`'s phase-zero edges have already run — exactly the edge
    /// count of the event-driven engine under the same deadline.
    #[must_use]
    pub fn next_cycle(&self) -> u64 {
        self.horizon_cycles + 1
    }

    /// The message queue of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is not part of the built spec.
    #[must_use]
    pub fn queue(&self, conn: ConnId) -> &MessageQueue {
        &self
            .queues
            .iter()
            .find(|(c, _)| *c == conn)
            .unwrap_or_else(|| panic!("{conn} not built"))
            .1
    }

    /// The delivery log of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is not part of the built spec.
    #[must_use]
    pub fn log(&self, conn: ConnId) -> &DeliveryLog {
        &self
            .logs
            .iter()
            .find(|(c, _)| *c == conn)
            .unwrap_or_else(|| panic!("{conn} not built"))
            .1
    }

    /// Delivery cycles of `conn`, in arrival order.
    #[must_use]
    pub fn delivery_cycles(&self, conn: ConnId) -> Vec<u64> {
        self.log(conn).borrow().iter().map(|d| d.cycle).collect()
    }

    /// Measured per-flit latency statistics of `conn` (see
    /// [`ConnLatency`] for the readiness definition).
    ///
    /// # Panics
    ///
    /// Panics if `conn` is not part of the built spec.
    #[must_use]
    pub fn latency(&self, conn: ConnId) -> ConnLatency {
        self.conns.stats[self.conn_index[conn.index()] as usize]
    }
}

/// Compiles the cycle-accurate network for `spec` under `alloc` into a
/// [`TurboNet`] — the turbo counterpart of
/// [`build_network`](crate::network::build_network), with identical
/// observable semantics (slot decisions, credit timing, traffic
/// generation, clock-domain phases) and bit-for-bit identical delivery
/// logs.
///
/// The event-driven router detects TDM contention at runtime and
/// panics; the turbo kernel instead re-validates the allocation here,
/// at build time, which is what licenses compiling the routers away.
///
/// # Panics
///
/// Panics if `kind` is inconsistent with
/// `spec.config().link_pipeline_stages` (see [`NetworkKind`]), if any
/// connection lacks a grant, or if `alloc` fails validation against
/// `spec`.
#[must_use]
pub fn build_turbo(
    spec: &SystemSpec,
    alloc: &Allocation,
    kind: NetworkKind,
    with_traffic: bool,
) -> TurboNet {
    let cfg = spec.config();
    let topo = spec.topology();
    match kind {
        NetworkKind::Synchronous => assert_eq!(
            cfg.link_pipeline_stages, 0,
            "synchronous build requires link_pipeline_stages == 0"
        ),
        NetworkKind::Mesochronous { .. } => assert_eq!(
            cfg.link_pipeline_stages, 1,
            "mesochronous build requires link_pipeline_stages == 1"
        ),
    }
    if let Err(violations) = aelite_alloc::validate_allocation(spec, alloc) {
        panic!(
            "allocation invalid for this spec ({} violation(s), first: {:?}) — \
             the turbo kernel requires the contention-free invariant",
            violations.len(),
            violations.first()
        );
    }

    let f = Frequency::from_mhz(cfg.frequency_mhz);
    let period_fs = f.period().as_fs();

    // Clock-domain phases from the same draw stream as `build_network`
    // (routers first, then NIs); compiled routers need no clock, so
    // only the NI portion of the draws is kept.
    let ni_phase: Vec<u64> = match kind {
        NetworkKind::Synchronous => vec![0; topo.ni_count()],
        NetworkKind::Mesochronous { phase_seed } => crate::network::meso_phase_draws_fs(
            phase_seed,
            topo.router_count() + topo.ni_count(),
            period_fs,
        )
        .split_off(topo.router_count()),
    };
    let mesochronous = matches!(kind, NetworkKind::Mesochronous { .. });
    let slot_cycles = u64::from(cfg.slot_cycles());
    let payload_capacity = cfg.payload_words_per_flit();

    // Bucket connection indices by source and destination NI up front:
    // a single O(conns) pass replaces the old O(NIs × conns) rescan per
    // NI, which dominated build time on mega-meshes (4096 NIs × 100k
    // connections). Pushing in spec order keeps each bucket in spec
    // order, so the construction order below — source NIs outer, spec
    // connections inner — is unchanged and the public queue/log vectors
    // still match the event engine's exactly.
    let mut by_src: Vec<Vec<usize>> = vec![Vec::new(); topo.ni_count()];
    let mut by_dst: Vec<Vec<usize>> = vec![Vec::new(); topo.ni_count()];
    for (ci, c) in spec.connections().iter().enumerate() {
        by_src[spec.ip_ni(c.src).index()].push(ci);
        by_dst[spec.ip_ni(c.dst).index()].push(ci);
    }

    // Per-connection compiled state, in `build_network`'s construction
    // order.
    let mut conns = ConnSoa::default();
    let mut conn_index: Vec<u32> = vec![u32::MAX; spec.conn_id_bound()];
    let mut queues: Vec<(ConnId, MessageQueue)> = Vec::new();
    let mut src_nis: Vec<SrcNi> = Vec::new();
    for ni in topo.nis() {
        if by_src[ni.index()].is_empty() {
            continue;
        }
        let mut slot_owner = vec![None; cfg.slot_table_size as usize];
        for &ci in &by_src[ni.index()] {
            let c = &spec.connections()[ci];
            let grant = alloc
                .grant(c.id)
                .unwrap_or_else(|| panic!("{} has no grant", c.id));
            let links = grant.links.len() as u64;
            // Static head timing: synchronously, each of the path's
            // routers holds a word for its 3 pipeline stages and the
            // sink samples one edge after the last commit; each
            // mesochronous link pipeline stage re-aligns the flit to
            // the next receiver flit-cycle boundary, costing one extra
            // TDM slot per link (paper Section V).
            let head_delay = match kind {
                NetworkKind::Synchronous => (links - 1) * ROUTER_PIPELINE_CYCLES + 1,
                NetworkKind::Mesochronous { .. } => {
                    links * slot_cycles * u64::from(cfg.slots_per_hop())
                        - u64::from(payload_capacity)
                }
            };
            let queue = message_queue();
            queues.push((c.id, Rc::clone(&queue)));
            let cbr = with_traffic.then(|| {
                let (words, interval) = crate::network::cbr_traffic_params(c, cfg);
                CbrGen {
                    words_per_message: words,
                    interval_cycles: interval,
                    next_cycle: 0,
                    seq: 0,
                }
            });
            let idx = conns.len() as u32;
            conn_index[c.id.index()] = idx;
            for &s in &grant.inject_slots {
                assert!(
                    s < cfg.slot_table_size,
                    "slot {s} out of range for {}",
                    c.id
                );
                assert!(
                    slot_owner[s as usize].is_none(),
                    "slot {s} claimed twice on one NI"
                );
                slot_owner[s as usize] = Some(idx);
            }
            conns.push(
                c.id,
                queue,
                cbr,
                head_delay,
                ni_phase[ni.index()],
                ni_phase[spec.ip_ni(c.dst).index()],
                i64::from(cfg.ni_buffer_words),
            );
        }
        src_nis.push(SrcNi {
            phase_fs: ni_phase[ni.index()],
            slot_owner,
            next_slot_cycle: 0,
        });
    }

    // Destination-side log handles, in `build_network`'s order
    // (destination NIs outer, spec connections inner).
    let mut logs: Vec<(ConnId, DeliveryLog)> = Vec::new();
    for ni in topo.nis() {
        for &ci in &by_dst[ni.index()] {
            let c = &spec.connections()[ci];
            let log = Rc::clone(&conns.log[conn_index[c.id.index()] as usize]);
            logs.push((c.id, log));
        }
    }

    TurboNet {
        queues,
        logs,
        frequency: f,
        period_fs,
        slot_cycles,
        table_size: u64::from(cfg.slot_table_size),
        payload_capacity,
        mesochronous,
        conns,
        conn_index,
        src_nis,
        horizon_cycles: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{build_network, NetworkKind};
    use aelite_alloc::allocate;
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::config::NocConfig;
    use aelite_spec::ids::NiId;
    use aelite_spec::topology::Topology;
    use aelite_spec::traffic::Bandwidth;

    fn two_ni_spec(stages: u32) -> SystemSpec {
        let topo = Topology::mesh(2, 1, 1);
        let mut cfg = NocConfig::paper_default();
        cfg.link_pipeline_stages = stages;
        let mut b = SystemSpecBuilder::new(topo, cfg);
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        b.add_connection(app, s, d, Bandwidth::from_mbytes_per_sec(100), 800);
        b.add_connection(app, d, s, Bandwidth::from_mbytes_per_sec(60), 800);
        b.build()
    }

    fn assert_logs_identical(
        spec: &SystemSpec,
        event: &crate::network::CycleNet,
        turbo: &TurboNet,
    ) {
        for c in spec.connections() {
            assert_eq!(
                *event.log(c.id).borrow(),
                *turbo.log(c.id).borrow(),
                "{} delivery logs diverge",
                c.id
            );
        }
    }

    #[test]
    fn synchronous_turbo_matches_event_engine_bit_for_bit() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let mut event = build_network(&spec, &alloc, NetworkKind::Synchronous, true);
        let mut turbo = build_turbo(&spec, &alloc, NetworkKind::Synchronous, true);
        event.run_cycles(5_000);
        turbo.run_cycles(5_000);
        assert_logs_identical(&spec, &event, &turbo);
        assert!(!turbo.delivery_cycles(spec.connections()[0].id).is_empty());
    }

    #[test]
    fn mesochronous_turbo_matches_event_engine_bit_for_bit() {
        let spec = two_ni_spec(1);
        let alloc = allocate(&spec).unwrap();
        for seed in [1u64, 99, 2026] {
            let kind = NetworkKind::Mesochronous { phase_seed: seed };
            let mut event = build_network(&spec, &alloc, kind, true);
            let mut turbo = build_turbo(&spec, &alloc, kind, true);
            event.run_cycles(5_000);
            turbo.run_cycles(5_000);
            assert_logs_identical(&spec, &event, &turbo);
        }
    }

    #[test]
    fn manual_traffic_flows_through_shared_queue_handles() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let mut turbo = build_turbo(&spec, &alloc, NetworkKind::Synchronous, false);
        turbo.queue(conn).borrow_mut().push_back(Message {
            seq: 0,
            words: 2,
            ready_cycle: 0,
        });
        turbo.run_cycles(2_000);
        assert_eq!(turbo.delivery_cycles(conn).len(), 1);
        assert_eq!(turbo.next_cycle(), 2_001);
    }

    #[test]
    fn manual_traffic_matches_event_engine() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let mut event = build_network(&spec, &alloc, NetworkKind::Synchronous, false);
        let mut turbo = build_turbo(&spec, &alloc, NetworkKind::Synchronous, false);
        for seq in 0..40 {
            let m = Message {
                seq,
                words: 3, // odd length: exercises the partial-flit tail
                ready_cycle: u64::from(seq) * 17,
            };
            event.queue(conn).borrow_mut().push_back(m);
            turbo.queue(conn).borrow_mut().push_back(m);
        }
        event.run_cycles(4_000);
        turbo.run_cycles(4_000);
        assert_logs_identical(&spec, &event, &turbo);
        assert!(turbo.delivery_cycles(conn).len() >= 40);
    }

    #[test]
    fn repeated_runs_extend_the_same_deadline_rule() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let mut oneshot = build_turbo(&spec, &alloc, NetworkKind::Synchronous, true);
        oneshot.run_cycles(4_000);
        let mut stepped = build_turbo(&spec, &alloc, NetworkKind::Synchronous, true);
        stepped.run_cycles(1_234);
        stepped.run_cycles(4_000);
        for c in spec.connections() {
            assert_eq!(*oneshot.log(c.id).borrow(), *stepped.log(c.id).borrow());
        }
    }

    #[test]
    fn mesochronous_stepped_runs_match_oneshot_and_event() {
        // Deadlines cutting between differently-phased NI edges must not
        // skip any NI's boundary slot: every NI advances on its own
        // cursor. Boundary deadlines are chosen on slot-start multiples,
        // where a shared cursor would lose slots of later-phased NIs.
        let spec = two_ni_spec(1);
        let alloc = allocate(&spec).unwrap();
        let kind = NetworkKind::Mesochronous { phase_seed: 5 };
        let mut event = build_network(&spec, &alloc, kind, true);
        event.run_cycles(4_002);
        let mut stepped = build_turbo(&spec, &alloc, kind, true);
        for deadline in [999, 1_500, 2_001, 3_000, 4_002] {
            stepped.run_cycles(deadline);
        }
        for c in spec.connections() {
            assert_eq!(*event.log(c.id).borrow(), *stepped.log(c.id).borrow());
        }
    }

    #[test]
    fn latency_statistics_track_delivered_flits() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let mut turbo = build_turbo(&spec, &alloc, NetworkKind::Synchronous, true);
        turbo.run_cycles(10_000);
        for c in spec.connections() {
            let lat = turbo.latency(c.id);
            assert!(lat.flits > 0, "{} delivered nothing", c.id);
            assert!(lat.min_cycles <= lat.max_cycles);
            let bound = alloc.worst_case_latency_cycles(&spec, c.id);
            assert!(
                lat.max_cycles <= bound,
                "{}: measured {} > bound {bound}",
                c.id,
                lat.max_cycles
            );
        }
    }

    #[test]
    #[should_panic(expected = "link_pipeline_stages == 1")]
    fn mesochronous_build_requires_stage_config() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let _ = build_turbo(
            &spec,
            &alloc,
            NetworkKind::Mesochronous { phase_seed: 1 },
            false,
        );
    }

    #[test]
    #[should_panic(expected = "link_pipeline_stages == 0")]
    fn synchronous_build_rejects_stage_config() {
        let spec = two_ni_spec(1);
        let alloc = allocate(&spec).unwrap();
        let _ = build_turbo(&spec, &alloc, NetworkKind::Synchronous, false);
    }
}
