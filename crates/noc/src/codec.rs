//! Physical wire format: packing header words into raw data bits.
//!
//! The simulator operates on the logical [`crate::phit::Header`]
//! for clarity, but the paper's router is a real circuit whose header must
//! fit the data word. This module defines that layout, proves (by
//! round-trip tests, including property-based ones) that every header the
//! models produce is encodable, and lets the synthesis model reason about
//! field widths.
//!
//! ## Layout (for a `w`-bit data word)
//!
//! ```text
//!  w-1        w-8 w-9                        0
//! ┌──────────────┬───────────────────────────┐
//! │ conn id (8b) │ route, 3b per hop, hop 0  │
//! │              │ in the least-significant  │
//! └──────────────┴───────────────────────────┘
//! ```
//!
//! * The route field holds `(w - 8) / 3` hops: 8 hops for the paper's
//!   32-bit configuration, 82 for 256-bit. Unused route bits are zero and
//!   harmless because the HPU only pops as many hops as the path has.
//! * End-to-end flow-control credits are **not** in this header: like
//!   Æthereal, aelite piggybacks credits on reverse-direction headers; our
//!   behavioural models account for them out of band with a configurable
//!   return delay (see `DESIGN.md`), so the wire format reserves no bits
//!   for them.

use crate::phit::{Header, RouteBits};
use aelite_spec::ids::ConnId;
use core::fmt;

/// Errors from packing a header into a data word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The route needs more hops than the word has route bits.
    RouteTooLong {
        /// Hops in the route.
        hops: usize,
        /// Hops the word can carry.
        capacity: usize,
    },
    /// The connection id exceeds the 8-bit field.
    ConnTooLarge {
        /// The offending connection index.
        conn: u32,
    },
    /// The data word is too narrow to hold any header.
    WordTooNarrow {
        /// The offending width in bits.
        width_bits: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::RouteTooLong { hops, capacity } => {
                write!(
                    f,
                    "route of {hops} hops exceeds word capacity of {capacity}"
                )
            }
            CodecError::ConnTooLarge { conn } => {
                write!(f, "connection id {conn} exceeds the 8-bit header field")
            }
            CodecError::WordTooNarrow { width_bits } => {
                write!(f, "{width_bits}-bit words cannot carry a header")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Route hops a `width_bits`-wide header word can carry.
///
/// The physical field is `width_bits - 8` bits (3 bits per hop); this
/// simulator models word contents in a `u64`, so the modelled capacity is
/// additionally capped at 18 hops (56 route bits + 8 conn bits = 64).
/// Real paths in the evaluated topologies never exceed 10 hops, so the
/// cap is never binding in practice.
#[must_use]
pub fn route_capacity_hops(width_bits: u32) -> usize {
    ((width_bits.saturating_sub(8) / 3) as usize).min(18)
}

/// Packs `header` into the raw bits of a `width_bits`-wide data word.
///
/// Only the low `width_bits` of the returned value are meaningful (wider
/// configurations would use a wider return type in RTL; 64 bits suffice
/// for every route the models build — see [`MAX_ROUTE_HOPS`]).
///
/// # Errors
///
/// Returns a [`CodecError`] when the header does not fit the word.
///
/// [`MAX_ROUTE_HOPS`]: crate::phit::MAX_ROUTE_HOPS
pub fn pack_header(header: &Header, width_bits: u32) -> Result<u64, CodecError> {
    if width_bits < 16 {
        return Err(CodecError::WordTooNarrow { width_bits });
    }
    let capacity = route_capacity_hops(width_bits);
    if header.route.remaining() > capacity {
        return Err(CodecError::RouteTooLong {
            hops: header.route.remaining(),
            capacity,
        });
    }
    let conn = header.conn.index() as u32;
    if conn > 0xFF {
        return Err(CodecError::ConnTooLarge { conn });
    }
    // Route bits occupy the low `width_bits - 8` bits, the connection id
    // the top byte. In the u64 model the conn byte sits at bit 56 for
    // words wider than 64 bits (see `route_capacity_hops`).
    let shift = (width_bits - 8).min(56);
    Ok(header.route.raw_bits() | (u64::from(conn) << shift))
}

/// Unpacks a header from raw bits, given the route length in hops.
///
/// The route length is not stored in the word (the HPU never needs it: it
/// pops exactly one hop per router, and the packet leaves the network when
/// it reaches an NI), so decoding for inspection requires it.
///
/// # Errors
///
/// Returns a [`CodecError`] when `hops` exceeds the word's route capacity.
pub fn unpack_header(bits: u64, width_bits: u32, hops: usize) -> Result<Header, CodecError> {
    if width_bits < 16 {
        return Err(CodecError::WordTooNarrow { width_bits });
    }
    if hops > route_capacity_hops(width_bits) {
        return Err(CodecError::RouteTooLong {
            hops,
            capacity: route_capacity_hops(width_bits),
        });
    }
    let conn_shift = (width_bits - 8).min(56);
    let conn = ((bits >> conn_shift) & 0xFF) as u32;
    let route_mask = (1u64 << conn_shift) - 1;
    let route_bits = bits & route_mask;
    let mut ports = Vec::with_capacity(hops);
    for i in 0..hops {
        ports.push(aelite_spec::ids::Port(
            ((route_bits >> (3 * i)) & 0b111) as u8,
        ));
    }
    Ok(Header {
        route: RouteBits::from_ports(&ports),
        conn: ConnId::new(conn),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_spec::ids::Port;

    fn header(ports: &[Port], conn: u32) -> Header {
        Header {
            route: RouteBits::from_ports(ports),
            conn: ConnId::new(conn),
        }
    }

    #[test]
    fn capacity_matches_paper_widths() {
        assert_eq!(route_capacity_hops(32), 8);
        assert_eq!(route_capacity_hops(64), 18);
        // Wider words are capped by the u64 model (physically 40 and 82).
        assert_eq!(route_capacity_hops(128), 18);
        assert_eq!(route_capacity_hops(256), 18);
    }

    #[test]
    fn wide_word_roundtrip_with_large_conn_id() {
        // Regression: conn ids used to overflow the u64 model for words
        // wider than 64 bits.
        for width in [64u32, 128, 256] {
            let h = header(&[Port(5); 10], 255);
            let bits = pack_header(&h, width).expect("fits");
            let back = unpack_header(bits, width, 10).expect("unpacks");
            assert_eq!(back, h, "width {width}");
        }
    }

    #[test]
    fn pack_unpack_roundtrip_32bit() {
        let h = header(&[Port(3), Port(0), Port(7), Port(1)], 42);
        let bits = pack_header(&h, 32).unwrap();
        let back = unpack_header(bits, 32, 4).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn packed_word_fits_width() {
        let h = header(&[Port(7); 8], 255);
        let bits = pack_header(&h, 32).unwrap();
        assert!(bits < (1u64 << 32), "{bits:#x} exceeds 32 bits");
    }

    #[test]
    fn route_too_long_for_narrow_word() {
        let h = header(&[Port(1); 9], 0);
        assert_eq!(
            pack_header(&h, 32),
            Err(CodecError::RouteTooLong {
                hops: 9,
                capacity: 8
            })
        );
        // The same route fits a 64-bit word.
        assert!(pack_header(&h, 64).is_ok());
    }

    #[test]
    fn conn_id_limited_to_8_bits() {
        let h = header(&[Port(1)], 256);
        assert_eq!(
            pack_header(&h, 32),
            Err(CodecError::ConnTooLarge { conn: 256 })
        );
    }

    #[test]
    fn word_too_narrow() {
        let h = header(&[Port(1)], 0);
        assert!(matches!(
            pack_header(&h, 8),
            Err(CodecError::WordTooNarrow { .. })
        ));
        assert!(matches!(
            unpack_header(0, 8, 0),
            Err(CodecError::WordTooNarrow { .. })
        ));
    }

    #[test]
    fn partially_consumed_route_still_packs() {
        // After a router pops a hop, the shifted header must re-encode.
        let mut h = header(&[Port(3), Port(5), Port(2)], 9);
        let _ = h.route.pop_port();
        let bits = pack_header(&h, 32).unwrap();
        let back = unpack_header(bits, 32, 2).unwrap();
        assert_eq!(back.route, h.route);
        assert_eq!(back.conn, h.conn);
    }

    #[test]
    fn error_display() {
        let e = CodecError::RouteTooLong {
            hops: 9,
            capacity: 8,
        };
        assert!(e.to_string().contains('9'));
        assert!(CodecError::WordTooNarrow { width_bits: 8 }
            .to_string()
            .contains('8'));
    }
}
