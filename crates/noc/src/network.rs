//! Builders assembling a complete cycle-accurate aelite NoC.
//!
//! Given a [`SystemSpec`] and its [`Allocation`], [`build_network`] wires
//! routers, link stages and NIs into one
//! [`aelite_sim::scheduler::Simulator`] and returns handles for
//! driving traffic and observing deliveries.
//!
//! Two physical organisations are supported, mirroring the paper:
//!
//! * [`NetworkKind::Synchronous`] — every element shares one clock and
//!   links connect routers directly (Section IV; requires
//!   `link_pipeline_stages == 0`);
//! * [`NetworkKind::Mesochronous`] — every router and NI runs in its own
//!   clock domain at the same nominal frequency with a seeded random
//!   phase, and every link carries a bi-synchronous-FIFO pipeline stage
//!   (Section V; requires `link_pipeline_stages == 1`).

use crate::meso::{meso_fifo, MesoFsm, MesoWriter};
use crate::ni::{
    credit_channel, delivery_log, message_queue, CbrSource, DeliveryLog, MessageQueue, NiSink,
    NiSource, SinkConn, SourceConn,
};
use crate::phit::LinkWord;
use aelite_alloc::allocate::Allocation;
use aelite_sim::clock::{ClockSpec, DomainId};
use aelite_sim::scheduler::Simulator;
use aelite_sim::signal::Wire;
use aelite_sim::time::{Frequency, SimDuration, SimTime};
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::ConnId;
use aelite_spec::topology::Endpoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The physical organisation of the built network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// One global clock, directly connected links (paper Section IV).
    Synchronous,
    /// Per-element clocks at equal nominal frequency with seeded random
    /// phases below half a period, and one link pipeline stage per link
    /// (paper Section V).
    Mesochronous {
        /// Seed for the per-element phase draw.
        phase_seed: u64,
    },
}

/// A built cycle-accurate network plus its testbench handles.
#[derive(Debug)]
pub struct CycleNet {
    /// The simulator holding every module.
    pub sim: Simulator<LinkWord>,
    /// Per-connection source message queues (push to offer traffic).
    pub queues: Vec<(ConnId, MessageQueue)>,
    /// Per-connection delivery logs at the destination NIs.
    pub logs: Vec<(ConnId, DeliveryLog)>,
    /// Nominal clock of the NoC.
    pub frequency: Frequency,
}

impl CycleNet {
    /// Runs the network for `cycles` nominal clock cycles.
    pub fn run_cycles(&mut self, cycles: u64) {
        let deadline = SimTime::ZERO + self.frequency.period() * cycles;
        self.sim.run_until(deadline);
    }

    /// The message queue of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is not part of the built spec.
    #[must_use]
    pub fn queue(&self, conn: ConnId) -> &MessageQueue {
        &self
            .queues
            .iter()
            .find(|(c, _)| *c == conn)
            .unwrap_or_else(|| panic!("{conn} not built"))
            .1
    }

    /// The delivery log of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` is not part of the built spec.
    #[must_use]
    pub fn log(&self, conn: ConnId) -> &DeliveryLog {
        &self
            .logs
            .iter()
            .find(|(c, _)| *c == conn)
            .unwrap_or_else(|| panic!("{conn} not built"))
            .1
    }

    /// Delivery cycles of `conn`, in arrival order.
    #[must_use]
    pub fn delivery_cycles(&self, conn: ConnId) -> Vec<u64> {
        self.log(conn).borrow().iter().map(|d| d.cycle).collect()
    }
}

/// Cycles a credit takes from the destination NI back to the source; kept
/// identical to [`FlitSimConfig::credit_return_cycles`]'s default so the
/// two simulators agree exactly.
///
/// [`FlitSimConfig::credit_return_cycles`]: crate::flitsim::FlitSimConfig
pub const CREDIT_RETURN_CYCLES: u64 = 24;

/// The CBR traffic-generator parameters derived from a connection's
/// contract: `(words per message, interval in cycles)`. Shared by
/// [`build_network`] and the turbo kernel's compiled generators so the
/// two engines can never diverge on arrival schedules.
pub(crate) fn cbr_traffic_params(
    c: &aelite_spec::app::Connection,
    cfg: &aelite_spec::config::NocConfig,
) -> (u32, u64) {
    let words = c.message_bytes.div_ceil(cfg.data_width_bytes()).max(1);
    let interval = (u64::from(c.message_bytes) * cfg.frequency_mhz * 1_000_000)
        .div_ceil(c.bandwidth.bytes_per_sec().max(1))
        .max(1);
    (words, interval)
}

/// The per-element phase draws of a mesochronous build, in femtoseconds
/// below half a period: one draw per router, then one per NI, from a
/// `phase_seed`-seeded stream. Shared by [`build_network`] and the
/// turbo kernel so both engines see identical clock phases.
pub(crate) fn meso_phase_draws_fs(phase_seed: u64, elements: usize, period_fs: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(phase_seed);
    let half = period_fs / 2;
    (0..elements)
        .map(|_| rng.gen_range(0..half.max(1)))
        .collect()
}

/// Builds the cycle-accurate network for `spec` under `alloc`.
///
/// With `with_traffic`, every connection gets a constant-rate source
/// offering its contracted bandwidth (the paper's evaluation regime);
/// otherwise the testbench drives the queues itself.
///
/// # Panics
///
/// Panics if `kind` is inconsistent with
/// `spec.config().link_pipeline_stages` (see [`NetworkKind`]), or if any
/// connection lacks a grant.
#[must_use]
pub fn build_network(
    spec: &SystemSpec,
    alloc: &Allocation,
    kind: NetworkKind,
    with_traffic: bool,
) -> CycleNet {
    let cfg = spec.config();
    let topo = spec.topology();
    match kind {
        NetworkKind::Synchronous => assert_eq!(
            cfg.link_pipeline_stages, 0,
            "synchronous build requires link_pipeline_stages == 0"
        ),
        NetworkKind::Mesochronous { .. } => assert_eq!(
            cfg.link_pipeline_stages, 1,
            "mesochronous build requires link_pipeline_stages == 1"
        ),
    }

    let f = Frequency::from_mhz(cfg.frequency_mhz);
    let mut sim: Simulator<LinkWord> = Simulator::new();

    // Clock domains.
    let (router_domains, ni_domains): (Vec<DomainId>, Vec<DomainId>) = match kind {
        NetworkKind::Synchronous => {
            let clk = sim.add_domain(ClockSpec::new(f));
            (vec![clk; topo.router_count()], vec![clk; topo.ni_count()])
        }
        NetworkKind::Mesochronous { phase_seed } => {
            let draws = meso_phase_draws_fs(
                phase_seed,
                topo.router_count() + topo.ni_count(),
                f.period().as_fs(),
            );
            let mut draws = draws.into_iter();
            let mut draw = |sim: &mut Simulator<LinkWord>| {
                let phase = SimDuration::from_fs(draws.next().expect("sized draw list"));
                sim.add_domain(ClockSpec::new(f).with_phase(phase))
            };
            let routers = (0..topo.router_count()).map(|_| draw(&mut sim)).collect();
            let nis = (0..topo.ni_count()).map(|_| draw(&mut sim)).collect();
            (routers, nis)
        }
    };

    // Wires. `rx_wire[l]` is what the link's receiver reads; in the
    // mesochronous build the sender drives a separate `tx_wire[l]` feeding
    // the pipeline stage.
    let mut tx_wire: Vec<Wire<LinkWord>> = Vec::with_capacity(topo.link_count());
    let mut rx_wire: Vec<Wire<LinkWord>> = Vec::with_capacity(topo.link_count());
    for l in topo.links() {
        let tx = sim.add_wire(format!("{l}.tx"));
        match kind {
            NetworkKind::Synchronous => {
                tx_wire.push(tx);
                rx_wire.push(tx);
            }
            NetworkKind::Mesochronous { .. } => {
                let rx = sim.add_wire(format!("{l}.rx"));
                tx_wire.push(tx);
                rx_wire.push(rx);
            }
        }
    }

    // Link pipeline stages.
    if let NetworkKind::Mesochronous { .. } = kind {
        for l in topo.links() {
            let link = topo.link(l);
            let sender_domain = match link.from {
                Endpoint::Router(r, _) => router_domains[r.index()],
                Endpoint::Ni(n) => ni_domains[n.index()],
            };
            let receiver_domain = match link.to {
                Endpoint::Router(r, _) => router_domains[r.index()],
                Endpoint::Ni(n) => ni_domains[n.index()],
            };
            let fifo = meso_fifo(format!("{l}.fifo"), f.period());
            sim.add_module(
                sender_domain,
                MesoWriter::new(format!("{l}.wr"), tx_wire[l.index()], fifo.clone()),
            );
            sim.add_module(
                receiver_domain,
                MesoFsm::new(format!("{l}.fsm"), fifo, rx_wire[l.index()], cfg.flit_words),
            );
        }
    }

    // Routers.
    for r in topo.routers() {
        let inputs: Vec<_> = (0..topo.arity(r))
            .map(|p| {
                rx_wire[topo
                    .in_link(r, aelite_spec::ids::Port(p as u8))
                    .expect("port")
                    .index()]
            })
            .collect();
        let outputs: Vec<_> = (0..topo.arity(r))
            .map(|p| {
                tx_wire[topo
                    .out_link(r, aelite_spec::ids::Port(p as u8))
                    .expect("port")
                    .index()]
            })
            .collect();
        sim.add_module(
            router_domains[r.index()],
            crate::router::Router::new(format!("{r}"), inputs, outputs),
        );
    }

    // NIs: group connections by source and destination NI.
    let credit_delay = f.period() * CREDIT_RETURN_CYCLES;
    let mut queues: Vec<(ConnId, MessageQueue)> = Vec::new();
    let mut logs: Vec<(ConnId, DeliveryLog)> = Vec::new();
    // Build credit channels once per connection; shared by src and dst NI.
    let mut credit: Vec<Option<crate::ni::CreditChannel>> = vec![None; spec.conn_id_bound()];
    for c in spec.connections() {
        credit[c.id.index()] = Some(credit_channel(format!("{}.credit", c.id), credit_delay));
    }

    for ni in topo.nis() {
        let domain = ni_domains[ni.index()];
        // Source side.
        let mut src_conns = Vec::new();
        for c in spec.connections() {
            if spec.ip_ni(c.src) != ni {
                continue;
            }
            let grant = alloc
                .grant(c.id)
                .unwrap_or_else(|| panic!("{} has no grant", c.id));
            let queue = message_queue();
            queues.push((c.id, std::rc::Rc::clone(&queue)));
            if with_traffic {
                let (words, interval) = cbr_traffic_params(c, cfg);
                sim.add_module(
                    domain,
                    CbrSource::new(
                        format!("{}.cbr", c.id),
                        std::rc::Rc::clone(&queue),
                        words,
                        interval,
                        0,
                    ),
                );
            }
            src_conns.push(SourceConn {
                conn: c.id,
                route: grant.path.ports.clone(),
                inject_slots: grant.inject_slots.clone(),
                queue,
                credits_in: credit[c.id.index()].clone().expect("built above"),
                initial_credit: cfg.ni_buffer_words,
            });
        }
        if !src_conns.is_empty() {
            sim.add_module(
                domain,
                NiSource::new(
                    format!("{ni}.src"),
                    tx_wire[topo.ni_ingress_link(ni).index()],
                    cfg.slot_table_size,
                    cfg.flit_words,
                    src_conns,
                ),
            );
        }

        // Sink side.
        let mut sink_conns = Vec::new();
        for c in spec.connections() {
            if spec.ip_ni(c.dst) != ni {
                continue;
            }
            let log = delivery_log();
            logs.push((c.id, std::rc::Rc::clone(&log)));
            sink_conns.push(SinkConn {
                conn: c.id,
                log,
                credits_out: credit[c.id.index()].clone().expect("built above"),
                drain_interval: 0,
            });
        }
        if !sink_conns.is_empty() {
            sim.add_module(
                domain,
                NiSink::new(
                    format!("{ni}.sink"),
                    rx_wire[topo.ni_egress_link(ni).index()],
                    sink_conns,
                ),
            );
        }
    }

    CycleNet {
        sim,
        queues,
        logs,
        frequency: f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ni::Message;
    use aelite_alloc::allocate;
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::config::NocConfig;
    use aelite_spec::ids::NiId;
    use aelite_spec::topology::Topology;
    use aelite_spec::traffic::Bandwidth;

    fn two_ni_spec(stages: u32) -> SystemSpec {
        let topo = Topology::mesh(2, 1, 1);
        let mut cfg = NocConfig::paper_default();
        cfg.link_pipeline_stages = stages;
        let mut b = SystemSpecBuilder::new(topo, cfg);
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        b.add_connection(app, s, d, Bandwidth::from_mbytes_per_sec(100), 800);
        b.add_connection(app, d, s, Bandwidth::from_mbytes_per_sec(60), 800);
        b.build()
    }

    #[test]
    fn synchronous_network_delivers_manual_traffic() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let mut net = build_network(&spec, &alloc, NetworkKind::Synchronous, false);
        let conn = spec.connections()[0].id;
        net.queue(conn).borrow_mut().push_back(Message {
            seq: 0,
            words: 2,
            ready_cycle: 0,
        });
        net.run_cycles(2_000);
        let cycles = net.delivery_cycles(conn);
        assert_eq!(cycles.len(), 1, "one flit expected, got {cycles:?}");
    }

    #[test]
    fn synchronous_delivery_matches_pipeline_formula() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let grant = alloc.grant(conn).unwrap();
        let mut net = build_network(&spec, &alloc, NetworkKind::Synchronous, false);
        net.queue(conn).borrow_mut().push_back(Message {
            seq: 0,
            words: 2,
            ready_cycle: 0,
        });
        net.run_cycles(2_000);
        let cycles = net.delivery_cycles(conn);
        // First reserved slot s >= 0, delivered at 3 * (s + n_links).
        let s = u64::from(grant.inject_slots[0]);
        let expect = 3 * (s + grant.links.len() as u64);
        assert_eq!(cycles, vec![expect]);
    }

    #[test]
    fn mesochronous_network_delivers_and_stays_flit_synchronous() {
        let spec = two_ni_spec(1);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        for seed in [1u64, 99] {
            let mut net = build_network(
                &spec,
                &alloc,
                NetworkKind::Mesochronous { phase_seed: seed },
                false,
            );
            net.queue(conn).borrow_mut().push_back(Message {
                seq: 0,
                words: 2,
                ready_cycle: 0,
            });
            net.run_cycles(2_000);
            let cycles = net.delivery_cycles(conn);
            assert_eq!(cycles.len(), 1, "seed {seed}: {cycles:?}");
        }
    }

    #[test]
    fn mesochronous_delivery_cycle_is_phase_invariant() {
        // The delivery cycle (in the receiver's local clock) must not
        // depend on the random phases — the flit-synchronous property.
        let spec = two_ni_spec(1);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let mut seen = Vec::new();
        for seed in [3u64, 17, 2026] {
            let mut net = build_network(
                &spec,
                &alloc,
                NetworkKind::Mesochronous { phase_seed: seed },
                false,
            );
            net.queue(conn).borrow_mut().push_back(Message {
                seq: 0,
                words: 2,
                ready_cycle: 0,
            });
            net.run_cycles(2_000);
            seen.push(net.delivery_cycles(conn));
        }
        assert!(
            seen.windows(2).all(|w| w[0] == w[1]),
            "delivery cycles vary with phases: {seen:?}"
        );
    }

    #[test]
    fn cbr_traffic_flows_end_to_end() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let mut net = build_network(&spec, &alloc, NetworkKind::Synchronous, true);
        net.run_cycles(20_000);
        for c in spec.connections() {
            let n = net.delivery_cycles(c.id).len();
            assert!(n > 10, "{}: only {n} deliveries", c.id);
        }
    }

    #[test]
    #[should_panic(expected = "link_pipeline_stages == 1")]
    fn mesochronous_build_requires_stage_config() {
        let spec = two_ni_spec(0);
        let alloc = allocate(&spec).unwrap();
        let _ = build_network(
            &spec,
            &alloc,
            NetworkKind::Mesochronous { phase_seed: 1 },
            false,
        );
    }

    #[test]
    #[should_panic(expected = "link_pipeline_stages == 0")]
    fn synchronous_build_rejects_stage_config() {
        let spec = two_ni_spec(1);
        let alloc = allocate(&spec).unwrap();
        let _ = build_network(&spec, &alloc, NetworkKind::Synchronous, false);
    }
}
