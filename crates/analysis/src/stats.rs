//! Latency statistics: summaries, percentiles and histograms.
//!
//! The paper's Section VII argues from latency *distributions*: best
//! effort gives lower averages but a much wider distribution with
//! significantly larger maxima. These helpers turn raw per-flit latency
//! samples into the numbers that argument needs.

use core::fmt;

/// A five-number-plus summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarises `samples`.
    ///
    /// Returns `None` for an empty slice: an empty measurement has no
    /// meaningful summary and silently returning zeros would corrupt
    /// downstream comparisons.
    #[must_use]
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        })
    }

    /// The spread (max − min) — the paper's "distribution of flit
    /// latencies is much larger" is this number.
    #[must_use]
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.1} p50={:.1} mean={:.1} p95={:.1} p99={:.1} max={:.1}",
            self.count, self.min, self.p50, self.mean, self.p95, self.p99, self.max
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `0..=100`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if p == 0.0 {
        return sorted[0];
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A linear-binned histogram for latency distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Samples below `lo` / above `hi`.
    under: u64,
    over: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs bins");
        assert!(hi > lo, "empty histogram range");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            under: 0,
            over: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.under += 1;
        } else if v >= self.hi {
            self.over += 1;
        } else {
            let n = self.bins.len();
            let i = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[i.min(n - 1)] += 1;
        }
    }

    /// Extends with many samples.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for v in it {
            self.record(v);
        }
    }

    /// The count per bin.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_low, bin_high, count)` rows for printing.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * i as f64, self.lo + w * (i + 1) as f64, c))
    }

    /// Samples outside the range (under, over).
    #[must_use]
    pub fn outliers(&self) -> (u64, u64) {
        (self.under, self.over)
    }

    /// Total recorded samples, including outliers.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.under + self.over
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.spread(), 4.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn summary_is_order_independent() {
        let a = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_sorted(&sorted, 50.0), 50.0);
        assert_eq!(percentile_sorted(&sorted, 95.0), 95.0);
        assert_eq!(percentile_sorted(&sorted, 99.0), 99.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 100.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_of_empty_panics() {
        let _ = percentile_sorted(&[], 50.0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all([0.5, 1.5, 2.5, 9.9, -1.0, 10.0, 25.0]);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_rows_cover_range() {
        let mut h = Histogram::new(0.0, 100.0, 4);
        h.record(50.0);
        let rows: Vec<_> = h.rows().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, 0.0);
        assert_eq!(rows[3].1, 100.0);
        assert_eq!(rows[2], (50.0, 75.0, 1));
    }

    #[test]
    fn summary_display_is_complete() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        let text = s.to_string();
        for key in ["n=2", "min=", "max=", "p95="] {
            assert!(text.contains(key), "{text}");
        }
    }

    #[test]
    #[should_panic(expected = "needs bins")]
    fn zero_bin_histogram_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
