//! End-to-end flow-control buffer sizing.
//!
//! aelite uses credit-based end-to-end flow control so that NI buffers can
//! never overflow (paper Section III). The flip side: an *undersized*
//! destination buffer throttles the connection below its reserved rate,
//! because the source runs out of credits while they are still in flight.
//! This module computes the buffer that guarantees credits never stall a
//! connection using its full reservation — the analytical companion to
//! the simulators' credit models.
//!
//! A credit spends `round_trip = pipeline + credit_return` cycles away
//! from the source. The source injects one flit (of `payload` words) in
//! every reserved slot, so in the worst case it must be able to spend
//! credits for every reserved slot inside any round-trip-sized window of
//! the TDM table, plus the flit in flight at the window boundary.

use aelite_alloc::allocate::{pipeline_cycles, Allocation};
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::ConnId;

/// The maximum number of reserved slots inside any circular window of
/// `window` slots (a window covers slots `[s, s + window)`).
///
/// # Panics
///
/// Panics if `slots` is not strictly ascending within `size`.
#[must_use]
pub fn max_slots_in_window(slots: &[u32], size: u32, window: u32) -> u32 {
    for w in slots.windows(2) {
        assert!(w[0] < w[1], "slots must be strictly ascending");
    }
    if let Some(&last) = slots.last() {
        assert!(last < size, "slot out of table range");
    }
    if slots.is_empty() || window == 0 {
        return 0;
    }
    if window >= size {
        // Full revolutions plus the remainder window.
        let revs = window / size;
        return revs * slots.len() as u32 + max_slots_in_window(slots, size, window % size);
    }
    let n = slots.len();
    let mut best = 0u32;
    for (i, &start) in slots.iter().enumerate() {
        // Count reserved slots in [start, start + window), circularly.
        let mut count = 0u32;
        for k in 0..n {
            let s = slots[(i + k) % n];
            let dist = (s + size - start) % size;
            if dist < window {
                count += 1;
            }
        }
        best = best.max(count);
    }
    best
}

/// The destination-buffer size (in words) that guarantees credits never
/// throttle `conn` below its reserved rate, for a given credit-return
/// delay in cycles.
///
/// # Panics
///
/// Panics if `conn` has no grant in `alloc`.
#[must_use]
pub fn required_buffer_words(
    spec: &SystemSpec,
    alloc: &Allocation,
    conn: ConnId,
    credit_return_cycles: u64,
) -> u32 {
    let cfg = spec.config();
    let grant = alloc.grant(conn).expect("connection has no grant");
    let round_trip = pipeline_cycles(cfg, grant.links.len()) + credit_return_cycles;
    // Window in slots, rounded up, plus one slot for the flit injected at
    // the window's leading edge.
    let window = u32::try_from(round_trip.div_ceil(u64::from(cfg.slot_cycles())))
        .expect("window fits u32")
        + 1;
    let in_flight = max_slots_in_window(&grant.inject_slots, cfg.slot_table_size, window);
    in_flight * cfg.payload_words_per_flit()
}

/// Checks every connection of a designed system against a buffer size,
/// returning the connections whose reservations could stall.
#[must_use]
pub fn undersized_connections(
    spec: &SystemSpec,
    alloc: &Allocation,
    buffer_words: u32,
    credit_return_cycles: u64,
) -> Vec<(ConnId, u32)> {
    spec.connections()
        .iter()
        .filter_map(|c| {
            let need = required_buffer_words(spec, alloc, c.id, credit_return_cycles);
            (need > buffer_words).then_some((c.id, need))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::allocate;
    use aelite_spec::generate::paper_workload;

    #[test]
    fn window_count_basics() {
        // Slots {0, 8, 16, 24} of 32.
        let slots = [0, 8, 16, 24];
        assert_eq!(max_slots_in_window(&slots, 32, 1), 1);
        assert_eq!(max_slots_in_window(&slots, 32, 8), 1);
        assert_eq!(max_slots_in_window(&slots, 32, 9), 2);
        assert_eq!(max_slots_in_window(&slots, 32, 32), 4);
        assert_eq!(max_slots_in_window(&slots, 32, 0), 0);
        assert_eq!(max_slots_in_window(&[], 32, 10), 0);
    }

    #[test]
    fn window_count_handles_clusters() {
        // Clustered slots stress the worst window.
        let slots = [0, 1, 2, 20];
        assert_eq!(max_slots_in_window(&slots, 32, 3), 3);
        assert_eq!(max_slots_in_window(&slots, 32, 4), 3);
        // Wrapping window catches 20,0,1,2 within 15 slots.
        assert_eq!(max_slots_in_window(&slots, 32, 15), 4);
    }

    #[test]
    fn window_larger_than_table_multiplies() {
        let slots = [0, 16];
        assert_eq!(max_slots_in_window(&slots, 32, 64), 4);
        // 81 consecutive slots starting at 0 catch 0,16,32,48,64,80.
        assert_eq!(max_slots_in_window(&slots, 32, 64 + 17), 6);
    }

    #[test]
    fn paper_default_buffer_covers_most_connections() {
        // With the paper-default 24-word buffers and 24-cycle credit
        // return, the bulk of the workload cannot stall; heavy (many-
        // slot) connections may need more — which is exactly what this
        // analysis is for.
        let spec = paper_workload(42);
        let alloc = allocate(&spec).unwrap();
        let short = undersized_connections(&spec, &alloc, spec.config().ni_buffer_words, 24);
        assert!(
            short.len() < 60,
            "unexpectedly many undersized connections: {}",
            short.len()
        );
        // And the analysis is self-consistent: sizing each connection at
        // its own requirement clears it.
        for (conn, need) in short {
            assert!(required_buffer_words(&spec, &alloc, conn, 24) == need);
        }
    }

    #[test]
    fn more_slots_need_more_buffer() {
        let spec = paper_workload(1);
        let alloc = allocate(&spec).unwrap();
        // Find two connections with different slot counts.
        let mut sized: Vec<(usize, u32)> = spec
            .connections()
            .iter()
            .map(|c| {
                (
                    alloc.grant(c.id).unwrap().inject_slots.len(),
                    required_buffer_words(&spec, &alloc, c.id, 24),
                )
            })
            .collect();
        sized.sort_unstable();
        let (min_slots, min_need) = sized[0];
        let (max_slots, max_need) = sized[sized.len() - 1];
        assert!(max_slots > min_slots);
        assert!(
            max_need >= min_need,
            "more slots must not need less buffer ({max_need} vs {min_need})"
        );
    }

    #[test]
    fn longer_credit_return_needs_more_buffer() {
        let spec = paper_workload(1);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let short = required_buffer_words(&spec, &alloc, conn, 6);
        let long = required_buffer_words(&spec, &alloc, conn, 600);
        assert!(long > short, "{long} vs {short}");
    }
}
