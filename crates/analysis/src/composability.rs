//! Composability verification: timing equality across system compositions.
//!
//! aelite's central claim (paper Sections I, IV, VII) is *composability*:
//! the temporal behaviour of one application is completely unaffected by
//! every other application. The checkable consequence: per-connection
//! flit-delivery timelines are **bit-identical** whether the application
//! runs alone, with some other applications, or in the full system.
//!
//! This module compares such timelines in simulator-independent form, so
//! the same checker serves the flit-level simulator, the cycle-accurate
//! network and (to demonstrate the *failure* of composability) the
//! best-effort baseline.

use aelite_spec::ids::ConnId;
use core::fmt;

/// One connection's delivery timeline: every delivery instant, in order,
/// in any consistent unit (cycles for the flit simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// The connection observed.
    pub conn: ConnId,
    /// Delivery instants, ascending.
    pub deliveries: Vec<u64>,
}

/// Where two timelines of the same connection first diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Divergence {
    /// Delivery `index` happens at different instants.
    Instant {
        /// Index of the first differing delivery.
        index: usize,
        /// Instant in the reference run.
        reference: u64,
        /// Instant in the compared run.
        compared: u64,
    },
    /// One run delivered more flits than the other.
    Length {
        /// Deliveries in the reference run.
        reference: usize,
        /// Deliveries in the compared run.
        compared: usize,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Instant {
                index,
                reference,
                compared,
            } => write!(f, "delivery #{index} moved from {reference} to {compared}"),
            Divergence::Length {
                reference,
                compared,
            } => write!(f, "delivery count changed from {reference} to {compared}"),
        }
    }
}

/// The outcome of a composability comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposabilityResult {
    /// Connections whose timelines diverged, with the first divergence.
    pub divergent: Vec<(ConnId, Divergence)>,
    /// Number of connections compared.
    pub compared: usize,
}

impl ComposabilityResult {
    /// Whether every compared connection was timing-identical.
    #[must_use]
    pub fn is_composable(&self) -> bool {
        self.divergent.is_empty()
    }
}

impl fmt::Display for ComposabilityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_composable() {
            write!(
                f,
                "composable: {} connections timing-identical",
                self.compared
            )
        } else {
            write!(
                f,
                "NOT composable: {}/{} connections diverged (first: {} {})",
                self.divergent.len(),
                self.compared,
                self.divergent[0].0,
                self.divergent[0].1
            )
        }
    }
}

/// Compares two sets of timelines connection by connection.
///
/// Connections present in `reference` but absent from `compared` are
/// ignored (the compared run may simulate a restricted system); the check
/// covers exactly the intersection.
#[must_use]
pub fn compare_timelines(reference: &[Timeline], compared: &[Timeline]) -> ComposabilityResult {
    let mut divergent = Vec::new();
    let mut n = 0;
    for r in reference {
        let Some(c) = compared.iter().find(|c| c.conn == r.conn) else {
            continue;
        };
        n += 1;
        if let Some(d) = first_divergence(&r.deliveries, &c.deliveries) {
            divergent.push((r.conn, d));
        }
    }
    ComposabilityResult {
        divergent,
        compared: n,
    }
}

fn first_divergence(reference: &[u64], compared: &[u64]) -> Option<Divergence> {
    for (i, (&a, &b)) in reference.iter().zip(compared).enumerate() {
        if a != b {
            return Some(Divergence::Instant {
                index: i,
                reference: a,
                compared: b,
            });
        }
    }
    if reference.len() != compared.len() {
        return Some(Divergence::Length {
            reference: reference.len(),
            compared: compared.len(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(conn: u32, deliveries: &[u64]) -> Timeline {
        Timeline {
            conn: ConnId::new(conn),
            deliveries: deliveries.to_vec(),
        }
    }

    #[test]
    fn identical_timelines_are_composable() {
        let a = [tl(0, &[3, 9, 15]), tl(1, &[6, 12])];
        let b = [tl(0, &[3, 9, 15]), tl(1, &[6, 12])];
        let r = compare_timelines(&a, &b);
        assert!(r.is_composable());
        assert_eq!(r.compared, 2);
    }

    #[test]
    fn shifted_instant_detected() {
        let a = [tl(0, &[3, 9, 15])];
        let b = [tl(0, &[3, 10, 15])];
        let r = compare_timelines(&a, &b);
        assert!(!r.is_composable());
        assert_eq!(
            r.divergent[0],
            (
                ConnId::new(0),
                Divergence::Instant {
                    index: 1,
                    reference: 9,
                    compared: 10
                }
            )
        );
    }

    #[test]
    fn missing_deliveries_detected() {
        let a = [tl(0, &[3, 9, 15])];
        let b = [tl(0, &[3, 9])];
        let r = compare_timelines(&a, &b);
        assert_eq!(
            r.divergent[0].1,
            Divergence::Length {
                reference: 3,
                compared: 2
            }
        );
    }

    #[test]
    fn absent_connections_are_skipped() {
        let a = [tl(0, &[1]), tl(1, &[2])];
        let b = [tl(0, &[1])];
        let r = compare_timelines(&a, &b);
        assert!(r.is_composable());
        assert_eq!(r.compared, 1);
    }

    #[test]
    fn prefix_difference_beats_length_difference() {
        // If both an instant differs and lengths differ, report the
        // instant (it is the earliest evidence).
        let a = [tl(0, &[1, 2, 3])];
        let b = [tl(0, &[1, 9])];
        let r = compare_timelines(&a, &b);
        assert!(matches!(
            r.divergent[0].1,
            Divergence::Instant { index: 1, .. }
        ));
    }

    #[test]
    fn display_summarises() {
        let ok = compare_timelines(&[tl(0, &[1])], &[tl(0, &[1])]);
        assert!(ok.to_string().contains("composable"));
        let bad = compare_timelines(&[tl(0, &[1])], &[tl(0, &[2])]);
        let text = bad.to_string();
        assert!(text.contains("NOT composable"), "{text}");
        assert!(text.contains("c0"), "{text}");
    }
}
