//! # aelite-analysis — bounds, statistics and composability verification
//!
//! The measurement side of the reproduction:
//!
//! * [`stats`] — latency summaries, percentiles and histograms (the
//!   paper's distribution arguments).
//! * [`buffer`] — end-to-end flow-control buffer sizing (credits must
//!   cover the round trip or reservations stall).
//! * [`mod@lr_server`] — latency-rate server parameters (ρ, Θ) per
//!   connection, the abstraction the CompSOC line of work composes
//!   system-level guarantees from.
//! * [`service`] — checking measured throughput/latency against
//!   contracts and, for GS runs, the analytical worst-case bounds, plus
//!   the minimum-satisfying-frequency sweep used for the best-effort
//!   comparison.
//! * [`composability`] — bit-exact timeline comparison across system
//!   compositions (the paper's central claim).
//!
//! # Examples
//!
//! ```
//! use aelite_analysis::stats::Summary;
//!
//! let s = Summary::of(&[10.0, 12.0, 11.0, 50.0]).expect("non-empty");
//! assert_eq!(s.max, 50.0);
//! assert!(s.spread() > 30.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod composability;
pub mod lr_server;
pub mod service;
pub mod stats;

pub use buffer::{max_slots_in_window, required_buffer_words, undersized_connections};
pub use composability::{compare_timelines, ComposabilityResult, Divergence, Timeline};
pub use lr_server::{first_conformance_violation, lr_server, LrServer};
pub use service::{
    minimum_satisfying_frequency, verify_service, ConnVerdict, MeasuredService, ServiceReport,
};
pub use stats::{percentile_sorted, Histogram, Summary};
