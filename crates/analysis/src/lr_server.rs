//! Latency-rate (LR) server abstraction of a guaranteed-service
//! connection.
//!
//! TDM connections are classical **LR servers** (Stiliadis & Varma): after
//! a service latency Θ, a busy connection is served at least at rate ρ.
//! The Æthereal/CompSOC literature uses this abstraction to compose
//! NoC guarantees with processor and memory schedulers; deriving (ρ, Θ)
//! from an aelite allocation makes this library usable in that wider
//! real-time analysis, and the conformance check below ties the
//! abstraction back to the simulators.
//!
//! For a connection with slot set *T* in a table of *S* slots:
//!
//! * **rate** `ρ = |T| · payload_bytes / (S · slot_cycles)` bytes/cycle;
//! * **latency** `Θ = max_gap · slot_cycles + pipeline` cycles — the
//!   worst-case time before the sustained-rate service begins.
//!
//! The service guarantee: in any busy period starting at time `t0`, the
//! bytes delivered by time `t` satisfy
//! `delivered(t) ≥ ρ · max(0, t − t0 − Θ)`.

use aelite_alloc::allocate::{pipeline_cycles, Allocation};
use aelite_alloc::table::worst_window;
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::ConnId;
use core::fmt;

/// The (ρ, Θ) parameters of one connection's LR server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrServer {
    /// Guaranteed service rate, bytes per cycle.
    pub rate_bytes_per_cycle: f64,
    /// Service latency, cycles.
    pub latency_cycles: u64,
}

impl LrServer {
    /// The minimum bytes delivered `elapsed` cycles into a busy period.
    #[must_use]
    pub fn service_bound_bytes(&self, elapsed: u64) -> f64 {
        self.rate_bytes_per_cycle * elapsed.saturating_sub(self.latency_cycles) as f64
    }
}

impl fmt::Display for LrServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rho = {:.4} B/cycle, theta = {} cycles",
            self.rate_bytes_per_cycle, self.latency_cycles
        )
    }
}

/// Derives the LR-server parameters of `conn` from its allocation.
///
/// # Panics
///
/// Panics if `conn` has no grant in `alloc`.
#[must_use]
pub fn lr_server(spec: &SystemSpec, alloc: &Allocation, conn: ConnId) -> LrServer {
    let cfg = spec.config();
    let grant = alloc.grant(conn).expect("connection has no grant");
    let payload = f64::from(cfg.payload_words_per_flit()) * f64::from(cfg.data_width_bytes());
    let slots = grant.inject_slots.len() as f64;
    let table_cycles = f64::from(cfg.slot_table_size) * f64::from(cfg.slot_cycles());
    let rate = slots * payload / table_cycles;
    let gap = worst_window(&grant.inject_slots, cfg.slot_table_size, 1);
    let theta =
        u64::from(gap) * u64::from(cfg.slot_cycles()) + pipeline_cycles(cfg, grant.links.len());
    LrServer {
        rate_bytes_per_cycle: rate,
        latency_cycles: theta,
    }
}

/// Checks a delivery trace against an LR service curve.
///
/// `deliveries` are `(cycle, bytes)` pairs of a **continuously busy**
/// connection (e.g. a saturating source), busy from cycle `busy_start`.
/// Returns the first violation, if any: the delivery index where the
/// cumulative bytes fall below the bound.
#[must_use]
pub fn first_conformance_violation(
    server: &LrServer,
    busy_start: u64,
    deliveries: &[(u64, u64)],
) -> Option<usize> {
    let mut cumulative = 0u64;
    for (i, &(cycle, bytes)) in deliveries.iter().enumerate() {
        cumulative += bytes;
        let elapsed = cycle.saturating_sub(busy_start);
        // Compare against the bound just before this delivery landed:
        // service curves are lower bounds on what has arrived *by* t.
        let bound = server.service_bound_bytes(elapsed);
        if (cumulative as f64) < bound - 1e-9 {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::allocate;
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::config::NocConfig;
    use aelite_spec::generate::paper_workload;
    use aelite_spec::ids::NiId;
    use aelite_spec::topology::Topology;
    use aelite_spec::traffic::Bandwidth;

    fn one_conn(bw_mb: u64) -> SystemSpec {
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        b.add_connection(app, s, d, Bandwidth::from_mbytes_per_sec(bw_mb), 1_000);
        b.build()
    }

    #[test]
    fn rate_matches_allocated_bandwidth() {
        let spec = one_conn(100);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let server = lr_server(&spec, &alloc, conn);
        let cfg = spec.config();
        let rate_bytes_per_sec = server.rate_bytes_per_cycle * cfg.frequency_mhz as f64 * 1e6;
        let allocated = alloc.allocated_bandwidth(&spec, conn).bytes_per_sec() as f64;
        // allocated_bandwidth floors to whole bytes/s per slot; the exact
        // LR rate sits within a few parts per million of it.
        assert!(
            (rate_bytes_per_sec - allocated).abs() / allocated < 1e-5,
            "{rate_bytes_per_sec} vs {allocated}"
        );
    }

    #[test]
    fn theta_matches_worst_case_latency_bound() {
        // Theta equals the per-flit worst-case latency bound: wait for
        // the farthest slot plus the pipeline.
        let spec = one_conn(50);
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let server = lr_server(&spec, &alloc, conn);
        assert_eq!(
            server.latency_cycles,
            alloc.worst_case_latency_cycles(&spec, conn)
        );
    }

    #[test]
    fn service_bound_is_zero_inside_theta() {
        let s = LrServer {
            rate_bytes_per_cycle: 0.5,
            latency_cycles: 100,
        };
        assert_eq!(s.service_bound_bytes(50), 0.0);
        assert_eq!(s.service_bound_bytes(100), 0.0);
        assert!((s.service_bound_bytes(200) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn conformance_detects_violations() {
        let s = LrServer {
            rate_bytes_per_cycle: 1.0,
            latency_cycles: 10,
        };
        // Conforming: 8 bytes every 8 cycles after a 10-cycle start.
        let good: Vec<(u64, u64)> = (1..20).map(|k| (10 + k * 8, 8)).collect();
        assert_eq!(first_conformance_violation(&s, 0, &good), None);
        // Violating: a long silent stretch.
        let bad = vec![(18u64, 8u64), (200, 8)];
        assert_eq!(first_conformance_violation(&s, 0, &bad), Some(1));
    }

    #[test]
    fn every_paper_connection_is_an_lr_server() {
        let spec = paper_workload(42);
        let alloc = allocate(&spec).unwrap();
        for c in spec.connections() {
            let server = lr_server(&spec, &alloc, c.id);
            assert!(server.rate_bytes_per_cycle > 0.0);
            assert!(server.latency_cycles > 0);
            // The contract is implied by the server parameters.
            let cfg = spec.config();
            let rate_bps = server.rate_bytes_per_cycle * cfg.frequency_mhz as f64 * 1e6;
            assert!(rate_bps >= c.bandwidth.bytes_per_sec() as f64);
            let theta_ns = server.latency_cycles as f64 * cfg.cycle_ns();
            assert!(theta_ns <= c.max_latency_ns as f64);
        }
    }

    #[test]
    fn display_shows_parameters() {
        let s = LrServer {
            rate_bytes_per_cycle: 0.25,
            latency_cycles: 42,
        };
        let text = s.to_string();
        assert!(text.contains("0.25") && text.contains("42"), "{text}");
    }
}
