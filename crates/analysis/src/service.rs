//! Service verification: measured behaviour against contracts and bounds.
//!
//! Takes per-connection measurements (from any simulator — the flit-level
//! GS simulator, the cycle-accurate network or the best-effort baseline)
//! and checks them against the connections' contracts and, for GS runs,
//! the analytical worst-case bounds.

use aelite_alloc::allocate::Allocation;
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::ConnId;
use core::fmt;

/// One connection's measured service, in simulator-independent form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredService {
    /// The connection measured.
    pub conn: ConnId,
    /// Delivered payload bytes.
    pub bytes: u64,
    /// Minimum flit latency, cycles.
    pub min_latency_cycles: u64,
    /// Mean flit latency, cycles.
    pub mean_latency_cycles: f64,
    /// Maximum flit latency, cycles.
    pub max_latency_cycles: u64,
}

/// The verdict for one connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnVerdict {
    /// The connection judged.
    pub conn: ConnId,
    /// Contracted bandwidth, bytes/s.
    pub required_bw: u64,
    /// Achieved bandwidth, bytes/s.
    pub achieved_bw: f64,
    /// Contracted latency, ns.
    pub required_latency_ns: u64,
    /// Measured maximum latency, ns.
    pub max_latency_ns: f64,
    /// Measured mean latency, ns.
    pub mean_latency_ns: f64,
    /// Analytical worst-case bound, ns (GS runs only).
    pub bound_ns: Option<f64>,
    /// Whether throughput met the contract.
    pub throughput_ok: bool,
    /// Whether the measured maximum latency met the contract.
    pub latency_ok: bool,
    /// Whether the measurement respected the analytical bound (GS only).
    pub within_bound: bool,
}

impl ConnVerdict {
    /// Whether every checked property held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.throughput_ok && self.latency_ok && self.within_bound
    }
}

impl fmt::Display for ConnVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: bw {:.1}/{:.1} MB/s, lat max {:.1}/{} ns{} [{}]",
            self.conn,
            self.achieved_bw / 1e6,
            self.required_bw as f64 / 1e6,
            self.max_latency_ns,
            self.required_latency_ns,
            match self.bound_ns {
                Some(b) => format!(", bound {b:.1} ns"),
                None => String::new(),
            },
            if self.ok() { "ok" } else { "VIOLATED" }
        )
    }
}

/// A whole-system service report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// One verdict per measured connection.
    pub verdicts: Vec<ConnVerdict>,
}

impl ServiceReport {
    /// Whether every connection met every checked property.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.verdicts.iter().all(ConnVerdict::ok)
    }

    /// The violating verdicts.
    pub fn violations(&self) -> impl Iterator<Item = &ConnVerdict> + '_ {
        self.verdicts.iter().filter(|v| !v.ok())
    }

    /// The verdict of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` was not part of the report.
    #[must_use]
    pub fn verdict(&self, conn: ConnId) -> &ConnVerdict {
        self.verdicts
            .iter()
            .find(|v| v.conn == conn)
            .unwrap_or_else(|| panic!("{conn} not in report"))
    }
}

/// Judges measured services against `spec`'s contracts.
///
/// `alloc` enables the analytical-bound check; pass `None` for best-effort
/// runs where no bound exists (their whole point).
///
/// `duration_cycles` is the measurement window used to convert bytes to
/// bandwidth; `throughput_tolerance` is the accepted shortfall fraction
/// for constant-rate sources (ramp-up effects), e.g. `0.05`.
#[must_use]
pub fn verify_service(
    spec: &SystemSpec,
    alloc: Option<&Allocation>,
    measured: &[MeasuredService],
    duration_cycles: u64,
    throughput_tolerance: f64,
) -> ServiceReport {
    let cfg = spec.config();
    let cycle_ns = cfg.cycle_ns();
    let verdicts = measured
        .iter()
        .map(|m| {
            let c = spec.connection(m.conn);
            let achieved_bw =
                m.bytes as f64 * cfg.frequency_mhz as f64 * 1e6 / duration_cycles as f64;
            let max_latency_ns = m.max_latency_cycles as f64 * cycle_ns;
            let bound_ns = alloc.map(|a| a.worst_case_latency_ns(spec, m.conn));
            let within_bound =
                bound_ns.is_none_or(|b| m.max_latency_cycles as f64 * cycle_ns <= b + 1e-9);
            ConnVerdict {
                conn: m.conn,
                required_bw: c.bandwidth.bytes_per_sec(),
                achieved_bw,
                required_latency_ns: c.max_latency_ns,
                max_latency_ns,
                mean_latency_ns: m.mean_latency_cycles * cycle_ns,
                bound_ns,
                throughput_ok: achieved_bw
                    >= c.bandwidth.bytes_per_sec() as f64 * (1.0 - throughput_tolerance),
                latency_ok: max_latency_ns <= c.max_latency_ns as f64,
                within_bound,
            }
        })
        .collect();
    ServiceReport { verdicts }
}

/// The smallest frequency (among `candidates_mhz`, ascending) at which a
/// measurement-producing function yields a fully-satisfied service report,
/// or `None` if none does.
///
/// This regenerates the paper's "the NoC requires an operating frequency
/// of more than 900 MHz before the latency observed during simulation is
/// lower than requested for all connections" — the caller's closure runs
/// the best-effort simulator at each candidate frequency.
pub fn minimum_satisfying_frequency<F>(candidates_mhz: &[u64], mut run_at: F) -> Option<u64>
where
    F: FnMut(u64) -> ServiceReport,
{
    candidates_mhz.iter().copied().find(|&f| run_at(f).all_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::allocate;
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::config::NocConfig;
    use aelite_spec::ids::NiId;
    use aelite_spec::topology::Topology;
    use aelite_spec::traffic::Bandwidth;

    fn spec_one() -> SystemSpec {
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        b.add_connection(app, s, d, Bandwidth::from_mbytes_per_sec(100), 400);
        b.build()
    }

    fn measured(conn: ConnId, bytes: u64, max_lat: u64) -> MeasuredService {
        MeasuredService {
            conn,
            bytes,
            min_latency_cycles: 10,
            mean_latency_cycles: max_lat as f64 / 2.0,
            max_latency_cycles: max_lat,
        }
    }

    #[test]
    fn satisfied_contract_passes() {
        let spec = spec_one();
        let alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        // 100 MB/s over 500k cycles at 500 MHz = 100e6 * 1e-3 s = 100 kB.
        let m = [measured(conn, 100_000, 50)];
        let report = verify_service(&spec, Some(&alloc), &m, 500_000, 0.05);
        assert!(report.all_ok(), "{:?}", report.verdicts);
        assert!(report.verdict(conn).bound_ns.is_some());
    }

    #[test]
    fn throughput_shortfall_detected() {
        let spec = spec_one();
        let conn = spec.connections()[0].id;
        let m = [measured(conn, 10_000, 50)]; // 10x short
        let report = verify_service(&spec, None, &m, 500_000, 0.05);
        assert!(!report.all_ok());
        let v = report.verdict(conn);
        assert!(!v.throughput_ok);
        assert!(v.latency_ok);
        assert_eq!(report.violations().count(), 1);
    }

    #[test]
    fn latency_violation_detected() {
        let spec = spec_one();
        let conn = spec.connections()[0].id;
        // 400 ns at 2 ns/cycle = 200 cycles; 250 exceeds it.
        let m = [measured(conn, 100_000, 250)];
        let report = verify_service(&spec, None, &m, 500_000, 0.05);
        assert!(!report.verdict(conn).latency_ok);
    }

    #[test]
    fn bound_check_only_with_allocation() {
        let spec = spec_one();
        let conn = spec.connections()[0].id;
        let m = [measured(conn, 100_000, 5_000)];
        // Without allocation: no bound computed, within_bound trivially ok.
        let be = verify_service(&spec, None, &m, 500_000, 0.05);
        assert!(be.verdict(conn).bound_ns.is_none());
        assert!(be.verdict(conn).within_bound);
        // With allocation: 5000 cycles far exceeds any bound.
        let alloc = allocate(&spec).unwrap();
        let gs = verify_service(&spec, Some(&alloc), &m, 500_000, 0.05);
        assert!(!gs.verdict(conn).within_bound);
    }

    #[test]
    fn minimum_frequency_sweep_finds_crossover() {
        // A fake system that satisfies its contract from 900 MHz upward.
        let spec = spec_one();
        let conn = spec.connections()[0].id;
        let f = minimum_satisfying_frequency(&[500, 700, 900, 1100], |mhz| {
            let lat = if mhz >= 900 { 50 } else { 500 };
            verify_service(&spec, None, &[measured(conn, 100_000, lat)], 500_000, 0.05)
        });
        assert_eq!(f, Some(900));
    }

    #[test]
    fn minimum_frequency_none_when_unsatisfiable() {
        let spec = spec_one();
        let conn = spec.connections()[0].id;
        let f = minimum_satisfying_frequency(&[500, 600], |_| {
            verify_service(&spec, None, &[measured(conn, 0, 9_999)], 500_000, 0.05)
        });
        assert_eq!(f, None);
    }

    #[test]
    fn verdict_display_flags_violations() {
        let spec = spec_one();
        let conn = spec.connections()[0].id;
        let report = verify_service(&spec, None, &[measured(conn, 0, 9_999)], 500_000, 0.05);
        let text = report.verdict(conn).to_string();
        assert!(text.contains("VIOLATED"), "{text}");
    }
}
