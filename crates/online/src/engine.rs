//! The churn engine: streaming connection admission over a live
//! allocation, one unified [`submit`](ChurnEngine::submit) entry point
//! and a batched admission round for independent request bursts.

use crate::api::{AdmissionError, AdmissionRequest, AdmissionResponse, RefusalCause};
use aelite_alloc::{
    AdmissionRound, AllocScratch, Allocation, Allocator, FaultMask, RouteCache, RouteProvider,
};
use aelite_spec::churn::ChurnOp;
use aelite_spec::ids::ConnId;
use aelite_spec::SystemSpec;

/// Counters of the work a [`ChurnEngine`] has performed, broken down by
/// request kind so serving layers report refusal and rollback rates
/// without re-deriving them from traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Individual connection setups that succeeded (including those
    /// inside completed use-case switches).
    pub setups: u64,
    /// Individual connection teardowns performed (including the close
    /// side of use-case switches; rollback closes are not counted).
    pub teardowns: u64,
    /// Use-case switches applied end to end.
    pub switches: u64,
    /// Single open requests refused (platform could not admit, or the
    /// connection already held a grant).
    pub refused_opens: u64,
    /// Single close requests refused (the connection held no grant).
    pub refused_closes: u64,
    /// Use-case switches that failed and were rolled back.
    pub refused_switches: u64,
    /// Open-set admissions that had succeeded inside switches and were
    /// undone by rollbacks.
    pub rolled_back_opens: u64,
    /// Refusals (of any kind, already counted in the per-kind counters
    /// above) whose cause was [`RefusalCause::LinkDown`] — admissions
    /// that failed *because of the fault mask*, not because of capacity.
    pub refused_link_down: u64,
}

impl ChurnStats {
    /// Total successful setup + teardown operations — the numerator of
    /// the ops/sec throughput metric.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.setups + self.teardowns
    }

    /// Total refused requests of any kind.
    #[must_use]
    pub fn refusals(&self) -> u64 {
        self.refused_opens + self.refused_closes + self.refused_switches
    }

    /// Field-wise difference `self - before` — the counters accumulated
    /// *since* a snapshot taken earlier from the same engine. Callers
    /// that warm an engine up and then measure a window (the
    /// `aelite-serve` replay pipeline) report this delta rather than the
    /// lifetime totals.
    #[must_use]
    pub fn delta(&self, before: &ChurnStats) -> ChurnStats {
        ChurnStats {
            setups: self.setups - before.setups,
            teardowns: self.teardowns - before.teardowns,
            switches: self.switches - before.switches,
            refused_opens: self.refused_opens - before.refused_opens,
            refused_closes: self.refused_closes - before.refused_closes,
            refused_switches: self.refused_switches - before.refused_switches,
            rolled_back_opens: self.rolled_back_opens - before.rolled_back_opens,
            refused_link_down: self.refused_link_down - before.refused_link_down,
        }
    }
}

/// A high-throughput online reconfiguration engine for one platform.
///
/// The engine owns everything the admission hot path needs to be O(Δ)
/// per request: the [`Allocator`] heuristic, a persistent
/// [`RouteProvider`] (each NI pair's candidate routes are enumerated at
/// most once over the engine's lifetime; the default is the lazy hashed
/// [`RouteCache`], whose memory tracks the pairs actually routed) and an
/// [`AllocScratch`] whose buffers — including recycled grants from
/// earlier teardowns — make the steady-state open/close loop
/// allocation-free.
///
/// Every request is one [`AdmissionRequest`] serviced by
/// [`submit`](Self::submit); [`open`](Self::open), [`close`](Self::close)
/// and [`switch`](Self::switch) are thin wrappers over the same path, and
/// [`submit_batch`](Self::submit_batch) applies a burst of independent
/// requests as one batched admission round, amortising the per-request
/// validation over the burst.
///
/// All specs passed to an engine must describe the same platform
/// (topology and NoC config) it was created for; restricted use-case
/// views of one system ([`SystemSpec::restricted_to`]) are the intended
/// usage. The engine never moves an existing grant: every operation
/// touches only the slots of the connections named in the request — the
/// paper's undisturbed-reconfiguration model, structurally enforced.
#[derive(Debug)]
pub struct ChurnEngine {
    allocator: Allocator,
    routes: Box<dyn RouteProvider>,
    scratch: AllocScratch,
    /// Reusable admission-order buffer for use-case switches.
    order: Vec<ConnId>,
    /// Reusable rollback journal for use-case switches.
    opened: Vec<ConnId>,
    /// Reusable canonical-order buffer for batched rounds.
    batch_order: Vec<usize>,
    /// Bursts at or below this length take the serial per-request path
    /// inside [`submit_batch`](Self::submit_batch) (still canonical
    /// order, so outcomes are bit-identical): round setup is O(1) with
    /// the cached connection-id bound, so a tiny burst no longer
    /// amortises the batch bookkeeping.
    serial_floor: usize,
    stats: ChurnStats,
}

/// How [`ChurnEngine::reroute`] moved a connection onto a fault-free
/// path — the rung of the recovery ladder that succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerouteOutcome {
    /// The replacement was admitted while the old grant's reservations
    /// were still in place: the connection's capacity was handed over as
    /// one delta, never released to third parties in between.
    MakeBeforeBreak,
    /// The old reservations had to be freed before the replacement fit
    /// (the new path reuses slots the old one held).
    BreakThenMake,
}

/// Default burst-size floor below which [`ChurnEngine::submit_batch`]
/// applies requests through the serial per-request path (in the same
/// canonical order — outcomes are identical; only the bookkeeping
/// differs). Measured crossover on the paper platform after the
/// conn-id-bound cache made round setup O(1); see `BENCH_SERVE.json`.
pub const SERIAL_FLOOR: usize = 4;

impl ChurnEngine {
    /// An engine for `spec`'s platform with the default [`Allocator`].
    #[must_use]
    pub fn new(spec: &SystemSpec) -> Self {
        ChurnEngine::with_allocator(spec, Allocator::new())
    }

    /// An engine for `spec`'s platform with a custom admission heuristic.
    #[must_use]
    pub fn with_allocator(spec: &SystemSpec, allocator: Allocator) -> Self {
        let routes = Box::new(RouteCache::new(spec.topology(), allocator.max_paths));
        ChurnEngine::with_route_provider(allocator, routes)
    }

    /// An engine using a caller-supplied [`RouteProvider`] — e.g. a
    /// [`DenseRouteCache`](aelite_alloc::DenseRouteCache) on a small
    /// platform, or a provider pre-warmed by an earlier flow. Admission
    /// outcomes never depend on the provider choice, only lookup cost and
    /// resident memory do.
    ///
    /// # Panics
    ///
    /// Panics if `routes` was built with a different `max_paths` bound
    /// than `allocator` uses.
    #[must_use]
    pub fn with_route_provider(allocator: Allocator, routes: Box<dyn RouteProvider>) -> Self {
        assert_eq!(
            routes.max_paths(),
            allocator.max_paths,
            "route provider was built for a different max_paths bound"
        );
        ChurnEngine {
            allocator,
            routes,
            scratch: AllocScratch::new(),
            order: Vec::new(),
            opened: Vec::new(),
            batch_order: Vec::new(),
            serial_floor: SERIAL_FLOOR,
            stats: ChurnStats::default(),
        }
    }

    /// The engine's route provider (diagnostics: e.g. how many NI pairs
    /// are resident in the cache).
    #[must_use]
    pub fn route_provider(&self) -> &dyn RouteProvider {
        &*self.routes
    }

    /// Sets the burst-size floor below which
    /// [`submit_batch`](Self::submit_batch) takes the serial per-request
    /// path (default [`SERIAL_FLOOR`]). `0` forces every burst through
    /// the batched round; outcomes never depend on the floor, only
    /// throughput does.
    pub fn set_serial_floor(&mut self, floor: usize) {
        self.serial_floor = floor;
    }

    /// The admission heuristic this engine uses.
    #[must_use]
    pub fn allocator(&self) -> &Allocator {
        &self.allocator
    }

    /// Work counters since the engine was created.
    #[must_use]
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// The fault mask admissions are currently filtered against (empty
    /// unless [`set_faults`](Self::set_faults) installed one).
    #[must_use]
    pub fn faults(&self) -> &FaultMask {
        self.routes.faults()
    }

    /// Installs `faults` as the route provider's fault mask: from now on
    /// no admission through this engine can be granted a route that
    /// traverses a down link, and resident cached routes touching a
    /// newly-down link are evicted (see [`RouteProvider::set_faults`]).
    ///
    /// The mask constrains *future* admissions only — grants already in
    /// an allocation are not inspected here. Walking the affected grants
    /// and re-routing them is the recovery sweep of
    /// [`FaultEngine`](crate::fault::FaultEngine).
    pub fn set_faults(&mut self, faults: &FaultMask) {
        self.routes.set_faults(faults);
    }

    /// Re-routes one live connection onto a path admissible under the
    /// current fault mask, preferring **make-before-break**: the old
    /// grant is detached but its slot reservations stay in place while
    /// the replacement is admitted, so the new path never collides with
    /// the old one and the connection's capacity is handed over as one
    /// delta. If that fails (the old reservations may be exactly the
    /// capacity the replacement needs), falls back to break-then-make:
    /// release the old slots first, then retry.
    ///
    /// On refusal of both attempts the connection is left **closed** —
    /// its old grant is *not* restored, because the caller re-routes
    /// precisely when the old path is no longer usable (it traverses a
    /// down link); re-installing it would hand out dead capacity. The
    /// old slots are free again and the grant's buffers recycled.
    ///
    /// Bystander grants are never touched, whatever the outcome.
    ///
    /// # Errors
    ///
    /// [`RefusalCause::UnknownConn`] if `conn` holds no grant; otherwise
    /// the refusal of the final break-then-make attempt.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`submit`](Self::submit).
    pub fn reroute(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        conn: ConnId,
    ) -> Result<RerouteOutcome, AdmissionError> {
        let Some(old) = alloc.detach_grant(conn) else {
            self.stats.refused_closes += 1;
            return Err(AdmissionError {
                conn,
                cause: RefusalCause::UnknownConn,
                rolled_back: 0,
            });
        };
        let round = self.allocator.begin_round(spec, alloc, &*self.routes);
        match self.allocator.admit_in_round(
            &round,
            spec,
            alloc,
            conn,
            &mut *self.routes,
            &mut self.scratch,
        ) {
            Ok(()) => {
                // Make succeeded with the old reservations still held:
                // release them now that the replacement is committed.
                alloc.release_reservations_of(&old);
                self.scratch.recycle(old);
                self.stats.teardowns += 1;
                self.stats.setups += 1;
                Ok(RerouteOutcome::MakeBeforeBreak)
            }
            Err(_) => {
                // Break-then-make: the old slots may be exactly the
                // capacity the replacement needs. Free them and retry.
                alloc.release_reservations_of(&old);
                self.scratch.recycle(old);
                self.stats.teardowns += 1;
                match self.allocator.admit_in_round(
                    &round,
                    spec,
                    alloc,
                    conn,
                    &mut *self.routes,
                    &mut self.scratch,
                ) {
                    Ok(()) => {
                        self.stats.setups += 1;
                        Ok(RerouteOutcome::BreakThenMake)
                    }
                    Err(e) => {
                        let cause: RefusalCause = e.into();
                        self.stats.refused_opens += 1;
                        if matches!(cause, RefusalCause::LinkDown { .. }) {
                            self.stats.refused_link_down += 1;
                        }
                        Err(AdmissionError {
                            conn,
                            cause,
                            rolled_back: 0,
                        })
                    }
                }
            }
        }
    }

    /// Services one admission request: the unified entry point every
    /// other operation delegates to.
    ///
    /// Requests are total — an open of an already-open connection or a
    /// close of a closed one is a structured refusal
    /// ([`RefusalCause::AlreadyOpen`] / [`RefusalCause::UnknownConn`]),
    /// never a panic — and a refusal leaves the allocation exactly as it
    /// was (a refused switch additionally leaves its close set closed;
    /// see [`AdmissionError`]). Grants of connections outside the request
    /// are never touched, whatever the outcome.
    ///
    /// # Errors
    ///
    /// Returns the [`AdmissionError`] naming the connection the request
    /// was refused on, its cause, and any rollback performed.
    ///
    /// # Panics
    ///
    /// Panics only on platform mismatch: `spec`/`alloc` built for a
    /// different table size, per-hop shift or `max_paths` bound than the
    /// engine.
    pub fn submit(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        request: AdmissionRequest,
    ) -> Result<AdmissionResponse, AdmissionError> {
        let round = self.allocator.begin_round(spec, alloc, &*self.routes);
        self.submit_in_round(&round, spec, alloc, &request)
    }

    /// Services a burst of **independent** requests (no connection named
    /// by two of them) as one batched admission round, writing one
    /// verdict per request into `verdicts` (cleared first, arrival
    /// order).
    ///
    /// The burst is applied in the canonical order of
    /// [`canonical_order`]: teardowns first, then switches, then single
    /// opens hardest-first — byte-identical end state and verdicts to
    /// serially [`submit`](Self::submit)ting the requests in that order
    /// (property-tested in `tests/proptest_serve.rs`). What batching buys
    /// is amortisation: the per-request validation and grant-storage
    /// capacity check of [`Allocator::begin_round`] — O(connections) on
    /// every serial submit — runs **once per burst**, and every request
    /// then shares the round's warm [`RouteCache`] and recycled-grant
    /// scratch. Per-request rollback is unchanged: one refused request
    /// never poisons its batch.
    ///
    /// Requests whose connections overlap are still serviced safely (the
    /// round is just a sequence of total requests), but the canonical
    /// reorder then decides which of the conflicting requests sees the
    /// connection first — only independent bursts are order-insensitive.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`submit`](Self::submit).
    pub fn submit_batch(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        requests: &[AdmissionRequest],
        verdicts: &mut Vec<Result<AdmissionResponse, AdmissionError>>,
    ) {
        verdicts.clear();
        // Placeholder overwritten below: canonical_order is a permutation
        // of the arrival indices, so every slot is assigned exactly once.
        verdicts.resize(
            requests.len(),
            Err(AdmissionError {
                conn: ConnId::new(0),
                cause: RefusalCause::UnknownConn,
                rolled_back: 0,
            }),
        );
        let mut order = core::mem::take(&mut self.batch_order);
        canonical_order(spec, requests, &mut order);
        debug_assert_eq!(order.len(), requests.len());
        if requests.len() <= self.serial_floor {
            // Serial fallback: same canonical order, one round per
            // request — bit-identical outcomes (a round carries no state
            // between requests), but no batch bookkeeping to amortise.
            for &i in &order {
                let round = self.allocator.begin_round(spec, alloc, &*self.routes);
                verdicts[i] = self.submit_in_round(&round, spec, alloc, &requests[i]);
            }
        } else {
            let round = self.allocator.begin_round(spec, alloc, &*self.routes);
            for &i in &order {
                verdicts[i] = self.submit_in_round(&round, spec, alloc, &requests[i]);
            }
        }
        self.batch_order = order;
    }

    /// Services the subset `bucket` (arrival indices into `requests`) of
    /// a burst as one batched admission round, appending
    /// `(arrival_index, verdict)` pairs to `verdicts` in canonical
    /// application order. This is the per-shard building block of
    /// [`ShardedEngine`](crate::shard::ShardedEngine): each worker runs
    /// `submit_bucket` over its own bucket against its own slot-table
    /// partition, and the caller scatters the pairs back to arrival
    /// order.
    ///
    /// With `bucket` covering all of `requests`, this is
    /// [`submit_batch`](Self::submit_batch) minus the serial-floor
    /// fallback and the arrival-order scatter.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`submit`](Self::submit), or if
    /// `bucket` contains an out-of-range index.
    pub fn submit_bucket(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        requests: &[AdmissionRequest],
        bucket: &[usize],
        verdicts: &mut Vec<(usize, Result<AdmissionResponse, AdmissionError>)>,
    ) {
        let mut order = core::mem::take(&mut self.batch_order);
        canonical_order_of(spec, requests, bucket, &mut order);
        debug_assert_eq!(order.len(), bucket.len());
        let round = self.allocator.begin_round(spec, alloc, &*self.routes);
        verdicts.reserve(order.len());
        for &i in &order {
            let verdict = self.submit_in_round(&round, spec, alloc, &requests[i]);
            verdicts.push((i, verdict));
        }
        self.batch_order = order;
    }

    /// One request inside an already-validated round.
    fn submit_in_round(
        &mut self,
        round: &AdmissionRound,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        request: &AdmissionRequest,
    ) -> Result<AdmissionResponse, AdmissionError> {
        match request {
            AdmissionRequest::Open(c) => self
                .open_in_round(round, spec, alloc, *c)
                .map(|()| AdmissionResponse::Opened(*c)),
            AdmissionRequest::Close(c) => self.close_one(alloc, *c),
            AdmissionRequest::Switch { close, open } => {
                self.switch_in_round(round, spec, alloc, close, open)
            }
        }
    }

    fn open_in_round(
        &mut self,
        round: &AdmissionRound,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        conn: ConnId,
    ) -> Result<(), AdmissionError> {
        if alloc.grant(conn).is_some() {
            self.stats.refused_opens += 1;
            return Err(AdmissionError {
                conn,
                cause: RefusalCause::AlreadyOpen,
                rolled_back: 0,
            });
        }
        match self.allocator.admit_in_round(
            round,
            spec,
            alloc,
            conn,
            &mut *self.routes,
            &mut self.scratch,
        ) {
            Ok(()) => {
                self.stats.setups += 1;
                Ok(())
            }
            Err(e) => {
                let cause: RefusalCause = e.into();
                self.stats.refused_opens += 1;
                if matches!(cause, RefusalCause::LinkDown { .. }) {
                    self.stats.refused_link_down += 1;
                }
                Err(AdmissionError {
                    conn,
                    cause,
                    rolled_back: 0,
                })
            }
        }
    }

    fn close_one(
        &mut self,
        alloc: &mut Allocation,
        conn: ConnId,
    ) -> Result<AdmissionResponse, AdmissionError> {
        match alloc.take_grant(conn) {
            Some(grant) => {
                self.scratch.recycle(grant);
                self.stats.teardowns += 1;
                Ok(AdmissionResponse::Closed(conn))
            }
            None => {
                self.stats.refused_closes += 1;
                Err(AdmissionError {
                    conn,
                    cause: RefusalCause::UnknownConn,
                    rolled_back: 0,
                })
            }
        }
    }

    fn switch_in_round(
        &mut self,
        round: &AdmissionRound,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        close_set: &[ConnId],
        open_set: &[ConnId],
    ) -> Result<AdmissionResponse, AdmissionError> {
        let mut closed = 0u64;
        for &c in close_set {
            if let Some(grant) = alloc.take_grant(c) {
                self.scratch.recycle(grant);
                closed += 1;
            }
        }

        // Hardest-first admission, matching the batch allocator's order,
        // in a buffer reused across switches.
        self.order.clear();
        self.order.extend_from_slice(open_set);
        aelite_alloc::admission_order(spec, &mut self.order);
        self.opened.clear();
        for i in 0..self.order.len() {
            let conn = self.order[i];
            let outcome = if alloc.grant(conn).is_some() {
                Err(RefusalCause::AlreadyOpen)
            } else {
                self.allocator
                    .admit_in_round(
                        round,
                        spec,
                        alloc,
                        conn,
                        &mut *self.routes,
                        &mut self.scratch,
                    )
                    .map_err(RefusalCause::from)
            };
            match outcome {
                Ok(()) => self.opened.push(conn),
                Err(cause) => {
                    let rolled_back = self.opened.len() as u32;
                    for j in 0..self.opened.len() {
                        let c = self.opened[j];
                        let grant = alloc.take_grant(c).expect("opened this switch");
                        self.scratch.recycle(grant);
                    }
                    self.stats.teardowns += closed;
                    self.stats.refused_switches += 1;
                    if matches!(cause, RefusalCause::LinkDown { .. }) {
                        self.stats.refused_link_down += 1;
                    }
                    self.stats.rolled_back_opens += u64::from(rolled_back);
                    return Err(AdmissionError {
                        conn,
                        cause,
                        rolled_back,
                    });
                }
            }
        }
        self.stats.teardowns += closed;
        self.stats.setups += self.opened.len() as u64;
        self.stats.switches += 1;
        Ok(AdmissionResponse::Switched {
            closed: closed as u32,
            opened: self.opened.len() as u32,
        })
    }

    /// Sets up `conn`: routes it and reserves TDM slots in `alloc`,
    /// leaving every existing grant untouched. A thin wrapper over
    /// [`submit`](Self::submit) with [`AdmissionRequest::Open`]. O(Δ):
    /// bitset kernels over the candidate paths' slot words, no
    /// allocation in steady state.
    ///
    /// # Errors
    ///
    /// Returns the [`AdmissionError`] if no candidate path can satisfy
    /// the connection's contract or it already holds a grant; `alloc` is
    /// unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`submit`](Self::submit).
    pub fn open(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        conn: ConnId,
    ) -> Result<(), AdmissionError> {
        let round = self.allocator.begin_round(spec, alloc, &*self.routes);
        self.open_in_round(&round, spec, alloc, conn)
    }

    /// Tears down `conn`, freeing exactly its own `slots × links` table
    /// entries (word-level free-mask deltas, no table rescans) and
    /// recycling the grant's buffers for a later setup. A thin wrapper
    /// over the [`AdmissionRequest::Close`] path of
    /// [`submit`](Self::submit); returns `false` if the connection held
    /// no grant (reported in [`ChurnStats::refused_closes`]).
    pub fn close(&mut self, alloc: &mut Allocation, conn: ConnId) -> bool {
        self.close_one(alloc, conn).is_ok()
    }

    /// Applies a use-case switch as one delta: tears down `close_set`,
    /// then admits `open_set` hardest-first. A thin wrapper over the
    /// [`AdmissionRequest::Switch`] path of [`submit`](Self::submit)
    /// taking slices, so callers with long-lived sets avoid building a
    /// request value. Connections in neither set keep their grants
    /// bit-for-bit — the undisturbed-service property is structural,
    /// whether the switch succeeds or fails.
    ///
    /// # Errors
    ///
    /// If some connection of `open_set` cannot be admitted, every
    /// connection this switch had already opened is closed again and the
    /// [`AdmissionError`] reports the refusal cause and rollback count;
    /// the close set remains closed.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`submit`](Self::submit).
    pub fn switch(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        close_set: &[ConnId],
        open_set: &[ConnId],
    ) -> Result<AdmissionResponse, AdmissionError> {
        let round = self.allocator.begin_round(spec, alloc, &*self.routes);
        self.switch_in_round(&round, spec, alloc, close_set, open_set)
    }

    /// Applies one trace operation (see [`aelite_spec::churn`]),
    /// returning whether it was applied in full (an inadmissible open or
    /// a rolled-back switch returns `false`; a close of an already
    /// closed connection returns `true` — the requested state holds).
    pub fn apply(&mut self, spec: &SystemSpec, alloc: &mut Allocation, op: &ChurnOp) -> bool {
        match op {
            ChurnOp::Open(c) => self.open(spec, alloc, *c).is_ok(),
            ChurnOp::Close(c) => {
                self.close(alloc, *c);
                true
            }
            ChurnOp::Switch { close, open } => self.switch(spec, alloc, close, open).is_ok(),
        }
    }
}

/// Writes into `out` (cleared first) the canonical application order of
/// a request burst, as arrival indices into `requests`: closes first (in
/// arrival order — teardowns only free capacity), then switches (arrival
/// order — each is its own close-then-open delta), then single opens in
/// the allocator's hardest-first admission order (most estimated slots,
/// tightest deadline, then connection id, then arrival index).
///
/// [`ChurnEngine::submit_batch`] applies bursts in exactly this order;
/// serially submitting the requests in this order reproduces the batch
/// bit-for-bit, which is what makes batched results pinnable against a
/// canonical serial application.
///
/// # Panics
///
/// Panics if an open request names a connection `spec` does not contain
/// (the difficulty estimate needs its traffic contract).
pub fn canonical_order(spec: &SystemSpec, requests: &[AdmissionRequest], out: &mut Vec<usize>) {
    canonical_order_of_impl(spec, requests, None, out);
}

/// [`canonical_order`] restricted to the subset `bucket` of arrival
/// indices: writes into `out` (cleared first) a permutation of `bucket`
/// in canonical application order. Indices outside `bucket` never
/// appear; with `bucket` covering `0..requests.len()` this is exactly
/// [`canonical_order`].
///
/// # Panics
///
/// Panics if `bucket` contains an index outside `requests`, or (as
/// [`canonical_order`]) if a bucketed open names a connection `spec`
/// does not contain.
pub fn canonical_order_of(
    spec: &SystemSpec,
    requests: &[AdmissionRequest],
    bucket: &[usize],
    out: &mut Vec<usize>,
) {
    canonical_order_of_impl(spec, requests, Some(bucket), out);
}

fn canonical_order_of_impl(
    spec: &SystemSpec,
    requests: &[AdmissionRequest],
    bucket: Option<&[usize]>,
    out: &mut Vec<usize>,
) {
    out.clear();
    let select = |kind: fn(&AdmissionRequest) -> bool, out: &mut Vec<usize>| match bucket {
        Some(b) => out.extend(b.iter().copied().filter(|&i| kind(&requests[i]))),
        None => out.extend((0..requests.len()).filter(|&i| kind(&requests[i]))),
    };
    select(|r| matches!(r, AdmissionRequest::Close(_)), out);
    select(|r| matches!(r, AdmissionRequest::Switch { .. }), out);
    let opens_at = out.len();
    select(|r| matches!(r, AdmissionRequest::Open(_)), out);
    let key = |i: usize| {
        let AdmissionRequest::Open(c) = requests[i] else {
            unreachable!("opens segment holds only opens")
        };
        (
            core::cmp::Reverse(aelite_alloc::estimate_slots(spec, c)),
            spec.connection(c).max_latency_ns,
            c,
            i,
        )
    };
    let opens = &mut out[opens_at..];
    // Always cache the keys: `estimate_slots` walks the connection's
    // traffic contract, so one evaluation per element beats recomputing
    // it on every comparison even for small opens segments — per-shard
    // buckets in particular hit this path with a handful of opens per
    // call, where per-comparison recomputation was measured at ~2x the
    // whole admission cost of the bucket.
    opens.sort_by_cached_key(|&i| key(i));
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::{allocate, validate_allocation, Grant};
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::churn::{churn_trace, ChurnParams};
    use aelite_spec::generate::paper_workload;
    use aelite_spec::ids::{AppId, NiId};
    use aelite_spec::topology::Topology;
    use aelite_spec::traffic::Bandwidth;
    use aelite_spec::NocConfig;

    #[test]
    fn open_close_roundtrip_keeps_allocation_valid() {
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = ChurnEngine::new(&spec);
        for c in spec.connections().iter().take(20) {
            assert!(engine.close(&mut alloc, c.id));
            engine.open(&spec, &mut alloc, c.id).expect("re-admits");
        }
        assert_eq!(engine.stats().ops(), 40);
        assert_eq!(engine.stats().refusals(), 0);
        validate_allocation(&spec, &alloc).expect("valid after churn");
    }

    #[test]
    fn submit_answers_every_request_kind() {
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = ChurnEngine::new(&spec);
        let c = spec.connections()[3].id;
        assert_eq!(
            engine.submit(&spec, &mut alloc, AdmissionRequest::Close(c)),
            Ok(AdmissionResponse::Closed(c))
        );
        assert_eq!(
            engine.submit(&spec, &mut alloc, AdmissionRequest::Open(c)),
            Ok(AdmissionResponse::Opened(c))
        );
        let close: Vec<_> = spec.app_connections(AppId::new(0)).map(|c| c.id).collect();
        let resp = engine
            .submit(
                &spec,
                &mut alloc,
                AdmissionRequest::Switch {
                    close: close.clone(),
                    open: Vec::new(),
                },
            )
            .expect("pure-teardown switch succeeds");
        assert_eq!(
            resp,
            AdmissionResponse::Switched {
                closed: close.len() as u32,
                opened: 0
            }
        );
        assert_eq!(engine.stats().switches, 1);
    }

    #[test]
    fn mismatched_requests_are_refused_not_panics() {
        let spec = paper_workload(1);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = ChurnEngine::new(&spec);
        let c = spec.connections()[5].id;

        // Open of an open connection.
        let err = engine
            .submit(&spec, &mut alloc, AdmissionRequest::Open(c))
            .expect_err("already open");
        assert_eq!(err.cause, RefusalCause::AlreadyOpen);
        assert_eq!(err.conn, c);
        assert_eq!(err.rolled_back, 0);
        assert!(err.to_string().contains("already holds a grant"));

        // Close of a closed connection.
        assert!(engine.close(&mut alloc, c));
        let err = engine
            .submit(&spec, &mut alloc, AdmissionRequest::Close(c))
            .expect_err("already closed");
        assert_eq!(err.cause, RefusalCause::UnknownConn);
        assert_eq!(engine.stats().refused_opens, 1);
        assert_eq!(engine.stats().refused_closes, 1);
        // The allocation is untouched by refusals.
        validate_allocation(
            &spec.restricted_to_connections(
                &spec
                    .connections()
                    .iter()
                    .map(|c| c.id)
                    .filter(|&id| alloc.grant(id).is_some())
                    .collect::<Vec<_>>(),
            ),
            &alloc,
        )
        .expect("valid after refusals");
    }

    #[test]
    fn close_of_unknown_connection_is_a_noop() {
        let spec = paper_workload(1);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = ChurnEngine::new(&spec);
        let c = spec.connections()[5].id;
        assert!(engine.close(&mut alloc, c));
        assert!(!engine.close(&mut alloc, c), "second close is a no-op");
        assert_eq!(engine.stats().teardowns, 1);
        assert_eq!(engine.stats().refused_closes, 1);
    }

    #[test]
    fn switch_moves_one_app_and_disturbs_nobody() {
        let spec = paper_workload(42);
        // Start inside use case {0, 1, 2}.
        let uc1 = spec.restricted_to(&[AppId::new(0), AppId::new(1), AppId::new(2)]);
        let mut alloc = allocate(&uc1).unwrap();
        let mut engine = ChurnEngine::new(&spec);

        let keep: Vec<Grant> = spec
            .connections()
            .iter()
            .filter(|c| c.app == AppId::new(0) || c.app == AppId::new(1))
            .map(|c| alloc.grant(c.id).unwrap().clone())
            .collect();
        let close: Vec<_> = spec.app_connections(AppId::new(2)).map(|c| c.id).collect();
        let open: Vec<_> = spec.app_connections(AppId::new(3)).map(|c| c.id).collect();

        let resp = engine
            .switch(&spec, &mut alloc, &close, &open)
            .expect("the paper workload's use cases co-exist");
        assert_eq!(
            resp,
            AdmissionResponse::Switched {
                closed: close.len() as u32,
                opened: open.len() as u32
            }
        );

        for g in keep {
            assert_eq!(alloc.grant(g.conn).unwrap(), &g, "{} moved", g.conn);
        }
        for c in &close {
            assert!(alloc.grant(*c).is_none());
        }
        for c in &open {
            assert!(alloc.grant(*c).is_some());
        }
        let uc2 = spec.restricted_to(&[AppId::new(0), AppId::new(1), AppId::new(3)]);
        validate_allocation(&uc2, &alloc).expect("valid after switch");
        assert_eq!(engine.stats().switches, 1);
    }

    #[test]
    fn failed_switch_rolls_back_its_opens() {
        // A 2-router platform where one heavy connection fills the link,
        // so a switch opening two more must fail and roll back.
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let a0 = b.add_app("resident");
        let a1 = b.add_app("heavy");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        let resident = b.add_connection(a0, s, d, Bandwidth::from_mbytes_per_sec(400), 10_000);
        let h1 = b.add_connection(a1, s, d, Bandwidth::from_mbytes_per_sec(800), 10_000);
        let h2 = b.add_connection(a1, s, d, Bandwidth::from_mbytes_per_sec(800), 10_000);
        let spec = b.build();

        let uc1 = spec.restricted_to(&[AppId::new(0)]);
        let mut alloc = allocate(&uc1).unwrap();
        let before = alloc.grant(resident).unwrap().clone();
        let mut engine = ChurnEngine::new(&spec);

        let err = engine
            .switch(&spec, &mut alloc, &[], &[h1, h2])
            .expect_err("two 800 MB/s flows cannot share one link with a resident");
        assert_eq!(err.rolled_back, 1, "first admission succeeded, then undone");
        assert!(
            matches!(err.cause, RefusalCause::NoSlots { needed, free } if needed > free),
            "expected a structured slot shortage, got {:?}",
            err.cause
        );
        assert!(alloc.grant(h1).is_none() && alloc.grant(h2).is_none());
        assert_eq!(alloc.grant(resident).unwrap(), &before, "resident moved");
        assert_eq!(engine.stats().refused_switches, 1);
        assert_eq!(engine.stats().rolled_back_opens, 1);
        assert!(err.to_string().contains("rolled back"), "{err}");
        validate_allocation(&uc1, &alloc).expect("rollback left a valid state");
    }

    #[test]
    fn trace_replay_from_empty_is_mostly_admitted() {
        let spec = paper_workload(42);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = ChurnEngine::new(&spec);
        let trace = churn_trace(
            &spec,
            &ChurnParams {
                events: 2_000,
                switch_weight: 0.005,
                ..ChurnParams::steady(2_000)
            },
            9,
        );
        let mut applied = 0u64;
        for e in &trace.events {
            if engine.apply(&spec, &mut alloc, &e.op) {
                applied += 1;
            }
        }
        // The generator's feasibility-aware draw keeps the pool jointly
        // allocatable, so churning a fraction of it stays admissible.
        assert!(
            applied as f64 >= 0.98 * trace.len() as f64,
            "only {applied}/{} applied",
            trace.len()
        );
        // The end state validates as an allocation of the surviving set.
        let surviving: Vec<_> = alloc.grants().map(|g| g.conn).collect();
        assert!(!surviving.is_empty());
        let view = spec.restricted_to_connections(&surviving);
        validate_allocation(&view, &alloc).expect("valid after trace replay");
        assert!(engine.stats().ops() > 0);
        // The generator's model assumes every open is admitted, so the
        // only refused closes are echoes of refused opens.
        assert!(engine.stats().refused_closes <= engine.stats().refused_opens);
    }

    #[test]
    fn canonical_order_is_closes_switches_then_hardest_opens() {
        let spec = paper_workload(42);
        let ids: Vec<ConnId> = spec.connections().iter().map(|c| c.id).collect();
        let requests = vec![
            AdmissionRequest::Open(ids[0]),
            AdmissionRequest::Close(ids[1]),
            AdmissionRequest::Switch {
                close: vec![ids[2]],
                open: vec![ids[3]],
            },
            AdmissionRequest::Open(ids[4]),
            AdmissionRequest::Close(ids[5]),
        ];
        let mut order = Vec::new();
        canonical_order(&spec, &requests, &mut order);
        // A permutation: closes (1, 4), the switch (2), then the opens.
        assert_eq!(order.len(), requests.len());
        assert_eq!(&order[..3], &[1, 4, 2]);
        let mut opens = order[3..].to_vec();
        opens.sort_unstable();
        assert_eq!(opens, vec![0, 3]);
        // Hardest first among the opens, ties broken by id then arrival.
        let key = |i: usize| {
            let AdmissionRequest::Open(c) = requests[i] else {
                unreachable!()
            };
            (
                core::cmp::Reverse(aelite_alloc::estimate_slots(&spec, c)),
                spec.connection(c).max_latency_ns,
                c,
                i,
            )
        };
        assert!(key(order[3]) <= key(order[4]));
    }

    #[test]
    fn batched_burst_matches_serial_canonical_application() {
        let spec = paper_workload(42);
        // Both sides start from the same live allocation.
        let alloc0 = allocate(&spec).unwrap();
        let ids: Vec<ConnId> = spec.connections().iter().map(|c| c.id).collect();
        // An independent burst: closes, re-opens of previously closed
        // connections, one switch, and a mismatched request.
        let mut engine_a = ChurnEngine::new(&spec);
        let mut prep = allocate(&spec).unwrap();
        let warm = |engine: &mut ChurnEngine, alloc: &mut Allocation| {
            for &c in &ids[..10] {
                assert!(engine.close(alloc, c));
            }
        };
        warm(&mut engine_a, &mut prep);
        let mut alloc_a = prep.clone();
        let mut alloc_b = prep.clone();
        drop(alloc0);
        let mut engine_b = ChurnEngine::new(&spec);
        warm(&mut engine_b, &mut allocate(&spec).unwrap());

        let requests = vec![
            AdmissionRequest::Open(ids[0]),
            AdmissionRequest::Close(ids[20]),
            AdmissionRequest::Open(ids[1]),
            AdmissionRequest::Open(ids[21]), // already open -> refused
            AdmissionRequest::Close(ids[22]),
            AdmissionRequest::Open(ids[2]),
        ];

        // A: one batched round.
        let mut verdicts_a = Vec::new();
        engine_a.submit_batch(&spec, &mut alloc_a, &requests, &mut verdicts_a);

        // B: serial submits in the canonical order.
        let mut order = Vec::new();
        canonical_order(&spec, &requests, &mut order);
        let mut verdicts_b: Vec<Option<Result<AdmissionResponse, AdmissionError>>> =
            vec![None; requests.len()];
        for &i in &order {
            verdicts_b[i] = Some(engine_b.submit(&spec, &mut alloc_b, requests[i].clone()));
        }

        for (i, v) in verdicts_a.iter().enumerate() {
            assert_eq!(Some(*v), verdicts_b[i], "verdict {i} diverged");
        }
        for &c in &ids {
            assert_eq!(alloc_a.grant(c), alloc_b.grant(c), "{c} diverged");
        }
        assert_eq!(engine_a.stats(), engine_b.stats(), "stats diverged");
        // The refused open really was refused with a matchable cause.
        assert_eq!(verdicts_a[3].unwrap_err().cause, RefusalCause::AlreadyOpen);
    }
}
