//! The churn engine: streaming connection admission over a live
//! allocation.

use aelite_alloc::{AllocError, AllocScratch, Allocation, Allocator, RouteCache};
use aelite_spec::churn::ChurnOp;
use aelite_spec::ids::ConnId;
use aelite_spec::SystemSpec;
use core::fmt;

/// Counters of the work a [`ChurnEngine`] has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Individual connection setups that succeeded (including those
    /// inside completed use-case switches).
    pub setups: u64,
    /// Individual connection teardowns performed (including the close
    /// side of use-case switches; rollback closes are not counted).
    pub teardowns: u64,
    /// Use-case switches applied end to end.
    pub switches: u64,
    /// Setup requests the platform could not admit.
    pub rejected_setups: u64,
    /// Use-case switches that failed and were rolled back.
    pub rejected_switches: u64,
}

impl ChurnStats {
    /// Total successful setup + teardown operations — the numerator of
    /// the ops/sec throughput metric.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.setups + self.teardowns
    }
}

/// A use-case switch that could not be completed.
///
/// The engine rolled back every connection it had opened as part of the
/// switch; the close set remains closed (its applications were leaving
/// the use case regardless). Grants of connections outside the delta
/// were never touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchError {
    /// The connection whose admission failed.
    pub failed: ConnId,
    /// Why it failed.
    pub error: AllocError,
    /// How many connections of the open set had already been admitted
    /// and were rolled back.
    pub rolled_back: u32,
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "use-case switch failed at {} ({}); {} admission(s) rolled back",
            self.failed, self.error, self.rolled_back
        )
    }
}

impl std::error::Error for SwitchError {}

/// A high-throughput online reconfiguration engine for one platform.
///
/// The engine owns everything the admission hot path needs to be O(Δ)
/// per request: the [`Allocator`] heuristic, a persistent [`RouteCache`]
/// (each NI pair's candidate routes are enumerated at most once over the
/// engine's lifetime) and an [`AllocScratch`] whose buffers — including
/// recycled grants from earlier teardowns — make the steady-state
/// open/close loop allocation-free.
///
/// All specs passed to an engine must describe the same platform
/// (topology and NoC config) it was created for; restricted use-case
/// views of one system ([`SystemSpec::restricted_to`]) are the intended
/// usage. The engine never moves an existing grant: every operation
/// touches only the slots of the connections named in the request — the
/// paper's undisturbed-reconfiguration model, structurally enforced.
#[derive(Debug)]
pub struct ChurnEngine {
    allocator: Allocator,
    routes: RouteCache,
    scratch: AllocScratch,
    /// Reusable admission-order buffer for use-case switches.
    order: Vec<ConnId>,
    /// Reusable rollback journal for use-case switches.
    opened: Vec<ConnId>,
    stats: ChurnStats,
}

impl ChurnEngine {
    /// An engine for `spec`'s platform with the default [`Allocator`].
    #[must_use]
    pub fn new(spec: &SystemSpec) -> Self {
        ChurnEngine::with_allocator(spec, Allocator::new())
    }

    /// An engine for `spec`'s platform with a custom admission heuristic.
    #[must_use]
    pub fn with_allocator(spec: &SystemSpec, allocator: Allocator) -> Self {
        ChurnEngine {
            allocator,
            routes: RouteCache::new(spec.topology(), allocator.max_paths),
            scratch: AllocScratch::new(),
            order: Vec::new(),
            opened: Vec::new(),
            stats: ChurnStats::default(),
        }
    }

    /// The admission heuristic this engine uses.
    #[must_use]
    pub fn allocator(&self) -> &Allocator {
        &self.allocator
    }

    /// Work counters since the engine was created.
    #[must_use]
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// Sets up `conn`: routes it and reserves TDM slots in `alloc`,
    /// leaving every existing grant untouched. O(Δ): bitset kernels over
    /// the candidate paths' slot words, no allocation in steady state.
    ///
    /// # Errors
    ///
    /// Returns the [`AllocError`] if no candidate path can satisfy the
    /// connection's contract; `alloc` is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `conn` already holds a grant, or if `spec` belongs to a
    /// different platform than the engine/allocation.
    pub fn open(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        conn: ConnId,
    ) -> Result<(), AllocError> {
        match self
            .allocator
            .admit(spec, alloc, conn, &mut self.routes, &mut self.scratch)
        {
            Ok(()) => {
                self.stats.setups += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.rejected_setups += 1;
                Err(e)
            }
        }
    }

    /// Tears down `conn`, freeing exactly its own `slots × links` table
    /// entries (word-level free-mask deltas, no table rescans) and
    /// recycling the grant's buffers for a later setup. Returns `false`
    /// if the connection held no grant — an idempotent no-op.
    pub fn close(&mut self, alloc: &mut Allocation, conn: ConnId) -> bool {
        match alloc.take_grant(conn) {
            Some(grant) => {
                self.scratch.recycle(grant);
                self.stats.teardowns += 1;
                true
            }
            None => false,
        }
    }

    /// Applies a use-case switch as one delta: tears down `close_set`,
    /// then admits `open_set` hardest-first. Connections in neither set
    /// keep their grants bit-for-bit — the undisturbed-service property
    /// is structural, whether the switch succeeds or fails.
    ///
    /// # Errors
    ///
    /// If some connection of `open_set` cannot be admitted, every
    /// connection this switch had already opened is closed again and a
    /// [`SwitchError`] is returned; the close set remains closed.
    ///
    /// # Panics
    ///
    /// Panics if a connection of `open_set` already holds a grant (close
    /// it via `close_set` first), or on platform mismatch as
    /// [`open`](Self::open).
    pub fn switch(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        close_set: &[ConnId],
        open_set: &[ConnId],
    ) -> Result<(), SwitchError> {
        let mut closed = 0u64;
        for &c in close_set {
            if let Some(grant) = alloc.take_grant(c) {
                self.scratch.recycle(grant);
                closed += 1;
            }
        }

        // Hardest-first admission, matching the batch allocator's order,
        // in a buffer reused across switches.
        self.order.clear();
        self.order.extend_from_slice(open_set);
        aelite_alloc::admission_order(spec, &mut self.order);
        self.opened.clear();
        for i in 0..self.order.len() {
            let conn = self.order[i];
            match self
                .allocator
                .admit(spec, alloc, conn, &mut self.routes, &mut self.scratch)
            {
                Ok(()) => self.opened.push(conn),
                Err(error) => {
                    let rolled_back = self.opened.len() as u32;
                    for j in 0..self.opened.len() {
                        let c = self.opened[j];
                        let grant = alloc.take_grant(c).expect("opened this switch");
                        self.scratch.recycle(grant);
                    }
                    self.stats.teardowns += closed;
                    self.stats.rejected_setups += 1;
                    self.stats.rejected_switches += 1;
                    return Err(SwitchError {
                        failed: conn,
                        error,
                        rolled_back,
                    });
                }
            }
        }
        self.stats.teardowns += closed;
        self.stats.setups += self.opened.len() as u64;
        self.stats.switches += 1;
        Ok(())
    }

    /// Applies one trace operation (see [`aelite_spec::churn`]),
    /// returning whether it was applied in full (an inadmissible open or
    /// a rolled-back switch returns `false`; a close of an already
    /// closed connection returns `true` — the requested state holds).
    pub fn apply(&mut self, spec: &SystemSpec, alloc: &mut Allocation, op: &ChurnOp) -> bool {
        match op {
            ChurnOp::Open(c) => self.open(spec, alloc, *c).is_ok(),
            ChurnOp::Close(c) => {
                self.close(alloc, *c);
                true
            }
            ChurnOp::Switch { close, open } => self.switch(spec, alloc, close, open).is_ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::{allocate, validate_allocation, Grant};
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::churn::{churn_trace, ChurnParams};
    use aelite_spec::generate::paper_workload;
    use aelite_spec::ids::{AppId, NiId};
    use aelite_spec::topology::Topology;
    use aelite_spec::traffic::Bandwidth;
    use aelite_spec::NocConfig;

    #[test]
    fn open_close_roundtrip_keeps_allocation_valid() {
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = ChurnEngine::new(&spec);
        for c in spec.connections().iter().take(20) {
            assert!(engine.close(&mut alloc, c.id));
            engine.open(&spec, &mut alloc, c.id).expect("re-admits");
        }
        assert_eq!(engine.stats().ops(), 40);
        assert_eq!(engine.stats().rejected_setups, 0);
        validate_allocation(&spec, &alloc).expect("valid after churn");
    }

    #[test]
    fn close_of_unknown_connection_is_a_noop() {
        let spec = paper_workload(1);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = ChurnEngine::new(&spec);
        let c = spec.connections()[5].id;
        assert!(engine.close(&mut alloc, c));
        assert!(!engine.close(&mut alloc, c), "second close is a no-op");
        assert_eq!(engine.stats().teardowns, 1);
    }

    #[test]
    fn switch_moves_one_app_and_disturbs_nobody() {
        let spec = paper_workload(42);
        // Start inside use case {0, 1, 2}.
        let uc1 = spec.restricted_to(&[AppId::new(0), AppId::new(1), AppId::new(2)]);
        let mut alloc = allocate(&uc1).unwrap();
        let mut engine = ChurnEngine::new(&spec);

        let keep: Vec<Grant> = spec
            .connections()
            .iter()
            .filter(|c| c.app == AppId::new(0) || c.app == AppId::new(1))
            .map(|c| alloc.grant(c.id).unwrap().clone())
            .collect();
        let close: Vec<_> = spec.app_connections(AppId::new(2)).map(|c| c.id).collect();
        let open: Vec<_> = spec.app_connections(AppId::new(3)).map(|c| c.id).collect();

        engine
            .switch(&spec, &mut alloc, &close, &open)
            .expect("the paper workload's use cases co-exist");

        for g in keep {
            assert_eq!(alloc.grant(g.conn).unwrap(), &g, "{} moved", g.conn);
        }
        for c in &close {
            assert!(alloc.grant(*c).is_none());
        }
        for c in &open {
            assert!(alloc.grant(*c).is_some());
        }
        let uc2 = spec.restricted_to(&[AppId::new(0), AppId::new(1), AppId::new(3)]);
        validate_allocation(&uc2, &alloc).expect("valid after switch");
        assert_eq!(engine.stats().switches, 1);
    }

    #[test]
    fn failed_switch_rolls_back_its_opens() {
        // A 2-router platform where one heavy connection fills the link,
        // so a switch opening two more must fail and roll back.
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let a0 = b.add_app("resident");
        let a1 = b.add_app("heavy");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        let resident = b.add_connection(a0, s, d, Bandwidth::from_mbytes_per_sec(400), 10_000);
        let h1 = b.add_connection(a1, s, d, Bandwidth::from_mbytes_per_sec(800), 10_000);
        let h2 = b.add_connection(a1, s, d, Bandwidth::from_mbytes_per_sec(800), 10_000);
        let spec = b.build();

        let uc1 = spec.restricted_to(&[AppId::new(0)]);
        let mut alloc = allocate(&uc1).unwrap();
        let before = alloc.grant(resident).unwrap().clone();
        let mut engine = ChurnEngine::new(&spec);

        let err = engine
            .switch(&spec, &mut alloc, &[], &[h1, h2])
            .expect_err("two 800 MB/s flows cannot share one link with a resident");
        assert_eq!(err.rolled_back, 1, "first admission succeeded, then undone");
        assert!(alloc.grant(h1).is_none() && alloc.grant(h2).is_none());
        assert_eq!(alloc.grant(resident).unwrap(), &before, "resident moved");
        assert_eq!(engine.stats().rejected_switches, 1);
        assert!(!err.to_string().is_empty());
        validate_allocation(&uc1, &alloc).expect("rollback left a valid state");
    }

    #[test]
    fn trace_replay_from_empty_is_mostly_admitted() {
        let spec = paper_workload(42);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = ChurnEngine::new(&spec);
        let trace = churn_trace(
            &spec,
            &ChurnParams {
                events: 2_000,
                switch_weight: 0.005,
                ..ChurnParams::steady(2_000)
            },
            9,
        );
        let mut applied = 0u64;
        for e in &trace.events {
            if engine.apply(&spec, &mut alloc, &e.op) {
                applied += 1;
            }
        }
        // The generator's feasibility-aware draw keeps the pool jointly
        // allocatable, so churning a fraction of it stays admissible.
        assert!(
            applied as f64 >= 0.98 * trace.len() as f64,
            "only {applied}/{} applied",
            trace.len()
        );
        // The end state validates as an allocation of the surviving set.
        let surviving: Vec<_> = alloc.grants().map(|g| g.conn).collect();
        assert!(!surviving.is_empty());
        let view = spec.restricted_to_connections(&surviving);
        validate_allocation(&view, &alloc).expect("valid after trace replay");
        assert!(engine.stats().ops() > 0);
    }
}
