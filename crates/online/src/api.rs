//! The unified admission vocabulary: requests, responses and structured
//! refusals.
//!
//! Every operation the [`ChurnEngine`](crate::ChurnEngine) services —
//! single connection setup, single teardown, whole use-case switch — is
//! one [`AdmissionRequest`], answered by one
//! `Result<`[`AdmissionResponse`]`, `[`AdmissionError`]`>` from
//! [`ChurnEngine::submit`](crate::ChurnEngine::submit). A refusal names
//! the connection it stuck on, a matchable [`RefusalCause`], and how many
//! admissions were rolled back to keep the allocation exactly as it was
//! — so a serving layer can report refusal breakdowns per batch without
//! re-deriving them from traces, and a rejected request never needs a
//! panic or an opaque boolean.

use aelite_alloc::AllocError;
use aelite_spec::churn::ChurnOp;
use aelite_spec::ids::{ConnId, LinkId};
use core::fmt;

/// One admission request against a live allocation.
///
/// Requests are *total*: submitting one that does not match the current
/// state (opening an open connection, closing a closed one) is answered
/// with a structured refusal, never a panic — a serving layer cannot
/// vet every client's view of the world before forwarding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionRequest {
    /// Set up one connection (expected to hold no grant).
    Open(ConnId),
    /// Tear down one connection (expected to hold a grant).
    Close(ConnId),
    /// A use-case switch: tear down `close` and set up `open` as one
    /// delta. Connections in neither set are untouched — the paper's
    /// undisturbed-service model — and a refused switch rolls its own
    /// admissions back.
    Switch {
        /// Connections leaving the use case.
        close: Vec<ConnId>,
        /// Connections entering the use case.
        open: Vec<ConnId>,
    },
}

impl AdmissionRequest {
    /// Individual connection setups this request asks for.
    #[must_use]
    pub fn setups(&self) -> u64 {
        match self {
            AdmissionRequest::Open(_) => 1,
            AdmissionRequest::Close(_) => 0,
            AdmissionRequest::Switch { open, .. } => open.len() as u64,
        }
    }

    /// Individual connection teardowns this request asks for.
    #[must_use]
    pub fn teardowns(&self) -> u64 {
        match self {
            AdmissionRequest::Open(_) => 0,
            AdmissionRequest::Close(_) => 1,
            AdmissionRequest::Switch { close, .. } => close.len() as u64,
        }
    }
}

/// Churn-trace operations are admission requests with a different name;
/// the conversion moves the switch sets without copying.
impl From<ChurnOp> for AdmissionRequest {
    fn from(op: ChurnOp) -> Self {
        match op {
            ChurnOp::Open(c) => AdmissionRequest::Open(c),
            ChurnOp::Close(c) => AdmissionRequest::Close(c),
            ChurnOp::Switch { close, open } => AdmissionRequest::Switch { close, open },
        }
    }
}

/// The successful outcome of one [`AdmissionRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionResponse {
    /// The connection was set up: routed, slots reserved.
    Opened(ConnId),
    /// The connection was torn down; its slots are free again.
    Closed(ConnId),
    /// The use-case switch completed end to end.
    Switched {
        /// Connections of the close set that actually held a grant and
        /// were torn down.
        closed: u32,
        /// Connections of the open set that were admitted.
        opened: u32,
    },
}

/// Why an admission was refused — structured and matchable, so callers
/// can branch on the cause (and serving layers can aggregate breakdowns)
/// instead of parsing a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalCause {
    /// No route exists between the connection's NIs.
    NoRoute,
    /// No candidate path had enough free (shift-consistent) slots.
    NoSlots {
        /// Slots the connection's bandwidth contract requires.
        needed: u32,
        /// Best number of free slots found on any candidate path.
        free: u32,
    },
    /// Slots were available but no selection met the latency contract.
    LatencyUnmet {
        /// The requirement, in nanoseconds.
        required_ns: u64,
        /// The best achievable worst-case latency, in nanoseconds.
        best_ns: u64,
    },
    /// A close (or the close side of nothing — closes never roll back)
    /// named a connection that holds no grant.
    UnknownConn,
    /// An open named a connection that already holds a grant.
    AlreadyOpen,
    /// The pair is routable in the topology, but every candidate route
    /// traverses a failed link of the provider's fault mask.
    LinkDown {
        /// One blocking down link (the first on the shortest route).
        link: LinkId,
    },
}

impl From<AllocError> for RefusalCause {
    fn from(e: AllocError) -> Self {
        match e {
            AllocError::NoRoute { .. } => RefusalCause::NoRoute,
            AllocError::InsufficientSlots {
                needed,
                best_available,
                ..
            } => RefusalCause::NoSlots {
                needed,
                free: best_available,
            },
            AllocError::LatencyUnmet {
                required_ns,
                best_ns,
                ..
            } => RefusalCause::LatencyUnmet {
                required_ns,
                best_ns,
            },
            AllocError::LinkDown { link, .. } => RefusalCause::LinkDown { link },
        }
    }
}

impl fmt::Display for RefusalCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefusalCause::NoRoute => write!(f, "no route"),
            RefusalCause::NoSlots { needed, free } => {
                write!(f, "needs {needed} slots but at most {free} are free")
            }
            RefusalCause::LatencyUnmet {
                required_ns,
                best_ns,
            } => write!(
                f,
                "requires {required_ns} ns but the best achievable bound is {best_ns} ns"
            ),
            RefusalCause::UnknownConn => write!(f, "holds no grant"),
            RefusalCause::AlreadyOpen => write!(f, "already holds a grant"),
            RefusalCause::LinkDown { link } => {
                write!(f, "severed: every route traverses down link {link}")
            }
        }
    }
}

/// A refused [`AdmissionRequest`].
///
/// The allocation is exactly as it was before the request, except that a
/// refused switch leaves its close set closed (those applications were
/// leaving the use case regardless) — `rolled_back` counts the open-set
/// admissions that had succeeded and were undone. Grants of connections
/// outside the request were never touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionError {
    /// The connection the request was refused on.
    pub conn: ConnId,
    /// Why it was refused.
    pub cause: RefusalCause,
    /// Open-set admissions undone to restore the pre-request state
    /// (non-zero only for switches).
    pub rolled_back: u32,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "admission refused at {}: {}", self.conn, self.cause)?;
        if self.rolled_back > 0 {
            write!(f, "; {} admission(s) rolled back", self.rolled_back)?;
        }
        Ok(())
    }
}

impl std::error::Error for AdmissionError {}
