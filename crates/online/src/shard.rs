//! Sharded parallel admission: region-partitioned churn engines with a
//! scoped two-phase commit for cross-shard requests.
//!
//! The serving workload (per-client streams over disjoint connection
//! pools, `aelite-serve`) is embarrassingly partitionable: most
//! requests touch a handful of links near one corner of the mesh. This
//! module exploits that by tiling the router grid into rectangular
//! **regions** and giving each region's links to one **shard** — an
//! independent [`ChurnEngine`] plus an [`Allocation`] partition holding
//! the real slot tables of exactly the links it owns. A request whose
//! every candidate route stays inside one region is **intra-shard**: it
//! can be admitted on that shard's thread with *no coordination at
//! all*, because the admission kernel only ever reads and writes the
//! slot tables of its candidate routes' links ([`ShardMap`] classifies
//! by the same [`RouteProvider`] candidate enumeration the engines use, so
//! the claim is structural, not probabilistic). Everything else —
//! routes spanning regions, use-case switches naming connections homed
//! on different shards, unknown connection ids — is **cross-shard** and
//! goes through a scoped two-phase commit on the **hub**: phase one
//! *reserves* exactly the state the cross bucket can touch — the named
//! connections' grants, every candidate link of their routes, and their
//! currently-granted links — by swapping it from the owning shard parts
//! into the hub allocation; the hub engine then applies the cross
//! bucket with the ordinary per-request rollback machinery; phase two
//! *commits* by swapping the reserved scope back. The swaps are
//! pointer-level ([`Allocation::swap_link_table_with`]), so a cross
//! phase costs O(Δ) in the bucket's own footprint, never O(platform).
//!
//! Determinism is the load-bearing property: [`ShardedEngine`] applies
//! a burst in a fixed **sharded-canonical order** — shard 0's bucket in
//! [`canonical_order`](crate::canonical_order), then shard 1's, …, then
//! the cross bucket — and because intra buckets are link-disjoint by
//! construction, running them concurrently commutes: the end state and
//! every verdict are bit-identical to that serial reference whatever
//! the thread count (property-tested in `tests/proptest_shard.rs`).
//! With one shard the classification maps everything to shard 0 and the
//! engine degenerates to today's [`ChurnEngine::submit_batch`].

use crate::api::{AdmissionError, AdmissionRequest, AdmissionResponse, RefusalCause};
use crate::engine::{canonical_order_of, ChurnEngine, ChurnStats};
use aelite_alloc::{Allocation, Allocator, RouteCache, RouteProvider, Steering};
use aelite_spec::ids::{ConnId, LinkId};
use aelite_spec::topology::Endpoint;
use aelite_spec::SystemSpec;
use core::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Who owns a link whose endpoints fall in two different regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryPolicy {
    /// The lower-numbered adjacent region owns the link. Requests
    /// confined to that region (including boundary-hugging detours) stay
    /// intra-shard; the higher region's requests that touch the link are
    /// cross-shard.
    #[default]
    LowerShard,
    /// No shard owns boundary links: their slot tables stay in the hub,
    /// and every request whose candidates touch one is cross-shard.
    /// Stricter than [`LowerShard`](Self::LowerShard), useful when
    /// boundary contention should be serialised through the hub.
    Hub,
}

/// Shape of the shard partition: how the router grid is tiled, who owns
/// boundary links, and how many candidate routes the per-shard engines
/// (and the classification) enumerate per NI pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Region tiles along the mesh X dimension.
    pub tiles_x: u32,
    /// Region tiles along the mesh Y dimension.
    pub tiles_y: u32,
    /// Ownership of links crossing a tile boundary.
    pub boundary: BoundaryPolicy,
    /// `max_paths` bound of the per-shard allocators **and** of the
    /// classification: both enumerate the same candidate list, which is
    /// what makes "every candidate link owned by shard k" a sound
    /// isolation proof. Lower values (e.g. 2 = the XY/YX pair) keep
    /// routes inside the endpoints' bounding box, so region-local
    /// traffic classifies intra-shard; the default 12 admits detours
    /// that may escape the region and classify cross.
    pub max_paths: usize,
    /// Candidate-ordering mode of the per-shard allocators (and the
    /// hub's). Classification depends only on the candidate *set*, never
    /// its order, so steering changes which route a grant lands on —
    /// identically in every lane and in the serial reference engine —
    /// without touching the isolation proof.
    pub steering: Steering,
}

impl ShardConfig {
    /// One shard covering the whole platform: [`ShardedEngine`]
    /// degenerates to a plain [`ChurnEngine`] (bit-identical outcomes),
    /// on any topology.
    #[must_use]
    pub fn single() -> Self {
        ShardConfig {
            tiles_x: 1,
            tiles_y: 1,
            boundary: BoundaryPolicy::LowerShard,
            max_paths: Allocator::new().max_paths,
            steering: Steering::ShortestFirst,
        }
    }

    /// A `tiles_x` × `tiles_y` tiling of the router grid with the
    /// default boundary policy and `max_paths` bound. Requires a mesh
    /// topology when more than one tile is asked for.
    #[must_use]
    pub fn tiled(tiles_x: u32, tiles_y: u32) -> Self {
        ShardConfig {
            tiles_x,
            tiles_y,
            ..ShardConfig::single()
        }
    }

    /// Number of shards this tiling produces.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        (self.tiles_x * self.tiles_y) as usize
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::single()
    }
}

/// Where a request may run: on one shard with no coordination, or in
/// the hub's cross-shard commit phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardClass {
    /// Every slot table the request can touch is owned by this shard.
    Intra(usize),
    /// The request spans regions (or names ids the map does not know)
    /// and must run on the hub under a reserved scope.
    Cross,
}

/// Owner sentinel for links held by the hub under
/// [`BoundaryPolicy::Hub`] and for cross-shard connections.
const CROSS: u32 = u32::MAX;

/// Minimum total requests in a parallel phase before `run_shards`
/// spawns scoped workers; below this the serial loop beats the spawn
/// cost. Outcomes are identical either way — only wall-clock differs.
const PARALLEL_FLOOR: usize = 256;

/// The static partition: per-link owners and per-connection homes,
/// derived once from the topology tiling and the route-candidate
/// enumeration.
///
/// A connection's **home** is the shard that owns every link of every
/// candidate route between its NIs (under the map's `max_paths` bound),
/// or cross-shard if no single shard does. Classification is *total*
/// (every request maps to exactly one [`ShardClass`]) and *stable* (it
/// depends only on the spec and config, never on allocation state or
/// thread schedule) — property-tested in `tests/proptest_shard.rs`.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    /// Owner per link index; [`CROSS`] = hub-owned boundary link.
    link_owner: Vec<u32>,
    /// Home shard per connection index; [`CROSS`] = cross-shard.
    conn_home: Vec<u32>,
    /// Links owned by each shard — the adopt/collapse worklist.
    owned_links: Vec<Vec<LinkId>>,
    /// Connections homed on each shard — the grant adopt worklist.
    home_conns: Vec<Vec<ConnId>>,
    /// Per connection: every link any of its candidate routes can touch
    /// (sorted, deduplicated) — the reserve scope of a cross commit.
    conn_links: Vec<Vec<LinkId>>,
}

impl ShardMap {
    /// Builds the partition for `spec` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` asks for more than one tile on a non-mesh
    /// topology (regions are defined by router grid coordinates).
    #[must_use]
    pub fn build(spec: &SystemSpec, config: &ShardConfig) -> ShardMap {
        let topo = spec.topology();
        let shards = config.shard_count().max(1);
        let region_of = |r: aelite_spec::ids::RouterId| -> u32 {
            if shards == 1 {
                return 0;
            }
            let (cols, rows) = topo
                .mesh_dims()
                .expect("multi-tile shard maps require a mesh topology");
            let (x, y) = topo.coords(r).expect("mesh router has coordinates");
            let tx = x * config.tiles_x / cols;
            let ty = y * config.tiles_y / rows;
            ty * config.tiles_x + tx
        };

        let mut link_owner = vec![0u32; topo.link_count()];
        let mut owned_links = vec![Vec::new(); shards];
        for id in topo.links() {
            let link = topo.link(id);
            let end_region = |e: Endpoint| match e {
                Endpoint::Router(r, _) => region_of(r),
                Endpoint::Ni(n) => region_of(topo.ni_router(n)),
            };
            let (a, b) = (end_region(link.from), end_region(link.to));
            let owner = if a == b {
                a
            } else {
                match config.boundary {
                    BoundaryPolicy::LowerShard => a.min(b),
                    BoundaryPolicy::Hub => CROSS,
                }
            };
            link_owner[id.index()] = owner;
            if owner != CROSS {
                owned_links[owner as usize].push(id);
            }
        }

        // Home every connection by the full candidate list the engines
        // will enumerate: identical max_paths bound, identical cache.
        let mut routes = RouteCache::new(topo, config.max_paths);
        let mut conn_home = vec![CROSS; spec.conn_id_bound()];
        let mut home_conns = vec![Vec::new(); shards];
        let mut conn_links = vec![Vec::new(); spec.conn_id_bound()];
        for c in spec.connections() {
            let src = spec.ip_ni(c.src);
            let dst = spec.ip_ni(c.dst);
            let links = &mut conn_links[c.id.index()];
            let mut home: Option<u32> = None;
            let mut cross = false;
            for route in routes.candidates(topo, src, dst) {
                for l in &route.links {
                    links.push(*l);
                    let owner = link_owner[l.index()];
                    if owner == CROSS || *home.get_or_insert(owner) != owner {
                        cross = true;
                    }
                }
            }
            links.sort_unstable();
            links.dedup();
            if !cross {
                // Feasible specs have at least one candidate per pair;
                // a pair with none can only fail at admission time, so
                // home it anywhere deterministic.
                let k = home.unwrap_or(0);
                conn_home[c.id.index()] = k;
                home_conns[k as usize].push(c.id);
            }
        }

        ShardMap {
            shards,
            link_owner,
            conn_home,
            owned_links,
            home_conns,
            conn_links,
        }
    }

    /// Number of shards (regions) in the partition.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `link`'s slot table, or `None` for a hub-owned
    /// boundary link (only under [`BoundaryPolicy::Hub`]).
    #[must_use]
    pub fn link_owner(&self, link: LinkId) -> Option<usize> {
        match self.link_owner.get(link.index()) {
            Some(&o) if o != CROSS => Some(o as usize),
            _ => None,
        }
    }

    /// The home shard of `conn`, or `None` if it is cross-shard (or
    /// unknown to the map — unknown ids always take the hub path, which
    /// refuses them exactly like a plain engine would).
    #[must_use]
    pub fn conn_home(&self, conn: ConnId) -> Option<usize> {
        match self.conn_home.get(conn.index()) {
            Some(&h) if h != CROSS => Some(h as usize),
            _ => None,
        }
    }

    /// Every link any candidate route of `conn` can touch, sorted and
    /// deduplicated — what a cross commit must reserve before admitting
    /// `conn` on the hub. Empty for ids the map does not know.
    #[must_use]
    pub fn conn_links(&self, conn: ConnId) -> &[LinkId] {
        self.conn_links.get(conn.index()).map_or(&[], Vec::as_slice)
    }

    /// Classifies one request: intra-shard iff every connection it
    /// names is homed on one and the same shard.
    ///
    /// Total and stable: every request maps to exactly one class, and
    /// the answer depends only on the map (spec + config), never on
    /// allocation state. An empty switch is intra on shard 0.
    #[must_use]
    pub fn classify(&self, request: &AdmissionRequest) -> ShardClass {
        let home_of = |c: ConnId| self.conn_home(c);
        match request {
            AdmissionRequest::Open(c) | AdmissionRequest::Close(c) => match home_of(*c) {
                Some(k) => ShardClass::Intra(k),
                None => ShardClass::Cross,
            },
            AdmissionRequest::Switch { close, open } => {
                let mut home: Option<usize> = None;
                for &c in close.iter().chain(open.iter()) {
                    match home_of(c) {
                        None => return ShardClass::Cross,
                        Some(k) => {
                            if *home.get_or_insert(k) != k {
                                return ShardClass::Cross;
                            }
                        }
                    }
                }
                ShardClass::Intra(home.unwrap_or(0))
            }
        }
    }
}

/// An [`Allocation`] partitioned along a [`ShardMap`]: one full
/// platform-shaped part per shard holding the *real* slot tables of the
/// links that shard owns (every other table empty), plus a hub part
/// holding hub-owned boundary tables and the grants of cross-shard
/// connections.
///
/// Invariant: between bursts, each link's real table lives in exactly
/// one part (its owner's, or the hub's), each granted connection's
/// grant lives in its home part (cross grants in the hub), and the
/// union of the parts — [`collapse`](Self::collapse) — is exactly the
/// allocation a serial engine would have produced.
#[derive(Debug, Clone)]
pub struct ShardedAllocation {
    parts: Vec<Allocation>,
    hub: Allocation,
}

impl ShardedAllocation {
    /// Partitions an existing allocation along `map`.
    ///
    /// # Panics
    ///
    /// Panics if a shard-homed connection's grant uses a link outside
    /// its home shard's ownership — the grant was produced under a
    /// route set the map does not describe (e.g. a wider `max_paths`
    /// than [`ShardConfig::max_paths`]). Such allocations can only be
    /// adopted under a map built with the same route bound.
    #[must_use]
    pub fn adopt(spec: &SystemSpec, mut alloc: Allocation, map: &ShardMap) -> Self {
        let mut parts: Vec<Allocation> = (0..map.shards)
            .map(|_| Allocation::empty_for(spec))
            .collect();
        for (k, part) in parts.iter_mut().enumerate() {
            for &link in &map.owned_links[k] {
                alloc.swap_link_table_with(part, link);
            }
            for &conn in &map.home_conns[k] {
                if let Some(g) = alloc.grant(conn) {
                    for &l in &g.links {
                        assert_eq!(
                            map.link_owner(l),
                            Some(k),
                            "grant of {conn} uses {l} outside home shard {k}: \
                             adopt needs grants routed under the map's max_paths bound"
                        );
                    }
                    alloc.swap_grant_with(part, conn);
                }
            }
        }
        ShardedAllocation { parts, hub: alloc }
    }

    /// An empty partitioned allocation for `spec`.
    #[must_use]
    pub fn empty_for(spec: &SystemSpec, map: &ShardMap) -> Self {
        ShardedAllocation::adopt(spec, Allocation::empty_for(spec), map)
    }

    /// Reassembles the partition into one flat [`Allocation`] —
    /// the inverse of [`adopt`](Self::adopt), used to compare a sharded
    /// end state against a serial engine's and to hand the allocation
    /// to consumers that want the plain view (validation, the turbo
    /// simulator).
    #[must_use]
    pub fn collapse(&self, map: &ShardMap) -> Allocation {
        let mut out = self.hub.clone();
        for (k, part) in self.parts.iter().enumerate() {
            let mut part = part.clone();
            for &link in &map.owned_links[k] {
                out.swap_link_table_with(&mut part, link);
            }
            for &conn in &map.home_conns[k] {
                if part.grant(conn).is_some() {
                    out.swap_grant_with(&mut part, conn);
                }
            }
        }
        out
    }

    /// The grant of `conn`, wherever its part lives. O(shards) probe.
    #[must_use]
    pub fn grant(&self, conn: ConnId) -> Option<&aelite_alloc::Grant> {
        self.parts
            .iter()
            .chain(core::iter::once(&self.hub))
            .find_map(|p| p.grant(conn))
    }

    /// Shard `k`'s partition (its owned link tables are the real ones).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn part(&self, k: usize) -> &Allocation {
        &self.parts[k]
    }

    /// The hub partition (cross-shard grants, hub-owned boundary
    /// tables).
    #[must_use]
    pub fn hub(&self) -> &Allocation {
        &self.hub
    }

    /// Phase one of the cross-shard commit: the hub *reserves* exactly
    /// the state the cross bucket can touch — `links` (every candidate
    /// and currently-granted link of the named connections) from their
    /// owning parts, and the named connections' grants from their home
    /// parts. O(Δ) in the bucket's footprint, never O(platform).
    ///
    /// `links` and `conns` must be deduplicated — a duplicate entry
    /// would swap the state straight back out.
    fn reserve_scope(&mut self, map: &ShardMap, links: &[LinkId], conns: &[ConnId]) {
        for &l in links {
            if let Some(k) = map.link_owner(l) {
                self.parts[k].swap_link_table_with(&mut self.hub, l);
            }
            // Hub-owned boundary tables already live in the hub.
        }
        for &c in conns {
            if let Some(k) = map.conn_home(c) {
                // Whoever holds the grant (the home part if open, nobody
                // if closed), the swap moves exactly that to the hub.
                self.parts[k].swap_grant_with(&mut self.hub, c);
            }
            // Cross-homed grants already live in the hub.
        }
    }

    /// Phase two: *commit* the reserved scope back — tables to their
    /// owners, grants to their home parts. Cross-homed grants (opened
    /// or still held) stay in the hub, which is their home.
    fn commit_scope(&mut self, map: &ShardMap, links: &[LinkId], conns: &[ConnId]) {
        for &l in links {
            if let Some(k) = map.link_owner(l) {
                self.parts[k].swap_link_table_with(&mut self.hub, l);
            }
        }
        for &c in conns {
            if let Some(k) = map.conn_home(c) {
                self.hub.swap_grant_with(&mut self.parts[k], c);
            }
        }
    }
}

type Verdict = Result<AdmissionResponse, AdmissionError>;

fn placeholder() -> Verdict {
    // Overwritten before returning: the buckets partition the arrival
    // indices, so every slot is assigned exactly once.
    Err(AdmissionError {
        conn: ConnId::new(0),
        cause: RefusalCause::UnknownConn,
        rolled_back: 0,
    })
}

fn add_stats(into: &mut ChurnStats, s: &ChurnStats) {
    into.setups += s.setups;
    into.teardowns += s.teardowns;
    into.switches += s.switches;
    into.refused_opens += s.refused_opens;
    into.refused_closes += s.refused_closes;
    into.refused_switches += s.refused_switches;
    into.rolled_back_opens += s.rolled_back_opens;
    into.refused_link_down += s.refused_link_down;
}

/// One shard's working set during a parallel phase: exclusive borrows
/// of its engine and allocation part plus the work list and the verdict
/// sink. Behind a `Mutex` only to satisfy `Sync` — the atomic cursor
/// hands each lane to exactly one worker, so every lock is uncontended.
struct Lane<'a> {
    engine: &'a mut ChurnEngine,
    part: &'a mut Allocation,
    /// Arrival-index buckets to apply in order (one per burst of the
    /// current segment; a single bucket for `submit_batch`).
    work: &'a [Vec<usize>],
    pairs: &'a mut Vec<(usize, Verdict)>,
}

/// Region-partitioned parallel admission over a [`ShardedAllocation`]:
/// one [`ChurnEngine`] per shard plus a hub engine for the cross-shard
/// two-phase commit. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct ShardedEngine {
    config: ShardConfig,
    map: ShardMap,
    engines: Vec<ChurnEngine>,
    hub_engine: ChurnEngine,
    /// Reusable per-shard arrival-index buckets for `submit_batch`.
    buckets: Vec<Vec<usize>>,
    /// Reusable cross-shard bucket.
    cross: Vec<usize>,
    /// Reusable per-shard verdict sinks.
    pairs: Vec<Vec<(usize, Verdict)>>,
    /// Reusable reserve scope of the cross commit: links and
    /// connections the current cross bucket can touch.
    scope_links: Vec<LinkId>,
    scope_conns: Vec<ConnId>,
}

impl ShardedEngine {
    /// An engine for `spec`'s platform partitioned under `config`. Each
    /// shard (and the hub) gets its own allocator with the config's
    /// `max_paths` bound, its own route cache and scratch.
    ///
    /// # Panics
    ///
    /// Panics if `config` tiles a non-mesh topology.
    #[must_use]
    pub fn new(spec: &SystemSpec, config: ShardConfig) -> Self {
        let map = ShardMap::build(spec, &config);
        let allocator = Allocator {
            max_paths: config.max_paths,
            steering: config.steering,
            ..Allocator::new()
        };
        let shards = map.shards();
        ShardedEngine {
            config,
            map,
            engines: (0..shards)
                .map(|_| ChurnEngine::with_allocator(spec, allocator))
                .collect(),
            hub_engine: ChurnEngine::with_allocator(spec, allocator),
            buckets: vec![Vec::new(); shards],
            cross: Vec::new(),
            pairs: vec![Vec::new(); shards],
            scope_links: Vec::new(),
            scope_conns: Vec::new(),
        }
    }

    /// The partition this engine admits against.
    #[must_use]
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The tiling configuration this engine was built with.
    #[must_use]
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Installs `faults` as the fault mask of **every** shard engine and
    /// the hub (see [`ChurnEngine::set_faults`]): a route traversing a
    /// down link can be granted by none of the admission paths —
    /// intra-shard, serial fallback, or the cross-shard two-phase
    /// commit. Masking only removes candidates, so shard classification
    /// and the conn-links ownership invariants are unaffected; the
    /// sharded outcome stays bit-identical to the plain engine under the
    /// same mask in [`sharded_canonical_order`].
    pub fn set_faults(&mut self, faults: &aelite_alloc::FaultMask) {
        for e in &mut self.engines {
            e.set_faults(faults);
        }
        self.hub_engine.set_faults(faults);
    }

    /// Work counters summed over every shard engine and the hub.
    #[must_use]
    pub fn stats(&self) -> ChurnStats {
        let mut total = ChurnStats::default();
        for e in &self.engines {
            add_stats(&mut total, e.stats());
        }
        add_stats(&mut total, self.hub_engine.stats());
        total
    }

    /// Services a burst of **independent** requests in parallel, writing
    /// one verdict per request into `verdicts` (cleared first, arrival
    /// order).
    ///
    /// The burst is bucketed by [`ShardMap::classify`]; intra-shard
    /// buckets run concurrently on up to `threads` workers (each worker
    /// claims whole shards off an atomic cursor), then the cross bucket
    /// — if any — runs the scoped two-phase commit on the hub. End
    /// state and verdicts are bit-identical to the sharded-canonical
    /// serial reference (shard 0's bucket in canonical order, then
    /// shard 1's, …, then cross) for any `threads`, and with one shard
    /// to [`ChurnEngine::submit_batch`] itself.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn submit_batch(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut ShardedAllocation,
        requests: &[AdmissionRequest],
        verdicts: &mut Vec<Verdict>,
        threads: usize,
    ) {
        verdicts.clear();
        verdicts.resize(requests.len(), placeholder());
        for b in &mut self.buckets {
            b.clear();
        }
        self.cross.clear();
        for (i, r) in requests.iter().enumerate() {
            match self.map.classify(r) {
                ShardClass::Intra(k) => self.buckets[k].push(i),
                ShardClass::Cross => self.cross.push(i),
            }
        }

        // Intra phase: each shard's bucket as one work item.
        let work: Vec<Vec<Vec<usize>>> = self
            .buckets
            .iter()
            .map(|b| {
                if b.is_empty() {
                    Vec::new()
                } else {
                    vec![b.clone()]
                }
            })
            .collect();
        run_shards(
            spec,
            &mut self.engines,
            &mut alloc.parts,
            &work,
            &mut self.pairs,
            requests,
            threads,
        );
        for pairs in &mut self.pairs {
            for (i, v) in pairs.drain(..) {
                verdicts[i] = v;
            }
        }

        // Cross phase: scoped two-phase commit on the hub.
        if !self.cross.is_empty() {
            self.run_cross(spec, alloc, requests, verdicts);
        }
    }

    /// Runs the pending cross bucket through the hub engine under a
    /// scoped two-phase reserve/commit, scattering verdicts by arrival
    /// index.
    fn run_cross(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut ShardedAllocation,
        requests: &[AdmissionRequest],
        verdicts: &mut [Verdict],
    ) {
        // The reserve scope: the named connections, every candidate
        // link any of them can route over, plus their currently-granted
        // links (a grant adopted from a wider route bound may sit
        // outside the map's candidate set).
        self.scope_conns.clear();
        for &i in &self.cross {
            match &requests[i] {
                AdmissionRequest::Open(c) | AdmissionRequest::Close(c) => {
                    self.scope_conns.push(*c);
                }
                AdmissionRequest::Switch { close, open } => {
                    self.scope_conns.extend_from_slice(close);
                    self.scope_conns.extend_from_slice(open);
                }
            }
        }
        self.scope_conns.sort_unstable();
        self.scope_conns.dedup();
        self.scope_links.clear();
        for &c in &self.scope_conns {
            self.scope_links.extend_from_slice(self.map.conn_links(c));
            if let Some(g) = alloc.grant(c) {
                self.scope_links.extend_from_slice(&g.links);
            }
        }
        self.scope_links.sort_unstable();
        self.scope_links.dedup();

        alloc.reserve_scope(&self.map, &self.scope_links, &self.scope_conns);
        let mut pairs = core::mem::take(&mut self.pairs[0]);
        self.hub_engine
            .submit_bucket(spec, &mut alloc.hub, requests, &self.cross, &mut pairs);
        alloc.commit_scope(&self.map, &self.scope_links, &self.scope_conns);
        for (i, v) in pairs.drain(..) {
            verdicts[i] = v;
        }
        self.pairs[0] = pairs;
    }

    /// Replays a planned burst sequence (`plan_bursts`-style ranges
    /// over `requests`, see `aelite-serve`) with **segment-scoped**
    /// threading: worker
    /// threads are spawned once per *segment* — a maximal run of bursts
    /// containing no cross-shard request, plus at most one cross tail —
    /// and inside a segment each shard's engine walks its buckets burst
    /// by burst. A stream with no cross requests (e.g. region-local
    /// client pools) is a single segment: one thread spawn for the whole
    /// replay.
    ///
    /// Per-connection request order is preserved (a connection's
    /// requests all land in its home shard's lane, processed in burst
    /// order), so verdicts and end state are bit-identical to calling
    /// [`submit_batch`](Self::submit_batch) per burst, for any
    /// `threads`.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch or if a range in `bursts` is out of
    /// bounds of `requests`.
    pub fn replay_stream(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut ShardedAllocation,
        requests: &[AdmissionRequest],
        bursts: &[Range<usize>],
        threads: usize,
        verdicts: &mut Vec<Verdict>,
    ) {
        verdicts.clear();
        verdicts.resize(requests.len(), placeholder());
        let shards = self.map.shards();
        let mut b = 0;
        while b < bursts.len() {
            // Scan the segment: per-shard bucket lists, one per burst,
            // stopping after the first burst that has cross requests.
            let mut seg: Vec<Vec<Vec<usize>>> = vec![Vec::new(); shards];
            self.cross.clear();
            let mut e = b;
            while e < bursts.len() {
                for bucket in &mut self.buckets {
                    bucket.clear();
                }
                let mut has_cross = false;
                for i in bursts[e].clone() {
                    match self.map.classify(&requests[i]) {
                        ShardClass::Intra(k) => self.buckets[k].push(i),
                        ShardClass::Cross => {
                            self.cross.push(i);
                            has_cross = true;
                        }
                    }
                }
                for (k, bucket) in self.buckets.iter().enumerate() {
                    if !bucket.is_empty() {
                        seg[k].push(bucket.clone());
                    }
                }
                e += 1;
                if has_cross {
                    break;
                }
            }

            run_shards(
                spec,
                &mut self.engines,
                &mut alloc.parts,
                &seg,
                &mut self.pairs,
                requests,
                threads,
            );
            for pairs in &mut self.pairs {
                for (i, v) in pairs.drain(..) {
                    verdicts[i] = v;
                }
            }
            if !self.cross.is_empty() {
                self.run_cross(spec, alloc, requests, verdicts);
            }
            b = e;
        }
    }
}

/// Runs every shard's bucket list, fanning out over up to `threads`
/// scoped workers pulling shard lanes off an atomic cursor. Lanes are
/// exclusive per shard, so this is deterministic: whichever worker
/// claims a lane applies exactly the same buckets to exactly the same
/// engine + partition.
#[allow(clippy::too_many_arguments)]
fn run_shards(
    spec: &SystemSpec,
    engines: &mut [ChurnEngine],
    parts: &mut [Allocation],
    work: &[Vec<Vec<usize>>],
    pairs: &mut [Vec<(usize, Verdict)>],
    requests: &[AdmissionRequest],
    threads: usize,
) {
    let active: Vec<usize> = (0..work.len()).filter(|&k| !work[k].is_empty()).collect();
    if active.is_empty() {
        return;
    }
    let total: usize = active
        .iter()
        .map(|&k| work[k].iter().map(Vec::len).sum::<usize>())
        .sum();
    let workers = threads.max(1).min(active.len());
    // Below the floor the spawn cost of a scope outweighs the fan-out;
    // the serial loop applies the very same buckets in the very same
    // per-lane order, so outcomes cannot depend on which path runs.
    if workers <= 1 || total < PARALLEL_FLOOR {
        for &k in &active {
            for bucket in &work[k] {
                engines[k].submit_bucket(spec, &mut parts[k], requests, bucket, &mut pairs[k]);
            }
        }
        return;
    }

    let lanes: Vec<Mutex<Lane<'_>>> = engines
        .iter_mut()
        .zip(parts.iter_mut())
        .zip(work.iter())
        .zip(pairs.iter_mut())
        .map(|(((engine, part), work), pairs)| {
            Mutex::new(Lane {
                engine,
                part,
                work,
                pairs,
            })
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    let (lanes, active, cursor) = (&lanes, &active, &cursor);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || loop {
                let n = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&k) = active.get(n) else { break };
                let lane = &mut *lanes[k].lock().expect("lane poisoned");
                for bucket in lane.work {
                    lane.engine
                        .submit_bucket(spec, lane.part, requests, bucket, lane.pairs);
                }
            });
        }
    });
}

/// The serial reference order [`ShardedEngine::submit_batch`] is
/// pinned against: shard 0's bucket in
/// [`canonical_order`](crate::canonical_order), then shard 1's, …, then
/// the cross bucket — written into `out` (cleared first) as arrival
/// indices. Applying `requests` serially in this order through a plain
/// [`ChurnEngine`] reproduces the sharded engine's end state and
/// verdicts bit-for-bit.
pub fn sharded_canonical_order(
    spec: &SystemSpec,
    map: &ShardMap,
    requests: &[AdmissionRequest],
    out: &mut Vec<usize>,
) {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); map.shards()];
    let mut cross = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        match map.classify(r) {
            ShardClass::Intra(k) => buckets[k].push(i),
            ShardClass::Cross => cross.push(i),
        }
    }
    out.clear();
    let mut ordered = Vec::new();
    for bucket in buckets.iter().chain(core::iter::once(&cross)) {
        canonical_order_of(spec, requests, bucket, &mut ordered);
        out.extend_from_slice(&ordered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::allocate;
    use aelite_spec::generate::scaled_workload;
    use aelite_spec::topology::Topology;

    fn quad_config() -> ShardConfig {
        ShardConfig {
            max_paths: 2,
            ..ShardConfig::tiled(2, 2)
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let spec = scaled_workload(4, 4, 2, 60, 7);
        let map = ShardMap::build(&spec, &ShardConfig::single());
        assert_eq!(map.shards(), 1);
        for l in spec.topology().links() {
            assert_eq!(map.link_owner(l), Some(0));
        }
        for c in spec.connections() {
            assert_eq!(map.conn_home(c.id), Some(0));
        }
    }

    #[test]
    fn quadrant_map_partitions_links_and_boundary_goes_low() {
        let spec = scaled_workload(4, 4, 2, 60, 7);
        let topo = spec.topology();
        let map = ShardMap::build(&spec, &quad_config());
        assert_eq!(map.shards(), 4);
        // Every link is owned (LowerShard leaves nothing to the hub),
        // and NI links follow their router's quadrant.
        let mut counts = [0usize; 4];
        for l in topo.links() {
            let owner = map.link_owner(l).expect("LowerShard owns all links");
            counts[owner] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn hub_policy_disowns_boundary_links() {
        let spec = scaled_workload(4, 4, 2, 60, 7);
        let map = ShardMap::build(
            &spec,
            &ShardConfig {
                boundary: BoundaryPolicy::Hub,
                ..quad_config()
            },
        );
        let hub_links = spec
            .topology()
            .links()
            .filter(|&l| map.link_owner(l).is_none())
            .count();
        assert!(hub_links > 0, "a 4x4 quadrant tiling has boundary links");
    }

    #[test]
    fn ring_topology_rejects_tiling_but_takes_single_shard() {
        let topo = Topology::ring(6, 1);
        // Single shard works on any topology...
        let spec = {
            use aelite_spec::app::SystemSpecBuilder;
            use aelite_spec::ids::NiId;
            use aelite_spec::traffic::Bandwidth;
            let mut b = SystemSpecBuilder::new(topo, aelite_spec::NocConfig::paper_default());
            let a = b.add_app("a");
            let s = b.add_ip_at(NiId::new(0));
            let d = b.add_ip_at(NiId::new(3));
            b.add_connection(a, s, d, Bandwidth::from_mbytes_per_sec(50), 10_000);
            b.build()
        };
        let map = ShardMap::build(&spec, &ShardConfig::single());
        assert_eq!(map.shards(), 1);
        // ...but a multi-tile map panics.
        let result = std::panic::catch_unwind(|| ShardMap::build(&spec, &ShardConfig::tiled(2, 1)));
        assert!(result.is_err(), "tiling a ring must panic");
    }

    #[test]
    fn adopt_collapse_roundtrips_bit_for_bit() {
        let spec = scaled_workload(4, 4, 2, 60, 7);
        let alloc = allocate(&spec).unwrap();
        // Adopt under the full route bound so existing grants (made with
        // max_paths 12) satisfy the ownership invariant.
        let map = ShardMap::build(&spec, &ShardConfig::single());
        let sharded = ShardedAllocation::adopt(&spec, alloc.clone(), &map);
        let back = sharded.collapse(&map);
        for l in spec.topology().links() {
            assert_eq!(back.link_table(l), alloc.link_table(l), "{l} diverged");
        }
        for c in spec.connections() {
            assert_eq!(back.grant(c.id), alloc.grant(c.id), "{} diverged", c.id);
        }
    }

    #[test]
    fn sharded_burst_matches_plain_engine_on_one_shard() {
        let spec = scaled_workload(4, 4, 2, 60, 7);
        let map_cfg = ShardConfig::single();
        let mut sharded = ShardedEngine::new(&spec, map_cfg);
        let mut plain = ChurnEngine::new(&spec);
        // Plain submit_batch may take its serial-floor fallback on tiny
        // bursts; outcomes are identical either way.
        let alloc0 = allocate(&spec).unwrap();
        let mut flat = alloc0.clone();
        let mut parts = ShardedAllocation::adopt(&spec, alloc0, sharded.map());

        let ids: Vec<ConnId> = spec.connections().iter().map(|c| c.id).collect();
        let requests = vec![
            AdmissionRequest::Close(ids[0]),
            AdmissionRequest::Close(ids[1]),
            AdmissionRequest::Open(ids[2]), // already open -> refused
            AdmissionRequest::Switch {
                close: vec![ids[3], ids[4]],
                open: vec![],
            },
        ];
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        sharded.submit_batch(&spec, &mut parts, &requests, &mut va, 4);
        plain.submit_batch(&spec, &mut flat, &requests, &mut vb);
        assert_eq!(va, vb);
        let back = parts.collapse(sharded.map());
        for c in &ids {
            assert_eq!(back.grant(*c), flat.grant(*c), "{c} diverged");
        }
        assert_eq!(sharded.stats(), *plain.stats());
    }

    #[test]
    fn steered_sharded_burst_matches_steered_plain_engine() {
        let spec = scaled_workload(4, 4, 2, 60, 7);
        let cfg = ShardConfig {
            steering: Steering::SpareCapacity,
            ..ShardConfig::single()
        };
        let mut sharded = ShardedEngine::new(&spec, cfg);
        let mut plain = ChurnEngine::with_allocator(
            &spec,
            Allocator {
                steering: Steering::SpareCapacity,
                ..Allocator::new()
            },
        );
        let mut flat = Allocation::empty_for(&spec);
        let mut parts = ShardedAllocation::empty_for(&spec, sharded.map());

        let ids: Vec<ConnId> = spec.connections().iter().map(|c| c.id).collect();
        let requests: Vec<AdmissionRequest> = ids
            .iter()
            .take(24)
            .map(|&c| AdmissionRequest::Open(c))
            .collect();
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        sharded.submit_batch(&spec, &mut parts, &requests, &mut va, 4);
        plain.submit_batch(&spec, &mut flat, &requests, &mut vb);
        assert_eq!(va, vb);
        let back = parts.collapse(sharded.map());
        for c in ids.iter().take(24) {
            assert_eq!(back.grant(*c), flat.grant(*c), "{c} diverged");
        }
        assert_eq!(sharded.stats(), *plain.stats());
    }

    #[test]
    fn cross_shard_requests_take_the_hub_and_commit_back() {
        let spec = scaled_workload(4, 4, 2, 80, 11);
        let cfg = quad_config();
        let mut engine = ShardedEngine::new(&spec, cfg);
        let mut alloc = ShardedAllocation::empty_for(&spec, engine.map());

        // Find one intra and one cross connection.
        let intra = spec
            .connections()
            .iter()
            .find(|c| engine.map().conn_home(c.id).is_some())
            .expect("regional pair exists on 4x4");
        let cross = spec
            .connections()
            .iter()
            .find(|c| engine.map().conn_home(c.id).is_none())
            .expect("cross pair exists on 4x4");

        let requests = vec![
            AdmissionRequest::Open(intra.id),
            AdmissionRequest::Open(cross.id),
        ];
        let mut verdicts = Vec::new();
        engine.submit_batch(&spec, &mut alloc, &requests, &mut verdicts, 2);
        assert!(verdicts[0].is_ok(), "{:?}", verdicts[0]);
        assert!(verdicts[1].is_ok(), "{:?}", verdicts[1]);
        // The intra grant lives in its home part, the cross grant in the
        // hub, and both survive a close round-trip.
        let home = engine.map().conn_home(intra.id).unwrap();
        assert!(alloc.part(home).grant(intra.id).is_some());
        assert!(alloc.hub().grant(cross.id).is_some());

        let requests = vec![
            AdmissionRequest::Close(intra.id),
            AdmissionRequest::Close(cross.id),
        ];
        engine.submit_batch(&spec, &mut alloc, &requests, &mut verdicts, 2);
        assert!(verdicts.iter().all(Result::is_ok), "{verdicts:?}");
        assert!(alloc.grant(intra.id).is_none());
        assert!(alloc.grant(cross.id).is_none());
        assert_eq!(engine.stats().ops(), 4);
    }

    #[test]
    fn classification_is_total() {
        let spec = scaled_workload(4, 4, 2, 60, 7);
        let map = ShardMap::build(&spec, &quad_config());
        for c in spec.connections() {
            // Every request kind classifies without panicking, and open
            // and close of the same connection agree.
            let open = map.classify(&AdmissionRequest::Open(c.id));
            let close = map.classify(&AdmissionRequest::Close(c.id));
            assert_eq!(open, close);
        }
        // Unknown ids are cross (the hub refuses them like a plain
        // engine would).
        let unknown = ConnId::new(10_000);
        assert_eq!(
            map.classify(&AdmissionRequest::Close(unknown)),
            ShardClass::Cross
        );
        // An empty switch is intra on shard 0.
        assert_eq!(
            map.classify(&AdmissionRequest::Switch {
                close: vec![],
                open: vec![]
            }),
            ShardClass::Intra(0)
        );
    }
}
