//! Fault injection and undisturbed recovery: link/router failures
//! serviced as churn deltas.
//!
//! The paper's contract is composable, contention-free service — a
//! connection, once admitted, is undisturbed by everything else,
//! *including reconfiguration*. This module extends that contract to
//! failures: a link going down is just another reconfiguration request,
//! serviced by the same O(Δ) admission machinery, and every bystander's
//! cycle-level delivery behaviour is provably unchanged
//! (`tests/fault_undisturbed.rs`).
//!
//! [`FaultEngine`] wraps a [`ChurnEngine`] and drives the recovery
//! ladder on each event:
//!
//! 1. **mask** — the failed link enters the engine's
//!    [`FaultMask`]; from that point no
//!    admission path (serial, batched round, sharded two-phase commit)
//!    can grant a route traversing it, and resident cached routes over
//!    it are evicted;
//! 2. **make-before-break** — each affected grant (hardest first, the
//!    allocator's admission order) is re-admitted on a fault-free path
//!    *while its old reservations are still held*, then the old slots
//!    are released as one delta ([`ChurnEngine::reroute`]);
//! 3. **break-then-make** — if the replacement needs the old slots, they
//!    are released first and the admission retried;
//! 4. **structured refusal** — if no fault-free capacity exists the
//!    connection is dropped with
//!    [`RefusalCause::LinkDown`](crate::RefusalCause::LinkDown) (or a
//!    capacity cause) and parked as *displaced*; when a repair event
//!    restores routability ([`link_up`](FaultEngine::link_up) /
//!    [`router_up`](FaultEngine::router_up)), displaced connections are
//!    re-homed.
//!
//! Each event yields a [`RecoveryReport`]; [`FaultStats`] accumulates
//! them. Bystander grants are never touched on any rung — undisturbed
//! service under failure is structural, not best-effort.

use crate::engine::{ChurnEngine, RerouteOutcome};
use aelite_alloc::{admission_order, Allocation, FaultMask};
use aelite_spec::fault::{FaultOp, ScenarioOp};
use aelite_spec::ids::{ConnId, LinkId, RouterId};
use aelite_spec::topology::{Endpoint, Topology};
use aelite_spec::ChurnOp;
use aelite_spec::SystemSpec;

/// What one fault or repair event did to the live connections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Grants whose route traversed a newly failed link.
    pub affected: u32,
    /// Affected connections re-routed with the old reservations still
    /// held — capacity handed over as one delta.
    pub make_before_break: u32,
    /// Affected connections re-routed only after their old slots were
    /// released (the replacement reuses them).
    pub break_then_make: u32,
    /// Affected connections with no admissible fault-free path: dropped
    /// and parked as displaced.
    pub dropped: u32,
    /// Previously displaced connections re-homed by this repair event.
    pub restored: u32,
}

impl RecoveryReport {
    /// Affected connections that kept service through the event.
    #[must_use]
    pub fn survived(&self) -> u32 {
        self.make_before_break + self.break_then_make
    }
}

/// Totals over every fault and repair event a [`FaultEngine`] serviced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Link failure events applied (no-op repeats not counted).
    pub link_downs: u64,
    /// Link repair events applied.
    pub link_ups: u64,
    /// Router failure events applied.
    pub router_downs: u64,
    /// Router repair events applied.
    pub router_ups: u64,
    /// Total grants affected across failure events.
    pub affected: u64,
    /// Total make-before-break re-routes.
    pub make_before_break: u64,
    /// Total break-then-make re-routes.
    pub break_then_make: u64,
    /// Total connections dropped (displaced) by failures.
    pub dropped: u64,
    /// Total displaced connections re-homed by repairs.
    pub restored: u64,
}

impl FaultStats {
    /// Total affected connections that kept service.
    #[must_use]
    pub fn survived(&self) -> u64 {
        self.make_before_break + self.break_then_make
    }

    fn absorb(&mut self, r: &RecoveryReport) {
        self.affected += u64::from(r.affected);
        self.make_before_break += u64::from(r.make_before_break);
        self.break_then_make += u64::from(r.break_then_make);
        self.dropped += u64::from(r.dropped);
        self.restored += u64::from(r.restored);
    }
}

/// The links adjacent to `router` — router-router links on either side
/// and the NI links of its concentrated NIs.
fn router_links(topo: &Topology, router: RouterId, out: &mut Vec<LinkId>) {
    out.clear();
    out.extend(topo.links().filter(|&l| {
        let link = topo.link(l);
        let touches = |e: Endpoint| matches!(e, Endpoint::Router(r, _) if r == router);
        touches(link.from) || touches(link.to)
    }));
}

/// A recovery engine: a [`ChurnEngine`] plus the fault mask it admits
/// under, the displaced-connection ledger, and the event counters. See
/// the [module docs](self) for the recovery ladder.
///
/// Ordinary churn flows through [`apply`](Self::apply) (or the wrapped
/// engine's own API between events); fault events flow through
/// [`link_down`](Self::link_down) / [`link_up`](Self::link_up) /
/// [`router_down`](Self::router_down) / [`router_up`](Self::router_up).
/// The mask must only be changed through this engine — installing a
/// different mask directly on the inner engine would desynchronise the
/// displaced ledger.
#[derive(Debug)]
pub struct FaultEngine {
    engine: ChurnEngine,
    mask: FaultMask,
    stats: FaultStats,
    /// Connections dropped by failures that the workload still holds
    /// open: candidates for re-homing on the next repair event.
    displaced: Vec<ConnId>,
    /// Reusable affected-grant / re-home order buffer.
    order: Vec<ConnId>,
    /// Reusable adjacent-links buffer for router events.
    links: Vec<LinkId>,
}

impl FaultEngine {
    /// A recovery engine for `spec`'s platform over a default
    /// [`ChurnEngine`].
    #[must_use]
    pub fn new(spec: &SystemSpec) -> Self {
        FaultEngine::with_engine(ChurnEngine::new(spec))
    }

    /// A recovery engine over a caller-configured churn engine (custom
    /// allocator or route provider). Any fault mask already installed on
    /// `engine` becomes the starting mask.
    #[must_use]
    pub fn with_engine(engine: ChurnEngine) -> Self {
        let mask = engine.faults().clone();
        FaultEngine {
            engine,
            mask,
            stats: FaultStats::default(),
            displaced: Vec::new(),
            order: Vec::new(),
            links: Vec::new(),
        }
    }

    /// The wrapped churn engine (e.g. for its [`ChurnStats`] refusal
    /// breakdown, where fault-caused refusals show up as
    /// [`refused_link_down`](crate::ChurnStats::refused_link_down)).
    ///
    /// [`ChurnStats`]: crate::ChurnStats
    #[must_use]
    pub fn engine(&self) -> &ChurnEngine {
        &self.engine
    }

    /// The current fault mask (the set of down links).
    #[must_use]
    pub fn mask(&self) -> &FaultMask {
        &self.mask
    }

    /// Event and recovery totals since the engine was created.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Connections dropped by failures and not yet re-homed or closed
    /// by the workload, in drop order.
    #[must_use]
    pub fn displaced(&self) -> &[ConnId] {
        &self.displaced
    }

    /// Services one link failure: masks `link`, then walks every grant
    /// routed over it down the recovery ladder (make-before-break,
    /// break-then-make, drop-and-park), hardest connection first. A
    /// repeat failure of an already-down link is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn link_down(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        link: LinkId,
    ) -> RecoveryReport {
        if !self.mask.set_down(link) {
            return RecoveryReport::default();
        }
        self.stats.link_downs += 1;
        self.recover(spec, alloc, &[link])
    }

    /// Services one link repair: unmasks `link` and re-homes displaced
    /// connections that now fit, hardest first. A repair of a link that
    /// is not down is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn link_up(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        link: LinkId,
    ) -> RecoveryReport {
        if !self.mask.set_up(link) {
            return RecoveryReport::default();
        }
        self.stats.link_ups += 1;
        self.rehome(spec, alloc)
    }

    /// Services a whole-router failure: every adjacent link still up
    /// goes down together, then **one** recovery sweep re-routes the
    /// grants touching any of them. A router whose links are all
    /// already down is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn router_down(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        router: RouterId,
    ) -> RecoveryReport {
        let mut links = core::mem::take(&mut self.links);
        router_links(spec.topology(), router, &mut links);
        links.retain(|&l| self.mask.set_down(l));
        let report = if links.is_empty() {
            RecoveryReport::default()
        } else {
            self.stats.router_downs += 1;
            self.recover(spec, alloc, &links)
        };
        self.links = links;
        report
    }

    /// Services a whole-router repair: every adjacent link currently
    /// down comes back up together, then displaced connections are
    /// re-homed. A router with no adjacent down link is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn router_up(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        router: RouterId,
    ) -> RecoveryReport {
        let mut links = core::mem::take(&mut self.links);
        router_links(spec.topology(), router, &mut links);
        links.retain(|&l| self.mask.set_up(l));
        let report = if links.is_empty() {
            RecoveryReport::default()
        } else {
            self.stats.router_ups += 1;
            self.rehome(spec, alloc)
        };
        self.links = links;
        report
    }

    /// Applies one scenario operation (see [`aelite_spec::fault`]):
    /// churn ops delegate to the wrapped engine, fault ops to the
    /// matching event handler. Returns whether the op was applied in
    /// full (fault events always are; churn follows
    /// [`ChurnEngine::apply`]).
    ///
    /// A churn close of a displaced connection settles it (the workload
    /// no longer wants it open), and a successful churn re-open removes
    /// it from the ledger — so replaying a merged [`FaultScenario`]
    /// keeps the ledger exact.
    ///
    /// [`FaultScenario`]: aelite_spec::fault::FaultScenario
    pub fn apply(&mut self, spec: &SystemSpec, alloc: &mut Allocation, op: &ScenarioOp) -> bool {
        match op {
            ScenarioOp::Churn(c) => {
                let ok = self.engine.apply(spec, alloc, c);
                if !self.displaced.is_empty() {
                    let closed_by = |conn: ConnId| match c {
                        ChurnOp::Close(x) => *x == conn,
                        ChurnOp::Switch { close, .. } => close.contains(&conn),
                        ChurnOp::Open(_) => false,
                    };
                    self.displaced
                        .retain(|&c| alloc.grant(c).is_none() && !closed_by(c));
                }
                ok
            }
            ScenarioOp::Fault(f) => {
                match *f {
                    FaultOp::LinkDown(l) => self.link_down(spec, alloc, l),
                    FaultOp::LinkUp(l) => self.link_up(spec, alloc, l),
                    FaultOp::RouterDown(r) => self.router_down(spec, alloc, r),
                    FaultOp::RouterUp(r) => self.router_up(spec, alloc, r),
                };
                true
            }
        }
    }

    /// The failure-side sweep: installs the grown mask, collects the
    /// grants routed over any of `newly_down`, and walks them down the
    /// recovery ladder hardest-first.
    fn recover(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        newly_down: &[LinkId],
    ) -> RecoveryReport {
        self.engine.set_faults(&self.mask);
        self.order.clear();
        self.order.extend(
            alloc
                .grants()
                .filter(|g| g.links.iter().any(|l| newly_down.contains(l)))
                .map(|g| g.conn),
        );
        admission_order(spec, &mut self.order);
        let mut report = RecoveryReport {
            affected: self.order.len() as u32,
            ..RecoveryReport::default()
        };
        for i in 0..self.order.len() {
            let conn = self.order[i];
            match self.engine.reroute(spec, alloc, conn) {
                Ok(RerouteOutcome::MakeBeforeBreak) => report.make_before_break += 1,
                Ok(RerouteOutcome::BreakThenMake) => report.break_then_make += 1,
                Err(_) => {
                    report.dropped += 1;
                    self.displaced.push(conn);
                }
            }
        }
        self.stats.absorb(&report);
        report
    }

    /// The repair-side sweep: installs the shrunk mask and re-homes
    /// displaced connections hardest-first. Connections that still do
    /// not fit stay parked for the next repair.
    fn rehome(&mut self, spec: &SystemSpec, alloc: &mut Allocation) -> RecoveryReport {
        self.engine.set_faults(&self.mask);
        let mut report = RecoveryReport::default();
        if self.displaced.is_empty() {
            return report;
        }
        self.order.clear();
        self.order.extend_from_slice(&self.displaced);
        admission_order(spec, &mut self.order);
        for i in 0..self.order.len() {
            let conn = self.order[i];
            if self.engine.open(spec, alloc, conn).is_ok() {
                report.restored += 1;
            }
        }
        self.displaced.retain(|&c| alloc.grant(c).is_none());
        self.stats.absorb(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::{allocate, validate_allocation, Allocation};
    use aelite_spec::fault::{fault_trace, FaultParams, FaultScenario};
    use aelite_spec::generate::paper_workload;
    use aelite_spec::{churn_trace, ChurnParams};

    /// No grant's route may traverse a down link — the core invariant.
    fn assert_no_grant_over_down_link(alloc: &Allocation, mask: &FaultMask) {
        for g in alloc.grants() {
            for &l in &g.links {
                assert!(!mask.is_down(l), "{} granted over down link {l}", g.conn);
            }
        }
    }

    #[test]
    fn link_down_reroutes_every_affected_grant_on_a_healthy_platform() {
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);
        // Fail the most-loaded link so the sweep has real work.
        let mut load = vec![0u32; spec.topology().link_count()];
        for g in alloc.grants() {
            for &l in &g.links {
                load[l.index()] += 1;
            }
        }
        let (victim, &count) = load.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        assert!(count > 0, "paper workload loads some link");
        let victim = aelite_spec::ids::LinkId::new(victim as u32);

        let before: Vec<_> = alloc
            .grants()
            .filter(|g| !g.links.contains(&victim))
            .map(|g| (*g).clone())
            .collect();
        let report = engine.link_down(&spec, &mut alloc, victim);
        assert_eq!(report.affected, count);
        assert_eq!(report.survived() + report.dropped, report.affected);
        assert_no_grant_over_down_link(&alloc, engine.mask());
        // Bystanders bit-for-bit untouched.
        for g in &before {
            assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
        }
        // Repeat failure is a no-op.
        assert_eq!(
            engine.link_down(&spec, &mut alloc, victim),
            RecoveryReport::default()
        );
        assert_eq!(engine.stats().link_downs, 1);
        let open: Vec<_> = alloc.grants().map(|g| g.conn).collect();
        validate_allocation(&spec.restricted_to_connections(&open), &alloc)
            .expect("valid after recovery");
    }

    #[test]
    fn severed_connection_is_dropped_then_restored_on_repair() {
        // 3x1 path mesh: NI0's traffic has exactly one way out.
        let topo = aelite_spec::Topology::mesh(3, 1, 1);
        let ingress = topo.ni_ingress_link(aelite_spec::ids::NiId::new(0));
        let mut b = aelite_spec::SystemSpecBuilder::new(topo, aelite_spec::NocConfig::default());
        let app = b.add_app("a");
        let s = b.add_ip_at(aelite_spec::ids::NiId::new(0));
        let d = b.add_ip_at(aelite_spec::ids::NiId::new(2));
        let conn = b.add_connection(
            app,
            s,
            d,
            aelite_spec::Bandwidth::from_mbytes_per_sec(100),
            1_000_000,
        );
        let spec = b.build();
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);

        let report = engine.link_down(&spec, &mut alloc, ingress);
        assert_eq!(report.affected, 1);
        assert_eq!(report.dropped, 1);
        assert_eq!(report.survived(), 0);
        assert!(alloc.grant(conn).is_none(), "no alternative path exists");
        assert_eq!(engine.displaced(), &[conn]);
        // The refusal was attributed to the fault, not to capacity.
        assert_eq!(engine.engine().stats().refused_link_down, 1);

        let report = engine.link_up(&spec, &mut alloc, ingress);
        assert_eq!(report.restored, 1);
        assert!(alloc.grant(conn).is_some(), "re-homed on repair");
        assert!(engine.displaced().is_empty());
        assert_eq!(engine.stats().dropped, 1);
        assert_eq!(engine.stats().restored, 1);
    }

    #[test]
    fn router_down_takes_adjacent_links_in_one_sweep() {
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);
        let router = aelite_spec::ids::RouterId::new(5);
        let report = engine.router_down(&spec, &mut alloc, router);
        assert!(report.affected > 0, "a mid-mesh router carries traffic");
        assert_eq!(engine.stats().router_downs, 1);
        assert_no_grant_over_down_link(&alloc, engine.mask());
        // Every adjacent link is down, exactly once.
        let mut links = Vec::new();
        router_links(spec.topology(), router, &mut links);
        for &l in &links {
            assert!(engine.mask().is_down(l));
        }
        assert_eq!(engine.mask().down_count(), links.len());
        // Repair raises them all and counts once.
        engine.router_up(&spec, &mut alloc, router);
        assert!(engine.mask().is_empty());
        assert_eq!(engine.stats().router_ups, 1);
    }

    #[test]
    fn scenario_replay_holds_the_no_down_link_invariant() {
        let spec = paper_workload(42);
        let churn = churn_trace(
            &spec,
            &ChurnParams {
                events: 600,
                ..ChurnParams::steady(600)
            },
            21,
        );
        let faults = fault_trace(
            spec.topology(),
            &FaultParams {
                events: 60,
                rate_per_sec: 1.0e5,
                ..FaultParams::sparse(60)
            },
            21,
        );
        let scenario = FaultScenario::merge(&churn, &faults);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = FaultEngine::new(&spec);
        for e in &scenario.events {
            engine.apply(&spec, &mut alloc, &e.op);
            assert_no_grant_over_down_link(&alloc, engine.mask());
            // The ledger never holds a connection that has a grant.
            for &c in engine.displaced() {
                assert!(alloc.grant(c).is_none());
            }
        }
        let s = engine.stats();
        assert!(s.link_downs + s.router_downs > 0);
        assert_eq!(s.survived() + s.dropped, s.affected);
        let open: Vec<_> = alloc.grants().map(|g| g.conn).collect();
        if !open.is_empty() {
            validate_allocation(&spec.restricted_to_connections(&open), &alloc)
                .expect("valid end state");
        }
    }
}
