//! Fault injection and undisturbed recovery: link/router failures
//! serviced as churn deltas.
//!
//! The paper's contract is composable, contention-free service — a
//! connection, once admitted, is undisturbed by everything else,
//! *including reconfiguration*. This module extends that contract to
//! failures: a link going down is just another reconfiguration request,
//! serviced by the same O(Δ) admission machinery, and every bystander's
//! cycle-level delivery behaviour is provably unchanged
//! (`tests/fault_undisturbed.rs`).
//!
//! [`FaultEngine`] wraps a [`ChurnEngine`] and drives the recovery
//! ladder on each event:
//!
//! 1. **mask** — the failed link enters the engine's
//!    [`FaultMask`]; from that point no
//!    admission path (serial, batched round, sharded two-phase commit)
//!    can grant a route traversing it, and resident cached routes over
//!    it are evicted;
//! 2. **make-before-break** — each affected grant (hardest first, the
//!    allocator's admission order) is re-admitted on a fault-free path
//!    *while its old reservations are still held*, then the old slots
//!    are released as one delta ([`ChurnEngine::reroute`]);
//! 3. **break-then-make** — if the replacement needs the old slots, they
//!    are released first and the admission retried;
//! 4. **structured refusal** — if no fault-free capacity exists the
//!    connection is dropped with
//!    [`RefusalCause::LinkDown`](crate::RefusalCause::LinkDown) (or a
//!    capacity cause) and parked as *displaced*; when a repair event
//!    restores routability ([`link_up`](FaultEngine::link_up) /
//!    [`router_up`](FaultEngine::router_up)), displaced connections are
//!    re-homed.
//!
//! Each event yields a [`RecoveryReport`]; [`FaultStats`] accumulates
//! them. Bystander grants are never touched on any rung — undisturbed
//! service under failure is structural, not best-effort.
//!
//! # Transient faults
//!
//! Real interconnects mostly see *glitches*: a link misbehaves for
//! microseconds and recovers on its own. Displacing traffic for those
//! would be pure churn, so the engine holds a **persistence threshold**
//! ([`set_persistence_threshold_ns`](FaultEngine::set_persistence_threshold_ns)):
//! a [`FaultOp::LinkGlitch`] shorter than the threshold only *masks*
//! admission — new opens over the link refuse with
//! [`RefusalCause::LinkDown`](crate::RefusalCause::LinkDown), but every
//! standing grant keeps its slots, so a sub-threshold glitch displaces
//! **zero** connections and leaves every slot table bit-for-bit
//! unchanged. A glitch at or past the threshold (or a permanent
//! [`FaultOp::LinkDown`] landing on a glitched link) *escalates*: the
//! recovery ladder runs exactly as for a permanent failure, and when the
//! glitch self-clears the capacity is restored like a repair. Glitch
//! expiry is driven by the engine's clock
//! ([`advance_to`](FaultEngine::advance_to) /
//! [`apply_event`](FaultEngine::apply_event)).
//!
//! # Deferred batch repair
//!
//! Under [`RepairPolicy::Deferred`], repair events shrink the mask
//! immediately (new admissions may use the capacity at once) but queue
//! the re-homing of the displaced ledger; the queue is drained as **one**
//! batched admission round ([`drain_repairs`](FaultEngine::drain_repairs),
//! built on [`ChurnEngine::submit_batch`] and its hardest-first canonical
//! order), so a burst of simultaneous repairs re-homes the ledger once
//! instead of N times. Both policies share the same batched re-home code
//! path, so deferred and immediate repair produce identical survivor
//! sets.

use crate::api::{AdmissionError, AdmissionRequest, AdmissionResponse};
use crate::engine::{ChurnEngine, RerouteOutcome};
use aelite_alloc::{admission_order, Allocation, FaultMask};
use aelite_spec::fault::{FaultOp, ScenarioEvent, ScenarioOp};
use aelite_spec::ids::{ConnId, LinkId, RouterId};
use aelite_spec::topology::{Endpoint, Topology};
use aelite_spec::ChurnOp;
use aelite_spec::SystemSpec;

/// What one fault or repair event did to the live connections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Grants whose route traversed a newly failed link.
    pub affected: u32,
    /// Affected connections re-routed with the old reservations still
    /// held — capacity handed over as one delta.
    pub make_before_break: u32,
    /// Affected connections re-routed only after their old slots were
    /// released (the replacement reuses them).
    pub break_then_make: u32,
    /// Affected connections with no admissible fault-free path: dropped
    /// and parked as displaced.
    pub dropped: u32,
    /// Previously displaced connections re-homed by this repair event.
    pub restored: u32,
    /// Displaced connections whose re-homing this repair event *queued*
    /// (under [`RepairPolicy::Deferred`]) instead of performing; the
    /// next [`drain_repairs`](FaultEngine::drain_repairs) services them
    /// in one batched round and reports them as `restored`.
    pub deferred: u32,
}

impl RecoveryReport {
    /// Affected connections that kept service through the event.
    #[must_use]
    pub fn survived(&self) -> u32 {
        self.make_before_break + self.break_then_make
    }

    /// Accumulates `r` into `self` (used when one clock advance services
    /// several expiries).
    fn add(&mut self, r: &RecoveryReport) {
        self.affected += r.affected;
        self.make_before_break += r.make_before_break;
        self.break_then_make += r.break_then_make;
        self.dropped += r.dropped;
        self.restored += r.restored;
        self.deferred += r.deferred;
    }
}

/// Totals over every fault and repair event a [`FaultEngine`] serviced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Link failure events applied (no-op repeats not counted).
    pub link_downs: u64,
    /// Link repair events applied.
    pub link_ups: u64,
    /// Router failure events applied.
    pub router_downs: u64,
    /// Router repair events applied.
    pub router_ups: u64,
    /// Total grants affected across failure events.
    pub affected: u64,
    /// Total make-before-break re-routes.
    pub make_before_break: u64,
    /// Total break-then-make re-routes.
    pub break_then_make: u64,
    /// Total connections dropped (displaced) by failures.
    pub dropped: u64,
    /// Total displaced connections re-homed by repairs.
    pub restored: u64,
    /// Transient glitch events applied (sub-threshold and escalated).
    pub glitches: u64,
    /// Glitches at or past the persistence threshold: they ran the
    /// recovery ladder like a permanent failure.
    pub escalated: u64,
    /// Glitches that self-cleared at expiry (no permanent fault landed
    /// on them first).
    pub glitch_expiries: u64,
    /// Repair events whose re-homing was queued under
    /// [`RepairPolicy::Deferred`].
    pub deferred_repairs: u64,
    /// Deferred drain rounds executed — each one batched admission
    /// round over the whole displaced ledger.
    pub repair_drains: u64,
}

impl FaultStats {
    /// Total affected connections that kept service.
    #[must_use]
    pub fn survived(&self) -> u64 {
        self.make_before_break + self.break_then_make
    }

    fn absorb(&mut self, r: &RecoveryReport) {
        self.affected += u64::from(r.affected);
        self.make_before_break += u64::from(r.make_before_break);
        self.break_then_make += u64::from(r.break_then_make);
        self.dropped += u64::from(r.dropped);
        self.restored += u64::from(r.restored);
    }
}

/// The links adjacent to `router` — router-router links on either side
/// and the NI links of its concentrated NIs.
fn router_links(topo: &Topology, router: RouterId, out: &mut Vec<LinkId>) {
    out.clear();
    out.extend(topo.links().filter(|&l| {
        let link = topo.link(l);
        let touches = |e: Endpoint| matches!(e, Endpoint::Router(r, _) if r == router);
        touches(link.from) || touches(link.to)
    }));
}

/// When a repair event re-homes the displaced ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairPolicy {
    /// Re-home immediately, on the repair event itself — the historical
    /// behaviour.
    #[default]
    Immediate,
    /// Shrink the mask immediately but queue the re-homing; the queue is
    /// drained as **one** batched admission round by
    /// [`drain_repairs`](FaultEngine::drain_repairs) (or automatically
    /// when the clock advances past the queued repairs in
    /// [`apply_event`](FaultEngine::apply_event)), so simultaneous
    /// repairs re-home the ledger once instead of N times.
    Deferred,
}

/// Default persistence threshold: glitches shorter than 10 µs are
/// masked without displacing any grant.
pub const DEFAULT_PERSISTENCE_NS: u64 = 10_000;

/// One active transient glitch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Glitch {
    expires_ns: u64,
    link: LinkId,
    /// Whether the glitch crossed the persistence threshold and ran the
    /// recovery ladder (its expiry then restores capacity like a
    /// repair).
    escalated: bool,
}

/// A recovery engine: a [`ChurnEngine`] plus the fault mask it admits
/// under, the displaced-connection ledger, and the event counters. See
/// the [module docs](self) for the recovery ladder, the transient-fault
/// model and the repair policies.
///
/// Ordinary churn flows through [`apply`](Self::apply) (or the wrapped
/// engine's own API between events); fault events flow through
/// [`link_down`](Self::link_down) / [`link_up`](Self::link_up) /
/// [`router_down`](Self::router_down) / [`router_up`](Self::router_up) /
/// [`link_glitch`](Self::link_glitch).
/// The mask must only be changed through this engine — installing a
/// different mask directly on the inner engine would desynchronise the
/// displaced ledger.
///
/// Two masks are maintained: [`mask`](Self::mask) holds **every**
/// currently-down link (permanent and glitched) and is what admission
/// filters against; [`enforced`](Self::enforced) holds only the links
/// whose standing grants were displaced (permanent faults and escalated
/// glitches). A link in `mask` but not in `enforced` is a sub-threshold
/// glitch: no new grant may cross it, but existing grants ride it out.
#[derive(Debug)]
pub struct FaultEngine {
    engine: ChurnEngine,
    mask: FaultMask,
    /// Links no standing grant may traverse (recovery ran for them);
    /// a subset of `mask`.
    enforced: FaultMask,
    policy: RepairPolicy,
    threshold_ns: u64,
    now_ns: u64,
    /// Active transient glitches, unordered; expiry processing sorts by
    /// `(expires_ns, link)` so clearance is deterministic.
    glitches: Vec<Glitch>,
    /// Scratch for expiry processing.
    expired: Vec<Glitch>,
    /// Whether deferred repairs are queued for the next drain.
    repairs_pending: bool,
    stats: FaultStats,
    /// Connections dropped by failures that the workload still holds
    /// open: candidates for re-homing on the next repair event.
    displaced: Vec<ConnId>,
    /// Reusable affected-grant order buffer.
    order: Vec<ConnId>,
    /// Reusable adjacent-links buffer for router events.
    links: Vec<LinkId>,
    /// Reusable re-home request/verdict buffers for the batched round.
    requests: Vec<AdmissionRequest>,
    verdicts: Vec<Result<AdmissionResponse, AdmissionError>>,
}

impl FaultEngine {
    /// A recovery engine for `spec`'s platform over a default
    /// [`ChurnEngine`].
    #[must_use]
    pub fn new(spec: &SystemSpec) -> Self {
        FaultEngine::with_engine(ChurnEngine::new(spec))
    }

    /// A recovery engine over a caller-configured churn engine (custom
    /// allocator or route provider). Any fault mask already installed on
    /// `engine` becomes the starting mask (treated as permanent).
    #[must_use]
    pub fn with_engine(engine: ChurnEngine) -> Self {
        let mask = engine.faults().clone();
        let enforced = mask.clone();
        FaultEngine {
            engine,
            mask,
            enforced,
            policy: RepairPolicy::Immediate,
            threshold_ns: DEFAULT_PERSISTENCE_NS,
            now_ns: 0,
            glitches: Vec::new(),
            expired: Vec::new(),
            repairs_pending: false,
            stats: FaultStats::default(),
            displaced: Vec::new(),
            order: Vec::new(),
            links: Vec::new(),
            requests: Vec::new(),
            verdicts: Vec::new(),
        }
    }

    /// The repair policy (immediate or deferred re-homing).
    #[must_use]
    pub fn policy(&self) -> RepairPolicy {
        self.policy
    }

    /// Sets the repair policy. Switching from
    /// [`Deferred`](RepairPolicy::Deferred) to
    /// [`Immediate`](RepairPolicy::Immediate) does **not** drain an
    /// already-queued repair — call
    /// [`drain_repairs`](Self::drain_repairs) first if that matters.
    pub fn set_repair_policy(&mut self, policy: RepairPolicy) {
        self.policy = policy;
    }

    /// The persistence threshold in nanoseconds: glitches shorter than
    /// this only mask admission and displace nothing.
    #[must_use]
    pub fn persistence_threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Sets the persistence threshold (applies to glitches serviced
    /// from now on).
    pub fn set_persistence_threshold_ns(&mut self, threshold_ns: u64) {
        self.threshold_ns = threshold_ns;
    }

    /// The engine's clock: the timestamp of the latest
    /// [`advance_to`](Self::advance_to) (or
    /// [`apply_event`](Self::apply_event)).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Whether deferred repairs are queued for the next
    /// [`drain_repairs`](Self::drain_repairs).
    #[must_use]
    pub fn repairs_pending(&self) -> bool {
        self.repairs_pending
    }

    /// The wrapped churn engine (e.g. for its [`ChurnStats`] refusal
    /// breakdown, where fault-caused refusals show up as
    /// [`refused_link_down`](crate::ChurnStats::refused_link_down)).
    ///
    /// [`ChurnStats`]: crate::ChurnStats
    #[must_use]
    pub fn engine(&self) -> &ChurnEngine {
        &self.engine
    }

    /// The current fault mask: **every** down link, permanent and
    /// glitched alike. This is what admission filters against.
    #[must_use]
    pub fn mask(&self) -> &FaultMask {
        &self.mask
    }

    /// The enforced mask: the links whose standing grants were
    /// displaced (permanent faults and escalated glitches). No grant
    /// ever traverses a link in this mask; a grant *may* ride out a
    /// sub-threshold glitch, i.e. a link in [`mask`](Self::mask) only.
    #[must_use]
    pub fn enforced(&self) -> &FaultMask {
        &self.enforced
    }

    /// Event and recovery totals since the engine was created.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Connections dropped by failures and not yet re-homed or closed
    /// by the workload, in drop order.
    #[must_use]
    pub fn displaced(&self) -> &[ConnId] {
        &self.displaced
    }

    /// Services one link failure: masks `link`, then walks every grant
    /// routed over it down the recovery ladder (make-before-break,
    /// break-then-make, drop-and-park), hardest connection first. A
    /// repeat failure of an already-down link is a no-op; a permanent
    /// failure of a *glitched* link escalates it (the glitch will not
    /// self-clear any more, and if it was sub-threshold its grants are
    /// displaced now).
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn link_down(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        link: LinkId,
    ) -> RecoveryReport {
        // A permanent failure subsumes any active glitch on the link.
        self.cancel_glitch(link);
        if !self.enforced.set_down(link) {
            return RecoveryReport::default();
        }
        self.mask.set_down(link);
        self.stats.link_downs += 1;
        self.recover(spec, alloc, &[link])
    }

    /// Services one link repair: unmasks `link` (clearing any glitch on
    /// it) and re-homes displaced connections that now fit — on the
    /// event under [`RepairPolicy::Immediate`], queued for the next
    /// drain under [`RepairPolicy::Deferred`]. A repair of a link that
    /// is not down is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn link_up(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        link: LinkId,
    ) -> RecoveryReport {
        let had_glitch = self.cancel_glitch(link).is_some();
        let was_enforced = self.enforced.set_up(link);
        let was_masked = self.mask.set_up(link);
        if !(was_masked || was_enforced || had_glitch) {
            return RecoveryReport::default();
        }
        self.stats.link_ups += 1;
        self.finish_repair(spec, alloc)
    }

    /// Services a whole-router failure: every adjacent link still up
    /// goes down together, then **one** recovery sweep re-routes the
    /// grants touching any of them. A router whose links are all
    /// already down is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn router_down(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        router: RouterId,
    ) -> RecoveryReport {
        let mut links = core::mem::take(&mut self.links);
        router_links(spec.topology(), router, &mut links);
        // The router failure subsumes any glitch on an adjacent link,
        // and enforces links that were only glitch-masked so far.
        links.retain(|&l| {
            self.cancel_glitch(l);
            let newly = self.enforced.set_down(l);
            if newly {
                self.mask.set_down(l);
            }
            newly
        });
        let report = if links.is_empty() {
            RecoveryReport::default()
        } else {
            self.stats.router_downs += 1;
            self.recover(spec, alloc, &links)
        };
        self.links = links;
        report
    }

    /// Services a whole-router repair: every adjacent link currently
    /// down comes back up together, then displaced connections are
    /// re-homed. A router with no adjacent down link is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn router_up(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        router: RouterId,
    ) -> RecoveryReport {
        let mut links = core::mem::take(&mut self.links);
        router_links(spec.topology(), router, &mut links);
        links.retain(|&l| {
            let had_glitch = self.cancel_glitch(l).is_some();
            let was_enforced = self.enforced.set_up(l);
            let was_masked = self.mask.set_up(l);
            was_masked || was_enforced || had_glitch
        });
        let report = if links.is_empty() {
            RecoveryReport::default()
        } else {
            self.stats.router_ups += 1;
            self.finish_repair(spec, alloc)
        };
        self.links = links;
        report
    }

    /// Services one transient glitch: `link` is down for `duration_ns`
    /// from the engine's current time, then recovers on its own (at the
    /// next clock advance past the expiry).
    ///
    /// Below the persistence threshold the glitch only *masks*: new
    /// admissions over the link refuse, standing grants keep their
    /// slots, zero connections are displaced and every slot table is
    /// bit-for-bit unchanged. At or past the threshold the glitch
    /// *escalates* — the recovery ladder runs exactly as for
    /// [`link_down`](Self::link_down), and the expiry restores capacity
    /// like a repair. A glitch on an already (permanently) down link is
    /// a no-op; a glitch on an already-glitched link extends the expiry
    /// and may escalate it.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn link_glitch(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        link: LinkId,
        duration_ns: u64,
    ) -> RecoveryReport {
        let expires_ns = self.now_ns.saturating_add(duration_ns);
        let escalates = duration_ns >= self.threshold_ns;
        if let Some(g) = self.glitches.iter_mut().find(|g| g.link == link) {
            // Repeat glitch on an active one: extend, maybe escalate.
            g.expires_ns = g.expires_ns.max(expires_ns);
            self.stats.glitches += 1;
            if escalates && !g.escalated {
                g.escalated = true;
                self.enforced.set_down(link);
                self.stats.escalated += 1;
                return self.recover(spec, alloc, &[link]);
            }
            return RecoveryReport::default();
        }
        if self.enforced.is_down(link) {
            // Permanently down already; a glitch adds nothing.
            return RecoveryReport::default();
        }
        self.stats.glitches += 1;
        self.mask.set_down(link);
        self.glitches.push(Glitch {
            expires_ns,
            link,
            escalated: escalates,
        });
        if escalates {
            self.enforced.set_down(link);
            self.stats.escalated += 1;
            self.recover(spec, alloc, &[link])
        } else {
            // Mask-only: admission filtering sees the glitch, nothing
            // else moves.
            self.engine.set_faults(&self.mask);
            RecoveryReport::default()
        }
    }

    /// Advances the engine's clock to `t_ns`, servicing everything that
    /// falls due on the way: queued deferred repairs drain first (they
    /// were queued strictly earlier), then glitches expiring at or
    /// before `t_ns` self-clear in deterministic `(expiry, link)` order
    /// — sub-threshold glitches just leave the mask; escalated ones
    /// restore capacity like a repair (immediately or queued, per the
    /// policy). Returns the accumulated report; a clock that does not
    /// move (`t_ns <= now`) is a no-op.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn advance_to(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        t_ns: u64,
    ) -> RecoveryReport {
        let mut total = RecoveryReport::default();
        if t_ns <= self.now_ns {
            return total;
        }
        // Time moves past the instant the queued repairs arrived at:
        // drain them before anything that happens later.
        if self.repairs_pending {
            total.add(&self.drain_repairs(spec, alloc));
        }
        let expired = &mut self.expired;
        expired.clear();
        self.glitches.retain(|g| {
            if g.expires_ns <= t_ns {
                expired.push(*g);
                false
            } else {
                true
            }
        });
        expired.sort_unstable_by_key(|g| (g.expires_ns, g.link));
        let mut expired = core::mem::take(&mut self.expired);
        for g in &expired {
            self.stats.glitch_expiries += 1;
            self.mask.set_up(g.link);
            if g.escalated {
                self.enforced.set_up(g.link);
                total.add(&self.finish_repair(spec, alloc));
            } else {
                // The sub-threshold lifecycle touches only the mask.
                self.engine.set_faults(&self.mask);
            }
        }
        expired.clear();
        self.expired = expired;
        self.now_ns = t_ns;
        total
    }

    /// Drains the deferred-repair queue: re-homes the whole displaced
    /// ledger as **one** batched admission round (hardest-first
    /// canonical order, shared with [`ChurnEngine::submit_batch`]).
    /// A no-op unless repairs are pending.
    ///
    /// # Panics
    ///
    /// Panics on platform mismatch, as [`ChurnEngine::submit`].
    pub fn drain_repairs(&mut self, spec: &SystemSpec, alloc: &mut Allocation) -> RecoveryReport {
        if !self.repairs_pending {
            return RecoveryReport::default();
        }
        self.repairs_pending = false;
        self.stats.repair_drains += 1;
        self.rehome(spec, alloc)
    }

    /// The repair tail shared by every capacity-restoring event:
    /// re-home now (immediate policy) or queue for the next drain
    /// (deferred policy, mask installed at once so new admissions see
    /// the repaired link immediately).
    fn finish_repair(&mut self, spec: &SystemSpec, alloc: &mut Allocation) -> RecoveryReport {
        match self.policy {
            RepairPolicy::Immediate => self.rehome(spec, alloc),
            RepairPolicy::Deferred => {
                self.engine.set_faults(&self.mask);
                if self.displaced.is_empty() {
                    return RecoveryReport::default();
                }
                self.repairs_pending = true;
                self.stats.deferred_repairs += 1;
                RecoveryReport {
                    deferred: self.displaced.len() as u32,
                    ..RecoveryReport::default()
                }
            }
        }
    }

    /// Applies one scenario operation (see [`aelite_spec::fault`]):
    /// churn ops delegate to the wrapped engine, fault ops to the
    /// matching event handler. Returns whether the op was applied in
    /// full (fault events always are; churn follows
    /// [`ChurnEngine::apply`]).
    ///
    /// A churn close of a displaced connection settles it (the workload
    /// no longer wants it open), and a successful churn re-open removes
    /// it from the ledger — so replaying a merged [`FaultScenario`]
    /// keeps the ledger exact.
    ///
    /// [`FaultScenario`]: aelite_spec::fault::FaultScenario
    pub fn apply(&mut self, spec: &SystemSpec, alloc: &mut Allocation, op: &ScenarioOp) -> bool {
        match op {
            ScenarioOp::Churn(c) => {
                let ok = self.engine.apply(spec, alloc, c);
                if !self.displaced.is_empty() {
                    let closed_by = |conn: ConnId| match c {
                        ChurnOp::Close(x) => *x == conn,
                        ChurnOp::Switch { close, .. } => close.contains(&conn),
                        ChurnOp::Open(_) => false,
                    };
                    self.displaced
                        .retain(|&c| alloc.grant(c).is_none() && !closed_by(c));
                }
                ok
            }
            ScenarioOp::Fault(f) => {
                match *f {
                    FaultOp::LinkDown(l) => self.link_down(spec, alloc, l),
                    FaultOp::LinkUp(l) => self.link_up(spec, alloc, l),
                    FaultOp::RouterDown(r) => self.router_down(spec, alloc, r),
                    FaultOp::RouterUp(r) => self.router_up(spec, alloc, r),
                    FaultOp::LinkGlitch { link, duration_ns } => {
                        self.link_glitch(spec, alloc, link, duration_ns)
                    }
                };
                true
            }
        }
    }

    /// Applies one *timestamped* scenario event: advances the clock to
    /// the event's arrival time (clearing expired glitches and draining
    /// queued repairs on the way — see [`advance_to`](Self::advance_to))
    /// and then applies the operation as [`apply`](Self::apply). This is
    /// the replay entry point for merged [`FaultScenario`] streams whose
    /// glitches should self-clear at their real expiry.
    ///
    /// [`FaultScenario`]: aelite_spec::fault::FaultScenario
    pub fn apply_event(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        event: &ScenarioEvent,
    ) -> bool {
        self.advance_to(spec, alloc, event.at_ns);
        self.apply(spec, alloc, &event.op)
    }

    /// Removes and returns the active glitch on `link`, if any. The
    /// caller decides what happens to the masks.
    fn cancel_glitch(&mut self, link: LinkId) -> Option<Glitch> {
        let i = self.glitches.iter().position(|g| g.link == link)?;
        Some(self.glitches.remove(i))
    }

    /// The failure-side sweep: installs the grown mask, collects the
    /// grants routed over any of `newly_down`, and walks them down the
    /// recovery ladder hardest-first.
    fn recover(
        &mut self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        newly_down: &[LinkId],
    ) -> RecoveryReport {
        self.engine.set_faults(&self.mask);
        self.order.clear();
        self.order.extend(
            alloc
                .grants()
                .filter(|g| g.links.iter().any(|l| newly_down.contains(l)))
                .map(|g| g.conn),
        );
        admission_order(spec, &mut self.order);
        let mut report = RecoveryReport {
            affected: self.order.len() as u32,
            ..RecoveryReport::default()
        };
        for i in 0..self.order.len() {
            let conn = self.order[i];
            match self.engine.reroute(spec, alloc, conn) {
                Ok(RerouteOutcome::MakeBeforeBreak) => report.make_before_break += 1,
                Ok(RerouteOutcome::BreakThenMake) => report.break_then_make += 1,
                Err(_) => {
                    report.dropped += 1;
                    self.displaced.push(conn);
                }
            }
        }
        self.stats.absorb(&report);
        report
    }

    /// The repair-side sweep: installs the shrunk mask and re-homes the
    /// displaced ledger as **one** batched admission round —
    /// [`ChurnEngine::submit_batch`] over per-connection opens, whose
    /// canonical order is exactly the hardest-first cached-key sort of
    /// batch admission. Immediate repair and a deferred drain therefore
    /// run the *same* code path over the same ledger, which is what
    /// makes their survivor sets identical. Connections that still do
    /// not fit stay parked for the next repair.
    fn rehome(&mut self, spec: &SystemSpec, alloc: &mut Allocation) -> RecoveryReport {
        self.engine.set_faults(&self.mask);
        let mut report = RecoveryReport::default();
        if self.displaced.is_empty() {
            return report;
        }
        self.requests.clear();
        self.requests
            .extend(self.displaced.iter().map(|&c| AdmissionRequest::Open(c)));
        let requests = core::mem::take(&mut self.requests);
        let mut verdicts = core::mem::take(&mut self.verdicts);
        self.engine
            .submit_batch(spec, alloc, &requests, &mut verdicts);
        report.restored = verdicts.iter().filter(|v| v.is_ok()).count() as u32;
        self.requests = requests;
        self.verdicts = verdicts;
        self.displaced.retain(|&c| alloc.grant(c).is_none());
        self.stats.absorb(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_alloc::{allocate, validate_allocation, Allocation};
    use aelite_spec::fault::{fault_trace, FaultParams, FaultScenario};
    use aelite_spec::generate::paper_workload;
    use aelite_spec::{churn_trace, ChurnParams};

    /// No grant's route may traverse a down link — the core invariant.
    fn assert_no_grant_over_down_link(alloc: &Allocation, mask: &FaultMask) {
        for g in alloc.grants() {
            for &l in &g.links {
                assert!(!mask.is_down(l), "{} granted over down link {l}", g.conn);
            }
        }
    }

    #[test]
    fn link_down_reroutes_every_affected_grant_on_a_healthy_platform() {
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);
        // Fail the most-loaded link so the sweep has real work.
        let mut load = vec![0u32; spec.topology().link_count()];
        for g in alloc.grants() {
            for &l in &g.links {
                load[l.index()] += 1;
            }
        }
        let (victim, &count) = load.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        assert!(count > 0, "paper workload loads some link");
        let victim = aelite_spec::ids::LinkId::new(victim as u32);

        let before: Vec<_> = alloc
            .grants()
            .filter(|g| !g.links.contains(&victim))
            .map(|g| (*g).clone())
            .collect();
        let report = engine.link_down(&spec, &mut alloc, victim);
        assert_eq!(report.affected, count);
        assert_eq!(report.survived() + report.dropped, report.affected);
        assert_no_grant_over_down_link(&alloc, engine.mask());
        // Bystanders bit-for-bit untouched.
        for g in &before {
            assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
        }
        // Repeat failure is a no-op.
        assert_eq!(
            engine.link_down(&spec, &mut alloc, victim),
            RecoveryReport::default()
        );
        assert_eq!(engine.stats().link_downs, 1);
        let open: Vec<_> = alloc.grants().map(|g| g.conn).collect();
        validate_allocation(&spec.restricted_to_connections(&open), &alloc)
            .expect("valid after recovery");
    }

    #[test]
    fn severed_connection_is_dropped_then_restored_on_repair() {
        // 3x1 path mesh: NI0's traffic has exactly one way out.
        let topo = aelite_spec::Topology::mesh(3, 1, 1);
        let ingress = topo.ni_ingress_link(aelite_spec::ids::NiId::new(0));
        let mut b = aelite_spec::SystemSpecBuilder::new(topo, aelite_spec::NocConfig::default());
        let app = b.add_app("a");
        let s = b.add_ip_at(aelite_spec::ids::NiId::new(0));
        let d = b.add_ip_at(aelite_spec::ids::NiId::new(2));
        let conn = b.add_connection(
            app,
            s,
            d,
            aelite_spec::Bandwidth::from_mbytes_per_sec(100),
            1_000_000,
        );
        let spec = b.build();
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);

        let report = engine.link_down(&spec, &mut alloc, ingress);
        assert_eq!(report.affected, 1);
        assert_eq!(report.dropped, 1);
        assert_eq!(report.survived(), 0);
        assert!(alloc.grant(conn).is_none(), "no alternative path exists");
        assert_eq!(engine.displaced(), &[conn]);
        // The refusal was attributed to the fault, not to capacity.
        assert_eq!(engine.engine().stats().refused_link_down, 1);

        let report = engine.link_up(&spec, &mut alloc, ingress);
        assert_eq!(report.restored, 1);
        assert!(alloc.grant(conn).is_some(), "re-homed on repair");
        assert!(engine.displaced().is_empty());
        assert_eq!(engine.stats().dropped, 1);
        assert_eq!(engine.stats().restored, 1);
    }

    #[test]
    fn router_down_takes_adjacent_links_in_one_sweep() {
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);
        let router = aelite_spec::ids::RouterId::new(5);
        let report = engine.router_down(&spec, &mut alloc, router);
        assert!(report.affected > 0, "a mid-mesh router carries traffic");
        assert_eq!(engine.stats().router_downs, 1);
        assert_no_grant_over_down_link(&alloc, engine.mask());
        // Every adjacent link is down, exactly once.
        let mut links = Vec::new();
        router_links(spec.topology(), router, &mut links);
        for &l in &links {
            assert!(engine.mask().is_down(l));
        }
        assert_eq!(engine.mask().down_count(), links.len());
        // Repair raises them all and counts once.
        engine.router_up(&spec, &mut alloc, router);
        assert!(engine.mask().is_empty());
        assert_eq!(engine.stats().router_ups, 1);
    }

    /// 3x1 path mesh with one corner-to-corner connection: NI0's
    /// traffic has exactly one way out (the ingress link).
    fn severed_spec() -> (aelite_spec::SystemSpec, aelite_spec::ids::LinkId, ConnId) {
        let topo = aelite_spec::Topology::mesh(3, 1, 1);
        let ingress = topo.ni_ingress_link(aelite_spec::ids::NiId::new(0));
        let mut b = aelite_spec::SystemSpecBuilder::new(topo, aelite_spec::NocConfig::default());
        let app = b.add_app("a");
        let s = b.add_ip_at(aelite_spec::ids::NiId::new(0));
        let d = b.add_ip_at(aelite_spec::ids::NiId::new(2));
        let conn = b.add_connection(
            app,
            s,
            d,
            aelite_spec::Bandwidth::from_mbytes_per_sec(100),
            1_000_000,
        );
        (b.build(), ingress, conn)
    }

    #[test]
    fn sub_threshold_glitch_masks_admission_but_displaces_nothing() {
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);
        let before: Vec<_> = alloc.grants().cloned().collect();
        let snapshot = |alloc: &Allocation| -> Vec<Vec<(bool, Option<ConnId>)>> {
            (0..spec.topology().link_count())
                .map(|i| {
                    let t = alloc.link_table(aelite_spec::ids::LinkId::new(i as u32));
                    (0..t.size()).map(|s| (t.is_free(s), t.owner(s))).collect()
                })
                .collect()
        };
        let tables = snapshot(&alloc);

        // Glitch the most-loaded link for less than the threshold.
        let mut load = vec![0u32; spec.topology().link_count()];
        for g in alloc.grants() {
            for &l in &g.links {
                load[l.index()] += 1;
            }
        }
        let victim = load.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let victim = aelite_spec::ids::LinkId::new(victim as u32);
        let short = engine.persistence_threshold_ns() - 1;
        let report = engine.link_glitch(&spec, &mut alloc, victim, short);

        // Zero displacement, zero recovery activity, everything still
        // granted over the glitched link — only the mask moved.
        assert_eq!(report, RecoveryReport::default());
        assert!(engine.mask().is_down(victim));
        assert!(!engine.enforced().is_down(victim));
        assert!(engine.displaced().is_empty());
        assert_eq!(engine.stats().glitches, 1);
        assert_eq!(engine.stats().escalated, 0);
        assert_eq!(engine.stats().affected, 0);
        for g in &before {
            assert_eq!(alloc.grant(g.conn).unwrap(), g, "{} moved", g.conn);
        }
        assert_eq!(
            snapshot(&alloc),
            tables,
            "a table changed under a sub-threshold glitch"
        );

        // Admission over the glitched link refuses while it is masked.
        let (taken, conn) = {
            let g = alloc
                .grants()
                .find(|g| g.links.contains(&victim))
                .expect("victim carries traffic");
            (g.clone(), g.conn)
        };
        let _ = taken;
        // Close it through churn, then try to re-open: every candidate
        // may not cross victim, so the grant (if any) avoids it.
        engine.apply(&spec, &mut alloc, &ScenarioOp::Churn(ChurnOp::Close(conn)));
        engine.apply(&spec, &mut alloc, &ScenarioOp::Churn(ChurnOp::Open(conn)));
        if let Some(g) = alloc.grant(conn) {
            assert!(!g.links.contains(&victim), "granted over glitched link");
        }

        // The glitch self-clears at expiry: mask empty again, and the
        // clearance touched nothing (no rehome machinery for
        // sub-threshold glitches).
        engine.advance_to(&spec, &mut alloc, engine.now_ns() + short + 1);
        assert!(engine.mask().is_empty());
        assert_eq!(engine.stats().glitch_expiries, 1);
    }

    #[test]
    fn threshold_crossing_glitch_escalates_like_link_down_then_self_repairs() {
        let (spec, ingress, conn) = severed_spec();
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);
        let long = engine.persistence_threshold_ns() * 3;

        let report = engine.link_glitch(&spec, &mut alloc, ingress, long);
        // Exactly the permanent-fault ladder: affected, dropped, parked.
        assert_eq!(report.affected, 1);
        assert_eq!(report.dropped, 1);
        assert!(engine.enforced().is_down(ingress));
        assert_eq!(engine.displaced(), &[conn]);
        assert_eq!(engine.stats().escalated, 1);

        // The glitch expires: capacity returns, the connection re-homes
        // without any repair event in the stream.
        engine.advance_to(&spec, &mut alloc, long + 1);
        assert!(engine.mask().is_empty());
        assert!(alloc.grant(conn).is_some(), "re-homed at expiry");
        assert!(engine.displaced().is_empty());
        assert_eq!(engine.stats().restored, 1);
        assert_eq!(engine.stats().glitch_expiries, 1);
    }

    #[test]
    fn permanent_fault_on_glitched_link_escalates_it() {
        let (spec, ingress, conn) = severed_spec();
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);
        let short = engine.persistence_threshold_ns() / 2;

        // Sub-threshold glitch first: nothing displaced.
        engine.link_glitch(&spec, &mut alloc, ingress, short);
        assert!(alloc.grant(conn).is_some());

        // A permanent failure lands on the glitched link: the grant is
        // displaced *now*, and the glitch will not self-clear.
        let report = engine.link_down(&spec, &mut alloc, ingress);
        assert_eq!(report.affected, 1);
        assert_eq!(report.dropped, 1);
        assert_eq!(engine.displaced(), &[conn]);
        engine.advance_to(&spec, &mut alloc, short + 1);
        assert!(
            engine.mask().is_down(ingress),
            "permanent fault must not expire with the glitch"
        );
        assert_eq!(engine.stats().glitch_expiries, 0);
    }

    #[test]
    fn deferred_repair_queues_and_drains_as_one_round() {
        let (spec, ingress, conn) = severed_spec();
        let mut alloc = allocate(&spec).unwrap();
        let mut engine = FaultEngine::new(&spec);
        engine.set_repair_policy(RepairPolicy::Deferred);
        assert_eq!(engine.policy(), RepairPolicy::Deferred);

        engine.link_down(&spec, &mut alloc, ingress);
        assert_eq!(engine.displaced(), &[conn]);

        // The repair shrinks the mask but queues the re-home.
        let report = engine.link_up(&spec, &mut alloc, ingress);
        assert_eq!(report.restored, 0);
        assert_eq!(report.deferred, 1);
        assert!(engine.repairs_pending());
        assert!(engine.mask().is_empty(), "mask shrinks immediately");
        assert!(alloc.grant(conn).is_none(), "re-home deferred");

        // The drain services the whole ledger in one batched round.
        let report = engine.drain_repairs(&spec, &mut alloc);
        assert_eq!(report.restored, 1);
        assert!(!engine.repairs_pending());
        assert!(alloc.grant(conn).is_some());
        assert_eq!(engine.stats().deferred_repairs, 1);
        assert_eq!(engine.stats().repair_drains, 1);
        // A second drain with nothing pending is a no-op.
        assert_eq!(
            engine.drain_repairs(&spec, &mut alloc),
            RecoveryReport::default()
        );
        assert_eq!(engine.stats().repair_drains, 1);
    }

    #[test]
    fn deferred_and_immediate_repair_produce_identical_survivor_sets() {
        // Knock a router out of the paper platform (many links at once),
        // then repair it. The immediate engine re-homes on the repair
        // event; the deferred engine queues and drains once. Same
        // batched code path, same hardest-first order => identical
        // survivor sets and identical grants.
        let spec = paper_workload(42);
        let router = aelite_spec::ids::RouterId::new(5);

        let run = |policy: RepairPolicy| {
            let mut alloc = allocate(&spec).unwrap();
            let mut engine = FaultEngine::new(&spec);
            engine.set_repair_policy(policy);
            engine.router_down(&spec, &mut alloc, router);
            engine.router_up(&spec, &mut alloc, router);
            if policy == RepairPolicy::Deferred {
                engine.drain_repairs(&spec, &mut alloc);
            }
            let mut displaced = engine.displaced().to_vec();
            displaced.sort_unstable();
            (alloc, displaced, engine.stats().restored)
        };

        let (a_imm, d_imm, r_imm) = run(RepairPolicy::Immediate);
        let (a_def, d_def, r_def) = run(RepairPolicy::Deferred);
        assert_eq!(d_imm, d_def, "different survivor sets");
        assert_eq!(r_imm, r_def);
        for c in spec.connections() {
            assert_eq!(
                a_imm.grant(c.id),
                a_def.grant(c.id),
                "{} granted differently",
                c.id
            );
        }
    }

    #[test]
    fn scenario_replay_holds_the_no_down_link_invariant() {
        let spec = paper_workload(42);
        let churn = churn_trace(
            &spec,
            &ChurnParams {
                events: 600,
                ..ChurnParams::steady(600)
            },
            21,
        );
        let faults = fault_trace(
            spec.topology(),
            &FaultParams {
                events: 60,
                rate_per_sec: 1.0e5,
                ..FaultParams::sparse(60)
            },
            21,
        );
        let scenario = FaultScenario::merge(&churn, &faults);
        let mut alloc = Allocation::empty_for(&spec);
        let mut engine = FaultEngine::new(&spec);
        for e in &scenario.events {
            engine.apply_event(&spec, &mut alloc, e);
            // Grants may ride out sub-threshold glitches (mask), never a
            // displacing fault (enforced).
            assert_no_grant_over_down_link(&alloc, engine.enforced());
            // The ledger never holds a connection that has a grant.
            for &c in engine.displaced() {
                assert!(alloc.grant(c).is_none());
            }
        }
        let s = engine.stats();
        assert!(s.link_downs + s.router_downs > 0);
        assert_eq!(s.survived() + s.dropped, s.affected);
        let open: Vec<_> = alloc.grants().map(|g| g.conn).collect();
        if !open.is_empty() {
            validate_allocation(&spec.restricted_to_connections(&open), &alloc)
                .expect("valid end state");
        }
    }
}
