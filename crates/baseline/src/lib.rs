//! # aelite-baseline — Æthereal-style best-effort comparison network
//!
//! The paper's Section VII compares aelite's guaranteed services against
//! the combined GS+BE Æthereal running the same 200-connection workload
//! with best-effort service only. This crate provides that baseline: an
//! input-queued wormhole network with round-robin output arbitration and
//! credit-based link-level flow control — precisely the machinery the
//! aelite router removes.
//!
//! The crate also preserves the pre-optimization TDM allocator in
//! [`alloc_ref`], used as the golden reference and performance baseline
//! for `aelite-alloc`'s bitset/route-cache hot path.
//!
//! # Examples
//!
//! ```
//! use aelite_baseline::{BeConfig, BeSim};
//! use aelite_spec::generate::paper_workload;
//!
//! let spec = paper_workload(42);
//! let report = BeSim::new(&spec).run(BeConfig {
//!     duration_cycles: 30_000,
//!     ..BeConfig::default()
//! });
//! // Delivered, but with interference-dependent latency.
//! assert!(report.per_conn.iter().all(|c| c.flits > 0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc_ref;
pub mod sim;

pub use alloc_ref::{allocate_seed, SeedAllocation};
pub use sim::{BeConfig, BeConnStats, BeReport, BeSim};
