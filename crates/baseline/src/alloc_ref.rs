//! The pre-optimization ("seed") TDM allocator, kept verbatim as a
//! baseline.
//!
//! `aelite-alloc` rewrote the allocation hot path around word-level
//! bitset slot tables, memoized routes and allocation-free selection
//! kernels. This module preserves the implementation it replaced —
//! per-slot `Vec<Option<ConnId>>` probing, clone-per-expansion path DFS,
//! quadratic slot-selection kernels — with **identical decisions**, for
//! two purposes:
//!
//! 1. **Golden equivalence testing**: the optimized allocator must
//!    produce bit-for-bit identical grants (`tests/golden_alloc.rs`
//!    compares them across paper-workload seeds).
//! 2. **Honest speedup measurement**: `alloc_throughput` and
//!    `examples/bench_alloc.rs` time both implementations on the same
//!    machine, so the recorded speedups in `BENCH_ALLOC.json` are
//!    apples-to-apples wherever they are regenerated.
//!
//! Every algorithmic helper (`estimate_slots`, `pipeline_cycles`,
//! `dimension_ordered`, `gaps`, the kernels, the route enumeration) is
//! **copied** here rather than imported, so future changes to
//! `aelite-alloc` cannot silently move this baseline. Only the data
//! types under comparison ([`Path`], [`Grant`]) are shared.
//!
//! Nothing here should be used in production flows; use
//! [`aelite_alloc::allocate()`] instead.

use aelite_alloc::allocate::Grant;
use aelite_alloc::path::Path;
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::{ConnId, NiId, Port, RouterId};
use aelite_spec::topology::{PortTarget, Topology};
use std::collections::VecDeque;

/// A complete allocation produced by the seed algorithm: one grant per
/// connection (indexed by connection id).
#[derive(Debug, Clone)]
pub struct SeedAllocation {
    /// `grants[conn.index()]` is the grant of `conn`.
    pub grants: Vec<Option<Grant>>,
}

/// Why the seed allocator failed (mirrors `aelite_alloc::AllocError`
/// shapes, collapsed to a message — the golden tests only exercise
/// feasible workloads).
pub type SeedError = String;

/// Allocates every connection of `spec` with the seed algorithm and the
/// seed defaults (12 candidate paths, latency-aware, phase salts
/// `[13, 7, 29, 47]`).
///
/// # Errors
///
/// Returns a message describing the first unallocatable connection.
pub fn allocate_seed(spec: &SystemSpec) -> Result<SeedAllocation, SeedError> {
    let salts: &[u32] = &[13, 7, 29, 47];
    let mut last_err = None;
    for &salt in salts {
        let mut promoted: Vec<ConnId> = Vec::new();
        loop {
            match allocate_pass(spec, salt, &promoted) {
                Ok(a) => return Ok(a),
                Err((conn, no_route, msg)) => {
                    let give_up = no_route || promoted.contains(&conn) || promoted.len() >= 8;
                    last_err = Some(msg);
                    if give_up {
                        break;
                    }
                    promoted.insert(0, conn);
                }
            }
        }
    }
    Err(last_err.expect("at least one pass attempted"))
}

type PassError = (ConnId, bool, String);

fn allocate_pass(
    spec: &SystemSpec,
    salt: u32,
    promoted: &[ConnId],
) -> Result<SeedAllocation, PassError> {
    let size = spec.config().slot_table_size;
    let mut tables: Vec<Vec<Option<ConnId>>> =
        vec![vec![None; size as usize]; spec.topology().link_count()];
    let mut grants: Vec<Option<Grant>> = vec![None; spec.conn_id_bound()];

    let mut order: Vec<ConnId> = spec
        .connections()
        .iter()
        .map(|c| c.id)
        .filter(|id| !promoted.contains(id))
        .collect();
    order.sort_by_key(|&id| {
        let c = spec.connection(id);
        let est = estimate_slots(spec, id);
        (core::cmp::Reverse(est), c.max_latency_ns, id)
    });

    for &conn in promoted.iter().chain(order.iter()) {
        allocate_one(spec, &mut tables, &mut grants, conn, salt)?;
    }
    Ok(SeedAllocation { grants })
}

#[allow(clippy::too_many_lines)]
fn allocate_one(
    spec: &SystemSpec,
    tables: &mut [Vec<Option<ConnId>>],
    grants: &mut [Option<Grant>],
    conn: ConnId,
    salt: u32,
) -> Result<(), PassError> {
    let cfg = spec.config();
    let c = spec.connection(conn);
    let src_ni = spec.ip_ni(c.src);
    let dst_ni = spec.ip_ni(c.dst);
    let needed = cfg.slots_for(c.bandwidth).max(1);
    let size = cfg.slot_table_size;
    let m = 1;

    let candidates = route_candidates(spec.topology(), src_ni, dst_ni, 12);
    if candidates.is_empty() {
        return Err((conn, true, format!("no route for {conn}")));
    }

    let mut best_available = 0u32;
    let mut best_latency_cycles = u64::MAX;
    let latency_budget_cycles = (c.max_latency_ns as f64 / cfg.cycle_ns()).floor() as u64;

    for path in candidates {
        let links = path
            .links(spec.topology())
            .expect("route_candidates returns valid paths");
        // Injection slots whose shifted positions are free on every link.
        let shift = cfg.slots_per_hop();
        let is_free = |t: &[Option<ConnId>], slot: u32| t[(slot as usize) % t.len()].is_none();
        let free: Vec<u32> = (0..size)
            .filter(|&s| {
                links
                    .iter()
                    .enumerate()
                    .all(|(i, &l)| is_free(&tables[l.index()], s + i as u32 * shift))
            })
            .collect();
        best_available = best_available.max(free.len() as u32);
        if (free.len() as u32) < needed {
            continue;
        }

        let pipeline = pipeline_cycles(cfg, path.link_count());
        let latency_of = |slots: &[u32]| {
            u64::from(worst_window(slots, size, m)) * u64::from(cfg.slot_cycles()) + pipeline
        };

        let wait_cycles = latency_budget_cycles.saturating_sub(pipeline);
        let allowed_gap = (wait_cycles / u64::from(cfg.slot_cycles())) as u32;
        if allowed_gap == 0 {
            best_latency_cycles = best_latency_cycles.min(latency_of(&free));
            continue;
        }

        let mut chosen = if allowed_gap < size {
            match cover_with_gap(&free, allowed_gap, size) {
                Some(cover) => cover,
                None => {
                    best_latency_cycles = best_latency_cycles.min(latency_of(&free));
                    continue;
                }
            }
        } else {
            let phase = (conn.index() as u32).wrapping_mul(salt) % size;
            spread_selection(&free, needed, size, phase)
        };

        while (chosen.len() as u32) < needed {
            match best_gap_filler(&chosen, &free, size) {
                Some(extra) => {
                    chosen.push(extra);
                    chosen.sort_unstable();
                }
                None => break,
            }
        }
        if (chosen.len() as u32) < needed {
            continue;
        }

        let achieved = latency_of(&chosen);
        best_latency_cycles = best_latency_cycles.min(achieved);
        if achieved > latency_budget_cycles {
            continue;
        }

        // Commit.
        for &s in &chosen {
            for (i, &l) in links.iter().enumerate() {
                let t = &mut tables[l.index()];
                let idx = ((s + i as u32 * shift) as usize) % t.len();
                assert!(t[idx].is_none(), "slot was checked free");
                t[idx] = Some(conn);
            }
        }
        grants[conn.index()] = Some(Grant {
            conn,
            path,
            inject_slots: chosen,
            links,
        });
        return Ok(());
    }

    if best_available < needed {
        Err((
            conn,
            false,
            format!("{conn} needs {needed} slots but at most {best_available} are free"),
        ))
    } else {
        let best_ns = (best_latency_cycles as f64 * cfg.cycle_ns()).ceil() as u64;
        Err((
            conn,
            false,
            format!(
                "{conn} requires {} ns but the best achievable bound is {best_ns} ns",
                c.max_latency_ns
            ),
        ))
    }
}

/// The seed slot estimate (hardest-first ordering key): the larger of the
/// bandwidth minimum and the count the per-flit deadline forces over the
/// shortest route.
fn estimate_slots(spec: &SystemSpec, conn: ConnId) -> u32 {
    let cfg = spec.config();
    let c = spec.connection(conn);
    let topo = spec.topology();
    let (src_ni, dst_ni) = (spec.ip_ni(c.src), spec.ip_ni(c.dst));
    let (ra, rb) = (topo.ni_router(src_ni), topo.ni_router(dst_ni));
    let hops = match (topo.coords(ra), topo.coords(rb)) {
        (Some((xa, ya)), Some((xb, yb))) => xa.abs_diff(xb) + ya.abs_diff(yb),
        _ => u32::from(ra != rb),
    };
    let pipeline = pipeline_cycles(cfg, hops as usize + 2);
    let budget = (c.max_latency_ns as f64 / cfg.cycle_ns()).floor() as u64;
    let wait = budget.saturating_sub(pipeline);
    let gap = (wait / u64::from(cfg.slot_cycles())).max(1) as u32;
    let lat_slots = cfg.slot_table_size.div_ceil(gap);
    cfg.slots_for(c.bandwidth).max(lat_slots).max(1)
}

/// The seed pipeline-delay model: one slot of `flit_words` cycles per
/// link (including its pipeline stages).
fn pipeline_cycles(cfg: &aelite_spec::NocConfig, n_links: usize) -> u64 {
    n_links as u64 * u64::from(cfg.slots_per_hop()) * u64::from(cfg.flit_words)
}

/// The seed circular-gap computation (allocating form).
fn gaps(slots: &[u32], size: u32) -> Vec<u32> {
    if slots.is_empty() {
        return Vec::new();
    }
    for w in slots.windows(2) {
        assert!(w[0] < w[1], "slots must be strictly ascending");
    }
    assert!(*slots.last().unwrap() < size, "slot out of table range");
    if slots.len() == 1 {
        return vec![size];
    }
    let mut out = Vec::with_capacity(slots.len());
    for w in slots.windows(2) {
        out.push(w[1] - w[0]);
    }
    out.push(size - slots.last().unwrap() + slots[0]);
    out
}

/// The seed route-slack bound (2 extra router hops of path diversity).
const ROUTE_SLACK_HOPS: u32 = 2;

/// The seed dimension-ordered (XY / YX) route construction.
fn dimension_ordered(topo: &Topology, src: NiId, dst: NiId, x_first: bool) -> Option<Path> {
    let (mut x, mut y) = topo.coords(topo.ni_router(src))?;
    let (tx, ty) = topo.coords(topo.ni_router(dst))?;
    let mut ports = Vec::new();
    let mut router = topo.ni_router(src);
    let step = |router: &mut RouterId, nx: u32, ny: u32, ports: &mut Vec<Port>| -> Option<()> {
        let next = topo.router_at(nx, ny)?;
        let port = topo.port_towards(*router, PortTarget::Router(next))?;
        ports.push(port);
        *router = next;
        Some(())
    };
    let walk_x =
        |x: &mut u32, y: u32, router: &mut RouterId, ports: &mut Vec<Port>| -> Option<()> {
            while *x != tx {
                let nx = if *x < tx { *x + 1 } else { *x - 1 };
                step(router, nx, y, ports)?;
                *x = nx;
            }
            Some(())
        };
    let walk_y =
        |x: u32, y: &mut u32, router: &mut RouterId, ports: &mut Vec<Port>| -> Option<()> {
            while *y != ty {
                let ny = if *y < ty { *y + 1 } else { *y - 1 };
                step(router, x, ny, ports)?;
                *y = ny;
            }
            Some(())
        };
    if x_first {
        walk_x(&mut x, y, &mut router, &mut ports)?;
        walk_y(x, &mut y, &mut router, &mut ports)?;
    } else {
        walk_y(x, &mut y, &mut router, &mut ports)?;
        walk_x(&mut x, y, &mut router, &mut ports)?;
    }
    let last = topo.port_towards(router, PortTarget::Ni(dst))?;
    ports.push(last);
    Some(Path { src, dst, ports })
}

/// The seed `worst_window`: explicit gap-list summation, O(n × m).
fn worst_window(slots: &[u32], size: u32, m: u32) -> u32 {
    assert!(m > 0 && !slots.is_empty());
    let g = gaps(slots, size);
    let n = g.len();
    let m = m as usize;
    let full_revs = (m / n) as u32;
    let rem = m % n;
    let mut worst = 0;
    if rem == 0 {
        return full_revs * size;
    }
    for start in 0..n {
        let mut acc = 0;
        for k in 0..rem {
            acc += g[(start + k) % n];
        }
        worst = worst.max(acc);
    }
    full_revs * size + worst
}

/// The seed spread kernel: linear free-list scan with `chosen.contains`
/// per candidate, O(needed² × free).
fn spread_selection(free: &[u32], needed: u32, size: u32, phase: u32) -> Vec<u32> {
    let mut chosen: Vec<u32> = Vec::with_capacity(needed as usize);
    for i in 0..needed {
        let ideal = (phase + (u64::from(i) * u64::from(size) / u64::from(needed)) as u32) % size;
        let pick = free
            .iter()
            .copied()
            .filter(|s| !chosen.contains(s))
            .min_by_key(|&s| {
                let d = s.abs_diff(ideal);
                d.min(size - d)
            });
        if let Some(s) = pick {
            chosen.push(s);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// The seed cover kernel: greedy restarted from every free slot, O(free²).
fn cover_with_gap(free: &[u32], gap: u32, size: u32) -> Option<Vec<u32>> {
    if free.is_empty() || gap == 0 {
        return None;
    }
    let fwd = |a: u32, b: u32| (b + size - a - 1) % size + 1;
    'starts: for &start in free {
        let mut chosen = vec![start];
        let mut cur = start;
        loop {
            if fwd(cur, start) <= gap {
                chosen.sort_unstable();
                return Some(chosen);
            }
            let next = free
                .iter()
                .copied()
                .filter(|&f| f != cur && fwd(cur, f) <= gap)
                .max_by_key(|&f| fwd(cur, f));
            match next {
                Some(f) => {
                    chosen.push(f);
                    cur = f;
                }
                None => continue 'starts,
            }
        }
    }
    None
}

/// The seed gap filler: gap-list allocation plus `chosen.contains` scans.
fn best_gap_filler(chosen: &[u32], free: &[u32], size: u32) -> Option<u32> {
    let g = gaps(chosen, size);
    if g.is_empty() {
        return free.iter().copied().find(|s| !chosen.contains(s));
    }
    let (start_idx, _) = g
        .iter()
        .enumerate()
        .max_by_key(|&(_, &gap)| gap)
        .expect("gaps non-empty");
    let gap_start = chosen[start_idx];
    let gap_len = g[start_idx];
    let target = (gap_start + gap_len / 2) % size;
    free.iter()
        .copied()
        .filter(|s| !chosen.contains(s))
        .min_by_key(|&s| {
            let d = s.abs_diff(target);
            d.min(size - d)
        })
}

/// The seed route enumeration: XY/YX plus an explicit-stack DFS that
/// clones its port list and visited set on every expansion.
fn route_candidates(topo: &Topology, src: NiId, dst: NiId, max: usize) -> Vec<Path> {
    let mut out: Vec<Path> = Vec::new();
    for x_first in [true, false] {
        if let Some(p) = dimension_ordered(topo, src, dst, x_first) {
            if !out.contains(&p) {
                out.push(p);
            }
        }
    }
    if out.len() >= max {
        out.truncate(max);
        return out;
    }
    let mut extra = bounded_paths(topo, src, dst, ROUTE_SLACK_HOPS, max.saturating_mul(4));
    extra.sort_by_key(Path::router_count);
    for p in extra {
        if out.len() >= max {
            break;
        }
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

fn bounded_paths(topo: &Topology, src: NiId, dst: NiId, slack: u32, cap: usize) -> Vec<Path> {
    let start = topo.ni_router(src);
    let goal = topo.ni_router(dst);

    let mut dist = vec![u32::MAX; topo.router_count()];
    dist[goal.index()] = 0;
    let mut q = VecDeque::from([goal]);
    while let Some(r) = q.pop_front() {
        for (_, target) in topo.ports(r) {
            if let PortTarget::Router(n) = target {
                if dist[n.index()] == u32::MAX {
                    dist[n.index()] = dist[r.index()] + 1;
                    q.push_back(n);
                }
            }
        }
    }
    if dist[start.index()] == u32::MAX {
        return Vec::new();
    }
    let limit = dist[start.index()] + slack;

    let mut results = Vec::new();
    let mut stack: Vec<(RouterId, Vec<Port>, Vec<bool>)> = {
        let mut visited = vec![false; topo.router_count()];
        visited[start.index()] = true;
        vec![(start, Vec::new(), visited)]
    };
    while let Some((r, ports, visited)) = stack.pop() {
        if results.len() >= cap {
            break;
        }
        if r == goal {
            let mut full = ports.clone();
            if let Some(last) = topo.port_towards(r, PortTarget::Ni(dst)) {
                full.push(last);
                results.push(Path {
                    src,
                    dst,
                    ports: full,
                });
            }
            continue;
        }
        for (port, target) in topo.ports(r) {
            if let PortTarget::Router(n) = target {
                let hops_if_taken = ports.len() as u32 + 1;
                if !visited[n.index()] && hops_if_taken + dist[n.index()] <= limit {
                    let mut next = ports.clone();
                    next.push(port);
                    let mut v = visited.clone();
                    v[n.index()] = true;
                    stack.push((n, next, v));
                }
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_spec::generate::paper_workload;

    #[test]
    fn seed_allocator_allocates_paper_workload() {
        let spec = paper_workload(42);
        let alloc = allocate_seed(&spec).expect("paper workload allocates");
        let granted = alloc.grants.iter().filter(|g| g.is_some()).count();
        assert_eq!(granted, 200);
    }

    #[test]
    fn seed_route_enumeration_matches_current() {
        let topo = Topology::mesh(4, 3, 2);
        for (s, d) in [(0u32, 21u32), (3, 4), (0, 23), (7, 7)] {
            let (s, d) = (NiId::new(s), NiId::new(d));
            assert_eq!(
                route_candidates(&topo, s, d, 12),
                aelite_alloc::route_candidates(&topo, s, d, 12),
                "{s}->{d}"
            );
        }
    }
}
