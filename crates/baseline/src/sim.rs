//! Flit-level simulator of an Æthereal-style best-effort (BE) network.
//!
//! The comparison baseline of the paper's Section VII: the same platform
//! and workload as the aelite GS network, but with contention and
//! arbitration instead of TDM reservations:
//!
//! * input-queued **wormhole** routers — a packet holds its output port
//!   from header to tail;
//! * **round-robin** arbitration per output port among requesting inputs;
//! * **credit-based link-level flow control** — a flit only advances when
//!   the downstream input buffer has space (this is exactly the machinery
//!   aelite removes, Section IV);
//! * dimension-ordered (XY) source routes, which keep wormhole routing
//!   deadlock-free.
//!
//! Time advances in *ticks* of one flit duration (3 cycles): every link
//! moves at most one flit per tick, and a router hop takes one tick —
//! the same per-hop pipeline delay as the GS network, so latency
//! differences are pure queueing/arbitration effects.

use aelite_spec::app::SystemSpec;
use aelite_spec::ids::{ConnId, NiId, Port, RouterId};
use aelite_spec::topology::PortTarget;
use aelite_spec::traffic::TrafficPattern;
use std::collections::VecDeque;

/// Configuration of a best-effort run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeConfig {
    /// Simulated duration in clock cycles.
    pub duration_cycles: u64,
    /// Router input-buffer depth, in flits.
    pub input_buffer_flits: usize,
}

impl Default for BeConfig {
    fn default() -> Self {
        BeConfig {
            duration_cycles: 300_000,
            input_buffer_flits: 4,
        }
    }
}

/// Per-connection results of a best-effort run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeConnStats {
    /// The connection.
    pub conn: ConnId,
    /// Flits delivered.
    pub flits: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Minimum flit latency in cycles.
    pub min_latency: u64,
    /// Maximum flit latency in cycles.
    pub max_latency: u64,
    /// Sum of flit latencies in cycles.
    pub latency_sum: u64,
}

impl BeConnStats {
    /// Mean flit latency in cycles, or `None` before any delivery.
    #[must_use]
    pub fn mean_latency(&self) -> Option<f64> {
        (self.flits > 0).then(|| self.latency_sum as f64 / self.flits as f64)
    }
}

/// The results of one best-effort run.
#[derive(Debug, Clone)]
pub struct BeReport {
    /// Per-connection statistics.
    pub per_conn: Vec<BeConnStats>,
    /// Simulated duration in cycles.
    pub duration_cycles: u64,
}

impl BeReport {
    /// The stats of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` was not simulated.
    #[must_use]
    pub fn conn(&self, conn: ConnId) -> &BeConnStats {
        self.per_conn
            .iter()
            .find(|s| s.conn == conn)
            .unwrap_or_else(|| panic!("{conn} not simulated"))
    }
}

/// One flit in flight.
#[derive(Debug, Clone, Copy)]
struct Flit {
    conn_idx: u32,
    /// Remaining route (index into the per-connection port list) — only
    /// meaningful on head flits.
    route_at: u16,
    is_head: bool,
    is_tail: bool,
    /// Payload bytes carried (0 on pure header flits).
    payload: u16,
    /// Cycle from which this flit's latency is measured.
    ready_cycle: u64,
    /// Tick at which the flit entered its current buffer (it may move
    /// again only on a later tick).
    entered_tick: u64,
}

#[derive(Debug)]
struct InputPort {
    fifo: VecDeque<Flit>,
    /// Claims on this buffer made during the current tick.
    claims: usize,
}

#[derive(Debug)]
struct BeRouter {
    inputs: Vec<InputPort>,
    /// Wormhole ownership per output port.
    owner: Vec<Option<usize>>,
    /// Round-robin pointer per output port.
    rr: Vec<usize>,
}

#[derive(Debug)]
struct SourceConnState {
    /// Flits awaiting injection (already packetised).
    backlog: VecDeque<Flit>,
    /// CBR generator state (48.16 fixed point cycles).
    next_arrival_fp: u64,
    interval_fp: u64,
    message_bytes: u64,
    saturating: bool,
    /// Ready floor: a flit's latency starts when its predecessor left.
    ready_floor: u64,
}

/// The best-effort network simulator.
///
/// # Examples
///
/// ```
/// use aelite_baseline::sim::{BeConfig, BeSim};
/// use aelite_spec::generate::paper_workload;
///
/// let spec = paper_workload(42);
/// let report = BeSim::new(&spec).run(BeConfig {
///     duration_cycles: 30_000,
///     ..BeConfig::default()
/// });
/// assert_eq!(report.per_conn.len(), 200);
/// ```
#[derive(Debug)]
pub struct BeSim<'a> {
    spec: &'a SystemSpec,
    /// XY route (router output ports) per connection.
    routes: Vec<Vec<Port>>,
}

impl<'a> BeSim<'a> {
    /// Prepares a best-effort simulator for `spec`, using XY routes.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not a mesh (XY routing undefined).
    #[must_use]
    pub fn new(spec: &'a SystemSpec) -> Self {
        let topo = spec.topology();
        let routes = spec
            .connections()
            .iter()
            .map(|c| {
                xy_route(topo, spec.ip_ni(c.src), spec.ip_ni(c.dst))
                    .unwrap_or_else(|| panic!("no XY route for {}", c.id))
            })
            .collect();
        BeSim { spec, routes }
    }

    /// Runs the simulation.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, cfg: BeConfig) -> BeReport {
        let spec = self.spec;
        let topo = spec.topology();
        let ncfg = spec.config();
        let tick_cycles = u64::from(ncfg.flit_words);
        let payload_bytes =
            u64::from(ncfg.payload_words_per_flit()) * u64::from(ncfg.data_width_bytes());
        let cycles_per_sec = ncfg.frequency_mhz * 1_000_000;

        // Routers.
        let mut routers: Vec<BeRouter> = topo
            .routers()
            .map(|r| BeRouter {
                inputs: (0..topo.arity(r))
                    .map(|_| InputPort {
                        fifo: VecDeque::new(),
                        claims: 0,
                    })
                    .collect(),
                owner: vec![None; topo.arity(r)],
                rr: vec![0; topo.arity(r)],
            })
            .collect();

        // Sources, grouped per NI for ingress-link arbitration.
        let conns = spec.connections();
        let mut sources: Vec<SourceConnState> = conns
            .iter()
            .map(|c| {
                let interval = match c.pattern {
                    TrafficPattern::ConstantRate => {
                        u64::from(c.message_bytes) as f64 * cycles_per_sec as f64
                            / c.bandwidth.bytes_per_sec() as f64
                    }
                    TrafficPattern::Saturating => 0.0,
                    TrafficPattern::Bursty { period_ns, .. } => {
                        f64::from(period_ns) * ncfg.frequency_mhz as f64 / 1_000.0
                    }
                };
                SourceConnState {
                    backlog: VecDeque::new(),
                    next_arrival_fp: 0,
                    interval_fp: (interval * 65_536.0) as u64,
                    message_bytes: match c.pattern {
                        TrafficPattern::Bursty { burst_bytes, .. } => u64::from(burst_bytes),
                        _ => u64::from(c.message_bytes),
                    },
                    saturating: c.pattern == TrafficPattern::Saturating,
                    ready_floor: 0,
                }
            })
            .collect();
        let mut ni_conns: Vec<Vec<usize>> = vec![Vec::new(); topo.ni_count()];
        for (i, c) in conns.iter().enumerate() {
            ni_conns[spec.ip_ni(c.src).index()].push(i);
        }
        let mut ni_rr: Vec<usize> = vec![0; topo.ni_count()];
        // Wormhole lock on the NI ingress link: a connection mid-packet
        // must not be interleaved with another, even if the router input
        // FIFO drains in between.
        let mut ni_lock: Vec<Option<usize>> = vec![None; topo.ni_count()];

        let mut stats: Vec<BeConnStats> = conns
            .iter()
            .map(|c| BeConnStats {
                conn: c.id,
                flits: 0,
                bytes: 0,
                min_latency: u64::MAX,
                max_latency: 0,
                latency_sum: 0,
            })
            .collect();

        let total_ticks = cfg.duration_cycles / tick_cycles;
        for tick in 0..total_ticks {
            let cycle = tick * tick_cycles;

            // 1. Offer new traffic: packetise arrived messages.
            for (ci, src) in sources.iter_mut().enumerate() {
                if src.saturating {
                    while src.backlog.len() < 8 {
                        packetise(src, ci as u32, cycle, payload_bytes, src.message_bytes);
                    }
                } else {
                    while src.next_arrival_fp <= cycle << 16 {
                        let arrival = src.next_arrival_fp >> 16;
                        let bytes = src.message_bytes;
                        packetise(src, ci as u32, arrival, payload_bytes, bytes);
                        src.next_arrival_fp += src.interval_fp;
                    }
                }
            }

            // 2. Router moves. Two-phase: claims first, then commits, so
            //    that a flit freeing a slot this tick does not admit a new
            //    one until the next tick (credit semantics).
            let mut moves: Vec<(RouterId, usize, RouterId, usize)> = Vec::new();
            let mut ejects: Vec<(RouterId, usize)> = Vec::new();
            for r in topo.routers() {
                let arity = topo.arity(r);
                for o in 0..arity {
                    // Choose the input feeding output o.
                    let chosen = match routers[r.index()].owner[o] {
                        Some(i) => {
                            head_targets(&routers[r.index()].inputs[i], o, &self.routes, tick)
                                .then_some(i)
                        }
                        None => {
                            let rr = routers[r.index()].rr[o];
                            let n = routers[r.index()].inputs.len();
                            (0..n).map(|k| (rr + k) % n).find(|&i| {
                                let inp = &routers[r.index()].inputs[i];
                                inp.fifo.front().is_some_and(|f| {
                                    f.is_head
                                        && f.entered_tick < tick
                                        && route_port(f, &self.routes) == o
                                })
                            })
                        }
                    };
                    let Some(i) = chosen else { continue };
                    // Check downstream space / schedule the move.
                    match topo.port_target(r, Port(o as u8)).expect("port exists") {
                        PortTarget::Router(nr) => {
                            let back = topo
                                .port_towards(nr, PortTarget::Router(r))
                                .expect("mesh links are bidirectional");
                            let dst = &routers[nr.index()].inputs[back.index()];
                            if dst.fifo.len() + dst.claims < cfg.input_buffer_flits {
                                routers[nr.index()].inputs[back.index()].claims += 1;
                                moves.push((r, i, nr, back.index()));
                            }
                        }
                        PortTarget::Ni(_) => {
                            // Sinks always accept.
                            ejects.push((r, i));
                        }
                    }
                    // Make the grant sticky for wormhole.
                    routers[r.index()].owner[o] = Some(i);
                    routers[r.index()].rr[o] = (i + 1) % routers[r.index()].inputs.len();
                }
            }
            // Commit router-to-router moves.
            for (r, i, nr, back) in moves {
                let mut flit = routers[r.index()].inputs[i]
                    .fifo
                    .pop_front()
                    .expect("scheduled move");
                if flit.is_head {
                    flit.route_at += 1;
                }
                if flit.is_tail {
                    release_owner(&mut routers[r.index()], i);
                }
                flit.entered_tick = tick;
                routers[nr.index()].inputs[back].claims -= 1;
                routers[nr.index()].inputs[back].fifo.push_back(flit);
            }
            // Commit ejections (deliveries).
            for (r, i) in ejects {
                let flit = routers[r.index()].inputs[i]
                    .fifo
                    .pop_front()
                    .expect("scheduled ejection");
                if flit.is_tail {
                    release_owner(&mut routers[r.index()], i);
                }
                // Delivered at the end of this tick (+1 hop for the NI
                // egress link, matching the GS pipeline accounting).
                let delivered = (tick + 1) * tick_cycles;
                let st = &mut stats[flit.conn_idx as usize];
                let latency = delivered.saturating_sub(flit.ready_cycle);
                st.flits += 1;
                st.bytes += u64::from(flit.payload);
                st.min_latency = st.min_latency.min(latency);
                st.max_latency = st.max_latency.max(latency);
                st.latency_sum += latency;
            }

            // 3. NI injection: one flit per NI per tick, round-robin.
            for ni in topo.nis() {
                let candidates = &ni_conns[ni.index()];
                if candidates.is_empty() {
                    continue;
                }
                let router = topo.ni_router(ni);
                let port = topo.ni_router_port(ni);
                let inp = &routers[router.index()].inputs[port.index()];
                if inp.fifo.len() >= cfg.input_buffer_flits {
                    continue; // link-level back-pressure into the NI
                }
                // Wormhole also applies at the NI link: do not interleave
                // packets from different connections.
                let locked = ni_lock[ni.index()];
                let rr = ni_rr[ni.index()];
                let n = candidates.len();
                let pick = (0..n).map(|k| candidates[(rr + k) % n]).find(|&ci| {
                    let ok_lock = locked.is_none_or(|l| l == ci);
                    ok_lock
                        && sources[ci]
                            .backlog
                            .front()
                            .is_some_and(|f| f.ready_cycle <= cycle)
                });
                if let Some(ci) = pick {
                    let mut flit = sources[ci].backlog.pop_front().expect("checked");
                    // Latency measurement starts when the flit is ready
                    // and its predecessor has left (same definition as
                    // the GS simulator).
                    flit.ready_cycle = flit.ready_cycle.max(sources[ci].ready_floor);
                    sources[ci].ready_floor = (tick + 1) * tick_cycles;
                    flit.entered_tick = tick;
                    routers[router.index()].inputs[port.index()]
                        .fifo
                        .push_back(flit);
                    if flit.is_tail {
                        ni_lock[ni.index()] = None;
                        ni_rr[ni.index()] =
                            (candidates.iter().position(|&c| c == ci).expect("candidate") + 1) % n;
                    } else {
                        ni_lock[ni.index()] = Some(ci);
                    }
                }
            }
        }

        BeReport {
            per_conn: stats,
            duration_cycles: cfg.duration_cycles,
        }
    }
}

/// Appends the flits of one message to the backlog.
fn packetise(
    src: &mut SourceConnState,
    conn_idx: u32,
    arrival: u64,
    payload_bytes: u64,
    total_bytes: u64,
) {
    let flits = total_bytes.div_ceil(payload_bytes).max(1);
    let mut left = total_bytes;
    for k in 0..flits {
        let pay = left.min(payload_bytes);
        left -= pay;
        src.backlog.push_back(Flit {
            conn_idx,
            route_at: 0,
            is_head: k == 0,
            is_tail: k + 1 == flits,
            payload: u16::try_from(pay).expect("payload fits u16"),
            ready_cycle: arrival,
            entered_tick: 0,
        });
    }
}

/// Whether the input's head flit (a body/tail following a routed header,
/// or a header targeting `o`) may advance to output `o` this tick.
fn head_targets(inp: &InputPort, o: usize, routes: &[Vec<Port>], tick: u64) -> bool {
    inp.fifo
        .front()
        .is_some_and(|f| f.entered_tick < tick && (!f.is_head || route_port(f, routes) == o))
}

/// Output port a head flit requests at its current router.
fn route_port(f: &Flit, routes: &[Vec<Port>]) -> usize {
    routes[f.conn_idx as usize][f.route_at as usize].index()
}

/// Clears wormhole ownership of whichever output was owned by `input`.
fn release_owner(router: &mut BeRouter, input: usize) {
    for o in router.owner.iter_mut() {
        if *o == Some(input) {
            *o = None;
        }
    }
}

/// Dimension-ordered route between two NIs (X first), as router output
/// ports, ending with the destination NI port.
fn xy_route(topo: &aelite_spec::topology::Topology, src: NiId, dst: NiId) -> Option<Vec<Port>> {
    let (mut x, mut y) = topo.coords(topo.ni_router(src))?;
    let (tx, ty) = topo.coords(topo.ni_router(dst))?;
    let mut router = topo.ni_router(src);
    let mut ports = Vec::new();
    while x != tx || y != ty {
        let (nx, ny) = if x != tx {
            (if x < tx { x + 1 } else { x - 1 }, y)
        } else {
            (x, if y < ty { y + 1 } else { y - 1 })
        };
        let next = topo.router_at(nx, ny)?;
        ports.push(topo.port_towards(router, PortTarget::Router(next))?);
        router = next;
        x = nx;
        y = ny;
    }
    ports.push(topo.port_towards(router, PortTarget::Ni(dst))?);
    Some(ports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::config::NocConfig;
    use aelite_spec::generate::paper_workload;
    use aelite_spec::topology::Topology;
    use aelite_spec::traffic::Bandwidth;

    fn one_conn_spec(bw_mb: u64) -> SystemSpec {
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        b.add_connection(app, s, d, Bandwidth::from_mbytes_per_sec(bw_mb), 10_000);
        b.build()
    }

    #[test]
    fn uncontended_connection_flows() {
        let spec = one_conn_spec(100);
        let report = BeSim::new(&spec).run(BeConfig {
            duration_cycles: 60_000,
            ..BeConfig::default()
        });
        let s = &report.per_conn[0];
        assert!(s.flits > 100, "only {} flits", s.flits);
        // 100 MB/s at 500 MHz = 0.2 B/cycle; 60k cycles = ~12 kB.
        assert!(s.bytes as f64 > 11_000.0, "{} bytes", s.bytes);
    }

    #[test]
    fn uncontended_latency_is_pipeline_only() {
        let spec = one_conn_spec(10);
        let report = BeSim::new(&spec).run(BeConfig {
            duration_cycles: 60_000,
            ..BeConfig::default()
        });
        let s = &report.per_conn[0];
        // Path: NI -> R0 -> R1 -> NI = injection + 2 router hops + eject;
        // every hop is one 3-cycle tick, plus up to one tick of
        // tick-alignment at injection.
        assert!(s.min_latency >= 9, "{}", s.min_latency);
        assert!(
            s.max_latency <= 15,
            "uncontended max {} too high",
            s.max_latency
        );
    }

    #[test]
    fn contention_inflates_tail_latency() {
        // Two connections from different NIs converge on one destination
        // NI link: BE arbitration must show queueing delay.
        let topo = Topology::mesh(3, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("a");
        let s0 = b.add_ip_at(NiId::new(0));
        let s2 = b.add_ip_at(NiId::new(2));
        let d = b.add_ip_at(NiId::new(1)); // middle NI
        b.add_connection_with(
            app,
            s0,
            d,
            Bandwidth::from_mbytes_per_sec(400),
            10_000,
            TrafficPattern::Saturating,
            64,
        );
        b.add_connection_with(
            app,
            s2,
            d,
            Bandwidth::from_mbytes_per_sec(400),
            10_000,
            TrafficPattern::Saturating,
            64,
        );
        let spec = b.build();
        let report = BeSim::new(&spec).run(BeConfig {
            duration_cycles: 120_000,
            ..BeConfig::default()
        });
        for s in &report.per_conn {
            // Two saturating flows share one 666 MB/s payload link: each
            // gets roughly half, and waiting shows in the max latency.
            assert!(s.flits > 0);
            // Queueing is bounded by the 4-flit buffers and link-level
            // back-pressure, but must be clearly visible.
            assert!(
                s.max_latency >= 2 * s.min_latency,
                "expected visible queueing: min {} max {}",
                s.min_latency,
                s.max_latency
            );
        }
        // Round-robin fairness: neither flow starves (within 25%).
        let (a, b2) = (report.per_conn[0].bytes, report.per_conn[1].bytes);
        let ratio = a as f64 / b2 as f64;
        assert!((0.75..=1.33).contains(&ratio), "unfair split {ratio}");
    }

    #[test]
    fn wormhole_does_not_interleave_packets() {
        // Indirectly validated: with multi-flit packets from two sources
        // crossing one router, delivery must still complete (interleaving
        // would corrupt the wormhole state and stall or panic).
        let topo = Topology::mesh(2, 2, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("a");
        let ips: Vec<_> = (0..4).map(|i| b.add_ip_at(NiId::new(i))).collect();
        b.add_connection_with(
            app,
            ips[0],
            ips[3],
            Bandwidth::from_mbytes_per_sec(200),
            10_000,
            TrafficPattern::ConstantRate,
            64,
        );
        b.add_connection_with(
            app,
            ips[1],
            ips[2],
            Bandwidth::from_mbytes_per_sec(200),
            10_000,
            TrafficPattern::ConstantRate,
            64,
        );
        let spec = b.build();
        let report = BeSim::new(&spec).run(BeConfig {
            duration_cycles: 120_000,
            ..BeConfig::default()
        });
        for s in &report.per_conn {
            // 200 MB/s = 0.4 B/cycle * 120k cycles = 48 kB expected.
            assert!(
                s.bytes as f64 > 40_000.0,
                "{}: only {} bytes delivered",
                s.conn,
                s.bytes
            );
        }
    }

    #[test]
    fn paper_workload_runs_and_interferes() {
        // The BE network carries the full 200-connection workload but,
        // unlike GS, some connections see latencies far above their
        // uncontended minimum — interference, the thing aelite removes.
        let spec = paper_workload(42);
        let report = BeSim::new(&spec).run(BeConfig {
            duration_cycles: 60_000,
            ..BeConfig::default()
        });
        let mut interfered = 0;
        for s in &report.per_conn {
            assert!(s.flits > 0, "{} starved completely", s.conn);
            if s.max_latency > 2 * s.min_latency.max(1) {
                interfered += 1;
            }
        }
        assert!(
            interfered > 50,
            "expected broad interference, saw {interfered} connections"
        );
    }

    #[test]
    fn report_conn_lookup() {
        let spec = one_conn_spec(10);
        let report = BeSim::new(&spec).run(BeConfig {
            duration_cycles: 30_000,
            ..BeConfig::default()
        });
        let id = spec.connections()[0].id;
        assert_eq!(report.conn(id).conn, id);
        assert!(report.conn(id).mean_latency().is_some());
    }
}
