//! TDM slot tables: the reservation state of one link.
//!
//! Contention-free routing reserves, for every link, which connection may
//! occupy it during each slot of the table period. The tables of all links
//! plus the per-connection injection slots *are* the allocation.

use crate::mask::SlotMask;
use aelite_spec::ids::ConnId;
use core::fmt;

/// The reservation table of a single link: `size` slots, each free or
/// owned by one connection.
///
/// Alongside the owner vector, the table maintains a [`SlotMask`] bitset
/// of its free slots ([`free_mask`](Self::free_mask)), kept in sync by
/// every mutating operation, so the allocator can intersect the free sets
/// of a whole path with word-level rotate-and-AND kernels.
///
/// # Examples
///
/// ```
/// use aelite_alloc::table::SlotTable;
/// use aelite_spec::ids::ConnId;
///
/// let mut t = SlotTable::new(8);
/// t.reserve(3, ConnId::new(0)).unwrap();
/// assert_eq!(t.owner(3), Some(ConnId::new(0)));
/// assert!(t.is_free(4));
/// assert!(!t.free_mask().get(3));
/// assert_eq!(t.reserved_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotTable {
    slots: Vec<Option<ConnId>>,
    free: SlotMask,
}

impl SlotTable {
    /// Creates a table of `size` free slots.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: u32) -> Self {
        assert!(size > 0, "slot table must have at least one slot");
        SlotTable {
            slots: vec![None; size as usize],
            free: SlotMask::new_full(size),
        }
    }

    /// The table period in slots.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Whether `slot` (taken modulo the table size) is unreserved.
    #[must_use]
    pub fn is_free(&self, slot: u32) -> bool {
        self.free.get(self.wrap(slot) as u32)
    }

    /// The bitset of free slots (bit set ⇔ slot unreserved), maintained in
    /// lock-step with the owner vector.
    #[must_use]
    pub fn free_mask(&self) -> &SlotMask {
        &self.free
    }

    /// The connection owning `slot` (modulo table size), if any.
    #[must_use]
    pub fn owner(&self, slot: u32) -> Option<ConnId> {
        self.slots[self.wrap(slot)]
    }

    /// Reserves `slot` (modulo table size) for `conn`.
    ///
    /// # Errors
    ///
    /// Returns the current owner if the slot is already taken — the caller
    /// (allocator) treats this as "try elsewhere", never as a panic,
    /// because contention for slots is the normal case.
    pub fn reserve(&mut self, slot: u32, conn: ConnId) -> Result<(), ConnId> {
        let i = self.wrap(slot);
        match self.slots[i] {
            Some(owner) => Err(owner),
            None => {
                self.slots[i] = Some(conn);
                self.free.clear(i as u32);
                Ok(())
            }
        }
    }

    /// Releases `slot` (modulo table size), returning its previous owner.
    pub fn release(&mut self, slot: u32) -> Option<ConnId> {
        let i = self.wrap(slot);
        let prev = self.slots[i].take();
        if prev.is_some() {
            self.free.set(i as u32);
        }
        prev
    }

    /// Releases every slot owned by `conn`, returning how many there were.
    ///
    /// Sub-linear in the table size: instead of probing every owner entry,
    /// the scan walks the *reserved* slots through the free mask's
    /// complement one word at a time (`trailing_zeros` per reserved slot),
    /// so a lightly-loaded table costs O(reserved) rather than O(size).
    /// (Grant-based teardown — the online churn hot path — goes further:
    /// [`Allocation::take_grant`](crate::allocate::Allocation::take_grant)
    /// releases exactly the grant's own slots without any scan; this
    /// method serves callers that hold no grant record.)
    pub fn release_all(&mut self, conn: ConnId) -> u32 {
        let mut n = 0;
        let tail = self.free.tail_mask();
        let last = self.free.word_count() - 1;
        for wi in 0..=last {
            // Reserved slots of this word (free-mask complement, with
            // out-of-range bits masked off in the final word).
            let mut reserved = !self.free.word(wi);
            if wi == last {
                reserved &= tail;
            }
            while reserved != 0 {
                let s = wi as u32 * 64 + reserved.trailing_zeros();
                reserved &= reserved - 1;
                if self.slots[s as usize] == Some(conn) {
                    self.slots[s as usize] = None;
                    self.free.set(s);
                    n += 1;
                }
            }
        }
        n
    }

    /// Number of reserved slots.
    #[must_use]
    pub fn reserved_count(&self) -> u32 {
        self.size() - self.free.count()
    }

    /// Fraction of the table that is reserved, in `[0, 1]`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        f64::from(self.reserved_count()) / f64::from(self.size())
    }

    /// The slots reserved for `conn`, ascending.
    #[must_use]
    pub fn slots_of(&self, conn: ConnId) -> Vec<u32> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Some(conn))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Iterates over `(slot, owner)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Option<ConnId>)> + '_ {
        self.slots.iter().enumerate().map(|(i, &s)| (i as u32, s))
    }

    fn wrap(&self, slot: u32) -> usize {
        (slot as usize) % self.slots.len()
    }
}

impl fmt::Display for SlotTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match s {
                Some(c) => write!(f, "{c}")?,
                None => write!(f, "-")?,
            }
        }
        write!(f, "]")
    }
}

/// The circular gaps, in slots, between consecutive reserved injection
/// slots of a connection.
///
/// `gaps(&[1, 4], 8)` is `[3, 5]`: slot 1→4 is 3 apart, and wrapping
/// 4→1 is 5 apart. A connection waiting for its next slot waits at most
/// `max(gaps) * slot_cycles` cycles — the quantity behind every latency
/// bound in the analysis crate.
///
/// Returns an empty vector for fewer than one slot, and `[size]` for a
/// single slot (a full revolution back to itself).
///
/// # Panics
///
/// Panics if any slot is ≥ `size` or slots are not strictly ascending.
#[must_use]
pub fn gaps(slots: &[u32], size: u32) -> Vec<u32> {
    if slots.is_empty() {
        return Vec::new();
    }
    for w in slots.windows(2) {
        assert!(w[0] < w[1], "slots must be strictly ascending");
    }
    assert!(*slots.last().unwrap() < size, "slot out of table range");
    if slots.len() == 1 {
        return vec![size];
    }
    let mut out = Vec::with_capacity(slots.len());
    for w in slots.windows(2) {
        out.push(w[1] - w[0]);
    }
    out.push(size - slots.last().unwrap() + slots[0]);
    out
}

/// The worst-case number of slots spanned by `m` consecutive reserved
/// slots, over all starting positions — i.e. the worst wait-plus-
/// serialisation window for an `m`-flit message.
///
/// For `m = 1` this is simply the maximum gap.
///
/// # Panics
///
/// Panics if `m` is zero or `slots` is empty (no service at all), or the
/// slots are invalid per [`gaps`].
#[must_use]
pub fn worst_window(slots: &[u32], size: u32, m: u32) -> u32 {
    assert!(m > 0, "window of zero flits");
    assert!(!slots.is_empty(), "connection has no slots");
    for w in slots.windows(2) {
        assert!(w[0] < w[1], "slots must be strictly ascending");
    }
    assert!(*slots.last().unwrap() < size, "slot out of table range");
    let n = slots.len();
    let m = m as usize;
    // A run of `rem` consecutive gaps starting at slot i telescopes to the
    // slot-position difference slots[i + rem] - slots[i] (plus one table
    // revolution when the run wraps), so the worst window is a single
    // O(n) sliding pass instead of O(n × m) gap summing. When m >= n the
    // message needs extra full revolutions: each adds `size`.
    let full_revs = (m / n) as u32;
    let rem = m % n;
    if rem == 0 {
        return full_revs * size;
    }
    let mut worst = 0;
    for i in 0..n {
        let j = i + rem;
        let span = if j < n {
            slots[j] - slots[i]
        } else {
            size - slots[i] + slots[j - n]
        };
        worst = worst.max(span);
    }
    full_revs * size + worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ConnId {
        ConnId::new(i)
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut t = SlotTable::new(4);
        t.reserve(2, c(7)).unwrap();
        assert_eq!(t.owner(2), Some(c(7)));
        assert_eq!(t.release(2), Some(c(7)));
        assert!(t.is_free(2));
        assert_eq!(t.release(2), None);
    }

    #[test]
    fn reserve_wraps_modulo_size() {
        let mut t = SlotTable::new(4);
        t.reserve(6, c(0)).unwrap(); // = slot 2
        assert_eq!(t.owner(2), Some(c(0)));
        assert!(!t.is_free(6));
    }

    #[test]
    fn double_reserve_reports_owner() {
        let mut t = SlotTable::new(4);
        t.reserve(1, c(0)).unwrap();
        assert_eq!(t.reserve(1, c(1)), Err(c(0)));
        // Original reservation untouched.
        assert_eq!(t.owner(1), Some(c(0)));
    }

    #[test]
    fn release_all_clears_only_that_connection() {
        let mut t = SlotTable::new(8);
        t.reserve(0, c(0)).unwrap();
        t.reserve(1, c(1)).unwrap();
        t.reserve(5, c(0)).unwrap();
        assert_eq!(t.release_all(c(0)), 2);
        assert_eq!(t.reserved_count(), 1);
        assert_eq!(t.owner(1), Some(c(1)));
    }

    #[test]
    fn release_all_word_scan_matches_owner_scan() {
        // Pin the complement-word-scan teardown against the original
        // probe-every-slot implementation across word-boundary sizes.
        for size in [1u32, 7, 63, 64, 65, 100, 128, 130] {
            let mut t = SlotTable::new(size);
            for s in 0..size {
                match (s * 7 + 3) % 5 {
                    0 => t.reserve(s, c(0)).unwrap(),
                    1 => t.reserve(s, c(1)).unwrap(),
                    _ => {}
                }
            }
            let mut reference = t.clone();
            // The original implementation, inlined as the oracle.
            let mut expect = 0;
            for s in 0..size {
                if reference.owner(s) == Some(c(0)) {
                    reference.release(s);
                    expect += 1;
                }
            }
            assert_eq!(t.release_all(c(0)), expect, "size {size}");
            assert_eq!(t, reference, "size {size}");
            // Free mask stays in lock-step with the owner vector.
            for s in 0..size {
                assert_eq!(t.is_free(s), t.owner(s).is_none(), "size {size} slot {s}");
            }
        }
    }

    #[test]
    fn slots_of_returns_ascending() {
        let mut t = SlotTable::new(8);
        for s in [6, 1, 4] {
            t.reserve(s, c(3)).unwrap();
        }
        assert_eq!(t.slots_of(c(3)), vec![1, 4, 6]);
    }

    #[test]
    fn utilisation_fraction() {
        let mut t = SlotTable::new(8);
        t.reserve(0, c(0)).unwrap();
        t.reserve(1, c(0)).unwrap();
        assert!((t.utilisation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_marks_free_and_owned() {
        let mut t = SlotTable::new(3);
        t.reserve(1, c(5)).unwrap();
        assert_eq!(t.to_string(), "[- c5 -]");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_table_rejected() {
        let _ = SlotTable::new(0);
    }

    #[test]
    fn gaps_of_spread_slots() {
        assert_eq!(gaps(&[1, 4], 8), vec![3, 5]);
        assert_eq!(gaps(&[0, 2, 4, 6], 8), vec![2, 2, 2, 2]);
        assert_eq!(gaps(&[7], 8), vec![8]);
        assert_eq!(gaps(&[], 8), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn gaps_reject_unsorted() {
        let _ = gaps(&[4, 1], 8);
    }

    #[test]
    #[should_panic(expected = "out of table range")]
    fn gaps_reject_out_of_range() {
        let _ = gaps(&[9], 8);
    }

    #[test]
    fn worst_window_single_flit_is_max_gap() {
        assert_eq!(worst_window(&[1, 4], 8, 1), 5);
        assert_eq!(worst_window(&[0, 2, 4, 6], 8, 1), 2);
    }

    #[test]
    fn worst_window_multi_flit_sums_consecutive_gaps() {
        // Gaps of [1,4] in 8: [3, 5]. Two flits: worst is 3+5 = 8.
        assert_eq!(worst_window(&[1, 4], 8, 2), 8);
        // Three flits: one full revolution (8) plus worst single gap (5).
        assert_eq!(worst_window(&[1, 4], 8, 3), 13);
        // Evenly spread: m flits take m gaps of 2.
        assert_eq!(worst_window(&[0, 2, 4, 6], 8, 3), 6);
    }

    #[test]
    fn worst_window_single_slot_connection() {
        // One slot in 8: every flit costs a full revolution.
        assert_eq!(worst_window(&[3], 8, 1), 8);
        assert_eq!(worst_window(&[3], 8, 4), 32);
    }

    #[test]
    #[should_panic(expected = "no slots")]
    fn worst_window_requires_slots() {
        let _ = worst_window(&[], 8, 1);
    }
}
