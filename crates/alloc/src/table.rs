//! TDM slot tables: the reservation state of one link.
//!
//! Contention-free routing reserves, for every link, which connection may
//! occupy it during each slot of the table period. The tables of all links
//! plus the per-connection injection slots *are* the allocation.

use crate::mask::SlotMask;
use aelite_spec::ids::ConnId;
use core::fmt;

/// Owner storage of a [`SlotTable`]: who holds each reserved slot.
///
/// The allocator's decisions are driven entirely by the free-slot
/// [`SlotMask`]; the owner side only answers probes (`owner`, `reserve`
/// conflict reporting, teardown). That makes its representation a pure
/// memory/probe-cost trade, invisible to allocation results:
///
/// * `Dense` — a flat `slot → owner` vector: O(1) probes, `size`
///   entries resident regardless of occupancy.
/// * `Sparse` — `(slot, owner)` pairs sorted by slot: O(log reserved)
///   probes, memory proportional to the reservations actually held.
///
/// On mega-mesh platforms most links carry little or no traffic, so
/// tables start sparse and self-promote to dense once occupancy makes
/// the flat vector worth its footprint.
#[derive(Debug, Clone)]
enum Owners {
    Dense(Vec<Option<ConnId>>),
    Sparse(Vec<(u32, ConnId)>),
}

/// The reservation table of a single link: `size` slots, each free or
/// owned by one connection.
///
/// Alongside the owner storage, the table maintains a [`SlotMask`] bitset
/// of its free slots ([`free_mask`](Self::free_mask)), kept in sync by
/// every mutating operation, so the allocator can intersect the free sets
/// of a whole path with word-level rotate-and-AND kernels. Owners live in
/// a dense or sparse representation selected per table behind these
/// methods (see [`new`](Self::new), [`new_dense`](Self::new_dense) and
/// [`new_sparse`](Self::new_sparse)); two tables with the same
/// reservations compare equal regardless of representation.
///
/// # Examples
///
/// ```
/// use aelite_alloc::table::SlotTable;
/// use aelite_spec::ids::ConnId;
///
/// let mut t = SlotTable::new(8);
/// t.reserve(3, ConnId::new(0)).unwrap();
/// assert_eq!(t.owner(3), Some(ConnId::new(0)));
/// assert!(t.is_free(4));
/// assert!(!t.free_mask().get(3));
/// assert_eq!(t.reserved_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SlotTable {
    size: u32,
    owners: Owners,
    free: SlotMask,
    /// Sparse entry count at which the table switches to the dense
    /// representation; `u32::MAX` pins it sparse forever.
    promote_at: u32,
}

impl SlotTable {
    /// Creates a table of `size` free slots.
    ///
    /// Owner storage starts in the sparse representation (a low-occupancy
    /// table holds no owner memory at all) and promotes itself to the
    /// dense one when a quarter of the slots are reserved. Use
    /// [`new_dense`](Self::new_dense) / [`new_sparse`](Self::new_sparse)
    /// to pin a representation.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: u32) -> Self {
        Self::with_promotion(size, (size / 4).max(4))
    }

    /// Creates a table whose owner storage is dense from the start — the
    /// historical representation: O(1) probes, `size` entries resident.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new_dense(size: u32) -> Self {
        assert!(size > 0, "slot table must have at least one slot");
        SlotTable {
            size,
            owners: Owners::Dense(vec![None; size as usize]),
            free: SlotMask::new_full(size),
            promote_at: 0,
        }
    }

    /// Creates a table whose owner storage stays sparse at every
    /// occupancy (it never self-promotes) — memory stays proportional to
    /// the reservations held, probes cost O(log reserved).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new_sparse(size: u32) -> Self {
        Self::with_promotion(size, u32::MAX)
    }

    fn with_promotion(size: u32, promote_at: u32) -> Self {
        assert!(size > 0, "slot table must have at least one slot");
        SlotTable {
            size,
            owners: Owners::Sparse(Vec::new()),
            free: SlotMask::new_full(size),
            promote_at,
        }
    }

    /// Whether the owner storage is currently in the sparse
    /// representation (diagnostics and memory accounting).
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        matches!(self.owners, Owners::Sparse(_))
    }

    /// Resident owner entries: `size` for a dense table, the reserved
    /// count for a sparse one — the quantity the sparse representation
    /// exists to shrink.
    #[must_use]
    pub fn owner_entries_resident(&self) -> usize {
        match &self.owners {
            Owners::Dense(v) => v.len(),
            Owners::Sparse(v) => v.len(),
        }
    }

    /// The table period in slots.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether `slot` (taken modulo the table size) is unreserved.
    #[must_use]
    pub fn is_free(&self, slot: u32) -> bool {
        self.free.get(self.wrap(slot) as u32)
    }

    /// The bitset of free slots (bit set ⇔ slot unreserved), maintained in
    /// lock-step with the owner storage.
    #[must_use]
    pub fn free_mask(&self) -> &SlotMask {
        &self.free
    }

    /// The connection owning `slot` (modulo table size), if any.
    #[must_use]
    pub fn owner(&self, slot: u32) -> Option<ConnId> {
        let i = self.wrap(slot);
        match &self.owners {
            Owners::Dense(v) => v[i],
            Owners::Sparse(v) => v
                .binary_search_by_key(&(i as u32), |&(s, _)| s)
                .ok()
                .map(|pos| v[pos].1),
        }
    }

    /// Switches sparse owner storage to the dense representation.
    fn promote(&mut self) {
        if let Owners::Sparse(list) = &self.owners {
            let mut dense = vec![None; self.size as usize];
            for &(s, c) in list {
                dense[s as usize] = Some(c);
            }
            self.owners = Owners::Dense(dense);
        }
    }

    /// Reserves `slot` (modulo table size) for `conn`.
    ///
    /// # Errors
    ///
    /// Returns the current owner if the slot is already taken — the caller
    /// (allocator) treats this as "try elsewhere", never as a panic,
    /// because contention for slots is the normal case.
    pub fn reserve(&mut self, slot: u32, conn: ConnId) -> Result<(), ConnId> {
        let i = self.wrap(slot) as u32;
        match &mut self.owners {
            Owners::Dense(v) => match v[i as usize] {
                Some(owner) => return Err(owner),
                None => v[i as usize] = Some(conn),
            },
            Owners::Sparse(v) => match v.binary_search_by_key(&i, |&(s, _)| s) {
                Ok(pos) => return Err(v[pos].1),
                Err(pos) => {
                    v.insert(pos, (i, conn));
                    if v.len() as u32 >= self.promote_at {
                        self.promote();
                    }
                }
            },
        }
        self.free.clear(i);
        Ok(())
    }

    /// Releases `slot` (modulo table size), returning its previous owner.
    pub fn release(&mut self, slot: u32) -> Option<ConnId> {
        let i = self.wrap(slot) as u32;
        let prev = match &mut self.owners {
            Owners::Dense(v) => v[i as usize].take(),
            Owners::Sparse(v) => v
                .binary_search_by_key(&i, |&(s, _)| s)
                .ok()
                .map(|pos| v.remove(pos).1),
        };
        if prev.is_some() {
            self.free.set(i);
        }
        prev
    }

    /// Releases every slot owned by `conn`, returning how many there were.
    ///
    /// Sub-linear in the table size for either representation: the sparse
    /// side is a single pass over the reserved entries; the dense side
    /// walks the *reserved* slots through the free mask's complement one
    /// word at a time (`trailing_zeros` per reserved slot), so a
    /// lightly-loaded table costs O(reserved) rather than O(size).
    /// (Grant-based teardown — the online churn hot path — goes further:
    /// [`Allocation::take_grant`](crate::allocate::Allocation::take_grant)
    /// releases exactly the grant's own slots without any scan; this
    /// method serves callers that hold no grant record.)
    pub fn release_all(&mut self, conn: ConnId) -> u32 {
        let mut n = 0;
        let free = &mut self.free;
        match &mut self.owners {
            Owners::Sparse(v) => {
                v.retain(|&(s, c)| {
                    if c == conn {
                        free.set(s);
                        n += 1;
                        false
                    } else {
                        true
                    }
                });
            }
            Owners::Dense(slots) => {
                let tail = free.tail_mask();
                let last = free.word_count() - 1;
                for wi in 0..=last {
                    // Reserved slots of this word (free-mask complement,
                    // with out-of-range bits masked off in the final word).
                    let mut reserved = !free.word(wi);
                    if wi == last {
                        reserved &= tail;
                    }
                    while reserved != 0 {
                        let s = wi as u32 * 64 + reserved.trailing_zeros();
                        reserved &= reserved - 1;
                        if slots[s as usize] == Some(conn) {
                            slots[s as usize] = None;
                            free.set(s);
                            n += 1;
                        }
                    }
                }
            }
        }
        n
    }

    /// Number of reserved slots.
    #[must_use]
    pub fn reserved_count(&self) -> u32 {
        self.size() - self.free.count()
    }

    /// Number of unreserved slots — the table's spare capacity, used by
    /// the allocator's spare-capacity steering to score candidate
    /// routes by their bottleneck link.
    #[must_use]
    pub fn free_count(&self) -> u32 {
        self.free.count()
    }

    /// Fraction of the table that is reserved, in `[0, 1]`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        f64::from(self.reserved_count()) / f64::from(self.size())
    }

    /// The slots reserved for `conn`, ascending.
    #[must_use]
    pub fn slots_of(&self, conn: ConnId) -> Vec<u32> {
        match &self.owners {
            Owners::Dense(v) => v
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Some(conn))
                .map(|(i, _)| i as u32)
                .collect(),
            Owners::Sparse(v) => v
                .iter()
                .filter(|&&(_, c)| c == conn)
                .map(|&(s, _)| s)
                .collect(),
        }
    }

    /// Iterates over `(slot, owner)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Option<ConnId>)> + '_ {
        (0..self.size).map(move |s| (s, self.owner(s)))
    }

    fn wrap(&self, slot: u32) -> usize {
        (slot as usize) % self.size as usize
    }
}

/// Equality is over the logical reservations — size, free set and owner
/// of every reserved slot — never over the owner representation, so a
/// sparse table equals its dense twin.
impl PartialEq for SlotTable {
    fn eq(&self, other: &Self) -> bool {
        if self.size != other.size || self.free != other.free {
            return false;
        }
        // Free masks match, so both sides reserve the same slot set; only
        // the owners on that set can still differ.
        match (&self.owners, &other.owners) {
            (Owners::Dense(a), Owners::Dense(b)) => a == b,
            (Owners::Sparse(a), Owners::Sparse(b)) => a == b,
            (Owners::Sparse(s), Owners::Dense(d)) | (Owners::Dense(d), Owners::Sparse(s)) => {
                s.iter().all(|&(slot, c)| d[slot as usize] == Some(c))
            }
        }
    }
}

impl Eq for SlotTable {}

impl fmt::Display for SlotTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.iter() {
            if i > 0 {
                write!(f, " ")?;
            }
            match s {
                Some(c) => write!(f, "{c}")?,
                None => write!(f, "-")?,
            }
        }
        write!(f, "]")
    }
}

/// The circular gaps, in slots, between consecutive reserved injection
/// slots of a connection.
///
/// `gaps(&[1, 4], 8)` is `[3, 5]`: slot 1→4 is 3 apart, and wrapping
/// 4→1 is 5 apart. A connection waiting for its next slot waits at most
/// `max(gaps) * slot_cycles` cycles — the quantity behind every latency
/// bound in the analysis crate.
///
/// Returns an empty vector for fewer than one slot, and `[size]` for a
/// single slot (a full revolution back to itself).
///
/// # Panics
///
/// Panics if any slot is ≥ `size` or slots are not strictly ascending.
#[must_use]
pub fn gaps(slots: &[u32], size: u32) -> Vec<u32> {
    if slots.is_empty() {
        return Vec::new();
    }
    for w in slots.windows(2) {
        assert!(w[0] < w[1], "slots must be strictly ascending");
    }
    assert!(*slots.last().unwrap() < size, "slot out of table range");
    if slots.len() == 1 {
        return vec![size];
    }
    let mut out = Vec::with_capacity(slots.len());
    for w in slots.windows(2) {
        out.push(w[1] - w[0]);
    }
    out.push(size - slots.last().unwrap() + slots[0]);
    out
}

/// The worst-case number of slots spanned by `m` consecutive reserved
/// slots, over all starting positions — i.e. the worst wait-plus-
/// serialisation window for an `m`-flit message.
///
/// For `m = 1` this is simply the maximum gap.
///
/// # Panics
///
/// Panics if `m` is zero or `slots` is empty (no service at all), or the
/// slots are invalid per [`gaps`].
#[must_use]
pub fn worst_window(slots: &[u32], size: u32, m: u32) -> u32 {
    assert!(m > 0, "window of zero flits");
    assert!(!slots.is_empty(), "connection has no slots");
    for w in slots.windows(2) {
        assert!(w[0] < w[1], "slots must be strictly ascending");
    }
    assert!(*slots.last().unwrap() < size, "slot out of table range");
    let n = slots.len();
    let m = m as usize;
    // A run of `rem` consecutive gaps starting at slot i telescopes to the
    // slot-position difference slots[i + rem] - slots[i] (plus one table
    // revolution when the run wraps), so the worst window is a single
    // O(n) sliding pass instead of O(n × m) gap summing. When m >= n the
    // message needs extra full revolutions: each adds `size`.
    let full_revs = (m / n) as u32;
    let rem = m % n;
    if rem == 0 {
        return full_revs * size;
    }
    let mut worst = 0;
    for i in 0..n {
        let j = i + rem;
        let span = if j < n {
            slots[j] - slots[i]
        } else {
            size - slots[i] + slots[j - n]
        };
        worst = worst.max(span);
    }
    full_revs * size + worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ConnId {
        ConnId::new(i)
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut t = SlotTable::new(4);
        t.reserve(2, c(7)).unwrap();
        assert_eq!(t.owner(2), Some(c(7)));
        assert_eq!(t.release(2), Some(c(7)));
        assert!(t.is_free(2));
        assert_eq!(t.release(2), None);
    }

    #[test]
    fn reserve_wraps_modulo_size() {
        let mut t = SlotTable::new(4);
        t.reserve(6, c(0)).unwrap(); // = slot 2
        assert_eq!(t.owner(2), Some(c(0)));
        assert!(!t.is_free(6));
    }

    #[test]
    fn double_reserve_reports_owner() {
        let mut t = SlotTable::new(4);
        t.reserve(1, c(0)).unwrap();
        assert_eq!(t.reserve(1, c(1)), Err(c(0)));
        // Original reservation untouched.
        assert_eq!(t.owner(1), Some(c(0)));
    }

    #[test]
    fn release_all_clears_only_that_connection() {
        let mut t = SlotTable::new(8);
        t.reserve(0, c(0)).unwrap();
        t.reserve(1, c(1)).unwrap();
        t.reserve(5, c(0)).unwrap();
        assert_eq!(t.release_all(c(0)), 2);
        assert_eq!(t.reserved_count(), 1);
        assert_eq!(t.owner(1), Some(c(1)));
    }

    #[test]
    fn release_all_word_scan_matches_owner_scan() {
        // Pin the complement-word-scan teardown against the original
        // probe-every-slot implementation across word-boundary sizes.
        for size in [1u32, 7, 63, 64, 65, 100, 128, 130] {
            let mut t = SlotTable::new(size);
            for s in 0..size {
                match (s * 7 + 3) % 5 {
                    0 => t.reserve(s, c(0)).unwrap(),
                    1 => t.reserve(s, c(1)).unwrap(),
                    _ => {}
                }
            }
            let mut reference = t.clone();
            // The original implementation, inlined as the oracle.
            let mut expect = 0;
            for s in 0..size {
                if reference.owner(s) == Some(c(0)) {
                    reference.release(s);
                    expect += 1;
                }
            }
            assert_eq!(t.release_all(c(0)), expect, "size {size}");
            assert_eq!(t, reference, "size {size}");
            // Free mask stays in lock-step with the owner vector.
            for s in 0..size {
                assert_eq!(t.is_free(s), t.owner(s).is_none(), "size {size} slot {s}");
            }
        }
    }

    #[test]
    fn slots_of_returns_ascending() {
        let mut t = SlotTable::new(8);
        for s in [6, 1, 4] {
            t.reserve(s, c(3)).unwrap();
        }
        assert_eq!(t.slots_of(c(3)), vec![1, 4, 6]);
    }

    #[test]
    fn utilisation_fraction() {
        let mut t = SlotTable::new(8);
        t.reserve(0, c(0)).unwrap();
        t.reserve(1, c(0)).unwrap();
        assert!((t.utilisation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_marks_free_and_owned() {
        let mut t = SlotTable::new(3);
        t.reserve(1, c(5)).unwrap();
        assert_eq!(t.to_string(), "[- c5 -]");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_table_rejected() {
        let _ = SlotTable::new(0);
    }

    #[test]
    fn new_table_starts_sparse_and_promotes_at_quarter_occupancy() {
        let mut t = SlotTable::new(32);
        assert!(t.is_sparse());
        assert_eq!(t.owner_entries_resident(), 0);
        for s in 0..7 {
            t.reserve(s, c(s)).unwrap();
            assert!(t.is_sparse(), "below threshold after {} slots", s + 1);
        }
        t.reserve(7, c(7)).unwrap(); // 8 = 32/4 reserved: promote
        assert!(!t.is_sparse());
        assert_eq!(t.owner_entries_resident(), 32);
        for s in 0..8 {
            assert_eq!(t.owner(s), Some(c(s)), "promotion preserved owners");
        }
    }

    #[test]
    fn pinned_sparse_never_promotes() {
        let mut t = SlotTable::new_sparse(8);
        for s in 0..8 {
            t.reserve(s, c(s)).unwrap();
        }
        assert!(t.is_sparse(), "full table still sparse when pinned");
        assert_eq!(t.owner_entries_resident(), 8);
        assert_eq!(t.release_all(c(3)), 1);
        assert_eq!(t.owner_entries_resident(), 7);
    }

    #[test]
    fn sparse_and_dense_tables_compare_equal() {
        let mut sparse = SlotTable::new_sparse(16);
        let mut dense = SlotTable::new_dense(16);
        assert!(!dense.is_sparse());
        assert_eq!(sparse, dense, "both empty");
        for (s, owner) in [(1, 5), (9, 5), (14, 2)] {
            sparse.reserve(s, c(owner)).unwrap();
            dense.reserve(s, c(owner)).unwrap();
        }
        assert_eq!(sparse, dense);
        assert_eq!(dense, sparse, "symmetric");
        assert_eq!(sparse.to_string(), dense.to_string());
        // Same slot set, different owner: unequal in any representation.
        let mut other = SlotTable::new_dense(16);
        for (s, owner) in [(1, 5), (9, 4), (14, 2)] {
            other.reserve(s, c(owner)).unwrap();
        }
        assert_ne!(sparse, other);
        assert_ne!(other, sparse);
    }

    #[test]
    fn sparse_release_all_and_probes_match_dense() {
        // Mirror of release_all_word_scan_matches_owner_scan for the
        // pinned-sparse representation, cross-checked against a dense
        // twin mutated identically.
        for size in [1u32, 7, 63, 64, 65, 100, 128, 130] {
            let mut sparse = SlotTable::new_sparse(size);
            let mut dense = SlotTable::new_dense(size);
            for s in 0..size {
                match (s * 7 + 3) % 5 {
                    0 => {
                        sparse.reserve(s, c(0)).unwrap();
                        dense.reserve(s, c(0)).unwrap();
                    }
                    1 => {
                        sparse.reserve(s, c(1)).unwrap();
                        dense.reserve(s, c(1)).unwrap();
                    }
                    _ => {}
                }
            }
            assert_eq!(sparse, dense, "size {size}");
            assert_eq!(sparse.slots_of(c(0)), dense.slots_of(c(0)), "size {size}");
            assert_eq!(
                sparse.release_all(c(0)),
                dense.release_all(c(0)),
                "size {size}"
            );
            assert_eq!(sparse, dense, "size {size} after release_all");
            assert_eq!(sparse.free_mask(), dense.free_mask(), "size {size}");
            for s in 0..size {
                assert_eq!(sparse.owner(s), dense.owner(s), "size {size} slot {s}");
            }
        }
    }

    #[test]
    fn gaps_of_spread_slots() {
        assert_eq!(gaps(&[1, 4], 8), vec![3, 5]);
        assert_eq!(gaps(&[0, 2, 4, 6], 8), vec![2, 2, 2, 2]);
        assert_eq!(gaps(&[7], 8), vec![8]);
        assert_eq!(gaps(&[], 8), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn gaps_reject_unsorted() {
        let _ = gaps(&[4, 1], 8);
    }

    #[test]
    #[should_panic(expected = "out of table range")]
    fn gaps_reject_out_of_range() {
        let _ = gaps(&[9], 8);
    }

    #[test]
    fn worst_window_single_flit_is_max_gap() {
        assert_eq!(worst_window(&[1, 4], 8, 1), 5);
        assert_eq!(worst_window(&[0, 2, 4, 6], 8, 1), 2);
    }

    #[test]
    fn worst_window_multi_flit_sums_consecutive_gaps() {
        // Gaps of [1,4] in 8: [3, 5]. Two flits: worst is 3+5 = 8.
        assert_eq!(worst_window(&[1, 4], 8, 2), 8);
        // Three flits: one full revolution (8) plus worst single gap (5).
        assert_eq!(worst_window(&[1, 4], 8, 3), 13);
        // Evenly spread: m flits take m gaps of 2.
        assert_eq!(worst_window(&[0, 2, 4, 6], 8, 3), 6);
    }

    #[test]
    fn worst_window_single_slot_connection() {
        // One slot in 8: every flit costs a full revolution.
        assert_eq!(worst_window(&[3], 8, 1), 8);
        assert_eq!(worst_window(&[3], 8, 4), 32);
    }

    #[test]
    #[should_panic(expected = "no slots")]
    fn worst_window_requires_slots() {
        let _ = worst_window(&[], 8, 1);
    }
}
