//! # aelite-alloc — contention-free TDM resource allocation
//!
//! The design-time flow that turns an [`aelite_spec::SystemSpec`] into an
//! [`allocate::Allocation`]: a source route and a set of TDM slots per
//! connection such that no two flits ever arrive at the same link in the
//! same slot (the paper's contention-free routing, Section III).
//!
//! * [`path`] — source-route paths and minimal-hop route enumeration.
//! * [`mask`] — word-level bitset kernels (rotate-and-AND, bit scans)
//!   behind the allocator's hot path.
//! * [`route_cache`] — the [`route_cache::RouteProvider`] API: memoized
//!   route candidates per (src, dst) NI pair, with a lazy hashed default
//!   cache (memory ∝ pairs routed) and a dense O(1)-lookup variant.
//! * [`table`] — per-link slot tables, gap and worst-window arithmetic.
//! * [`mod@allocate`] — the greedy hardest-first allocator.
//! * [`validate`] — an independent checker that re-derives every guarantee.
//! * [`reconfigure`] — runtime release/extend without disturbing anyone.
//!
//! # Examples
//!
//! Allocate the paper's 200-connection workload and verify it:
//!
//! ```
//! use aelite_alloc::{allocate, validate};
//! use aelite_spec::generate::paper_workload;
//!
//! let spec = paper_workload(42);
//! let alloc = allocate(&spec)?;
//! validate::validate(&spec, &alloc).expect("allocation is contention-free");
//! # Ok::<(), aelite_alloc::AllocError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocate;
pub mod mask;
pub mod path;
pub mod reconfigure;
pub mod route_cache;
pub mod table;
pub mod validate;

pub use allocate::{
    admission_order, allocate, estimate_slots, AdmissionRound, AllocError, AllocScratch,
    Allocation, Allocator, Grant, Steering,
};
pub use mask::SlotMask;
pub use path::{dimension_ordered, route_candidates, Path, PathError};
pub use reconfigure::release;
pub use route_cache::{
    CachedRoute, DenseRouteCache, FaultMask, RouteCache, RouteEntry, RouteProvider,
};
pub use table::{gaps, worst_window, SlotTable};
pub use validate::{validate as validate_allocation, Violation};
