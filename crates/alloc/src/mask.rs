//! Word-level bitset kernels for TDM slot tables.
//!
//! The allocator's hot path asks one question thousands of times per
//! connection: *which injection slots are free on every link of a path,
//! each link shifted by its hop position?* Answering it one slot at a time
//! over `Vec<Option<ConnId>>` tables costs O(table_size × links) per
//! candidate path. [`SlotMask`] packs the free/reserved state of a table
//! into `u64` words so the same question becomes a circular-rotate-and-AND
//! over `table_size / 64` words per link ([`SlotMask::and_rotated`]), and
//! the selection kernels (nearest free slot, circular gap cover) become
//! word scans with `trailing_zeros` / `leading_zeros` instead of
//! linear-probing loops.
//!
//! A mask of `size` slots stores bit `s` of slot `s` in
//! `words[s / 64] >> (s % 64)`. **Invariant:** bits at positions `>= size`
//! in the last word are always zero; every mutating method maintains this.
//!
//! # Examples
//!
//! ```
//! use aelite_alloc::mask::SlotMask;
//!
//! let mut a = SlotMask::new_full(8);
//! a.clear(3);
//! let mut b = SlotMask::new_full(8);
//! b.clear(0);
//! // Slots free in `a` whose position shifted by 1 is free in `b`:
//! let mut cand = a.clone();
//! cand.and_rotated(&b, 1);
//! assert!(!cand.get(3)); // 3 is reserved in `a`
//! assert!(!cand.get(7)); // 7 + 1 wraps to 0, reserved in `b`
//! assert!(cand.get(5));
//! ```

use core::fmt;

/// A fixed-size circular bitset over TDM slots (bit = slot is *set*).
///
/// Used by [`SlotTable`](crate::table::SlotTable) to track free slots and
/// by the allocator as the working set of candidate injection slots.
#[derive(Clone, PartialEq, Eq)]
pub struct SlotMask {
    size: u32,
    words: Vec<u64>,
}

impl SlotMask {
    /// Creates a mask of `size` slots, all clear.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new_empty(size: u32) -> Self {
        assert!(size > 0, "slot mask must have at least one slot");
        SlotMask {
            size,
            words: vec![0; size.div_ceil(64) as usize],
        }
    }

    /// Creates a mask of `size` slots, all set.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new_full(size: u32) -> Self {
        let mut m = SlotMask::new_empty(size);
        m.fill();
        m
    }

    /// Creates a mask with exactly the given slots set.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or any slot is `>= size`.
    #[must_use]
    pub fn from_slots(size: u32, slots: &[u32]) -> Self {
        let mut m = SlotMask::new_empty(size);
        for &s in slots {
            assert!(s < size, "slot {s} out of range for mask of size {size}");
            m.set(s);
        }
        m
    }

    /// The number of slots in the mask.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The mask over bits of the last word that fall inside `size`.
    #[inline]
    pub(crate) fn tail_mask(&self) -> u64 {
        let rem = self.size % 64;
        if rem == 0 {
            !0
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Sets every slot.
    pub fn fill(&mut self) {
        for w in &mut self.words {
            *w = !0;
        }
        let tail = self.tail_mask();
        *self.words.last_mut().expect("non-empty") &= tail;
    }

    /// Clears every slot.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Copies the contents of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn copy_from(&mut self, other: &SlotMask) {
        assert_eq!(self.size, other.size, "mask size mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Whether `slot` is set.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= size`.
    #[inline]
    #[must_use]
    pub fn get(&self, slot: u32) -> bool {
        assert!(slot < self.size, "slot {slot} out of range");
        self.words[(slot / 64) as usize] >> (slot % 64) & 1 == 1
    }

    /// Sets `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= size`.
    #[inline]
    pub fn set(&mut self, slot: u32) {
        assert!(slot < self.size, "slot {slot} out of range");
        self.words[(slot / 64) as usize] |= 1u64 << (slot % 64);
    }

    /// Clears `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= size`.
    #[inline]
    pub fn clear(&mut self, slot: u32) {
        assert!(slot < self.size, "slot {slot} out of range");
        self.words[(slot / 64) as usize] &= !(1u64 << (slot % 64));
    }

    /// The number of set slots.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no slot is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Reads 64 bits starting at bit position `pos` (linear, zero-padded
    /// past the last word).
    #[inline]
    fn read_linear64(&self, pos: u32) -> u64 {
        let wi = (pos / 64) as usize;
        let off = pos % 64;
        let mut v = self.words.get(wi).copied().unwrap_or(0) >> off;
        if off > 0 {
            v |= self.words.get(wi + 1).copied().unwrap_or(0) << (64 - off);
        }
        v
    }

    /// Reads 64 *circular* bits starting at slot `pos < size`: bit `j` of
    /// the result is slot `(pos + j) % size`. (Bits `j >= size` of the
    /// result are unspecified for masks narrower than a word; callers AND
    /// the result into a mask whose out-of-range bits are zero.)
    #[inline]
    fn read64_circular(&self, pos: u32) -> u64 {
        debug_assert!(pos < self.size);
        let before_wrap = self.size - pos;
        let lo = self.read_linear64(pos);
        if before_wrap >= 64 {
            lo
        } else {
            // `lo`'s bits >= before_wrap are zero (past the end of the
            // mask), so the wrapped head can be OR-ed straight in.
            lo | (self.read_linear64(0) << before_wrap)
        }
    }

    /// The circular-rotate-and-AND kernel: keeps in `self` only the slots
    /// `s` for which `other` has slot `(s + shift) % size` set.
    ///
    /// This is the allocator's inner loop — "injection slot `s` works on
    /// a link `i` hops downstream iff the link is free in slot
    /// `s + i * slots_per_hop`" — executed in O(size / 64) word operations
    /// instead of O(size) slot probes.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn and_rotated(&mut self, other: &SlotMask, shift: u32) {
        assert_eq!(self.size, other.size, "mask size mismatch");
        let shift = shift % self.size;
        if shift == 0 {
            for (w, &o) in self.words.iter_mut().zip(&other.words) {
                *w &= o;
            }
            return;
        }
        let size = self.size;
        for (wi, w) in self.words.iter_mut().enumerate() {
            let pos = (wi as u32 * 64 + shift) % size;
            *w &= other.read64_circular(pos);
        }
    }

    /// The backing word at index `wi` (bits past `size` are zero by the
    /// mask invariant). Used by word-level scans that walk the mask and
    /// its complement without going through per-slot probes.
    #[inline]
    pub(crate) fn word(&self, wi: usize) -> u64 {
        self.words[wi]
    }

    /// The number of backing `u64` words.
    #[inline]
    pub(crate) fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Iterates over the set slots, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = wi as u32 * 64;
            core::iter::successors(
                (word != 0).then_some((word, base + word.trailing_zeros())),
                move |&(w, _)| {
                    let w = w & (w - 1);
                    (w != 0).then_some((w, base + w.trailing_zeros()))
                },
            )
            .map(|(_, s)| s)
        })
    }

    /// The lowest set slot, if any.
    #[must_use]
    pub fn first_one(&self) -> Option<u32> {
        self.next_one_linear(0)
    }

    /// The lowest set slot `>= from` (no wrap-around).
    fn next_one_linear(&self, from: u32) -> Option<u32> {
        if from >= self.size {
            return None;
        }
        let mut wi = (from / 64) as usize;
        let mut w = self.words[wi] & (!0u64 << (from % 64));
        loop {
            if w != 0 {
                return Some(wi as u32 * 64 + w.trailing_zeros());
            }
            wi += 1;
            if wi == self.words.len() {
                return None;
            }
            w = self.words[wi];
        }
    }

    /// The highest set slot `<= upto` (no wrap-around).
    fn prev_one_linear(&self, upto: u32) -> Option<u32> {
        let upto = upto.min(self.size - 1);
        let mut wi = (upto / 64) as usize;
        let mut w = self.words[wi] & (!0u64 >> (63 - upto % 64));
        loop {
            if w != 0 {
                return Some(wi as u32 * 64 + 63 - w.leading_zeros());
            }
            if wi == 0 {
                return None;
            }
            wi -= 1;
            w = self.words[wi];
        }
    }

    /// The first set slot at or after `pos`, wrapping circularly.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= size`.
    #[must_use]
    pub fn next_one_circular(&self, pos: u32) -> Option<u32> {
        assert!(pos < self.size, "position {pos} out of range");
        self.next_one_linear(pos)
            .or_else(|| self.next_one_linear(0))
    }

    /// The first set slot at or before `pos`, wrapping circularly.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= size`.
    #[must_use]
    pub fn prev_one_circular(&self, pos: u32) -> Option<u32> {
        assert!(pos < self.size, "position {pos} out of range");
        self.prev_one_linear(pos)
            .or_else(|| self.prev_one_linear(self.size - 1))
    }

    /// The set slot at minimal circular distance from `ideal`; ties (one
    /// candidate each side at equal distance) go to the smaller slot
    /// number, matching a first-minimum scan over ascending slots.
    ///
    /// # Panics
    ///
    /// Panics if `ideal >= size`.
    #[must_use]
    pub fn nearest_one(&self, ideal: u32) -> Option<u32> {
        let fwd = self.next_one_circular(ideal)?;
        let bwd = self.prev_one_circular(ideal)?;
        let size = self.size;
        let df = (fwd + size - ideal) % size;
        let db = (ideal + size - bwd) % size;
        Some(match df.cmp(&db) {
            core::cmp::Ordering::Less => fwd,
            core::cmp::Ordering::Greater => bwd,
            core::cmp::Ordering::Equal => fwd.min(bwd),
        })
    }

    /// The largest forward circular distance between consecutive set
    /// slots (a single set slot yields `size`), or `None` if empty.
    #[must_use]
    pub fn max_circular_gap(&self) -> Option<u32> {
        let first = self.first_one()?;
        let mut prev = first;
        let mut max = 0;
        for s in self.iter_ones().skip(1) {
            max = max.max(s - prev);
            prev = s;
        }
        Some(max.max(self.size - prev + first))
    }
}

impl fmt::Debug for SlotMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SlotMask({}; ", self.size)?;
        f.debug_list().entries(self.iter_ones()).finish()?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference for `and_rotated`.
    fn and_rotated_ref(a: &SlotMask, b: &SlotMask, shift: u32) -> Vec<u32> {
        (0..a.size())
            .filter(|&s| a.get(s) && b.get((s + shift) % b.size()))
            .collect()
    }

    #[test]
    fn fill_and_count_respect_size() {
        for size in [1, 7, 63, 64, 65, 128, 130] {
            let m = SlotMask::new_full(size);
            assert_eq!(m.count(), size, "size {size}");
            assert_eq!(m.iter_ones().count() as u32, size);
        }
    }

    #[test]
    fn set_clear_get_roundtrip() {
        let mut m = SlotMask::new_empty(100);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(99);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(99));
        assert_eq!(m.count(), 4);
        m.clear(63);
        assert!(!m.get(63));
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![0, 64, 99]);
    }

    #[test]
    fn and_rotated_matches_reference() {
        for size in [5u32, 8, 32, 64, 65, 100, 128, 190] {
            let mut a = SlotMask::new_empty(size);
            let mut b = SlotMask::new_empty(size);
            // Deterministic pseudo-random patterns.
            for s in 0..size {
                if (s * 7 + 3) % 5 < 2 {
                    a.set(s);
                }
                if (s * 11 + 1) % 3 != 0 {
                    b.set(s);
                }
            }
            for shift in [0u32, 1, 2, 31, 63, 64, 65, size - 1, size, size + 3] {
                let mut out = a.clone();
                out.and_rotated(&b, shift);
                assert_eq!(
                    out.iter_ones().collect::<Vec<_>>(),
                    and_rotated_ref(&a, &b, shift % size),
                    "size {size} shift {shift}"
                );
            }
        }
    }

    #[test]
    fn nearest_one_prefers_smaller_on_tie() {
        // Slots 2 and 6 are both 2 away from 4 (size 8): smaller wins.
        let m = SlotMask::from_slots(8, &[2, 6]);
        assert_eq!(m.nearest_one(4), Some(2));
        assert_eq!(m.nearest_one(2), Some(2));
        assert_eq!(m.nearest_one(5), Some(6));
        // Wrap-around distance: 7 is 1 away from 0.
        let m = SlotMask::from_slots(8, &[3, 7]);
        assert_eq!(m.nearest_one(0), Some(7));
    }

    #[test]
    fn nearest_matches_linear_scan() {
        // Cross-check against the allocator's original first-minimum scan.
        for size in [4u32, 8, 64, 100] {
            let slots: Vec<u32> = (0..size).filter(|s| (s * 13 + 2) % 7 < 3).collect();
            let m = SlotMask::from_slots(size, &slots);
            for ideal in 0..size {
                let naive = slots.iter().copied().min_by_key(|&s| {
                    let d = s.abs_diff(ideal);
                    d.min(size - d)
                });
                assert_eq!(m.nearest_one(ideal), naive, "size {size} ideal {ideal}");
            }
        }
    }

    #[test]
    fn circular_scans_wrap() {
        let m = SlotMask::from_slots(70, &[10, 40]);
        assert_eq!(m.next_one_circular(41), Some(10));
        assert_eq!(m.next_one_circular(40), Some(40));
        assert_eq!(m.prev_one_circular(5), Some(40));
        assert_eq!(m.prev_one_circular(10), Some(10));
        assert_eq!(SlotMask::new_empty(16).next_one_circular(3), None);
        assert_eq!(SlotMask::new_empty(16).prev_one_circular(3), None);
    }

    #[test]
    fn max_circular_gap_matches_gaps() {
        let m = SlotMask::from_slots(8, &[1, 4]);
        assert_eq!(m.max_circular_gap(), Some(5));
        let m = SlotMask::from_slots(8, &[3]);
        assert_eq!(m.max_circular_gap(), Some(8));
        assert_eq!(SlotMask::new_empty(8).max_circular_gap(), None);
        let full = SlotMask::new_full(64);
        assert_eq!(full.max_circular_gap(), Some(1));
    }

    #[test]
    fn debug_lists_slots() {
        let m = SlotMask::from_slots(8, &[1, 5]);
        assert_eq!(format!("{m:?}"), "SlotMask(8; [1, 5])");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_size_rejected() {
        let _ = SlotMask::new_empty(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_rejected() {
        let mut m = SlotMask::new_empty(8);
        m.set(8);
    }
}
