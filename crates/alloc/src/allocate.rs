//! The TDM allocation flow: paths + slots for every connection.
//!
//! This plays the role of the Æthereal design-time resource-allocation
//! tools the paper reuses (\[16\] in the paper). For every connection it
//! chooses a source route and a set of TDM injection slots such that:
//!
//! * **contention freedom** — on every link of the path, the slot shifted
//!   by the link's position is exclusively reserved (no two flits ever
//!   arrive at the same link in the same slot, Section III);
//! * **bandwidth** — enough slots are reserved to carry the contracted
//!   throughput under the conservative one-header-word-per-flit payload
//!   model;
//! * **latency** — the worst-case wait-plus-serialisation window plus the
//!   path's pipeline delay meets the connection's latency requirement,
//!   adding extra slots beyond the bandwidth minimum when needed (the
//!   paper: reservations "do not have to correspond to the worst-case
//!   requirements if this is not needed").

use crate::mask::SlotMask;
use crate::path::Path;
use crate::route_cache::{RouteCache, RouteProvider};
use crate::table::{worst_window, SlotTable};
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::{ConnId, LinkId};
use core::fmt;

/// The resources granted to one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// The connection this grant belongs to.
    pub conn: ConnId,
    /// The source route.
    pub path: Path,
    /// Injection slots at the source NI, strictly ascending.
    pub inject_slots: Vec<u32>,
    /// The links of [`path`](Self::path) in traversal order; link *i* is
    /// used in slot `inject + i * slots_per_hop` (modulo the table size),
    /// where `slots_per_hop` accounts for mesochronous pipeline stages.
    pub links: Vec<LinkId>,
}

/// A complete, contention-free resource allocation for a system.
#[derive(Debug, Clone)]
pub struct Allocation {
    table_size: u32,
    /// `slots_per_hop` of the config this allocation was built for — the
    /// per-link slot shift, remembered so a grant can be torn down from
    /// its own slot list in O(slots × links) without consulting the spec.
    slots_per_hop: u32,
    link_tables: Vec<SlotTable>,
    grants: Vec<Option<Grant>>,
}

impl Allocation {
    pub(crate) fn empty(spec: &SystemSpec) -> Self {
        Allocation {
            table_size: spec.config().slot_table_size,
            slots_per_hop: spec.config().slots_per_hop(),
            link_tables: (0..spec.topology().link_count())
                .map(|_| SlotTable::new(spec.config().slot_table_size))
                .collect(),
            grants: vec![None; spec.conn_id_bound()],
        }
    }

    /// An allocation for `spec` with no grants: the starting point for
    /// incremental flows that admit connections one at a time through
    /// [`Allocator::extend_with_cache`] (e.g. a design-space sweep
    /// measuring how many connections of an oversubscribed workload fit).
    #[must_use]
    pub fn empty_for(spec: &SystemSpec) -> Self {
        Allocation::empty(spec)
    }

    /// The NoC-wide slot-table size.
    #[must_use]
    pub fn table_size(&self) -> u32 {
        self.table_size
    }

    /// Releases the grant of `conn`, freeing its slots; `false` if it
    /// held none. Used by the reconfiguration flow.
    pub(crate) fn release_grant(&mut self, conn: aelite_spec::ids::ConnId) -> bool {
        self.take_grant(conn).is_some()
    }

    /// Releases the grant of `conn` and returns it — the O(Δ) teardown
    /// kernel of the online reconfiguration flow.
    ///
    /// The grant's own slot list is the exact set of reservations it
    /// holds (slot `s + i * slots_per_hop` on link *i*), so teardown
    /// touches precisely `inject_slots × links` table entries and their
    /// free-mask words: proportional to the connection being closed, not
    /// to the platform. Callers that churn connections at high rate keep
    /// the returned [`Grant`] in an [`AllocScratch`] pool so its buffers
    /// are recycled by the next admission.
    pub fn take_grant(&mut self, conn: ConnId) -> Option<Grant> {
        let grant = self.grants.get_mut(conn.index()).and_then(Option::take)?;
        for (i, &l) in grant.links.iter().enumerate() {
            let table = &mut self.link_tables[l.index()];
            for &s in &grant.inject_slots {
                let prev = table.release(s + i as u32 * self.slots_per_hop);
                debug_assert_eq!(prev, Some(conn), "table out of sync with grant");
            }
        }
        Some(grant)
    }

    /// Removes the grant of `conn` from the grant map while **leaving
    /// its slot reservations in place** — the first half of a
    /// make-before-break re-route.
    ///
    /// The detached grant still owns its table entries, so a replacement
    /// admission for the same connection cannot collide with the old
    /// path's slots (the tables report them reserved). Callers must
    /// eventually pass the returned grant to
    /// [`release_reservations_of`](Allocation::release_reservations_of)
    /// — either after the replacement is committed (make-before-break)
    /// or before a retry (break-then-make) — or the slots leak.
    pub fn detach_grant(&mut self, conn: ConnId) -> Option<Grant> {
        self.grants.get_mut(conn.index()).and_then(Option::take)
    }

    /// Releases the slot reservations of a grant previously removed by
    /// [`detach_grant`](Allocation::detach_grant) — the second half of a
    /// make-before-break re-route.
    ///
    /// Identical to the release loop of
    /// [`take_grant`](Allocation::take_grant), but operating on a grant
    /// the allocation no longer owns. The grant must have been detached
    /// from *this* allocation: releasing someone else's reservations
    /// trips the same out-of-sync debug assertion as a double teardown.
    pub fn release_reservations_of(&mut self, grant: &Grant) {
        for (i, &l) in grant.links.iter().enumerate() {
            let table = &mut self.link_tables[l.index()];
            for &s in &grant.inject_slots {
                let prev = table.release(s + i as u32 * self.slots_per_hop);
                debug_assert_eq!(prev, Some(grant.conn), "table out of sync with grant");
            }
        }
    }

    /// Asserts `spec` describes the platform this allocation was built
    /// for: same slot-table size *and* per-hop slot shift. A grant
    /// reserved under one shift must never be torn down under another —
    /// two configs can share a table size yet differ in link pipeline
    /// depth (exactly the DSE grid's variation).
    pub(crate) fn assert_same_platform(&self, spec: &SystemSpec) {
        assert_eq!(
            self.table_size,
            spec.config().slot_table_size,
            "allocation and spec disagree on the slot-table size"
        );
        assert_eq!(
            self.slots_per_hop,
            spec.config().slots_per_hop(),
            "allocation and spec disagree on slots per hop (link pipeline depth)"
        );
    }

    /// Grows the per-connection grant storage to cover `spec`'s ids
    /// (reconfiguration may introduce connections with larger ids).
    pub(crate) fn grow_for(&mut self, spec: &SystemSpec) {
        if self.grants.len() < spec.conn_id_bound() {
            self.grants.resize(spec.conn_id_bound(), None);
        }
    }

    /// The grant of `conn`, if it was allocated.
    #[must_use]
    pub fn grant(&self, conn: ConnId) -> Option<&Grant> {
        self.grants.get(conn.index()).and_then(Option::as_ref)
    }

    /// All grants in connection order.
    pub fn grants(&self) -> impl Iterator<Item = &Grant> + '_ {
        self.grants.iter().filter_map(Option::as_ref)
    }

    /// The reservation table of `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    #[must_use]
    pub fn link_table(&self, link: LinkId) -> &SlotTable {
        &self.link_tables[link.index()]
    }

    /// Exchanges the reservation table of `link` with `other`'s — the
    /// merge/split kernel of sharded admission: a shard partition hands
    /// the link tables it owns to a hub allocation before a cross-shard
    /// phase and takes them back after, in O(1) per link (a pointer-level
    /// swap, no slot copying).
    ///
    /// # Panics
    ///
    /// Panics if the two allocations were built for different platforms
    /// (slot-table size or per-hop shift) or `link` is out of range in
    /// either.
    pub fn swap_link_table_with(&mut self, other: &mut Allocation, link: LinkId) {
        assert_eq!(
            self.table_size, other.table_size,
            "allocations disagree on the slot-table size"
        );
        assert_eq!(
            self.slots_per_hop, other.slots_per_hop,
            "allocations disagree on slots per hop"
        );
        core::mem::swap(
            &mut self.link_tables[link.index()],
            &mut other.link_tables[link.index()],
        );
    }

    /// Exchanges the grant slot of `conn` with `other`'s, growing either
    /// side's grant storage as needed — the companion of
    /// [`swap_link_table_with`](Self::swap_link_table_with) for moving a
    /// connection's grant between shard partitions without cloning it.
    ///
    /// # Panics
    ///
    /// Panics if the two allocations were built for different platforms.
    pub fn swap_grant_with(&mut self, other: &mut Allocation, conn: ConnId) {
        assert_eq!(
            self.table_size, other.table_size,
            "allocations disagree on the slot-table size"
        );
        assert_eq!(
            self.slots_per_hop, other.slots_per_hop,
            "allocations disagree on slots per hop"
        );
        let need = conn.index() + 1;
        if self.grants.len() < need {
            self.grants.resize(need, None);
        }
        if other.grants.len() < need {
            other.grants.resize(need, None);
        }
        core::mem::swap(
            &mut self.grants[conn.index()],
            &mut other.grants[conn.index()],
        );
    }

    /// Mean slot utilisation over all links that carry any traffic.
    #[must_use]
    pub fn mean_loaded_utilisation(&self) -> f64 {
        let loaded: Vec<f64> = self
            .link_tables
            .iter()
            .filter(|t| t.reserved_count() > 0)
            .map(SlotTable::utilisation)
            .collect();
        if loaded.is_empty() {
            0.0
        } else {
            loaded.iter().sum::<f64>() / loaded.len() as f64
        }
    }

    /// The highest slot utilisation over all links.
    #[must_use]
    pub fn peak_utilisation(&self) -> f64 {
        self.link_tables
            .iter()
            .map(SlotTable::utilisation)
            .fold(0.0, f64::max)
    }

    /// Worst-case **per-flit** latency of `conn` in clock cycles:
    /// `3 * max_gap + 3 * (routers + 1)`.
    ///
    /// The connection's latency contract is interpreted per flit, matching
    /// the paper's Section VII, which reports distributions of *flit*
    /// latencies. A flit that becomes ready just after an injection slot
    /// waits at most one maximum inter-slot gap, then rides the
    /// contention-free pipeline: 3 cycles per router plus 3 for the NI
    /// ingress link. Message-level (multi-flit) bounds are provided by
    /// [`worst_case_message_latency_cycles`](Self::worst_case_message_latency_cycles).
    ///
    /// # Panics
    ///
    /// Panics if `conn` has no grant.
    #[must_use]
    pub fn worst_case_latency_cycles(&self, spec: &SystemSpec, conn: ConnId) -> u64 {
        self.window_latency_cycles(spec, conn, 1)
    }

    /// Worst-case latency for a whole `message_bytes` message of `conn`
    /// (wait for the worst window of consecutive slots plus the pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `conn` has no grant.
    #[must_use]
    pub fn worst_case_message_latency_cycles(&self, spec: &SystemSpec, conn: ConnId) -> u64 {
        let m = flits_per_message(spec, spec.connection(conn).message_bytes);
        self.window_latency_cycles(spec, conn, m)
    }

    fn window_latency_cycles(&self, spec: &SystemSpec, conn: ConnId, m: u32) -> u64 {
        let grant = self.grant(conn).expect("connection has no grant");
        let cfg = spec.config();
        let window = worst_window(&grant.inject_slots, self.table_size, m);
        let pipeline = pipeline_cycles(cfg, grant.path.link_count());
        u64::from(window) * u64::from(cfg.slot_cycles()) + pipeline
    }

    /// Worst-case per-flit latency of `conn` in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `conn` has no grant.
    #[must_use]
    pub fn worst_case_latency_ns(&self, spec: &SystemSpec, conn: ConnId) -> f64 {
        self.worst_case_latency_cycles(spec, conn) as f64 * spec.config().cycle_ns()
    }

    /// The payload bandwidth guaranteed by the slots of `conn`.
    ///
    /// # Panics
    ///
    /// Panics if `conn` has no grant.
    #[must_use]
    pub fn allocated_bandwidth(&self, spec: &SystemSpec, conn: ConnId) -> aelite_spec::Bandwidth {
        let grant = self.grant(conn).expect("connection has no grant");
        let per_slot = spec.config().slot_payload_bandwidth().bytes_per_sec();
        aelite_spec::Bandwidth::from_bytes_per_sec(per_slot * grant.inject_slots.len() as u64)
    }
}

/// Estimates the slots a connection's grant will need: the larger of its
/// bandwidth minimum and the count its per-flit deadline forces, assuming
/// the shortest route.
#[must_use]
pub fn estimate_slots(spec: &SystemSpec, conn: ConnId) -> u32 {
    let cfg = spec.config();
    let c = spec.connection(conn);
    let topo = spec.topology();
    let (src_ni, dst_ni) = (spec.ip_ni(c.src), spec.ip_ni(c.dst));
    let (ra, rb) = (topo.ni_router(src_ni), topo.ni_router(dst_ni));
    let hops = match (topo.coords(ra), topo.coords(rb)) {
        (Some((xa, ya)), Some((xb, yb))) => xa.abs_diff(xb) + ya.abs_diff(yb),
        _ => u32::from(ra != rb),
    };
    let pipeline = pipeline_cycles(cfg, hops as usize + 2);
    let budget = (c.max_latency_ns as f64 / cfg.cycle_ns()).floor() as u64;
    let wait = budget.saturating_sub(pipeline);
    let gap = (wait / u64::from(cfg.slot_cycles())).max(1) as u32;
    let lat_slots = cfg.slot_table_size.div_ceil(gap);
    cfg.slots_for(c.bandwidth).max(lat_slots).max(1)
}

/// Sorts `conns` into the allocator's canonical hardest-first admission
/// order: most estimated slots first, then tightest deadline, then id.
/// Shared by the batch pass, the reconfiguration flow and the DSE
/// engine's incremental admission, so "hardest first" means the same
/// thing everywhere.
pub fn admission_order(spec: &SystemSpec, conns: &mut [ConnId]) {
    conns.sort_by_cached_key(|&id| {
        (
            core::cmp::Reverse(estimate_slots(spec, id)),
            spec.connection(id).max_latency_ns,
            id,
        )
    });
}

/// The contention-free pipeline delay, in cycles, of a path with
/// `n_links` links: each link plus its pipeline stages costs one slot of
/// `flit_words` cycles (paper Sections IV–V).
#[must_use]
pub fn pipeline_cycles(cfg: &aelite_spec::NocConfig, n_links: usize) -> u64 {
    n_links as u64 * u64::from(cfg.slots_per_hop()) * u64::from(cfg.flit_words)
}

/// The number of flits a message of `bytes` occupies under the
/// conservative one-header-word-per-flit model.
#[must_use]
pub fn flits_per_message(spec: &SystemSpec, bytes: u32) -> u32 {
    let payload = spec.config().payload_words_per_flit() * spec.config().data_width_bytes();
    bytes.div_ceil(payload).max(1)
}

/// Why allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// No route exists between the connection's NIs.
    NoRoute {
        /// The unroutable connection.
        conn: ConnId,
    },
    /// No candidate path had enough free (shift-consistent) slots.
    InsufficientSlots {
        /// The starved connection.
        conn: ConnId,
        /// Slots required for the bandwidth contract.
        needed: u32,
        /// Best number of free slots found on any candidate path.
        best_available: u32,
    },
    /// Slots were available but no selection met the latency requirement.
    LatencyUnmet {
        /// The connection whose deadline cannot be met.
        conn: ConnId,
        /// The requirement, in nanoseconds.
        required_ns: u64,
        /// The best achievable worst-case latency, in nanoseconds.
        best_ns: u64,
    },
    /// The pair is routable in the topology, but every candidate route
    /// traverses a failed link of the provider's
    /// [`FaultMask`](crate::route_cache::FaultMask).
    LinkDown {
        /// The severed connection.
        conn: ConnId,
        /// One blocking down link (the first on the shortest route).
        link: LinkId,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::NoRoute { conn } => write!(f, "no route for {conn}"),
            AllocError::InsufficientSlots {
                conn,
                needed,
                best_available,
            } => write!(
                f,
                "{conn} needs {needed} slots but at most {best_available} are free on any path"
            ),
            AllocError::LatencyUnmet {
                conn,
                required_ns,
                best_ns,
            } => write!(
                f,
                "{conn} requires {required_ns} ns but the best achievable bound is {best_ns} ns"
            ),
            AllocError::LinkDown { conn, link } => write!(
                f,
                "{conn} is severed: every candidate route traverses down link {link}"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Reusable working memory for the allocation kernels.
///
/// One admission asks for a candidate bitset, a working copy, a chosen
/// slot list and (on failure paths) a free-slot list. Batch allocation
/// amortises those over a whole pass; the online churn path cannot — a
/// million setup/teardown operations per second would mean a million
/// short-lived heap allocations per second. An `AllocScratch` owns all
/// of those buffers plus a pool of recycled [`Grant`]s (returned by
/// [`Allocation::take_grant`] on teardown), so the steady-state churn
/// loop of [`Allocator::admit`] runs allocation-free: every buffer a
/// setup needs is one a previous teardown gave back.
#[derive(Debug, Default)]
pub struct AllocScratch {
    /// Candidate injection slots free on every link (rotate-and-AND).
    cand: Option<SlotMask>,
    /// Working copy for the selection kernels.
    work: Option<SlotMask>,
    /// Chosen injection slots; swapped into the committed grant.
    chosen: Vec<u32>,
    /// Free-slot list materialised only on failure paths.
    all_free: Vec<u32>,
    /// Candidate order under spare-capacity steering: `(bottleneck free
    /// slots, candidate index)` pairs, rebuilt per admission.
    route_order: Vec<(u32, u32)>,
    /// Recycled grants whose buffers the next admission reuses.
    spare: Vec<Grant>,
}

/// Upper bound on pooled grants: enough that a use-case switch closing a
/// whole application recycles every buffer, small enough that the pool
/// never holds more than a few KiB.
const SPARE_GRANTS_MAX: usize = 256;

impl AllocScratch {
    /// An empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        AllocScratch::default()
    }

    /// Returns the bitset pair sized for `size`-slot tables, reallocating
    /// only when the table size changes (i.e. never, on one platform).
    fn masks(&mut self, size: u32) -> (&mut SlotMask, &mut SlotMask) {
        if self.cand.as_ref().map(SlotMask::size) != Some(size) {
            self.cand = Some(SlotMask::new_full(size));
            self.work = Some(SlotMask::new_empty(size));
        }
        (
            self.cand.as_mut().expect("just ensured"),
            self.work.as_mut().expect("just ensured"),
        )
    }

    /// Hands a torn-down grant's buffers back for the next admission.
    pub fn recycle(&mut self, mut grant: Grant) {
        if self.spare.len() < SPARE_GRANTS_MAX {
            grant.inject_slots.clear();
            grant.links.clear();
            grant.path.ports.clear();
            self.spare.push(grant);
        }
    }

    /// How many recycled grants are pooled (for tests and diagnostics).
    #[must_use]
    pub fn pooled_grants(&self) -> usize {
        self.spare.len()
    }
}

/// Evidence that [`Allocator::begin_round`] validated a
/// (spec, allocation, route cache) triple for a batched admission round.
///
/// Holds the platform snapshot the round was opened under so debug
/// builds can catch a caller that swaps the allocation mid-round; it
/// carries no resources and rounds need no explicit close.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionRound {
    table_size: u32,
    /// Grant-storage bound at round start: every id of the round's spec
    /// fits below it, so per-request growth checks can be skipped.
    conn_bound: usize,
}

/// How an admission orders the candidate routes it tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Steering {
    /// The route provider's native order: dimension-ordered routes
    /// first, then detours — shortest paths get first pick. This is the
    /// historical behaviour and the byte-stable default.
    #[default]
    ShortestFirst,
    /// Spare-capacity steering: candidates are scored by the *bottleneck*
    /// free-slot count along the route (the minimum
    /// [`free_count`](crate::SlotTable::free_count) over its links) and
    /// tried fullest-bottleneck-first, so admission biases away from
    /// near-full links and a single link failure displaces fewer grants.
    /// Ties break on the provider's candidate index, keeping the order —
    /// and therefore every grant — replay-deterministic.
    SpareCapacity,
}

/// Configuration of the allocation heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocator {
    /// Maximum number of candidate paths tried per connection.
    pub max_paths: usize,
    /// Whether extra slots may be added beyond the bandwidth minimum to
    /// meet latency requirements.
    pub latency_aware: bool,
    /// Phase salts tried in turn: each failed pass is retried from scratch
    /// with the next salt, changing how slot phases are staggered across
    /// connections (a cheap deterministic rip-up-and-retry).
    pub phase_salts: &'static [u32],
    /// Candidate-ordering mode; [`Steering::ShortestFirst`] preserves
    /// the historical grants bit-for-bit.
    pub steering: Steering,
}

impl Allocator {
    /// The default heuristic: up to 12 candidate paths, latency-aware,
    /// with four phase-salt retries, shortest-first candidate order.
    #[must_use]
    pub fn new() -> Self {
        Allocator {
            max_paths: 12,
            latency_aware: true,
            phase_salts: &[13, 7, 29, 47],
            steering: Steering::ShortestFirst,
        }
    }

    /// Allocates every connection of `spec`.
    ///
    /// Connections are served hardest-first (most slots needed, then
    /// tightest latency), each greedily choosing the candidate path and
    /// evenly-spread slot set that satisfies its contract. A pass that
    /// fails on some connection is retried with that connection promoted
    /// to the front of the order (rip-up-and-retry), and each phase salt
    /// restarts the promotion list from scratch.
    ///
    /// # Errors
    ///
    /// Returns the first [`AllocError`] encountered; the paper's position
    /// is that an unallocatable use case is a design-time failure, so no
    /// partial allocation is returned.
    pub fn allocate(&self, spec: &SystemSpec) -> Result<Allocation, AllocError> {
        let mut routes = RouteCache::new(spec.topology(), self.max_paths);
        self.allocate_with_cache(spec, &mut routes)
    }

    /// The phase-salt retry sequence, with the default fallback when the
    /// configured list is empty — the single source of truth shared by
    /// batch allocation, reconfiguration and online admission.
    pub(crate) fn salts(&self) -> &[u32] {
        if self.phase_salts.is_empty() {
            &[13]
        } else {
            self.phase_salts
        }
    }

    /// [`allocate`](Self::allocate) with a caller-supplied
    /// [`RouteProvider`], so repeated allocations over the same topology
    /// (e.g. a design-space sweep, or re-allocation under churn) skip
    /// route enumeration entirely after the first run. Grants are
    /// bit-for-bit independent of the provider implementation.
    ///
    /// # Errors
    ///
    /// See [`allocate`](Self::allocate).
    ///
    /// # Panics
    ///
    /// Panics if `routes` was built with a different `max_paths` bound
    /// than this allocator uses (the cached candidate lists would differ).
    pub fn allocate_with_cache<R: RouteProvider + ?Sized>(
        &self,
        spec: &SystemSpec,
        routes: &mut R,
    ) -> Result<Allocation, AllocError> {
        assert_eq!(
            routes.max_paths(),
            self.max_paths,
            "route cache was built for a different max_paths bound"
        );
        let mut scratch = AllocScratch::new();
        let mut last_err = None;
        for &salt in self.salts() {
            // Deterministic rip-up-and-retry: a pass failing on connection
            // X reruns with X served first (before the heuristic order),
            // so X picks its slots while the tables are still unfragmented.
            let mut promoted: Vec<ConnId> = Vec::new();
            loop {
                match self.allocate_pass(spec, salt, &promoted, routes, &mut scratch) {
                    Ok(a) => return Ok(a),
                    Err(e) => {
                        let failed = match &e {
                            AllocError::NoRoute { conn }
                            | AllocError::InsufficientSlots { conn, .. }
                            | AllocError::LatencyUnmet { conn, .. }
                            | AllocError::LinkDown { conn, .. } => *conn,
                        };
                        let give_up =
                            matches!(e, AllocError::NoRoute { .. } | AllocError::LinkDown { .. })
                                || promoted.contains(&failed)
                                || promoted.len() >= 8;
                        last_err = Some(e);
                        if give_up {
                            break;
                        }
                        promoted.insert(0, failed);
                    }
                }
            }
        }
        Err(last_err.expect("at least one pass attempted"))
    }

    fn allocate_pass<R: RouteProvider + ?Sized>(
        &self,
        spec: &SystemSpec,
        salt: u32,
        promoted: &[ConnId],
        routes: &mut R,
        scratch: &mut AllocScratch,
    ) -> Result<Allocation, AllocError> {
        let mut alloc = Allocation::empty(spec);

        // Hardest connections first: the difficulty estimate is the slot
        // count the grant will end up with — the bandwidth minimum or, for
        // tight deadlines, the count forced by the required injection gap
        // (estimated over the shortest route's pipeline delay). Promoted
        // connections (from failed passes) go first regardless; a boolean
        // mask keeps the exclusion O(1) per connection, and the cached key
        // keeps `estimate_slots` at one evaluation per connection instead
        // of one per comparison.
        let mut is_promoted = vec![false; spec.conn_id_bound()];
        for p in promoted {
            is_promoted[p.index()] = true;
        }
        let mut order: Vec<ConnId> = spec
            .connections()
            .iter()
            .map(|c| c.id)
            .filter(|id| !is_promoted[id.index()])
            .collect();
        admission_order(spec, &mut order);

        for &conn in promoted.iter().chain(order.iter()) {
            self.allocate_one(spec, &mut alloc, conn, salt, routes, scratch)?;
        }
        Ok(alloc)
    }

    /// Admits a single ungranted connection into a live allocation — the
    /// setup half of the online reconfiguration hot path.
    ///
    /// Semantically identical to
    /// [`extend_with_cache`](Self::extend_with_cache) with a one-element
    /// list, but shaped for sustained churn: no admission-order sort, no
    /// per-call allocation (all working memory comes from `scratch`,
    /// including recycled grant buffers), and the phase-salt retries run
    /// inline. Existing grants are never touched (the paper's
    /// undisturbed-service model); on failure the allocation is exactly
    /// as it was.
    ///
    /// Equivalent to [`begin_round`](Self::begin_round) followed by one
    /// [`admit_in_round`](Self::admit_in_round) — callers admitting a
    /// whole burst hoist the round setup instead of paying it per call.
    ///
    /// # Errors
    ///
    /// Returns the last [`AllocError`] if no phase salt finds a grant.
    ///
    /// # Panics
    ///
    /// Panics if `conn` already holds a grant, or if `alloc`/`routes`
    /// were built for a different table size / `max_paths` bound.
    pub fn admit<R: RouteProvider + ?Sized>(
        &self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        conn: ConnId,
        routes: &mut R,
        scratch: &mut AllocScratch,
    ) -> Result<(), AllocError> {
        let round = self.begin_round(spec, alloc, routes);
        self.admit_in_round(&round, spec, alloc, conn, routes, scratch)
    }

    /// Opens a batched admission round: validates once that `spec`,
    /// `alloc` and `routes` describe the same platform and grows the
    /// per-connection grant storage to cover `spec`'s ids, returning a
    /// token that [`admit_in_round`](Self::admit_in_round) requires.
    ///
    /// The point is amortisation: the validation — in particular the
    /// grant-storage capacity check, which scans `spec`'s connection list
    /// — is O(connections), so paying it per *request* (as
    /// [`admit`](Self::admit) does) dominates the cost of admitting one
    /// connection on large pools. A burst of independent requests pays it
    /// once here and then runs each admission O(Δ).
    ///
    /// The token is only evidence that the checks ran; callers must keep
    /// using the same `spec`/`alloc`/`routes` triple for every
    /// [`admit_in_round`](Self::admit_in_round) of the round (the round
    /// re-checks this in debug builds).
    ///
    /// # Panics
    ///
    /// Panics if `alloc` or `routes` were built for a different table
    /// size / per-hop shift / `max_paths` bound than `spec` and this
    /// allocator use.
    #[must_use]
    pub fn begin_round<R: RouteProvider + ?Sized>(
        &self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        routes: &R,
    ) -> AdmissionRound {
        alloc.assert_same_platform(spec);
        assert_eq!(
            routes.max_paths(),
            self.max_paths,
            "route cache was built for a different max_paths bound"
        );
        alloc.grow_for(spec);
        AdmissionRound {
            table_size: alloc.table_size,
            conn_bound: alloc.grants.len(),
        }
    }

    /// [`admit`](Self::admit) with the per-round validation already paid
    /// by [`begin_round`](Self::begin_round): the per-request work is
    /// exactly the salt-retried admission kernel, O(Δ) in the candidate
    /// paths' slot words.
    ///
    /// # Errors
    ///
    /// Returns the last [`AllocError`] if no phase salt finds a grant;
    /// `alloc` is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `conn` already holds a grant.
    pub fn admit_in_round<R: RouteProvider + ?Sized>(
        &self,
        round: &AdmissionRound,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        conn: ConnId,
        routes: &mut R,
        scratch: &mut AllocScratch,
    ) -> Result<(), AllocError> {
        debug_assert_eq!(
            round.table_size, alloc.table_size,
            "round begun for a different allocation"
        );
        debug_assert!(
            conn.index() < round.conn_bound && alloc.grants.len() >= round.conn_bound,
            "round begun for a different spec/allocation pair"
        );
        assert!(
            alloc.grant(conn).is_none(),
            "{conn} already holds a grant; release it before re-allocating"
        );
        let mut last_err = None;
        for &salt in self.salts() {
            match self.allocate_one(spec, alloc, conn, salt, routes, scratch) {
                Ok(()) => return Ok(()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one salt attempted"))
    }

    pub(crate) fn allocate_one<R: RouteProvider + ?Sized>(
        &self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        conn: ConnId,
        salt: u32,
        routes: &mut R,
        scratch: &mut AllocScratch,
    ) -> Result<(), AllocError> {
        let cfg = spec.config();
        let c = spec.connection(conn);
        let src_ni = spec.ip_ni(c.src);
        let dst_ni = spec.ip_ni(c.dst);
        let needed = cfg.slots_for(c.bandwidth).max(1);
        let size = alloc.table_size;
        // The latency contract is per flit (see worst_case_latency_cycles).
        let m = 1;

        let mut best_available = 0u32;
        let mut best_latency_cycles = u64::MAX;
        let latency_budget_cycles = (c.max_latency_ns as f64 / cfg.cycle_ns()).floor() as u64;
        let shift = cfg.slots_per_hop();

        // Working memory from the caller's scratch, reused across
        // candidate paths *and* across calls: the bitset of injection
        // slots free on every link, a working copy for the selection
        // kernels, the chosen-slot buffer, a slot list materialised only
        // on failure paths, and the recycled-grant pool.
        scratch.masks(size);
        let AllocScratch {
            cand,
            work,
            chosen,
            all_free,
            route_order,
            spare,
        } = scratch;
        let cand = cand.as_mut().expect("masks() sized the scratch");
        let work = work.as_mut().expect("masks() sized the scratch");

        // Spare-capacity steering scores every (healthy) candidate by the
        // bottleneck free-slot count along its route and tries the widest
        // bottleneck first; the provider's candidate index breaks ties,
        // so the order — and every grant — stays replay-deterministic.
        // The default shortest-first mode skips this pass entirely and is
        // bit-for-bit the historical behaviour.
        let steered = self.steering == Steering::SpareCapacity;
        if steered {
            route_order.clear();
            let mut i = 0usize;
            while let Some(route) = routes.candidate(spec.topology(), src_ni, dst_ni, i) {
                let bottleneck = route
                    .links
                    .iter()
                    .map(|&l| alloc.link_tables[l.index()].free_count())
                    .min()
                    .unwrap_or(0);
                route_order.push((bottleneck, i as u32));
                i += 1;
            }
            route_order.sort_unstable_by_key(|&(free, i)| (core::cmp::Reverse(free), i));
        }

        // Candidates are pulled from the cache one index at a time, so the
        // expensive detour enumeration only runs for connections that
        // exhaust the dimension-ordered routes.
        let mut tried = 0usize;
        loop {
            let idx = if steered {
                match route_order.get(tried) {
                    Some(&(_, i)) => i as usize,
                    None => break,
                }
            } else {
                tried
            };
            let Some(route) = routes.candidate(spec.topology(), src_ni, dst_ni, idx) else {
                break;
            };
            tried += 1;
            let links = &route.links;
            // Injection slots whose shifted positions are free on every
            // link: the circular-rotate-and-AND kernel, O(links × size/64).
            cand.fill();
            for (i, &l) in links.iter().enumerate() {
                cand.and_rotated(
                    alloc.link_tables[l.index()].free_mask(),
                    (i as u32 * shift) % size,
                );
            }
            let free_count = cand.count();
            best_available = best_available.max(free_count);
            if free_count < needed {
                continue;
            }

            let pipeline = pipeline_cycles(cfg, route.path.link_count());
            let latency_of = |slots: &[u32]| {
                u64::from(worst_window(slots, size, m)) * u64::from(cfg.slot_cycles()) + pipeline
            };
            // Hypothetical best latency with *all* free slots taken, used
            // only when this path is rejected for latency.
            let latency_of_all = |all: &mut Vec<u32>| {
                all.clear();
                all.extend(cand.iter_ones());
                latency_of(all)
            };

            // The deadline allows an injection gap of at most `allowed_gap`
            // slots on this path. Cover the table with that gap first (the
            // latency-critical part), then top up for bandwidth.
            let wait_cycles = latency_budget_cycles.saturating_sub(pipeline);
            let allowed_gap = (wait_cycles / u64::from(cfg.slot_cycles())) as u32;
            if self.latency_aware && allowed_gap == 0 {
                // Even an immediately-due slot would miss the deadline on
                // this path; record the hypothetical best and move on.
                best_latency_cycles = best_latency_cycles.min(latency_of_all(all_free));
                continue;
            }

            if self.latency_aware && allowed_gap < size {
                if cover_with_gap(cand, allowed_gap, size, chosen) {
                    work.copy_from(cand);
                    for &s in chosen.iter() {
                        work.clear(s);
                    }
                } else {
                    best_latency_cycles = best_latency_cycles.min(latency_of_all(all_free));
                    continue;
                }
            } else {
                // No latency pressure: stagger the spread per connection so
                // unrelated connections don't pile onto the same phase.
                let phase = (conn.index() as u32).wrapping_mul(salt) % size;
                work.copy_from(cand);
                spread_selection(work, needed, size, phase, chosen);
            }

            // Top up to the bandwidth minimum, filling the largest gaps
            // (`work` holds the free slots not yet chosen).
            while (chosen.len() as u32) < needed {
                match best_gap_filler(chosen, work, size) {
                    Some(extra) => {
                        work.clear(extra);
                        chosen.push(extra);
                        chosen.sort_unstable();
                    }
                    None => break,
                }
            }
            if (chosen.len() as u32) < needed {
                continue;
            }

            let achieved = latency_of(chosen);
            best_latency_cycles = best_latency_cycles.min(achieved);
            if achieved > latency_budget_cycles {
                continue;
            }

            // Commit, recycling a torn-down grant's buffers when the pool
            // has one (clone_from / swap reuse existing capacity, so the
            // steady-state churn loop allocates nothing).
            for &s in chosen.iter() {
                for (i, &l) in links.iter().enumerate() {
                    alloc.link_tables[l.index()]
                        .reserve(s + i as u32 * shift, conn)
                        .expect("slot was checked free");
                }
            }
            let mut grant = spare.pop().unwrap_or_else(|| Grant {
                conn,
                path: Path {
                    src: src_ni,
                    dst: dst_ni,
                    ports: Vec::new(),
                },
                inject_slots: Vec::new(),
                links: Vec::new(),
            });
            grant.conn = conn;
            grant.path.src = route.path.src;
            grant.path.dst = route.path.dst;
            grant.path.ports.clone_from(&route.path.ports);
            grant.links.clone_from(links);
            core::mem::swap(&mut grant.inject_slots, chosen);
            alloc.grants[conn.index()] = Some(grant);
            return Ok(());
        }

        if tried == 0 {
            if let Some(link) = routes.blocking_fault(spec.topology(), src_ni, dst_ni) {
                return Err(AllocError::LinkDown { conn, link });
            }
            return Err(AllocError::NoRoute { conn });
        }
        if best_available < needed {
            Err(AllocError::InsufficientSlots {
                conn,
                needed,
                best_available,
            })
        } else {
            Err(AllocError::LatencyUnmet {
                conn,
                required_ns: c.max_latency_ns,
                best_ns: (best_latency_cycles as f64 * cfg.cycle_ns()).ceil() as u64,
            })
        }
    }
}

impl Default for Allocator {
    fn default() -> Self {
        Allocator::new()
    }
}

/// Convenience wrapper: [`Allocator::new`]`.allocate(spec)`.
///
/// # Errors
///
/// See [`Allocator::allocate`].
pub fn allocate(spec: &SystemSpec) -> Result<Allocation, AllocError> {
    Allocator::new().allocate(spec)
}

/// Picks `needed` slots from the set bits of `avail` into `out` (cleared
/// first) as close as possible to an ideal even spread over the table,
/// anchored at `phase`, clearing each pick from `avail` (on return,
/// `avail` holds the unchosen slots).
///
/// Each pick is a word-level nearest-set-bit scan ([`SlotMask::nearest_one`]
/// breaks distance ties towards the smaller slot, matching the original
/// first-minimum scan over an ascending free list), so the kernel runs in
/// O(needed × size/64) with no inner-loop allocation — the original
/// scanned the whole free list and a `chosen.contains` per candidate,
/// O(needed² × free).
fn spread_selection(avail: &mut SlotMask, needed: u32, size: u32, phase: u32, out: &mut Vec<u32>) {
    debug_assert!(avail.count() >= needed);
    out.clear();
    for i in 0..needed {
        let ideal = (phase + (u64::from(i) * u64::from(size) / u64::from(needed)) as u32) % size;
        if let Some(s) = avail.nearest_one(ideal) {
            out.push(s);
            avail.clear(s);
        }
    }
    out.sort_unstable();
}

/// Chooses a minimal set of slots from the set bits of `free` whose
/// circular gaps never exceed `gap`, writing it into `out` (cleared
/// first) and returning whether a cover exists.
///
/// Classic circular greedy cover: from a fixed start, repeatedly jump to
/// the farthest free slot within `gap`. A cover exists iff no circular gap
/// between consecutive free slots exceeds `gap` — checked up front with
/// one word-level scan — and in that case the greedy walk from the first
/// free slot always succeeds, which is exactly the cover the original
/// every-start search returned (it tried starts in ascending order and
/// the first start either succeeds or none do). Each jump is one
/// backwards bit scan, with no per-start retry loop and no inner-loop
/// allocation.
fn cover_with_gap(free: &SlotMask, gap: u32, size: u32, out: &mut Vec<u32>) -> bool {
    out.clear();
    if gap == 0 {
        return false;
    }
    match free.max_circular_gap() {
        None => return false,
        Some(g) if g > gap => return false,
        Some(_) => {}
    }
    // Forward circular distance from a to b, in 1..=size (b == a -> size).
    let fwd = |a: u32, b: u32| (b + size - a - 1) % size + 1;
    let start = free.first_one().expect("non-empty: gap check passed");
    out.push(start);
    let mut cur = start;
    loop {
        // When the forward distance back to the start is within the
        // allowed gap, the circle is covered.
        if fwd(cur, start) <= gap {
            out.sort_unstable();
            return true;
        }
        // Jump to the farthest free slot within `gap` ahead: the first set
        // bit at or before `cur + gap`, scanning backwards. Because every
        // free-to-free gap is within `gap`, the scan always lands in
        // (cur, cur + gap]; because the distance back to start still
        // exceeds `gap`, it can never overshoot the start.
        let next = free
            .prev_one_circular((cur + gap) % size)
            .expect("free set is non-empty");
        debug_assert!(next != cur && fwd(cur, next) <= gap);
        out.push(next);
        cur = next;
    }
}

/// The slot from `avail` (free and not yet chosen) that best fills the
/// largest gap of `chosen`, if any.
///
/// Mirrors the original list-based kernel: the *last* largest gap wins
/// (matching `max_by_key` tie-breaking), and the nearest available slot to
/// that gap's midpoint is returned with ties to the smaller slot — but the
/// gap scan is allocation-free and the nearest-slot probe is a word scan.
fn best_gap_filler(chosen: &[u32], avail: &SlotMask, size: u32) -> Option<u32> {
    let Some(&first) = chosen.first() else {
        return avail.first_one();
    };
    // Largest circular gap of `chosen` (ascending); on ties the later gap
    // wins, as with `enumerate().max_by_key(gap)` over the gap list.
    let n = chosen.len();
    let mut best_start = 0u32;
    let mut best_len = 0u32;
    for i in 0..n {
        let len = if i + 1 < n {
            chosen[i + 1] - chosen[i]
        } else {
            size - chosen[i] + first
        };
        if len >= best_len {
            best_len = len;
            best_start = chosen[i];
        }
    }
    let target = (best_start + best_len / 2) % size;
    avail.nearest_one(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::config::NocConfig;
    use aelite_spec::ids::NiId;
    use aelite_spec::topology::{Endpoint, Topology};
    use aelite_spec::traffic::Bandwidth;

    /// Old-signature adapters for the kernel pin tests.
    fn spread(avail: &mut SlotMask, needed: u32, size: u32, phase: u32) -> Vec<u32> {
        let mut out = Vec::new();
        spread_selection(avail, needed, size, phase, &mut out);
        out
    }

    fn cover(free: &SlotMask, gap: u32, size: u32) -> Option<Vec<u32>> {
        let mut out = vec![99; 3]; // stale contents must not leak through
        cover_with_gap(free, gap, size, &mut out).then_some(out)
    }

    fn two_conn_spec() -> SystemSpec {
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("app");
        let a = b.add_ip_at(NiId::new(0));
        let z = b.add_ip_at(NiId::new(1));
        b.add_connection(app, a, z, Bandwidth::from_mbytes_per_sec(100), 500);
        b.add_connection(app, z, a, Bandwidth::from_mbytes_per_sec(200), 500);
        b.build()
    }

    #[test]
    fn allocates_simple_spec() {
        let spec = two_conn_spec();
        let alloc = allocate(&spec).unwrap();
        for c in spec.connections() {
            let grant = alloc.grant(c.id).unwrap();
            assert!(!grant.inject_slots.is_empty());
            assert_eq!(grant.links.len(), grant.path.link_count());
            // Bandwidth satisfied.
            assert!(
                alloc.allocated_bandwidth(&spec, c.id).bytes_per_sec()
                    >= c.bandwidth.bytes_per_sec()
            );
            // Latency satisfied.
            assert!(alloc.worst_case_latency_ns(&spec, c.id) <= c.max_latency_ns as f64);
        }
    }

    #[test]
    fn shifted_slots_are_reserved_on_every_link() {
        let spec = two_conn_spec();
        let alloc = allocate(&spec).unwrap();
        for grant in alloc.grants() {
            for &s in &grant.inject_slots {
                for (i, &l) in grant.links.iter().enumerate() {
                    assert_eq!(
                        alloc.link_table(l).owner(s + i as u32),
                        Some(grant.conn),
                        "link {i} of {} at slot {s}",
                        grant.conn
                    );
                }
            }
        }
    }

    #[test]
    fn opposite_directions_do_not_conflict() {
        // Both connections traverse the same router pair in opposite
        // directions — different links, so tables must be independent.
        let spec = two_conn_spec();
        let alloc = allocate(&spec).unwrap();
        let g0 = alloc.grant(ConnId::new(0)).unwrap();
        let g1 = alloc.grant(ConnId::new(1)).unwrap();
        for l0 in &g0.links {
            assert!(!g1.links.contains(l0));
        }
    }

    #[test]
    fn sharing_a_link_forces_disjoint_slots() {
        // Two connections from the same NI must share the ingress link.
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("app");
        let a = b.add_ip_at(NiId::new(0));
        let z1 = b.add_ip_at(NiId::new(1));
        let z2 = b.add_ip_at(NiId::new(1));
        b.add_connection(app, a, z1, Bandwidth::from_mbytes_per_sec(150), 500);
        b.add_connection(app, a, z2, Bandwidth::from_mbytes_per_sec(150), 500);
        let spec = b.build();
        let alloc = allocate(&spec).unwrap();
        let s0 = alloc.grant(ConnId::new(0)).unwrap().inject_slots.clone();
        let s1 = alloc.grant(ConnId::new(1)).unwrap().inject_slots.clone();
        for s in &s0 {
            assert!(!s1.contains(s), "slot {s} double-booked on shared link");
        }
    }

    #[test]
    fn oversubscription_fails_with_insufficient_slots() {
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("app");
        let a = b.add_ip_at(NiId::new(0));
        let z = b.add_ip_at(NiId::new(1));
        // Link payload capacity is ~1.33 GB/s; ask for 2x that.
        b.add_connection(app, a, z, Bandwidth::from_mbytes_per_sec(1500), 10_000);
        b.add_connection(app, a, z, Bandwidth::from_mbytes_per_sec(1500), 10_000);
        let spec = b.build();
        match allocate(&spec) {
            Err(AllocError::InsufficientSlots { .. }) => {}
            other => panic!("expected InsufficientSlots, got {other:?}"),
        }
    }

    #[test]
    fn impossible_latency_fails_with_latency_unmet() {
        let topo = Topology::mesh(4, 3, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("app");
        let a = b.add_ip_at(NiId::new(0));
        let z = b.add_ip_at(NiId::new(11)); // opposite corner
                                            // 1 ns across 7 links is physically impossible.
        b.add_connection(app, a, z, Bandwidth::from_mbytes_per_sec(10), 1);
        let spec = b.build();
        match allocate(&spec) {
            Err(AllocError::LatencyUnmet { required_ns: 1, .. }) => {}
            other => panic!("expected LatencyUnmet, got {other:?}"),
        }
    }

    #[test]
    fn latency_aware_allocation_adds_slots() {
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("app");
        let a = b.add_ip_at(NiId::new(0));
        let z = b.add_ip_at(NiId::new(1));
        // 10 MB/s needs one slot, but a 60 ns deadline needs slots spread
        // much more tightly than one per 32-slot revolution (192 cycles).
        b.add_connection(app, a, z, Bandwidth::from_mbytes_per_sec(10), 60);
        let spec = b.build();
        let alloc = allocate(&spec).unwrap();
        let grant = alloc.grant(ConnId::new(0)).unwrap();
        assert!(
            grant.inject_slots.len() > 1,
            "expected extra slots for latency, got {:?}",
            grant.inject_slots
        );
        assert!(alloc.worst_case_latency_ns(&spec, ConnId::new(0)) <= 60.0);
    }

    #[test]
    fn paper_workload_allocates_at_500mhz() {
        let spec = aelite_spec::generate::paper_workload(42);
        let alloc = allocate(&spec).expect("paper workload must be allocatable");
        assert_eq!(alloc.grants().count(), 200);
        for c in spec.connections() {
            assert!(
                alloc.allocated_bandwidth(&spec, c.id).bytes_per_sec()
                    >= c.bandwidth.bytes_per_sec()
            );
            assert!(
                alloc.worst_case_latency_ns(&spec, c.id) <= c.max_latency_ns as f64,
                "{}: {} > {}",
                c.id,
                alloc.worst_case_latency_ns(&spec, c.id),
                c.max_latency_ns
            );
        }
        assert!(alloc.peak_utilisation() <= 1.0);
        assert!(alloc.mean_loaded_utilisation() > 0.0);
    }

    #[test]
    fn spare_capacity_steering_is_valid_and_deterministic() {
        let spec = aelite_spec::generate::paper_workload(42);
        let steered = Allocator {
            steering: Steering::SpareCapacity,
            ..Allocator::new()
        };
        let a = steered.allocate(&spec).expect("steered allocation");
        let b = steered.allocate(&spec).expect("steered allocation");
        crate::validate_allocation(&spec, &a).expect("steered grants valid");
        // Replay-deterministic: the scored order has a total tiebreak.
        for c in spec.connections() {
            assert_eq!(
                a.grant(c.id).map(|g| (&g.links, &g.inject_slots)),
                b.grant(c.id).map(|g| (&g.links, &g.inject_slots)),
            );
            assert!(
                a.allocated_bandwidth(&spec, c.id).bytes_per_sec() >= c.bandwidth.bytes_per_sec()
            );
        }
        // The default mode is byte-stable: an explicit ShortestFirst
        // allocator is the plain allocator.
        assert_eq!(
            Allocator::new(),
            Allocator {
                steering: Steering::ShortestFirst,
                ..Allocator::new()
            }
        );
    }

    #[test]
    fn steering_routes_around_a_loaded_link() {
        // 2×2 mesh, one NI per router, one connection corner-to-corner:
        // the XY candidate crosses router 1, the YX candidate router 2.
        // Pre-loading the r0→r1 link must push the steered admission
        // onto the YX detour while shortest-first stays on XY.
        let topo = Topology::mesh(2, 2, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("app");
        let a = b.add_ip_at(NiId::new(0));
        let z = b.add_ip_at(NiId::new(3));
        b.add_connection(app, a, z, Bandwidth::from_mbytes_per_sec(50), 100_000);
        let spec = b.build();
        let conn = spec.connections()[0].id;

        let east = spec
            .topology()
            .links()
            .find(|&l| {
                let link = spec.topology().link(l);
                matches!(link.from, Endpoint::Router(r, _) if r.index() == 0)
                    && matches!(link.to, Endpoint::Router(r, _) if r.index() == 1)
            })
            .expect("2x2 mesh has an r0->r1 link");

        let mut scratch = AllocScratch::new();
        let load = ConnId::new(1); // phantom occupant of the east link
        for allocator in [
            Allocator::new(),
            Allocator {
                steering: Steering::SpareCapacity,
                ..Allocator::new()
            },
        ] {
            let mut alloc = Allocation::empty(&spec);
            for s in 0..alloc.table_size / 2 {
                alloc.link_tables[east.index()].reserve(s, load).unwrap();
            }
            let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
            allocator
                .admit(&spec, &mut alloc, conn, &mut routes, &mut scratch)
                .expect("plenty of capacity on either candidate");
            let grant = alloc.grant(conn).unwrap();
            let crosses_loaded = grant.links.contains(&east);
            assert_eq!(
                crosses_loaded,
                allocator.steering == Steering::ShortestFirst,
                "{:?} picked links {:?}",
                allocator.steering,
                grant.links
            );
        }
    }

    #[test]
    fn spread_selection_is_even_when_table_free() {
        let mut avail = SlotMask::new_full(32);
        let chosen = spread(&mut avail, 4, 32, 0);
        assert_eq!(chosen, vec![0, 8, 16, 24]);
        // The picks are consumed from the working mask.
        assert_eq!(avail.count(), 28);
        assert!(!avail.get(8));
        let mut avail = SlotMask::new_full(32);
        let staggered = spread(&mut avail, 4, 32, 5);
        assert_eq!(staggered, vec![5, 13, 21, 29]);
    }

    #[test]
    fn spread_selection_matches_first_minimum_scan() {
        // Pin the kernel against the original list-based selection: the
        // nearest free slot by circular distance, ties to the smaller
        // slot, each pick excluded from later rounds.
        fn reference(free: &[u32], needed: u32, size: u32, phase: u32) -> Vec<u32> {
            let mut chosen: Vec<u32> = Vec::new();
            for i in 0..needed {
                let ideal =
                    (phase + (u64::from(i) * u64::from(size) / u64::from(needed)) as u32) % size;
                let pick = free
                    .iter()
                    .copied()
                    .filter(|s| !chosen.contains(s))
                    .min_by_key(|&s| {
                        let d = s.abs_diff(ideal);
                        d.min(size - d)
                    });
                if let Some(s) = pick {
                    chosen.push(s);
                }
            }
            chosen.sort_unstable();
            chosen
        }
        for size in [8u32, 32, 64, 100] {
            let free: Vec<u32> = (0..size).filter(|s| (s * 17 + 1) % 5 < 3).collect();
            for needed in [1u32, 3, 7] {
                if (free.len() as u32) < needed {
                    // Callers only invoke the kernel with enough free slots.
                    continue;
                }
                for phase in [0u32, 5, size - 1] {
                    let mut avail = SlotMask::from_slots(size, &free);
                    assert_eq!(
                        spread(&mut avail, needed, size, phase),
                        reference(&free, needed, size, phase),
                        "size {size} needed {needed} phase {phase}"
                    );
                }
            }
        }
    }

    #[test]
    fn cover_with_gap_matches_every_start_search() {
        // Pin the kernel against the original try-every-start greedy.
        fn reference(free: &[u32], gap: u32, size: u32) -> Option<Vec<u32>> {
            if free.is_empty() || gap == 0 {
                return None;
            }
            let fwd = |a: u32, b: u32| (b + size - a - 1) % size + 1;
            'starts: for &start in free {
                let mut chosen = vec![start];
                let mut cur = start;
                loop {
                    if fwd(cur, start) <= gap {
                        chosen.sort_unstable();
                        return Some(chosen);
                    }
                    let next = free
                        .iter()
                        .copied()
                        .filter(|&f| f != cur && fwd(cur, f) <= gap)
                        .max_by_key(|&f| fwd(cur, f));
                    match next {
                        Some(f) => {
                            chosen.push(f);
                            cur = f;
                        }
                        None => continue 'starts,
                    }
                }
            }
            None
        }
        for size in [8u32, 32, 64, 100] {
            let free: Vec<u32> = (0..size).filter(|s| (s * 13 + 3) % 7 < 3).collect();
            let mask = SlotMask::from_slots(size, &free);
            for gap in [0u32, 1, 2, 5, size / 2, size - 1] {
                assert_eq!(
                    cover(&mask, gap, size),
                    reference(&free, gap, size),
                    "size {size} gap {gap}"
                );
            }
        }
        // Sparse sets where no cover exists.
        let mask = SlotMask::from_slots(64, &[0, 40]);
        assert_eq!(cover(&mask, 10, 64), None);
        assert_eq!(reference(&[0, 40], 10, 64), None);
    }

    #[test]
    fn admit_and_take_grant_roundtrip_without_disturbance() {
        let spec = aelite_spec::generate::paper_workload(7);
        let allocator = Allocator::new();
        let mut alloc = allocator.allocate(&spec).unwrap();
        let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
        let mut scratch = AllocScratch::new();
        let victim = spec.connections()[17].id;
        let others: Vec<Grant> = alloc
            .grants()
            .filter(|g| g.conn != victim)
            .cloned()
            .collect();

        // Teardown is O(Δ) and returns the grant for recycling.
        let taken = alloc.take_grant(victim).expect("was granted");
        assert_eq!(taken.conn, victim);
        assert!(alloc.grant(victim).is_none());
        assert!(alloc.take_grant(victim).is_none(), "second take is a no-op");
        let shift = spec.config().slots_per_hop();
        for &s in &taken.inject_slots {
            for (i, &l) in taken.links.iter().enumerate() {
                assert!(alloc.link_table(l).is_free(s + i as u32 * shift));
            }
        }
        scratch.recycle(taken);
        assert_eq!(scratch.pooled_grants(), 1);

        // Re-admission reuses the pooled buffers and disturbs nobody.
        allocator
            .admit(&spec, &mut alloc, victim, &mut routes, &mut scratch)
            .expect("freed resources suffice");
        assert_eq!(scratch.pooled_grants(), 0, "pooled grant was consumed");
        assert!(alloc.grant(victim).is_some());
        for g in others {
            assert_eq!(alloc.grant(g.conn).unwrap(), &g, "{} moved", g.conn);
        }
        crate::validate::validate(&spec, &alloc).expect("still consistent");
    }

    #[test]
    #[should_panic(expected = "already holds a grant")]
    fn admit_rejects_granted_connection() {
        let spec = two_conn_spec();
        let allocator = Allocator::new();
        let mut alloc = allocator.allocate(&spec).unwrap();
        let mut routes = RouteCache::new(spec.topology(), allocator.max_paths);
        let mut scratch = AllocScratch::new();
        let _ = allocator.admit(
            &spec,
            &mut alloc,
            spec.connections()[0].id,
            &mut routes,
            &mut scratch,
        );
    }

    #[test]
    fn flits_per_message_rounds_up() {
        let spec = two_conn_spec();
        // Payload per flit = 2 words * 4 bytes = 8 bytes.
        assert_eq!(flits_per_message(&spec, 1), 1);
        assert_eq!(flits_per_message(&spec, 8), 1);
        assert_eq!(flits_per_message(&spec, 9), 2);
        assert_eq!(flits_per_message(&spec, 64), 8);
    }

    #[test]
    fn alloc_error_display() {
        let e = AllocError::InsufficientSlots {
            conn: ConnId::new(3),
            needed: 5,
            best_available: 2,
        };
        let s = e.to_string();
        assert!(
            s.contains("c3") && s.contains('5') && s.contains('2'),
            "{s}"
        );
    }
}
