//! Undisrupted reconfiguration: adding and removing applications at run
//! time without touching anyone else's resources.
//!
//! The paper reuses the Æthereal flow's reconfiguration capability
//! (\[16\], "Undisrupted quality-of-service during reconfiguration of
//! multiple applications in networks on chip"): because connections are
//! completely isolated, tearing one application down and setting another
//! up only ever touches the slots of the connections involved. This
//! module provides exactly that:
//!
//! * [`release`] — frees a connection's slots on every link of its path;
//! * [`Allocator::extend`] — allocates additional connections into an
//!   existing allocation, leaving every existing grant untouched.
//!
//! The undisrupted-QoS property is structural: grants are never moved, so
//! the TDM schedule of every remaining connection is bit-identical before,
//! during and after a reconfiguration — tested below and at system level.

use crate::allocate::{AllocError, Allocation, Allocator};
use crate::route_cache::{RouteCache, RouteProvider};
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::ConnId;

/// Releases the grant of `conn`, freeing its slots on every link.
///
/// Returns `false` if the connection held no grant (already released or
/// never allocated) — an idempotent no-op.
pub fn release(alloc: &mut Allocation, conn: ConnId) -> bool {
    alloc.release_grant(conn)
}

impl Allocator {
    /// Allocates `new_conns` (connections of `spec` that hold no grant
    /// yet) into `alloc`, leaving all existing grants untouched.
    ///
    /// Connections are served hardest-first, like the initial allocation.
    ///
    /// # Errors
    ///
    /// Returns the first [`AllocError`] if some new connection cannot be
    /// satisfied with the remaining resources. Connections allocated
    /// before the failure keep their grants (release them to roll back).
    ///
    /// # Panics
    ///
    /// Panics if a listed connection already holds a grant (reconfiguring
    /// an existing connection must release it first), or if `alloc` was
    /// produced for a different table size than `spec` uses.
    pub fn extend(
        &self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        new_conns: &[ConnId],
    ) -> Result<(), AllocError> {
        let mut routes = RouteCache::new(spec.topology(), self.max_paths);
        self.extend_with_cache(spec, alloc, new_conns, &mut routes)
    }

    /// [`extend`](Self::extend) with a caller-supplied [`RouteProvider`],
    /// so a long-running reconfiguration flow (repeated application swaps
    /// on one platform) enumerates each NI pair's routes at most once
    /// across its whole lifetime.
    ///
    /// # Errors
    ///
    /// See [`extend`](Self::extend).
    ///
    /// # Panics
    ///
    /// As [`extend`](Self::extend); additionally panics if `routes` was
    /// built with a different `max_paths` bound than this allocator uses.
    pub fn extend_with_cache<R: RouteProvider + ?Sized>(
        &self,
        spec: &SystemSpec,
        alloc: &mut Allocation,
        new_conns: &[ConnId],
        routes: &mut R,
    ) -> Result<(), AllocError> {
        alloc.assert_same_platform(spec);
        assert_eq!(
            routes.max_paths(),
            self.max_paths,
            "route cache was built for a different max_paths bound"
        );
        for &c in new_conns {
            assert!(
                alloc.grant(c).is_none(),
                "{c} already holds a grant; release it before re-allocating"
            );
        }
        alloc.grow_for(spec);

        let mut order: Vec<ConnId> = new_conns.to_vec();
        crate::allocate::admission_order(spec, &mut order);
        let mut scratch = crate::allocate::AllocScratch::new();
        for conn in order {
            let mut last_err = None;
            let mut done = false;
            for &salt in self.salts() {
                match self.allocate_one(spec, alloc, conn, salt, routes, &mut scratch) {
                    Ok(()) => {
                        done = true;
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            if !done {
                return Err(last_err.expect("at least one salt attempted"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::{allocate, Grant};
    use crate::validate::validate;
    use aelite_spec::app::SystemSpecBuilder;
    use aelite_spec::config::NocConfig;
    use aelite_spec::generate::paper_workload;
    use aelite_spec::ids::{AppId, NiId};
    use aelite_spec::topology::Topology;
    use aelite_spec::traffic::Bandwidth;

    #[test]
    fn release_is_idempotent_and_frees_slots() {
        let spec = paper_workload(1);
        let mut alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let grant = alloc.grant(conn).unwrap().clone();
        assert!(release(&mut alloc, conn));
        assert!(alloc.grant(conn).is_none());
        assert!(!release(&mut alloc, conn), "second release is a no-op");
        // Every slot the grant held is free again.
        let shift = spec.config().slots_per_hop();
        for &s in &grant.inject_slots {
            for (i, &l) in grant.links.iter().enumerate() {
                assert!(alloc.link_table(l).is_free(s + i as u32 * shift));
            }
        }
    }

    #[test]
    fn reconfiguration_leaves_other_grants_untouched() {
        // Remove application 1, add a new application's connections, and
        // verify every other grant is bit-identical — undisrupted QoS.
        let spec = paper_workload(42);
        let mut alloc = allocate(&spec).unwrap();
        let keep: Vec<Grant> = spec
            .connections()
            .iter()
            .filter(|c| c.app != AppId::new(1))
            .map(|c| alloc.grant(c.id).unwrap().clone())
            .collect();

        // Tear down app 1.
        let removed: Vec<ConnId> = spec.app_connections(AppId::new(1)).map(|c| c.id).collect();
        for c in &removed {
            assert!(release(&mut alloc, *c));
        }

        // Re-allocate the same connections (a stand-in for a new use
        // case occupying the freed resources).
        Allocator::new()
            .extend(&spec, &mut alloc, &removed)
            .expect("freed resources suffice");

        for g in keep {
            assert_eq!(alloc.grant(g.conn).unwrap(), &g, "{} moved", g.conn);
        }
        validate(&spec, &alloc).expect("final allocation is consistent");
    }

    #[test]
    fn extend_allocates_new_connection_into_live_system() {
        let topo = Topology::mesh(2, 2, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("base");
        let ips: Vec<_> = (0..4).map(|i| b.add_ip_at(NiId::new(i))).collect();
        b.add_connection(
            app,
            ips[0],
            ips[3],
            Bandwidth::from_mbytes_per_sec(100),
            500,
        );
        let base_spec = b.build();
        let mut alloc = allocate(&base_spec).unwrap();

        // Later, a new application arrives: rebuild the spec with one
        // extra connection (ids of existing connections are stable).
        let topo = Topology::mesh(2, 2, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("base");
        let app2 = b.add_app("late arrival");
        let ips: Vec<_> = (0..4).map(|i| b.add_ip_at(NiId::new(i))).collect();
        let c0 = b.add_connection(
            app,
            ips[0],
            ips[3],
            Bandwidth::from_mbytes_per_sec(100),
            500,
        );
        let c1 = b.add_connection(
            app2,
            ips[1],
            ips[2],
            Bandwidth::from_mbytes_per_sec(80),
            500,
        );
        let spec2 = b.build();

        let before = alloc.grant(c0).unwrap().clone();
        Allocator::new()
            .extend(&spec2, &mut alloc, &[c1])
            .expect("capacity available");
        assert_eq!(alloc.grant(c0).unwrap(), &before, "existing grant moved");
        assert!(alloc.grant(c1).is_some());
        validate(&spec2, &alloc).expect("extended allocation validates");
    }

    #[test]
    #[should_panic(expected = "already holds a grant")]
    fn extending_a_granted_connection_panics() {
        let spec = paper_workload(1);
        let mut alloc = allocate(&spec).unwrap();
        let conn = spec.connections()[0].id;
        let _ = Allocator::new().extend(&spec, &mut alloc, &[conn]);
    }

    #[test]
    fn infeasible_extension_reports_error() {
        let topo = Topology::mesh(2, 1, 1);
        let mut b = SystemSpecBuilder::new(topo, NocConfig::paper_default());
        let app = b.add_app("a");
        let s = b.add_ip_at(NiId::new(0));
        let d = b.add_ip_at(NiId::new(1));
        // Fills the link almost completely...
        let _c0 = b.add_connection(app, s, d, Bandwidth::from_mbytes_per_sec(1_200), 10_000);
        // ... so this one cannot fit afterwards.
        let c1 = b.add_connection(app, s, d, Bandwidth::from_mbytes_per_sec(400), 10_000);
        let spec = b.build();
        let reduced = {
            // Allocate only c0 first.
            let only = spec.restricted_to(&[AppId::new(0)]);
            let _ = only;
            let mut alloc = crate::allocate::Allocation::empty(&spec);
            Allocator::new()
                .extend(&spec, &mut alloc, &[spec.connections()[0].id])
                .expect("c0 fits alone");
            alloc
        };
        let mut alloc = reduced;
        let err = Allocator::new().extend(&spec, &mut alloc, &[c1]);
        assert!(err.is_err(), "expected failure, got {err:?}");
    }
}
