//! Memoized, lazily materialized route enumeration for the allocator.
//!
//! [`route_candidates`](crate::path::route_candidates) runs a BFS plus a
//! bounded DFS per call — by far the most expensive part of allocating one
//! connection. The allocator, however, asks for the same (source NI,
//! destination NI) pair over and over: once per rip-up retry, once per
//! phase salt, and again for every connection sharing the pair, and the
//! answer never changes because candidate routes depend only on the
//! topology. [`RouteCache`] computes each pair's candidates — and each
//! path's link list — at most once, keyed by a dense
//! `src × ni_count + dst` index.
//!
//! On top of memoization the cache materializes candidates *lazily*, in
//! the two stages [`route_candidates`](crate::path::route_candidates) already has: the dimension-ordered
//! XY/YX routes are computed on first touch, and the DFS detour
//! enumeration runs only if a caller actually walks past them. The
//! allocator commits to the first feasible candidate, which under light
//! contention is almost always XY or YX, so most pairs never pay for the
//! DFS at all — while the candidate *sequence* observed by callers is
//! identical to an eager enumeration.

use crate::path::{detour_candidates, initial_candidates, Path};
use aelite_spec::ids::{LinkId, NiId};
use aelite_spec::topology::Topology;

/// A candidate route with its precomputed link list.
#[derive(Debug, Clone)]
pub struct CachedRoute {
    /// The source route.
    pub path: Path,
    /// The links of [`path`](Self::path) in traversal order (the NI
    /// ingress link first).
    pub links: Vec<LinkId>,
}

/// How much of a pair's candidate list has been materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum EntryState {
    /// Nothing computed yet.
    #[default]
    Untouched,
    /// XY/YX stage done; the DFS detour stage still pending.
    Partial,
    /// The full candidate list is present.
    Complete,
}

#[derive(Debug, Clone, Default)]
struct Entry {
    routes: Vec<CachedRoute>,
    state: EntryState,
}

/// Memoizes [`route_candidates`](crate::path::route_candidates) plus link lists per (src, dst) NI pair.
///
/// Reusable across every pass, salt, and reconfiguration step that shares
/// a topology and `max_paths` bound. Entries are filled lazily on first
/// use (and the expensive detour stage only on demand), so sparse traffic
/// patterns only ever pay for the pairs — and the path diversity — they
/// actually touch.
///
/// # Examples
///
/// ```
/// use aelite_alloc::route_cache::RouteCache;
/// use aelite_spec::ids::NiId;
/// use aelite_spec::topology::Topology;
///
/// let topo = Topology::mesh(2, 2, 1);
/// let mut cache = RouteCache::new(&topo, 4);
/// let routes = cache.candidates(&topo, NiId::new(0), NiId::new(3));
/// assert!(!routes.is_empty());
/// assert_eq!(routes[0].links.len(), routes[0].path.link_count());
/// ```
#[derive(Debug)]
pub struct RouteCache {
    max_paths: usize,
    ni_count: usize,
    router_count: usize,
    link_count: usize,
    entries: Vec<Entry>,
}

impl RouteCache {
    /// Creates an empty cache for `topo`, enumerating at most `max_paths`
    /// candidates per pair.
    #[must_use]
    pub fn new(topo: &Topology, max_paths: usize) -> Self {
        let ni_count = topo.ni_count();
        RouteCache {
            max_paths,
            ni_count,
            router_count: topo.router_count(),
            link_count: topo.link_count(),
            entries: vec![Entry::default(); ni_count * ni_count],
        }
    }

    /// The `max_paths` bound this cache was built with.
    #[must_use]
    pub fn max_paths(&self) -> usize {
        self.max_paths
    }

    /// Cached routes are only valid for the topology the cache was built
    /// for; reject anything whose shape (NI/router/link counts) differs.
    /// A distinct topology with identical counts cannot be detected — it
    /// is the caller's contract to keep one cache per topology.
    fn check_topology(&self, topo: &Topology, src: NiId, dst: NiId) {
        assert!(
            topo.ni_count() == self.ni_count
                && topo.router_count() == self.router_count
                && topo.link_count() == self.link_count,
            "topology shape changed; rebuild the route cache for it"
        );
        assert!(
            src.index() < self.ni_count && dst.index() < self.ni_count,
            "NI out of range for this cache; rebuild it for the new topology"
        );
    }

    fn pair_index(&self, src: NiId, dst: NiId) -> usize {
        src.index() * self.ni_count + dst.index()
    }

    fn materialize(topo: &Topology, paths: &[Path]) -> Vec<CachedRoute> {
        paths
            .iter()
            .map(|path| {
                let links = path
                    .links(topo)
                    .expect("route_candidates returns valid paths");
                CachedRoute {
                    path: path.clone(),
                    links,
                }
            })
            .collect()
    }

    /// Runs the XY/YX stage if the entry is untouched.
    fn ensure_initial(&mut self, topo: &Topology, src: NiId, dst: NiId, idx: usize) {
        if self.entries[idx].state != EntryState::Untouched {
            return;
        }
        let (paths, complete) = initial_candidates(topo, src, dst, self.max_paths);
        self.entries[idx] = Entry {
            routes: Self::materialize(topo, &paths),
            state: if complete {
                EntryState::Complete
            } else {
                EntryState::Partial
            },
        };
    }

    /// Runs the DFS detour stage if it is still pending.
    fn ensure_complete(&mut self, topo: &Topology, src: NiId, dst: NiId, idx: usize) {
        self.ensure_initial(topo, src, dst, idx);
        if self.entries[idx].state == EntryState::Complete {
            return;
        }
        let mut paths: Vec<Path> = self.entries[idx]
            .routes
            .iter()
            .map(|r| r.path.clone())
            .collect();
        let prefix = paths.len();
        detour_candidates(topo, src, dst, self.max_paths, &mut paths);
        let tail = Self::materialize(topo, &paths[prefix..]);
        let entry = &mut self.entries[idx];
        entry.routes.extend(tail);
        entry.state = EntryState::Complete;
    }

    /// The `i`-th candidate route from `src` to `dst` (shortest first), or
    /// `None` when fewer than `i + 1` candidates exist. Materializes the
    /// expensive detour stage only when `i` walks past the XY/YX routes.
    ///
    /// # Panics
    ///
    /// Panics if `topo`'s shape differs from the topology the cache was
    /// created for, or `src`/`dst` lie outside it (the cache must be
    /// rebuilt when the topology changes).
    pub fn candidate(
        &mut self,
        topo: &Topology,
        src: NiId,
        dst: NiId,
        i: usize,
    ) -> Option<&CachedRoute> {
        self.check_topology(topo, src, dst);
        let idx = self.pair_index(src, dst);
        self.ensure_initial(topo, src, dst, idx);
        if i >= self.entries[idx].routes.len() && self.entries[idx].state == EntryState::Partial {
            self.ensure_complete(topo, src, dst, idx);
        }
        self.entries[idx].routes.get(i)
    }

    /// The full candidate list from `src` to `dst`, shortest first,
    /// computing and memoizing it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `topo`'s shape differs from the topology the cache was
    /// created for, or `src`/`dst` lie outside it (the cache must be
    /// rebuilt when the topology changes).
    pub fn candidates(&mut self, topo: &Topology, src: NiId, dst: NiId) -> &[CachedRoute] {
        self.check_topology(topo, src, dst);
        let idx = self.pair_index(src, dst);
        self.ensure_complete(topo, src, dst, idx);
        &self.entries[idx].routes
    }

    /// How many (src, dst) pairs have been (at least partially) computed.
    #[must_use]
    pub fn cached_pairs(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state != EntryState::Untouched)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::route_candidates;

    #[test]
    fn cache_returns_same_routes_as_direct_enumeration() {
        let topo = Topology::mesh(3, 3, 2);
        let mut cache = RouteCache::new(&topo, 8);
        for src in 0..topo.ni_count() as u32 {
            for dst in 0..topo.ni_count() as u32 {
                let (s, d) = (NiId::new(src), NiId::new(dst));
                let direct = route_candidates(&topo, s, d, 8);
                let cached = cache.candidates(&topo, s, d);
                assert_eq!(cached.len(), direct.len(), "{s}->{d}");
                for (c, p) in cached.iter().zip(&direct) {
                    assert_eq!(&c.path, p, "{s}->{d}");
                    assert_eq!(c.links, p.links(&topo).unwrap(), "{s}->{d}");
                }
            }
        }
    }

    #[test]
    fn lazy_indexing_matches_eager_enumeration() {
        // Walking candidates one index at a time — including past the
        // XY/YX prefix — yields exactly the eager list, in order.
        let topo = Topology::mesh(4, 3, 2);
        for (src, dst) in [(0u32, 21u32), (2, 3), (5, 5), (0, 23)] {
            let (s, d) = (NiId::new(src), NiId::new(dst));
            let direct = route_candidates(&topo, s, d, 12);
            let mut cache = RouteCache::new(&topo, 12);
            let mut walked = Vec::new();
            let mut i = 0;
            while let Some(r) = cache.candidate(&topo, s, d, i) {
                walked.push(r.path.clone());
                i += 1;
            }
            assert_eq!(walked, direct, "{s}->{d}");
        }
    }

    #[test]
    fn first_candidates_do_not_trigger_detour_stage() {
        let topo = Topology::mesh(4, 4, 1);
        let mut cache = RouteCache::new(&topo, 12);
        // Diagonal pair: XY and YX are distinct, so indices 0 and 1 are
        // served from the cheap stage alone.
        let (s, d) = (NiId::new(0), NiId::new(15));
        assert!(cache.candidate(&topo, s, d, 0).is_some());
        assert!(cache.candidate(&topo, s, d, 1).is_some());
        let idx = cache.pair_index(s, d);
        assert_eq!(cache.entries[idx].state, EntryState::Partial);
        // Walking past them forces the DFS stage.
        assert!(cache.candidate(&topo, s, d, 2).is_some());
        assert_eq!(cache.entries[idx].state, EntryState::Complete);
    }

    #[test]
    fn second_lookup_is_memoized() {
        let topo = Topology::mesh(2, 2, 1);
        let mut cache = RouteCache::new(&topo, 4);
        assert_eq!(cache.cached_pairs(), 0);
        let n = cache.candidates(&topo, NiId::new(0), NiId::new(2)).len();
        assert_eq!(cache.cached_pairs(), 1);
        assert_eq!(cache.candidates(&topo, NiId::new(0), NiId::new(2)).len(), n);
        assert_eq!(cache.cached_pairs(), 1);
    }

    #[test]
    #[should_panic(expected = "rebuild")]
    fn foreign_topology_rejected() {
        let small = Topology::mesh(2, 1, 1);
        let big = Topology::mesh(4, 4, 4);
        let mut cache = RouteCache::new(&small, 4);
        let _ = cache.candidates(&big, NiId::new(0), NiId::new(60));
    }

    #[test]
    #[should_panic(expected = "topology shape changed")]
    fn same_ni_count_different_shape_rejected() {
        // Both meshes have 16 NIs and 16 routers, but different link
        // counts — the cached routes would be silently wrong without the
        // shape check.
        let a = Topology::mesh(4, 4, 1);
        let b = Topology::mesh(2, 8, 1);
        let mut cache = RouteCache::new(&a, 4);
        let _ = cache.candidates(&b, NiId::new(0), NiId::new(5));
    }
}
