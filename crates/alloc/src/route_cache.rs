//! Memoized, lazily materialized route enumeration for the allocator.
//!
//! [`route_candidates`](crate::path::route_candidates) runs a BFS plus a
//! bounded DFS per call — by far the most expensive part of allocating one
//! connection. The allocator, however, asks for the same (source NI,
//! destination NI) pair over and over: once per rip-up retry, once per
//! phase salt, and again for every connection sharing the pair, and the
//! answer never changes because candidate routes depend only on the
//! topology. A route provider computes each pair's candidates — and each
//! path's link list — at most once.
//!
//! The allocator is written against the [`RouteProvider`] trait, with two
//! implementations that return bit-for-bit identical candidate sequences:
//!
//! * [`RouteCache`] — the default: a *hashed* cache whose memory is
//!   proportional to the pairs actually routed. On a 32×32 mesh with
//!   4 NIs per router there are 4096² ≈ 16.8M ordered pairs; a 100k-
//!   connection workload touches at most 100k of them, so a dense table
//!   would waste three orders of magnitude of memory.
//! * [`DenseRouteCache`] — a flat `ni_count × ni_count` vector with O(1)
//!   unhashed lookup, the right trade on small platforms where N² is a
//!   few thousand entries and the allocator's inner loop dominates.
//!
//! On top of memoization both providers materialize candidates *lazily*,
//! in the two stages [`route_candidates`](crate::path::route_candidates)
//! already has: the dimension-ordered XY/YX routes are computed on first
//! touch, and the DFS detour enumeration runs only if a caller actually
//! walks past them. The allocator commits to the first feasible
//! candidate, which under light contention is almost always XY or YX, so
//! most pairs never pay for the DFS at all — while the candidate
//! *sequence* observed by callers is identical to an eager enumeration.
//!
//! Providers also carry a [`FaultMask`] of failed links (empty by
//! default): under a non-empty mask every candidate traversing a down
//! link is skipped, and installing a mask evicts resident entries that
//! touch a newly-down link, so a stale path over a failed link can never
//! be served. With an empty mask the lookup path is bit-for-bit the
//! unmasked one.

use crate::path::{detour_candidates, initial_candidates, Path};
use aelite_spec::ids::{LinkId, NiId};
use aelite_spec::topology::Topology;
use std::collections::HashMap;

/// A set of failed (down) links, indexed by link id — the routing side of
/// the fault model.
///
/// Installed into a [`RouteProvider`] via
/// [`set_faults`](RouteProvider::set_faults), after which candidates
/// traversing a down link are skipped. The mask is a plain bitset: the
/// recovery engine owns the authoritative copy and pushes snapshots into
/// every provider that routes for it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMask {
    words: Vec<u64>,
    down: usize,
}

impl FaultMask {
    /// An empty mask: every link is up.
    #[must_use]
    pub fn new() -> Self {
        FaultMask::default()
    }

    /// Whether no link is down.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.down == 0
    }

    /// How many links are down.
    #[must_use]
    pub fn down_count(&self) -> usize {
        self.down
    }

    /// Whether `link` is down.
    #[must_use]
    pub fn is_down(&self, link: LinkId) -> bool {
        self.words
            .get(link.index() / 64)
            .is_some_and(|w| w >> (link.index() % 64) & 1 == 1)
    }

    /// Marks `link` down; `true` if it was up before.
    pub fn set_down(&mut self, link: LinkId) -> bool {
        let (w, b) = (link.index() / 64, link.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & (1 << b) == 0;
        if newly {
            self.words[w] |= 1 << b;
            self.down += 1;
        }
        newly
    }

    /// Marks `link` up; `true` if it was down before.
    pub fn set_up(&mut self, link: LinkId) -> bool {
        let (w, b) = (link.index() / 64, link.index() % 64);
        let was_down = self.words.get(w).is_some_and(|word| word & (1 << b) != 0);
        if was_down {
            self.words[w] &= !(1 << b);
            self.down -= 1;
        }
        was_down
    }

    /// Whether any link of `links` is down.
    #[must_use]
    pub fn blocks(&self, links: &[LinkId]) -> bool {
        self.down > 0 && links.iter().any(|&l| self.is_down(l))
    }
}

/// Position of the `i`-th route of `routes` not blocked by `faults`.
fn nth_healthy(routes: &[CachedRoute], faults: &FaultMask, i: usize) -> Option<usize> {
    routes
        .iter()
        .enumerate()
        .filter(|(_, r)| !faults.blocks(&r.links))
        .nth(i)
        .map(|(pos, _)| pos)
}

/// A candidate route with its precomputed link list.
#[derive(Debug, Clone)]
pub struct CachedRoute {
    /// The source route.
    pub path: Path,
    /// The links of [`path`](Self::path) in traversal order (the NI
    /// ingress link first).
    pub links: Vec<LinkId>,
}

/// The entry type route providers hand out — candidate routes with their
/// link lists. Alias of [`CachedRoute`], named from the caller's side of
/// the [`RouteProvider`] API.
pub type RouteEntry = CachedRoute;

/// How much of a pair's candidate list has been materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum EntryState {
    /// Nothing computed yet.
    #[default]
    Untouched,
    /// XY/YX stage done; the DFS detour stage still pending.
    Partial,
    /// The full candidate list is present.
    Complete,
}

#[derive(Debug, Clone, Default)]
struct Entry {
    routes: Vec<CachedRoute>,
    state: EntryState,
}

impl Entry {
    fn materialize(topo: &Topology, paths: &[Path]) -> Vec<CachedRoute> {
        paths
            .iter()
            .map(|path| {
                let links = path
                    .links(topo)
                    .expect("route_candidates returns valid paths");
                CachedRoute {
                    path: path.clone(),
                    links,
                }
            })
            .collect()
    }

    /// Runs the XY/YX stage if the entry is untouched.
    fn ensure_initial(&mut self, topo: &Topology, src: NiId, dst: NiId, max_paths: usize) {
        if self.state != EntryState::Untouched {
            return;
        }
        let (paths, complete) = initial_candidates(topo, src, dst, max_paths);
        self.routes = Self::materialize(topo, &paths);
        self.state = if complete {
            EntryState::Complete
        } else {
            EntryState::Partial
        };
    }

    /// Runs the DFS detour stage if it is still pending.
    fn ensure_complete(&mut self, topo: &Topology, src: NiId, dst: NiId, max_paths: usize) {
        self.ensure_initial(topo, src, dst, max_paths);
        if self.state == EntryState::Complete {
            return;
        }
        let mut paths: Vec<Path> = self.routes.iter().map(|r| r.path.clone()).collect();
        let prefix = paths.len();
        detour_candidates(topo, src, dst, max_paths, &mut paths);
        let tail = Self::materialize(topo, &paths[prefix..]);
        self.routes.extend(tail);
        self.state = EntryState::Complete;
    }

    /// Serves index `i`, materializing the detour stage only when the
    /// caller walks past the XY/YX prefix.
    fn candidate(
        &mut self,
        topo: &Topology,
        src: NiId,
        dst: NiId,
        max_paths: usize,
        i: usize,
    ) -> Option<&CachedRoute> {
        self.ensure_initial(topo, src, dst, max_paths);
        if i >= self.routes.len() && self.state == EntryState::Partial {
            self.ensure_complete(topo, src, dst, max_paths);
        }
        self.routes.get(i)
    }

    /// Serves the `i`-th candidate not blocked by `faults`, materializing
    /// the detour stage when the healthy prefix runs out. With an empty
    /// mask this is exactly [`candidate`](Self::candidate).
    fn healthy_candidate(
        &mut self,
        topo: &Topology,
        src: NiId,
        dst: NiId,
        max_paths: usize,
        i: usize,
        faults: &FaultMask,
    ) -> Option<&CachedRoute> {
        if faults.is_empty() {
            return self.candidate(topo, src, dst, max_paths, i);
        }
        self.ensure_initial(topo, src, dst, max_paths);
        if nth_healthy(&self.routes, faults, i).is_none() && self.state == EntryState::Partial {
            self.ensure_complete(topo, src, dst, max_paths);
        }
        let pos = nth_healthy(&self.routes, faults, i)?;
        Some(&self.routes[pos])
    }

    /// One blocking down link (the first on the shortest route) when the
    /// pair is routable in the topology but **every** candidate traverses
    /// a down link; `None` when the mask is empty, some candidate is
    /// healthy, or no route exists at all.
    fn blocking_fault(
        &mut self,
        topo: &Topology,
        src: NiId,
        dst: NiId,
        max_paths: usize,
        faults: &FaultMask,
    ) -> Option<LinkId> {
        if faults.is_empty() {
            return None;
        }
        self.ensure_complete(topo, src, dst, max_paths);
        if self.routes.is_empty() || self.routes.iter().any(|r| !faults.blocks(&r.links)) {
            return None;
        }
        self.routes[0]
            .links
            .iter()
            .copied()
            .find(|&l| faults.is_down(l))
    }

    /// Whether any materialized route traverses a link that is down in
    /// `new` but was not in `old` — the eviction predicate of
    /// [`RouteProvider::set_faults`].
    fn touches_newly_down(&self, new: &FaultMask, old: &FaultMask) -> bool {
        self.state != EntryState::Untouched
            && self
                .routes
                .iter()
                .any(|r| r.links.iter().any(|&l| new.is_down(l) && !old.is_down(l)))
    }
}

/// Shape snapshot of the topology a provider was built for, used to
/// reject lookups against a different platform.
#[derive(Debug, Clone, Copy)]
struct Shape {
    ni_count: usize,
    router_count: usize,
    link_count: usize,
}

impl Shape {
    fn of(topo: &Topology) -> Self {
        Shape {
            ni_count: topo.ni_count(),
            router_count: topo.router_count(),
            link_count: topo.link_count(),
        }
    }

    /// Cached routes are only valid for the topology the provider was
    /// built for; reject anything whose shape (NI/router/link counts)
    /// differs. A distinct topology with identical counts cannot be
    /// detected — it is the caller's contract to keep one provider per
    /// topology.
    fn check(&self, topo: &Topology, src: NiId, dst: NiId) {
        assert!(
            topo.ni_count() == self.ni_count
                && topo.router_count() == self.router_count
                && topo.link_count() == self.link_count,
            "topology shape changed; rebuild the route cache for it"
        );
        assert!(
            src.index() < self.ni_count && dst.index() < self.ni_count,
            "NI out of range for this cache; rebuild it for the new topology"
        );
    }
}

/// Memoized route enumeration per (source NI, destination NI) pair.
///
/// The allocator and every flow above it (reconfiguration, online churn,
/// DSE) are generic over this trait; any implementation must return, for
/// a given topology and `max_paths` bound, exactly the candidate sequence
/// of [`route_candidates`](crate::path::route_candidates) — grants are
/// then bit-for-bit independent of which provider served the routes.
///
/// Implementations are reusable across every pass, salt, and
/// reconfiguration step that shares a topology and `max_paths` bound.
pub trait RouteProvider: core::fmt::Debug + Send {
    /// The `max_paths` bound this provider enumerates up to.
    fn max_paths(&self) -> usize;

    /// The `i`-th candidate route from `src` to `dst` (shortest first), or
    /// `None` when fewer than `i + 1` candidates exist. Implementations
    /// materialize the expensive detour stage only when `i` walks past
    /// the XY/YX routes. Under a non-empty [fault mask](Self::faults)
    /// only candidates traversing no down link are counted and served.
    ///
    /// # Panics
    ///
    /// Panics if `topo`'s shape differs from the topology the provider
    /// was created for, or `src`/`dst` lie outside it (the provider must
    /// be rebuilt when the topology changes).
    fn candidate(&mut self, topo: &Topology, src: NiId, dst: NiId, i: usize)
        -> Option<&RouteEntry>;

    /// The full candidate list from `src` to `dst`, shortest first,
    /// computing and memoizing it on first use. Under a non-empty
    /// [fault mask](Self::faults) the list is filtered to the healthy
    /// candidates.
    ///
    /// # Panics
    ///
    /// Panics if `topo`'s shape differs from the topology the provider
    /// was created for, or `src`/`dst` lie outside it.
    fn candidates(&mut self, topo: &Topology, src: NiId, dst: NiId) -> &[RouteEntry];

    /// How many (src, dst) pairs are resident — i.e. have been (at least
    /// partially) computed and are holding memory.
    fn resident_pairs(&self) -> usize;

    /// The link-fault mask candidates are currently filtered through
    /// (empty unless [`set_faults`](Self::set_faults) installed one).
    fn faults(&self) -> &FaultMask;

    /// Installs `faults` as the provider's link-fault mask. Subsequent
    /// [`candidate`](Self::candidate)/[`candidates`](Self::candidates)
    /// calls skip every route traversing a down link, and resident
    /// entries touching a **newly** down link are evicted — their memory
    /// is released and [`resident_pairs`](Self::resident_pairs) drops
    /// accordingly. Re-materialization is a pure function of the
    /// topology, so eviction never changes a candidate sequence.
    fn set_faults(&mut self, faults: &FaultMask);

    /// When the (src, dst) pair is routable in the topology but **every**
    /// candidate traverses a down link, one of the blocking links (the
    /// first down link of the shortest route); `None` when the mask is
    /// empty, some candidate is healthy, or no route exists at all —
    /// distinguishing "severed by faults" from a plain no-route.
    ///
    /// # Panics
    ///
    /// Panics as [`candidate`](Self::candidate) on a foreign topology.
    fn blocking_fault(&mut self, topo: &Topology, src: NiId, dst: NiId) -> Option<LinkId>;
}

/// The default route provider: a lazily-populated *hashed* cache whose
/// resident memory is proportional to the pairs actually routed, not to
/// `ni_count²`.
///
/// This is what every flow constructs unless a caller opts into
/// [`DenseRouteCache`]: on mega-meshes (16×16–32×32, thousands of NIs)
/// the ordered-pair space is tens of millions while real workloads route
/// tens of thousands of pairs, and churn micro-bursts touch only a
/// handful.
///
/// # Examples
///
/// ```
/// use aelite_alloc::route_cache::{RouteCache, RouteProvider};
/// use aelite_spec::ids::NiId;
/// use aelite_spec::topology::Topology;
///
/// let topo = Topology::mesh(2, 2, 1);
/// let mut cache = RouteCache::new(&topo, 4);
/// let routes = cache.candidates(&topo, NiId::new(0), NiId::new(3));
/// assert!(!routes.is_empty());
/// assert_eq!(routes[0].links.len(), routes[0].path.link_count());
/// assert_eq!(cache.resident_pairs(), 1); // only the pair we touched
/// ```
#[derive(Debug)]
pub struct RouteCache {
    max_paths: usize,
    shape: Shape,
    entries: HashMap<(u32, u32), Entry>,
    faults: FaultMask,
    /// Scratch for fault-filtered [`candidates`](RouteProvider::candidates)
    /// results (the unmasked path returns the resident slice directly).
    healthy: Vec<CachedRoute>,
}

impl RouteCache {
    /// Creates an empty cache for `topo`, enumerating at most `max_paths`
    /// candidates per pair. Allocates nothing up front: entries appear as
    /// pairs are routed.
    #[must_use]
    pub fn new(topo: &Topology, max_paths: usize) -> Self {
        RouteCache {
            max_paths,
            shape: Shape::of(topo),
            entries: HashMap::new(),
            faults: FaultMask::new(),
            healthy: Vec::new(),
        }
    }

    /// How many (src, dst) pairs have been (at least partially) computed.
    #[must_use]
    pub fn cached_pairs(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state != EntryState::Untouched)
            .count()
    }

    fn key(src: NiId, dst: NiId) -> (u32, u32) {
        (src.index() as u32, dst.index() as u32)
    }
}

impl RouteProvider for RouteCache {
    fn max_paths(&self) -> usize {
        self.max_paths
    }

    fn candidate(
        &mut self,
        topo: &Topology,
        src: NiId,
        dst: NiId,
        i: usize,
    ) -> Option<&RouteEntry> {
        self.shape.check(topo, src, dst);
        let entry = self.entries.entry(Self::key(src, dst)).or_default();
        entry.healthy_candidate(topo, src, dst, self.max_paths, i, &self.faults)
    }

    fn candidates(&mut self, topo: &Topology, src: NiId, dst: NiId) -> &[RouteEntry] {
        self.shape.check(topo, src, dst);
        let entry = self.entries.entry(Self::key(src, dst)).or_default();
        entry.ensure_complete(topo, src, dst, self.max_paths);
        if self.faults.is_empty() {
            return &entry.routes;
        }
        let faults = &self.faults;
        self.healthy.clear();
        self.healthy.extend(
            entry
                .routes
                .iter()
                .filter(|r| !faults.blocks(&r.links))
                .cloned(),
        );
        &self.healthy
    }

    fn resident_pairs(&self) -> usize {
        self.cached_pairs()
    }

    fn faults(&self) -> &FaultMask {
        &self.faults
    }

    fn set_faults(&mut self, faults: &FaultMask) {
        let old = &self.faults;
        self.entries
            .retain(|_, e| !e.touches_newly_down(faults, old));
        self.faults = faults.clone();
    }

    fn blocking_fault(&mut self, topo: &Topology, src: NiId, dst: NiId) -> Option<LinkId> {
        self.shape.check(topo, src, dst);
        let entry = self.entries.entry(Self::key(src, dst)).or_default();
        entry.blocking_fault(topo, src, dst, self.max_paths, &self.faults)
    }
}

/// A route provider backed by a flat `ni_count × ni_count` entry vector:
/// O(1) unhashed lookup at the price of dense N² memory.
///
/// The right trade on small platforms (the paper's 4×3/48-NI mesh has
/// 2304 pairs) where the allocator's inner loop dominates and the table
/// is a few hundred KiB. On mega-meshes prefer [`RouteCache`], whose
/// memory tracks the pairs actually routed.
///
/// Candidate sequences are bit-for-bit identical to [`RouteCache`]'s, so
/// allocations (and their grants) do not depend on the provider choice.
#[derive(Debug)]
pub struct DenseRouteCache {
    max_paths: usize,
    shape: Shape,
    entries: Vec<Entry>,
    faults: FaultMask,
    /// Scratch for fault-filtered [`candidates`](RouteProvider::candidates)
    /// results (the unmasked path returns the resident slice directly).
    healthy: Vec<CachedRoute>,
}

impl DenseRouteCache {
    /// Creates an empty dense cache for `topo`, eagerly allocating
    /// `ni_count²` (untouched) entries.
    #[must_use]
    pub fn new(topo: &Topology, max_paths: usize) -> Self {
        let shape = Shape::of(topo);
        DenseRouteCache {
            max_paths,
            shape,
            entries: vec![Entry::default(); shape.ni_count * shape.ni_count],
            faults: FaultMask::new(),
            healthy: Vec::new(),
        }
    }

    /// How many (src, dst) pairs have been (at least partially) computed.
    #[must_use]
    pub fn cached_pairs(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state != EntryState::Untouched)
            .count()
    }

    fn pair_index(&self, src: NiId, dst: NiId) -> usize {
        src.index() * self.shape.ni_count + dst.index()
    }
}

impl RouteProvider for DenseRouteCache {
    fn max_paths(&self) -> usize {
        self.max_paths
    }

    fn candidate(
        &mut self,
        topo: &Topology,
        src: NiId,
        dst: NiId,
        i: usize,
    ) -> Option<&RouteEntry> {
        self.shape.check(topo, src, dst);
        let idx = self.pair_index(src, dst);
        self.entries[idx].healthy_candidate(topo, src, dst, self.max_paths, i, &self.faults)
    }

    fn candidates(&mut self, topo: &Topology, src: NiId, dst: NiId) -> &[RouteEntry] {
        self.shape.check(topo, src, dst);
        let idx = self.pair_index(src, dst);
        let max_paths = self.max_paths;
        let entry = &mut self.entries[idx];
        entry.ensure_complete(topo, src, dst, max_paths);
        if self.faults.is_empty() {
            return &entry.routes;
        }
        let faults = &self.faults;
        self.healthy.clear();
        self.healthy.extend(
            entry
                .routes
                .iter()
                .filter(|r| !faults.blocks(&r.links))
                .cloned(),
        );
        &self.healthy
    }

    fn resident_pairs(&self) -> usize {
        self.cached_pairs()
    }

    fn faults(&self) -> &FaultMask {
        &self.faults
    }

    fn set_faults(&mut self, faults: &FaultMask) {
        let old = &self.faults;
        for e in &mut self.entries {
            if e.touches_newly_down(faults, old) {
                *e = Entry::default();
            }
        }
        self.faults = faults.clone();
    }

    fn blocking_fault(&mut self, topo: &Topology, src: NiId, dst: NiId) -> Option<LinkId> {
        self.shape.check(topo, src, dst);
        let idx = self.pair_index(src, dst);
        self.entries[idx].blocking_fault(topo, src, dst, self.max_paths, &self.faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::route_candidates;

    #[test]
    fn cache_returns_same_routes_as_direct_enumeration() {
        let topo = Topology::mesh(3, 3, 2);
        let mut cache = RouteCache::new(&topo, 8);
        let mut dense = DenseRouteCache::new(&topo, 8);
        for src in 0..topo.ni_count() as u32 {
            for dst in 0..topo.ni_count() as u32 {
                let (s, d) = (NiId::new(src), NiId::new(dst));
                let direct = route_candidates(&topo, s, d, 8);
                for (name, cached) in [
                    ("hashed", cache.candidates(&topo, s, d)),
                    ("dense", dense.candidates(&topo, s, d)),
                ] {
                    assert_eq!(cached.len(), direct.len(), "{name} {s}->{d}");
                    for (c, p) in cached.iter().zip(&direct) {
                        assert_eq!(&c.path, p, "{name} {s}->{d}");
                        assert_eq!(c.links, p.links(&topo).unwrap(), "{name} {s}->{d}");
                    }
                }
            }
        }
    }

    #[test]
    fn lazy_indexing_matches_eager_enumeration() {
        // Walking candidates one index at a time — including past the
        // XY/YX prefix — yields exactly the eager list, in order, for
        // both providers.
        let topo = Topology::mesh(4, 3, 2);
        for (src, dst) in [(0u32, 21u32), (2, 3), (5, 5), (0, 23)] {
            let (s, d) = (NiId::new(src), NiId::new(dst));
            let direct = route_candidates(&topo, s, d, 12);
            let mut hashed = RouteCache::new(&topo, 12);
            let mut dense = DenseRouteCache::new(&topo, 12);
            let providers: [&mut dyn RouteProvider; 2] = [&mut hashed, &mut dense];
            for p in providers {
                let mut walked = Vec::new();
                let mut i = 0;
                while let Some(r) = p.candidate(&topo, s, d, i) {
                    walked.push(r.path.clone());
                    i += 1;
                }
                assert_eq!(walked, direct, "{s}->{d}");
            }
        }
    }

    #[test]
    fn first_candidates_do_not_trigger_detour_stage() {
        let topo = Topology::mesh(4, 4, 1);
        let mut cache = RouteCache::new(&topo, 12);
        // Diagonal pair: XY and YX are distinct, so indices 0 and 1 are
        // served from the cheap stage alone.
        let (s, d) = (NiId::new(0), NiId::new(15));
        assert!(cache.candidate(&topo, s, d, 0).is_some());
        assert!(cache.candidate(&topo, s, d, 1).is_some());
        let key = RouteCache::key(s, d);
        assert_eq!(cache.entries[&key].state, EntryState::Partial);
        // Walking past them forces the DFS stage.
        assert!(cache.candidate(&topo, s, d, 2).is_some());
        assert_eq!(cache.entries[&key].state, EntryState::Complete);
    }

    #[test]
    fn second_lookup_is_memoized() {
        let topo = Topology::mesh(2, 2, 1);
        let mut cache = RouteCache::new(&topo, 4);
        assert_eq!(cache.cached_pairs(), 0);
        let n = cache.candidates(&topo, NiId::new(0), NiId::new(2)).len();
        assert_eq!(cache.cached_pairs(), 1);
        assert_eq!(cache.candidates(&topo, NiId::new(0), NiId::new(2)).len(), n);
        assert_eq!(cache.cached_pairs(), 1);
    }

    #[test]
    fn hashed_cache_resident_pairs_track_touched_pairs_only() {
        // The regression the lazy cache exists for: routing a handful of
        // pairs on a big platform must not allocate entries for the N²
        // pair space (the old dense-by-default cache allocated all
        // 1024² = 1M entries up front here).
        let topo = Topology::mesh(16, 16, 4);
        let mut cache = RouteCache::new(&topo, 12);
        assert_eq!(cache.resident_pairs(), 0, "construction is allocation-free");
        let pairs = [(0u32, 1023u32), (17, 1000), (512, 513), (5, 5), (0, 1023)];
        let mut distinct = std::collections::BTreeSet::new();
        for (s, d) in pairs {
            let _ = cache.candidates(&topo, NiId::new(s), NiId::new(d));
            distinct.insert((s, d));
        }
        assert_eq!(cache.resident_pairs(), distinct.len());
        assert!(cache.resident_pairs() <= pairs.len());
    }

    #[test]
    fn dense_cache_is_eager_in_pair_space() {
        // The documented trade of the dense provider: entry storage is
        // allocated up front for every ordered pair.
        let topo = Topology::mesh(2, 2, 2);
        let dense = DenseRouteCache::new(&topo, 4);
        assert_eq!(dense.entries.len(), 64); // 8 NIs → 64 ordered pairs
        assert_eq!(dense.resident_pairs(), 0); // ...but none computed yet
    }

    /// Every (provider, mask) combination used by the fault tests: both
    /// providers must behave identically under a mask.
    fn both_providers(topo: &Topology, max_paths: usize) -> (RouteCache, DenseRouteCache) {
        (
            RouteCache::new(topo, max_paths),
            DenseRouteCache::new(topo, max_paths),
        )
    }

    #[test]
    fn fault_mask_set_and_clear_roundtrip() {
        let mut mask = FaultMask::new();
        assert!(mask.is_empty());
        assert!(!mask.is_down(LinkId::new(130)));
        assert!(mask.set_down(LinkId::new(130)));
        assert!(!mask.set_down(LinkId::new(130)), "second set is a no-op");
        assert!(mask.set_down(LinkId::new(3)));
        assert_eq!(mask.down_count(), 2);
        assert!(mask.is_down(LinkId::new(130)) && mask.is_down(LinkId::new(3)));
        assert!(mask.blocks(&[LinkId::new(1), LinkId::new(3)]));
        assert!(!mask.blocks(&[LinkId::new(1), LinkId::new(2)]));
        assert!(mask.set_up(LinkId::new(130)));
        assert!(!mask.set_up(LinkId::new(130)), "second raise is a no-op");
        assert!(!mask.set_up(LinkId::new(999)), "never-down link is a no-op");
        assert!(mask.set_up(LinkId::new(3)));
        assert!(mask.is_empty());
    }

    #[test]
    fn masked_candidates_skip_routes_over_down_links() {
        let topo = Topology::mesh(3, 3, 1);
        let (mut hashed, mut dense) = both_providers(&topo, 12);
        let (s, d) = (NiId::new(0), NiId::new(8)); // corner to corner
        let all: Vec<Path> = hashed
            .candidates(&topo, s, d)
            .iter()
            .map(|r| r.path.clone())
            .collect();
        assert!(all.len() > 2, "diagonal pair has detours");

        // Fail the first link after the NI ingress of the XY route.
        let down = hashed.candidates(&topo, s, d)[0].links[1];
        let mut mask = FaultMask::new();
        mask.set_down(down);
        hashed.set_faults(&mask);
        dense.set_faults(&mask);

        let expected: Vec<Path> = {
            let mut v = all.clone();
            let mut probe = RouteCache::new(&topo, 12);
            let keep: Vec<bool> = probe
                .candidates(&topo, s, d)
                .iter()
                .map(|r| !r.links.contains(&down))
                .collect();
            let mut it = keep.iter();
            v.retain(|_| *it.next().unwrap());
            v
        };
        assert!(!expected.is_empty() && expected.len() < all.len());

        for p in [&mut hashed as &mut dyn RouteProvider, &mut dense] {
            // candidates() filters...
            let filtered: Vec<Path> = p
                .candidates(&topo, s, d)
                .iter()
                .map(|r| r.path.clone())
                .collect();
            assert_eq!(filtered, expected);
            // ...and candidate(i) serves exactly the healthy sequence.
            let mut walked = Vec::new();
            let mut i = 0;
            while let Some(r) = p.candidate(&topo, s, d, i) {
                assert!(!r.links.contains(&down), "served a route over a down link");
                walked.push(r.path.clone());
                i += 1;
            }
            assert_eq!(walked, expected);
            assert!(p.blocking_fault(&topo, s, d).is_none(), "detours survive");
        }

        // Clearing the mask restores the unmasked sequence bit-for-bit.
        hashed.set_faults(&FaultMask::new());
        let back: Vec<Path> = hashed
            .candidates(&topo, s, d)
            .iter()
            .map(|r| r.path.clone())
            .collect();
        assert_eq!(back, all);
    }

    #[test]
    fn blocking_fault_reported_when_every_route_is_severed() {
        let topo = Topology::mesh(3, 1, 1);
        let (mut hashed, mut dense) = both_providers(&topo, 12);
        let (s, d) = (NiId::new(0), NiId::new(2));
        // On a 1-row mesh every route shares the single eastbound chain;
        // failing the NI ingress link severs the pair outright.
        let ingress = topo.ni_ingress_link(s);
        let mut mask = FaultMask::new();
        mask.set_down(ingress);
        for p in [&mut hashed as &mut dyn RouteProvider, &mut dense] {
            assert!(p.blocking_fault(&topo, s, d).is_none(), "mask not set yet");
            p.set_faults(&mask);
            assert!(p.candidate(&topo, s, d, 0).is_none());
            assert!(p.candidates(&topo, s, d).is_empty());
            assert_eq!(p.blocking_fault(&topo, s, d), Some(ingress));
        }
    }

    #[test]
    fn set_faults_evicts_resident_entries_touching_newly_down_links() {
        let topo = Topology::mesh(4, 4, 1);
        let (mut hashed, mut dense) = both_providers(&topo, 12);
        // Touch two pairs: one through the failed link's router, one far away.
        let (near_s, near_d) = (NiId::new(0), NiId::new(1));
        let (far_s, far_d) = (NiId::new(14), NiId::new(15));
        for p in [&mut hashed as &mut dyn RouteProvider, &mut dense] {
            let _ = p.candidates(&topo, near_s, near_d);
            let _ = p.candidates(&topo, far_s, far_d);
            assert_eq!(p.resident_pairs(), 2);

            let down = p.candidates(&topo, near_s, near_d)[0].links[0];
            let mut mask = FaultMask::new();
            mask.set_down(down);
            p.set_faults(&mask);
            assert_eq!(
                p.resident_pairs(),
                1,
                "the entry over the failed link is evicted, the bystander stays"
            );

            // Re-installing the same mask evicts nothing further (only
            // *newly* down links evict), and the evicted pair re-resides
            // on next touch with the same healthy answer as a cold cache.
            p.set_faults(&mask);
            assert_eq!(p.resident_pairs(), 1);
            assert!(p.candidates(&topo, near_s, near_d).is_empty());
            assert_eq!(p.resident_pairs(), 2);

            // Raising the link back evicts nothing; the stale-filtered
            // entry serves the full list again purely via the mask.
            p.set_faults(&FaultMask::new());
            assert_eq!(p.resident_pairs(), 2);
            assert!(!p.candidates(&topo, near_s, near_d).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "rebuild")]
    fn foreign_topology_rejected() {
        let small = Topology::mesh(2, 1, 1);
        let big = Topology::mesh(4, 4, 4);
        let mut cache = RouteCache::new(&small, 4);
        let _ = cache.candidates(&big, NiId::new(0), NiId::new(60));
    }

    #[test]
    #[should_panic(expected = "topology shape changed")]
    fn same_ni_count_different_shape_rejected() {
        // Both meshes have 16 NIs and 16 routers, but different link
        // counts — the cached routes would be silently wrong without the
        // shape check.
        let a = Topology::mesh(4, 4, 1);
        let b = Topology::mesh(2, 8, 1);
        let mut cache = RouteCache::new(&a, 4);
        let _ = cache.candidates(&b, NiId::new(0), NiId::new(5));
    }

    #[test]
    #[should_panic(expected = "topology shape changed")]
    fn dense_rejects_changed_shape_too() {
        let a = Topology::mesh(4, 4, 1);
        let b = Topology::mesh(2, 8, 1);
        let mut cache = DenseRouteCache::new(&a, 4);
        let _ = cache.candidates(&b, NiId::new(0), NiId::new(5));
    }
}
