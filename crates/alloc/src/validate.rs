//! Independent validation of an [`Allocation`] against its [`SystemSpec`].
//!
//! The validator re-derives every property the allocator is supposed to
//! guarantee, from scratch, so that a bug in the allocator cannot hide
//! behind its own bookkeeping:
//!
//! 1. every connection holds a grant whose path really leads from its
//!    source NI to its destination NI;
//! 2. the link tables contain *exactly* the shifted reservations implied by
//!    the grants — no missing entries, no orphans (the contention-free
//!    invariant);
//! 3. reserved slots deliver at least the contracted bandwidth;
//! 4. the worst-case latency bound meets the contracted deadline.

use crate::allocate::Allocation;
use crate::path::PathError;
use aelite_spec::app::SystemSpec;
use aelite_spec::ids::{ConnId, LinkId};
use core::fmt;

/// One discrepancy between a spec and an allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A connection has no grant at all.
    MissingGrant {
        /// The ungranted connection.
        conn: ConnId,
    },
    /// A grant's path is not walkable in the topology.
    BadPath {
        /// The connection with the broken path.
        conn: ConnId,
        /// What is wrong with the port sequence.
        error: PathError,
    },
    /// A grant's path does not connect the connection's NIs.
    WrongEndpoints {
        /// The misrouted connection.
        conn: ConnId,
    },
    /// A slot the grant implies is not reserved for the connection.
    TableMismatch {
        /// The connection whose reservation is missing or stolen.
        conn: ConnId,
        /// The link whose table disagrees.
        link: LinkId,
        /// The (unwrapped) slot index expected to be owned.
        slot: u32,
    },
    /// A link table reserves a slot no grant accounts for.
    OrphanReservation {
        /// The link holding the stray reservation.
        link: LinkId,
        /// The slot index.
        slot: u32,
        /// The connection the table claims owns it.
        conn: ConnId,
    },
    /// The granted slots deliver less than the contracted bandwidth.
    BandwidthShort {
        /// The under-provisioned connection.
        conn: ConnId,
        /// Bytes per second granted.
        granted: u64,
        /// Bytes per second contracted.
        required: u64,
    },
    /// The worst-case latency bound exceeds the contracted deadline.
    LatencyExceeded {
        /// The late connection.
        conn: ConnId,
        /// The analytical worst-case bound, in nanoseconds.
        bound_ns: u64,
        /// The contract, in nanoseconds.
        required_ns: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingGrant { conn } => write!(f, "{conn} has no grant"),
            Violation::BadPath { conn, error } => write!(f, "{conn} path invalid: {error}"),
            Violation::WrongEndpoints { conn } => {
                write!(f, "{conn} path does not connect its NIs")
            }
            Violation::TableMismatch { conn, link, slot } => {
                write!(f, "{conn} reservation missing on {link} slot {slot}")
            }
            Violation::OrphanReservation { link, slot, conn } => {
                write!(f, "orphan reservation for {conn} on {link} slot {slot}")
            }
            Violation::BandwidthShort {
                conn,
                granted,
                required,
            } => write!(f, "{conn} granted {granted} B/s < required {required} B/s"),
            Violation::LatencyExceeded {
                conn,
                bound_ns,
                required_ns,
            } => write!(f, "{conn} bound {bound_ns} ns > required {required_ns} ns"),
        }
    }
}

/// Checks `alloc` against `spec`, returning every violation found.
///
/// # Errors
///
/// Returns the non-empty list of [`Violation`]s if any check fails.
pub fn validate(spec: &SystemSpec, alloc: &Allocation) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    let topo = spec.topology();
    let size = alloc.table_size();

    // Expected reservations, rebuilt from the grants: (link, slot) -> conn.
    let mut expected: std::collections::HashMap<(usize, u32), ConnId> =
        std::collections::HashMap::new();

    for c in spec.connections() {
        let Some(grant) = alloc.grant(c.id) else {
            violations.push(Violation::MissingGrant { conn: c.id });
            continue;
        };
        // Path must be walkable...
        let links = match grant.path.links(topo) {
            Ok(l) => l,
            Err(error) => {
                violations.push(Violation::BadPath { conn: c.id, error });
                continue;
            }
        };
        // ... and connect exactly this connection's NIs.
        if grant.path.src != spec.ip_ni(c.src) || grant.path.dst != spec.ip_ni(c.dst) {
            violations.push(Violation::WrongEndpoints { conn: c.id });
            continue;
        }
        // Record the shifted reservations this grant implies.
        let shift = spec.config().slots_per_hop();
        for &s in &grant.inject_slots {
            for (i, &l) in links.iter().enumerate() {
                let slot = (s + i as u32 * shift) % size;
                expected.insert((l.index(), slot), c.id);
                if alloc.link_table(l).owner(slot) != Some(c.id) {
                    violations.push(Violation::TableMismatch {
                        conn: c.id,
                        link: l,
                        slot,
                    });
                }
            }
        }
        // Bandwidth.
        let granted = alloc.allocated_bandwidth(spec, c.id).bytes_per_sec();
        if granted < c.bandwidth.bytes_per_sec() {
            violations.push(Violation::BandwidthShort {
                conn: c.id,
                granted,
                required: c.bandwidth.bytes_per_sec(),
            });
        }
        // Latency.
        let bound_ns = alloc.worst_case_latency_ns(spec, c.id).ceil() as u64;
        if bound_ns > c.max_latency_ns {
            violations.push(Violation::LatencyExceeded {
                conn: c.id,
                bound_ns,
                required_ns: c.max_latency_ns,
            });
        }
    }

    // No orphan reservations.
    for link in topo.links() {
        for (slot, owner) in alloc.link_table(link).iter() {
            if let Some(conn) = owner {
                if expected.get(&(link.index(), slot)) != Some(&conn) {
                    violations.push(Violation::OrphanReservation { link, slot, conn });
                }
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::allocate;
    use aelite_spec::generate::paper_workload;

    #[test]
    fn paper_allocation_validates_clean() {
        let spec = paper_workload(42);
        let alloc = allocate(&spec).unwrap();
        validate(&spec, &alloc).unwrap();
    }

    #[test]
    fn missing_grant_detected() {
        let spec = paper_workload(1);
        let partial = spec.restricted_to(&[aelite_spec::ids::AppId::new(0)]);
        // Allocate only app 0, then validate against the *full* spec.
        let alloc = allocate(&partial).unwrap();
        let err = validate(&spec, &alloc).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::MissingGrant { .. })));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::BandwidthShort {
            conn: ConnId::new(1),
            granted: 10,
            required: 20,
        };
        let s = v.to_string();
        assert!(
            s.contains("c1") && s.contains("10") && s.contains("20"),
            "{s}"
        );
    }
}
